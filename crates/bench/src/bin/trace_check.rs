//! `trace_check` — validate an exported trace against the Chrome
//! `trace_event` format, with the workspace's own JSON parser (the CI
//! `obs-smoke` lane runs this on the `--trace` output of a figure run,
//! so a malformed export fails the build, not the first person to open
//! `chrome://tracing`).
//!
//! Checks, per the Trace Event Format spec (JSON Object Format):
//!
//! * the document is an object with a `traceEvents` array (a bare array
//!   is also accepted — both load in `chrome://tracing`);
//! * every event is an object with string `name` and `ph`;
//! * `ph` is one of the phases the exporter emits (`X`, `i`, `M`);
//! * non-metadata events carry numeric `ts` ≥ 0, `pid`, and `tid`;
//! * complete events (`X`) carry numeric `dur` ≥ 0.
//!
//! Usage: `trace_check FILE.trace.json` — exits 0 on a valid trace,
//! 1 with a diagnostic otherwise.

#![forbid(unsafe_code)]

use lit_obs::json::Value;

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: FAIL: {msg}");
    std::process::exit(1);
}

fn check_event(i: usize, e: &Value) -> Result<(), String> {
    let obj = |k: &str| e.get(k);
    let name = obj("name")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("event {i}: missing string \"name\""))?;
    let ph = obj("ph")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("event {i} ({name}): missing string \"ph\""))?;
    if !matches!(ph, "X" | "i" | "M") {
        return Err(format!("event {i} ({name}): unexpected phase {ph:?}"));
    }
    if ph == "M" {
        // Metadata records name process/thread labels; no timestamp.
        return Ok(());
    }
    let num = |k: &str| {
        obj(k)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i} ({name}, ph={ph}): missing numeric \"{k}\""))
    };
    let ts = num("ts")?;
    if ts < 0.0 {
        return Err(format!("event {i} ({name}): negative ts {ts}"));
    }
    num("pid")?;
    num("tid")?;
    if ph == "X" {
        let dur = num("dur")?;
        if dur < 0.0 {
            return Err(format!("event {i} ({name}): negative dur {dur}"));
        }
    }
    Ok(())
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) if !p.starts_with('-') => p,
        _ => {
            eprintln!("usage: trace_check FILE.trace.json");
            std::process::exit(2);
        }
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = Value::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: not JSON: {e}")));
    let events = match doc.get("traceEvents") {
        Some(te) => te
            .as_array()
            .unwrap_or_else(|| fail(&format!("{path}: \"traceEvents\" is not an array"))),
        None => doc.as_array().unwrap_or_else(|| {
            fail(&format!(
                "{path}: neither object with traceEvents nor array"
            ))
        }),
    };
    let mut phases = [0usize; 3]; // X, i, M
    for (i, e) in events.iter().enumerate() {
        if let Err(msg) = check_event(i, e) {
            fail(&msg);
        }
        match e.get("ph").and_then(|v| v.as_str()) {
            Some("X") => phases[0] += 1,
            Some("i") => phases[1] += 1,
            _ => phases[2] += 1,
        }
    }
    println!(
        "trace_check: OK {path}: {} event(s) ({} complete, {} instant, {} metadata)",
        events.len(),
        phases[0],
        phases[1],
        phases[2]
    );
}
