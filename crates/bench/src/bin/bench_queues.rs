//! `bench_queues` — tracked heap-vs-calendar numbers for CI.
//!
//! Criterion is great for interactive exploration but heavy for a CI
//! smoke lane; this binary measures the hold model (steady-state pop one
//! / push one, the access pattern of a running simulation) for both
//! [`EventBackend`]s at n ∈ {10², 10⁴, 10⁶} and writes
//! `results/BENCH_queues.json` with ns/op per cell, plus the
//! calendar-to-heap speedup at each size. Exit status is 0 even when the
//! speedup target is missed — the JSON is a tracking artifact, not a
//! gate — but the 1e6 ratio is printed prominently so regressions are
//! visible in the CI log.
//!
//! Usage: `bench_queues [--ops N] [--out DIR]` (defaults: 2 000 000 ops
//! per measurement at 1e4+, scaled down at 1e2; `results/`).

#![forbid(unsafe_code)]

use lit_sim::{Duration, EventBackend, EventQueue, SimRng, Time};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const SIZES: [usize; 3] = [100, 10_000, 1_000_000];

/// ns/op of the hold model at steady size `n` over `ops` operations.
fn hold_ns_per_op(backend: EventBackend, n: usize, ops: u64) -> f64 {
    let mut rng = SimRng::seed_from(9);
    let mut q = EventQueue::with_capacity_in(n + 1, backend);
    let mut now = Time::ZERO;
    for i in 0..n {
        q.push(now + Duration::from_ns(rng.below(1_000_000)), i as u64);
    }
    // Warm-up: let the calendar's self-tuning settle before timing.
    for _ in 0..(n as u64).min(ops / 10).max(1_000) {
        let (t, e) = q.pop().expect("steady state");
        now = t;
        q.push(
            now + Duration::from_ns(1) + Duration::from_ns(rng.below(1_000_000)),
            e,
        );
    }
    let started = Instant::now();
    for _ in 0..ops {
        let (t, e) = q.pop().expect("steady state");
        now = t;
        q.push(
            now + Duration::from_ns(1) + Duration::from_ns(rng.below(1_000_000)),
            e,
        );
        black_box(e);
    }
    started.elapsed().as_nanos() as f64 / ops as f64
}

fn main() {
    let mut ops: u64 = 2_000_000;
    let mut out = PathBuf::from("results");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ops" => {
                ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let mut cells = Vec::new();
    for &n in &SIZES {
        // Tiny queues saturate quickly; fewer ops keep total runtime flat.
        let cell_ops = if n <= 100 { ops / 4 } else { ops }.max(10_000);
        let heap = hold_ns_per_op(EventBackend::Heap, n, cell_ops);
        let cal = hold_ns_per_op(EventBackend::Calendar, n, cell_ops);
        let speedup = heap / cal;
        println!(
            "hold n={n:>9}: heap {heap:8.1} ns/op | calendar {cal:8.1} ns/op | speedup {speedup:.2}x"
        );
        cells.push((n, heap, cal, speedup));
    }
    let at_1e6 = cells
        .iter()
        .find(|&&(n, ..)| n == 1_000_000)
        .map(|&(_, _, _, s)| s)
        .unwrap_or(0.0);
    println!(
        "calendar vs heap at 1e6: {at_1e6:.2}x ({})",
        if at_1e6 >= 2.0 {
            "meets the 2x target"
        } else {
            "BELOW the 2x target"
        }
    );

    // Hand-rolled JSON: the workspace has no serde_json, and the shape is
    // four numbers per cell.
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = format!(
        "{{\n  \"bench\": \"event_queue_hold\",\n  \"unix_time_secs\": {stamp},\n  \"unit\": \"ns/op\",\n  \"cells\": [\n",
    );
    for (i, (n, heap, cal, speedup)) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {n}, \"heap\": {heap:.2}, \"calendar\": {cal:.2}, \"speedup\": {speedup:.3}}}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("bench_queues: cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let path = out.join("BENCH_queues.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => {
            eprintln!("bench_queues: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: bench_queues [--ops N] [--out DIR]");
    std::process::exit(2);
}
