//! `bench_admission` — the admission storm: sustained admit/teardown
//! throughput per backend as resident sessions grow.
//!
//! Each measured point prefills one admission server to a target
//! residency, then pumps admit → release cycles of a representative
//! probe session through it and reports ns/cycle and admits/sec:
//!
//! * `ac1` / `ac2` (procedures 1 and 2): O(P) class-ladder tests,
//!   flat in residency by construction;
//! * `ac3_exact`: the paper's literal `2^n` subset enumerator at 24
//!   resident sessions (each probe admission checks all 2^24 subsets of
//!   a 25-session set — the exponential wall §2 warns about);
//! * `ac3_fast`: the incremental class-aggregated service
//!   ([`lit_core::Ac3Fast`]) on a 1k → 1M residency sweep built from 12
//!   service classes.
//!
//! The committed artifact `results/BENCH_admission.json` stores, per
//! point, ns/cycle and its calibration-normalized twin (`rel_calib`),
//! same discipline as `bench_scale`: each rep pairs a calibration run
//! with a measurement run so machine drift divides out, the stored value
//! is the median of paired ratios, and a failing `--check` retries with
//! more reps before giving a verdict.
//!
//! `--check FILE` enforces two things:
//!
//! 1. no point's `rel_calib` regressed beyond `--tol` (default 25%)
//!    against the committed curve;
//! 2. the headline structural claim, measured in the *same run*:
//!    `ac3_fast` at 100 000 resident sessions sustains more admits/sec
//!    than `ac3_exact` does at 25 sessions.
//!
//! Usage: `bench_admission [--test|--quick] [--reps N] [--out DIR]
//! [--check FILE] [--tol F]`

#![forbid(unsafe_code)]

use lit_bench::{calibrate, CALIBRATE_ITERS};
use lit_core::{
    Ac3Admission, Ac3Fast, ClassedAdmission, DRule, DelayClass, Procedure, SessionRequest,
};
use lit_sim::Duration;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Residency sweep for the fast AC3 service (and the flat AC1/AC2
/// baselines): decade steps from 1k to 1M.
const FAST_SCALES: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Resident sessions for the exact enumerator: each probe admission
/// enumerates the subsets of a 25-session set (2^24 masks over the
/// existing sessions).
const EXACT_RESIDENT: u32 = 24;

/// One planned measurement: `(backend, resident, ops, runner)`.
type PlanPoint = (&'static str, u32, u64, Box<dyn Fn() -> u128>);

/// One measured point of the storm.
struct Point {
    backend: &'static str,
    resident: u32,
    ops: u64,
    ns_per_admit: f64,
    admits_per_sec: f64,
    rel_calib: f64,
}

/// A 3-class ladder on a 10 Gbit/s link, roomy enough to hold a million
/// 1 kbit/s residents inside both the bandwidth caps (test 1.1) and the
/// base-delay budgets (tests 1.2/2.2).
fn ladder(link: u64) -> Vec<DelayClass> {
    (1..=3u64)
        .map(|k| DelayClass {
            max_bandwidth_bps: link * k / 3,
            // lit-lint: allow(raw-time-arithmetic, "bench setup: synthetic class ladder, k ≤ 3")
            base_delay: Duration::from_ms(100 * k),
        })
        .collect()
}

/// Prefill + probe churn for AC1/AC2: `n` resident 1 kbit/s sessions,
/// then `ops` admit/release cycles of one more. Returns wall ns.
fn run_classed(procedure: Procedure, n: u32, ops: u64) -> u128 {
    let link = 10_000_000_000u64;
    let mut ac = ClassedAdmission::new(procedure, link, ladder(link)).unwrap();
    let resident = SessionRequest::new(1_000, 424);
    for i in 0..n {
        ac.try_admit((i % 3) as usize, &resident, DRule::PerSessionMax)
            .expect("prefill session rejected");
    }
    let probe = SessionRequest::new(1_000, 424);
    let mut ok = 0u64;
    let t = Instant::now();
    for _ in 0..ops {
        if ac.try_admit(1, &probe, DRule::PerSessionMax).is_ok() {
            ok += 1;
            ac.release(1, &probe);
        }
    }
    let ns = t.elapsed().as_nanos();
    assert_eq!(ok, ops, "probe admissions rejected under churn");
    black_box(ok);
    ns
}

/// The 12 service classes the fast-AC3 sweep draws residents from:
/// small rates (a million of them fit a 10 Gbit/s link) with generous,
/// per-class delay bounds so the full population stays ineq.-19
/// feasible.
fn fast_class(i: u32) -> (u64, u32, Duration) {
    let k = u64::from(i % 12);
    let d_ms = 200 + 50 * k;
    (
        2_000 + 500 * k,
        400 + 100 * (i % 12),
        Duration::from_ms(d_ms),
    )
}

/// Prefill + probe churn for the fast AC3 service. Returns wall ns over
/// `ops` admit/release cycles at `n` resident sessions.
fn run_fast(n: u32, ops: u64) -> u128 {
    let link = 10_000_000_000u64;
    let mut ac = Ac3Fast::new(link);
    for i in 0..n {
        let (r, l, d) = fast_class(i);
        ac.try_admit(r, l, d).expect("prefill session rejected");
    }
    let (r, l, d) = fast_class(0);
    let mut ok = 0u64;
    let t = Instant::now();
    for _ in 0..ops {
        if let Ok((h, _)) = ac.try_admit(r, l, d) {
            ok += 1;
            ac.release(h);
        }
    }
    let ns = t.elapsed().as_nanos();
    assert_eq!(ok, ops, "probe admissions rejected under churn");
    black_box(ok);
    ns
}

/// Prefill + probe churn for the exact enumerator at `n` resident
/// sessions (`ops` cycles; each admit enumerates 2^n subsets).
fn run_exact(n: u32, ops: u64) -> u128 {
    let mut ac = Ac3Admission::new(100_000_000);
    for i in 0..n {
        // lit-lint: allow(raw-time-arithmetic, "bench setup: distinct per-session delays, 5–29 ms")
        let d = Duration::from_ms(5 + u64::from(i));
        ac.try_admit(200_000, 424, d)
            .expect("prefill session rejected");
    }
    // lit-lint: allow(raw-time-arithmetic, "bench setup: the probe's delay, 29 ms")
    let d = Duration::from_ms(5 + u64::from(n));
    let mut ok = 0u64;
    let t = Instant::now();
    for _ in 0..ops {
        if ac.try_admit(200_000, 424, d).is_ok() {
            ok += 1;
            ac.release(n as usize);
        }
    }
    let ns = t.elapsed().as_nanos();
    assert_eq!(ok, ops, "probe admissions rejected under churn");
    black_box(ok);
    ns
}

/// Median of a small sample (copies and sorts it).
fn median(xs: &[f64]) -> f64 {
    let mut xs = xs.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// `reps` paired (calibration, churn) samples for one point.
fn sample(run: &dyn Fn() -> u128, ops: u64, reps: u32) -> (Vec<f64>, Vec<f64>) {
    let mut ns_per_admit = Vec::new();
    let mut rel = Vec::new();
    for _ in 0..reps.max(1) {
        let calib_unit = calibrate() as f64 / CALIBRATE_ITERS as f64;
        let ns = run() as f64 / ops.max(1) as f64;
        ns_per_admit.push(ns);
        rel.push(ns / calib_unit);
    }
    (ns_per_admit, rel)
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_admission [--test|--quick] [--reps N] [--out DIR] \
         [--check FILE] [--tol F]"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut reps = 3u32;
    let mut out = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut check: Option<PathBuf> = None;
    let mut tol = 0.25f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--test" | "--quick" => quick = true,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--check" => check = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--tol" => {
                tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--bench" => {} // appended by `cargo bench`
            _ => usage(),
        }
    }
    if let Some(dir) = std::env::var_os("BENCH_OUT") {
        out = PathBuf::from(dir);
    }
    if quick {
        reps = reps.min(1);
    }
    // Per-backend probe counts: sized so each measurement run lasts long
    // enough to be stable without making the exact enumerator (≈ 2^24
    // subset tests per cycle) dominate the wall clock.
    let classed_ops: u64 = if quick { 20_000 } else { 200_000 };
    let fast_ops: u64 = if quick { 2_000 } else { 20_000 };
    let exact_ops: u64 = if quick { 1 } else { 3 };
    // The quick sweep keeps 100k residents so the headline fast-vs-exact
    // comparison is always measured in the same run; only the 1M point
    // is full-run-only.
    let max_fast: u32 = if quick { 100_000 } else { u32::MAX };

    // Read the committed curve before the sweep: `--check` may name the
    // same path the fresh artifact is about to overwrite.
    let committed = check.as_ref().map(|p| {
        std::fs::read_to_string(p)
            .ok()
            .and_then(|s| lit_obs::json::Value::parse(&s).ok())
    });
    let committed_points: Vec<(String, u32, f64)> = committed
        .as_ref()
        .and_then(|v| v.as_ref())
        .and_then(|v| v.get("points"))
        .and_then(|p| p.as_array())
        .map(|arr| {
            arr.iter()
                .filter_map(|p| {
                    let backend = p.get("backend")?.as_str()?.to_string();
                    let resident = p.get("resident")?.as_f64()? as u32;
                    let rel = p.get("rel_calib")?.as_f64()?;
                    Some((backend, resident, rel))
                })
                .collect()
        })
        .unwrap_or_default();

    let calib_ns = calibrate();
    println!(
        "bench_admission: calibration {:.1} ms ({:.2} ns/iter), {reps} reps",
        calib_ns as f64 / 1e6,
        calib_ns as f64 / CALIBRATE_ITERS as f64
    );

    // The measurement plan: every (backend, residency, churn-ops) point.
    let mut plan: Vec<PlanPoint> = Vec::new();
    for &n in FAST_SCALES.iter().filter(|&&n| n <= max_fast) {
        plan.push((
            "ac1",
            n,
            classed_ops,
            Box::new(move || run_classed(Procedure::Proc1, n, classed_ops)),
        ));
        plan.push((
            "ac2",
            n,
            classed_ops,
            Box::new(move || run_classed(Procedure::Proc2, n, classed_ops)),
        ));
        plan.push((
            "ac3_fast",
            n,
            fast_ops,
            Box::new(move || run_fast(n, fast_ops)),
        ));
    }
    plan.push((
        "ac3_exact",
        EXACT_RESIDENT,
        exact_ops,
        Box::new(move || run_exact(EXACT_RESIDENT, exact_ops)),
    ));

    let mut points = Vec::new();
    for (backend, resident, ops, run) in &plan {
        let (mut ns_samples, mut rel_samples) = sample(run.as_ref(), *ops, reps);
        // Under `--check`, a point that looks regressed gets more paired
        // samples folded in before the verdict (see bench_scale).
        if let Some(&(_, _, base)) = committed_points
            .iter()
            .find(|(b, r, _)| b == backend && r == resident)
        {
            for retry in 0..2 {
                if median(&rel_samples) <= base * (1.0 + tol) {
                    break;
                }
                let more = reps.max(1) * (retry + 2);
                eprintln!(
                    "bench_admission: {backend}@{resident} above tolerance, \
                     retrying with {more} reps"
                );
                let (a, b) = sample(run.as_ref(), *ops, more);
                ns_samples.extend(a);
                rel_samples.extend(b);
            }
        }
        let ns_per_admit = median(&ns_samples);
        let admits_per_sec = 1e9 / ns_per_admit;
        let rel_calib = median(&rel_samples);
        println!(
            "  {backend:>9} @ {resident:>9} resident  {ns_per_admit:>12.1} ns/admit  \
             {admits_per_sec:>12.0} admits/s  rel {rel_calib:.3}"
        );
        points.push(Point {
            backend,
            resident: *resident,
            ops: *ops,
            ns_per_admit,
            admits_per_sec,
            rel_calib,
        });
    }

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut artifact = format!(
        "{{\n  \"bench\": \"admission\",\n  \"unix_time_secs\": {stamp},\n  \
         \"quick\": {quick},\n  \"calib_ns\": {calib_ns},\n  \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        artifact.push_str(&format!(
            "    {{\"backend\": \"{}\", \"resident\": {}, \"ops\": {}, \
             \"ns_per_admit\": {:.3}, \"admits_per_sec\": {:.3}, \"rel_calib\": {:.4}}}{}\n",
            p.backend,
            p.resident,
            p.ops,
            p.ns_per_admit,
            p.admits_per_sec,
            p.rel_calib,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    artifact.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("bench_admission: cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let mut path = out.join("BENCH_admission.json");
    // A `--check` run must never clobber the baseline it is judged
    // against: redirect the fresh samples to a sibling artifact when
    // the output path resolves to the committed curve itself.
    if let Some(baseline) = check.as_ref() {
        let same = match (path.canonicalize(), baseline.canonicalize()) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        };
        if same {
            path = out.join("BENCH_admission.check.json");
        }
    }
    if let Err(e) = std::fs::write(&path, &artifact) {
        eprintln!("bench_admission: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("[json] {}", path.display());

    let Some(check_path) = check else { return };
    if matches!(committed, Some(None)) {
        eprintln!("bench_admission: cannot read {}", check_path.display());
        std::process::exit(1);
    }
    let mut failed = false;

    // Guard 1: the headline structural claim, same-run: incremental AC3
    // under 100k resident sessions out-admits the exact enumerator over
    // a 25-session set.
    let fast_100k = points
        .iter()
        .find(|p| p.backend == "ac3_fast" && p.resident == 100_000);
    let exact = points.iter().find(|p| p.backend == "ac3_exact");
    match (fast_100k, exact) {
        (Some(f), Some(e)) => {
            if f.admits_per_sec > e.admits_per_sec {
                println!(
                    "bench_admission: fast@100k {:.0} admits/s beats exact@25-session \
                     {:.2} admits/s ({:.0}×)",
                    f.admits_per_sec,
                    e.admits_per_sec,
                    f.admits_per_sec / e.admits_per_sec
                );
            } else {
                eprintln!(
                    "bench_admission: FAIL fast@100k {:.0} admits/s does not beat \
                     exact@25-session {:.2} admits/s",
                    f.admits_per_sec, e.admits_per_sec
                );
                failed = true;
            }
        }
        _ => {
            eprintln!("bench_admission: FAIL fast@100k / exact points missing from sweep");
            failed = true;
        }
    }

    // Guard 2: no measured point regressed beyond tolerance against the
    // committed curve.
    let mut compared = 0;
    for p in &points {
        let Some(&(_, _, base)) = committed_points
            .iter()
            .find(|(b, r, _)| b == p.backend && *r == p.resident)
        else {
            continue;
        };
        compared += 1;
        let drift = p.rel_calib / base - 1.0;
        if drift > tol {
            eprintln!(
                "bench_admission: FAIL {}@{} regressed {:+.1}% vs committed curve (limit {:.0}%)",
                p.backend,
                p.resident,
                drift * 100.0,
                tol * 100.0
            );
            failed = true;
        } else {
            println!(
                "bench_admission: {}@{} {:+.1}% vs committed curve (limit {:.0}%)",
                p.backend,
                p.resident,
                drift * 100.0,
                tol * 100.0
            );
        }
    }
    if compared == 0 {
        eprintln!(
            "bench_admission: no comparable points in {}",
            check_path.display()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_admission: regression guard passed");
}
