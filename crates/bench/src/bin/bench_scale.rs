//! `bench_scale` — sessions-vs-throughput curve for the million-session
//! hot path.
//!
//! For each session count on a 1k → 1M sweep, registers that many
//! sessions with one Leave-in-Time scheduler and pumps a fixed number of
//! events through a hierarchical-timer-wheel future-event set: pop the
//! next (time, session) event, run the eq. 8–11 arrival math against the
//! struct-of-arrays session columns, re-arm the session. That is the
//! executor's per-event skeleton with the O(log n) heap swapped for the
//! O(1) wheel, measured under the cache pressure of the full session
//! table — exactly what grows with scale.
//!
//! The committed artifact `results/BENCH_scale.json` stores, per scale,
//! the ns/event and its calibration-normalized twin (`rel_calib`,
//! ns/event divided by the per-iteration cost of a fixed CPU+memory
//! workload), so the regression guard transfers across machines. Each
//! rep pairs one calibration run with one sweep run back to back, so
//! slow machine drift divides out of every sample; the stored value is
//! the median of the paired ratios, and a failing `--check` retries with
//! more reps (merging samples) before giving a verdict.
//!
//! Usage: `bench_scale [--test|--quick] [--reps N] [--events N]
//! [--max-sessions N] [--out DIR] [--check FILE] [--tol F]`
//!
//! * default: run the sweep and write `BENCH_scale.json` into `--out`
//!   (the workspace `results/` directory);
//! * `--check FILE`: additionally compare each measured scale's
//!   `rel_calib` against the committed curve and fail on a regression
//!   beyond `--tol` (default 15%);
//! * `--max-sessions N`: truncate the sweep (CI's reduced smoke run).

#![forbid(unsafe_code)]

use lit_bench::{calibrate, register_sessions, CALIBRATE_ITERS};
use lit_core::LitDiscipline;
use lit_net::{Discipline, LinkParams, Packet, SessionId};
use lit_sim::{Duration, EventBackend, EventQueue, Time};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The full sweep: decade steps from 1k to 1M live sessions.
const SCALES: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// One measured point of the curve.
struct Point {
    sessions: u32,
    events: u64,
    ns_per_event: f64,
    rel_calib: f64,
}

/// Pump `events` pop → eq. 8–11 → push cycles through a wheel-backed
/// event set with `n` registered sessions; returns wall nanoseconds.
fn run_scale(n: u32, events: u64) -> u128 {
    let mut d = LitDiscipline::new(LinkParams::paper_t1());
    register_sessions(&mut d, n);
    let mut q: EventQueue<u32> = EventQueue::with_backend(EventBackend::Wheel);
    // One outstanding event per session, staggered so the wheel sees the
    // steady interleaving a live network produces rather than one giant
    // same-instant slot.
    for i in 0..n {
        // lit-lint: allow(raw-time-arithmetic, "bench setup: synthetic stagger offsets, bounded by 37 ms at the 1M-session scale")
        q.push(Time::ZERO + Duration::from_ns(u64::from(i) * 37), i);
    }
    let gap = Duration::from_us(50);
    let mut sum = 0u128;
    let t = Instant::now();
    for seq in 0..events {
        let Some((at, sid)) = q.pop() else { break };
        let mut pkt = Packet::new(SessionId(sid), seq, 424, at);
        let dec = d.on_arrival(&mut pkt, at);
        sum ^= dec.key;
        q.push(at + gap, sid);
    }
    let ns = t.elapsed().as_nanos();
    black_box(sum);
    ns
}

/// Median of a small sample (copies and sorts it).
fn median(xs: &[f64]) -> f64 {
    let mut xs = xs.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// `reps` paired (calibration, sweep) samples for one scale: each entry
/// of the returned vectors is one rep's ns/event and its ratio to that
/// same rep's calibration unit.
fn sample_scale(n: u32, events: u64, reps: u32) -> (Vec<f64>, Vec<f64>) {
    let mut ns_per_event = Vec::new();
    let mut rel = Vec::new();
    for _ in 0..reps.max(1) {
        let calib_unit = calibrate() as f64 / CALIBRATE_ITERS as f64;
        let ns = run_scale(n, events) as f64 / events.max(1) as f64;
        ns_per_event.push(ns);
        rel.push(ns / calib_unit);
    }
    (ns_per_event, rel)
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_scale [--test|--quick] [--reps N] [--events N] \
         [--max-sessions N] [--out DIR] [--check FILE] [--tol F]"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut reps = 3u32;
    let mut events = 2_000_000u64;
    let mut max_sessions = u32::MAX;
    let mut out = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut check: Option<PathBuf> = None;
    let mut tol = 0.15f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--test" | "--quick" => quick = true,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--events" => {
                events = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-sessions" => {
                max_sessions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--check" => check = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--tol" => {
                tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--bench" => {} // appended by `cargo bench`
            _ => usage(),
        }
    }
    if let Some(dir) = std::env::var_os("BENCH_OUT") {
        out = PathBuf::from(dir);
    }
    if quick {
        events = events.min(200_000);
        max_sessions = max_sessions.min(10_000);
        reps = reps.min(1);
    }

    // Read the committed curve before the sweep: `--check` may name the
    // same path the fresh artifact is about to overwrite.
    let committed = check.as_ref().map(|p| {
        std::fs::read_to_string(p)
            .ok()
            .and_then(|s| lit_obs::json::Value::parse(&s).ok())
    });
    let committed_points: Vec<(u32, f64)> = committed
        .as_ref()
        .and_then(|v| v.as_ref())
        .and_then(|v| v.get("points"))
        .and_then(|p| p.as_array())
        .map(|arr| {
            arr.iter()
                .filter_map(|p| {
                    let sessions = p.get("sessions")?.as_f64()? as u32;
                    let rel = p.get("rel_calib")?.as_f64()?;
                    Some((sessions, rel))
                })
                .collect()
        })
        .unwrap_or_default();

    let calib_ns = calibrate();
    println!(
        "bench_scale: calibration {:.1} ms ({:.2} ns/iter), \
         {events} events/scale, {reps} reps",
        calib_ns as f64 / 1e6,
        calib_ns as f64 / CALIBRATE_ITERS as f64
    );

    let mut points = Vec::new();
    for &n in SCALES.iter().filter(|&&n| n <= max_sessions) {
        let (mut ns_samples, mut rel_samples) = sample_scale(n, events, reps);
        // Under `--check`, a scale that looks regressed gets more paired
        // samples folded in before the verdict: shared runners have slow
        // phases, and the median tightens as the sample grows. A genuine
        // regression survives every retry.
        if let Some(&(_, base)) = committed_points.iter().find(|(s, _)| *s == n) {
            for retry in 0..2 {
                if median(&rel_samples) <= base * (1.0 + tol) {
                    break;
                }
                let more = reps.max(1) * (retry + 2);
                eprintln!("bench_scale: {n} sessions above tolerance, retrying with {more} reps");
                let (a, b) = sample_scale(n, events, more);
                ns_samples.extend(a);
                rel_samples.extend(b);
            }
        }
        let ns_per_event = median(&ns_samples);
        let rel_calib = median(&rel_samples);
        println!("  {n:>9} sessions  {ns_per_event:>7.1} ns/event  rel {rel_calib:.3}");
        points.push(Point {
            sessions: n,
            events,
            ns_per_event,
            rel_calib,
        });
    }

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut artifact = format!(
        "{{\n  \"bench\": \"scale\",\n  \"unix_time_secs\": {stamp},\n  \
         \"quick\": {quick},\n  \"calib_ns\": {calib_ns},\n  \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        artifact.push_str(&format!(
            "    {{\"sessions\": {}, \"events\": {}, \"ns_per_event\": {:.3}, \
             \"rel_calib\": {:.4}}}{}\n",
            p.sessions,
            p.events,
            p.ns_per_event,
            p.rel_calib,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    artifact.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("bench_scale: cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let path = out.join("BENCH_scale.json");
    if let Err(e) = std::fs::write(&path, &artifact) {
        eprintln!("bench_scale: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("[json] {}", path.display());

    let Some(check_path) = check else { return };
    if matches!(committed, Some(None)) {
        eprintln!("bench_scale: cannot read {}", check_path.display());
        std::process::exit(1);
    }
    let mut failed = false;
    let mut compared = 0;
    for p in &points {
        let Some(&(_, base)) = committed_points.iter().find(|(s, _)| *s == p.sessions) else {
            continue;
        };
        compared += 1;
        let drift = p.rel_calib / base - 1.0;
        if drift > tol {
            eprintln!(
                "bench_scale: FAIL {} sessions regressed {:+.1}% vs committed curve (limit {:.0}%)",
                p.sessions,
                drift * 100.0,
                tol * 100.0
            );
            failed = true;
        } else {
            println!(
                "bench_scale: {} sessions {:+.1}% vs committed curve (limit {:.0}%)",
                p.sessions,
                drift * 100.0,
                tol * 100.0
            );
        }
    }
    if compared == 0 {
        eprintln!(
            "bench_scale: no comparable scales in {}",
            check_path.display()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_scale: regression guard passed");
}
