//! `bench_scale` — sessions-vs-throughput curve for the million-session
//! hot path, plus the shards-vs-throughput curve for the per-core
//! sharded executor.
//!
//! **Scale sweep.** For each session count on a 1k → 1M sweep, registers
//! that many sessions with one Leave-in-Time scheduler and pumps a fixed
//! number of events through a hierarchical-timer-wheel future-event set:
//! pop the next (time, session) event, run the eq. 8–11 arrival math
//! against the struct-of-arrays session columns, re-arm the session.
//! That is the executor's per-event skeleton with the O(log n) heap
//! swapped for the O(1) wheel, measured under the cache pressure of the
//! full session table — exactly what grows with scale.
//!
//! **Shard sweep.** Builds the 32-node fat tandem as a real `Network`
//! at shard counts 1/2/4/8 (1 = the scalar engine, ≥2 = the
//! lookahead-windowed sharded engine, 4-node chains per shard at 8) and
//! measures aggregate events/sec over a fixed horizon. The artifact
//! records `cores` (`available_parallelism`) next to the curve because
//! the speedup column is only meaningful relative to it: on a 1-core
//! runner the sharded rows measure pure engine overhead, not
//! parallelism.
//!
//! **Statistics.** Each point is min-of-k across `--reps` paired
//! (calibration, sweep) samples — the minimum is the standard noise
//! floor estimator on shared runners, and unlike the median it cannot be
//! dragged non-monotonic by one slow rep landing on one scale. The 95%
//! confidence interval of the sample mean (`ci95_ns`, half-width) is
//! stored alongside so the artifact shows how noisy the run was.
//! `rel_calib` (min ns/event divided by that same rep's calibration
//! unit) remains the machine-portable value the regression guard
//! compares.
//!
//! Usage: `bench_scale [--test|--quick] [--reps N] [--events N]
//! [--max-sessions N] [--out DIR] [--check FILE] [--tol F]
//! [--shard-guard]`
//!
//! * default: run both sweeps and write `BENCH_scale.json` into `--out`
//!   (the workspace `results/` directory);
//! * `--check FILE`: additionally compare each measured scale's
//!   `rel_calib` against the committed curve and fail on a regression
//!   beyond `--tol` (default 15%);
//! * `--max-sessions N`: truncate the scale sweep (`0` skips it — CI's
//!   shard-guard-only smoke run);
//! * `--shard-guard`: fail unless the highest shard count clears a
//!   core-count-aware speedup floor over one shard —
//!   `min(2.0, 0.75·min(8, cores))` — skipped with a notice when the
//!   runner has fewer than 2 cores.

#![forbid(unsafe_code)]

use lit_bench::{calibrate, register_sessions, CALIBRATE_ITERS};
use lit_core::LitDiscipline;
use lit_net::{
    Discipline, LinkParams, NetworkBuilder, Packet, SessionId, SessionSpec, StatsConfig,
};
use lit_sim::{Duration, EventBackend, EventQueue, Time};
use lit_traffic::DeterministicSource;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The full sweep: decade steps from 1k to 1M live sessions.
const SCALES: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Shard counts for the network sweep; 1 is the scalar engine.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Nodes in the sharded fat tandem: 8 shards own 4-node chains.
const SHARD_NODES: usize = 32;

/// One measured point of the sessions curve.
struct Point {
    sessions: u32,
    events: u64,
    ns_per_event: f64,
    ci95_ns: f64,
    rel_calib: f64,
    samples: usize,
}

/// One measured point of the shards curve.
struct ShardPoint {
    shards: usize,
    events: u64,
    ns_per_event: f64,
    ci95_ns: f64,
    events_per_sec: f64,
    speedup: f64,
}

/// Pump `events` pop → eq. 8–11 → push cycles through a wheel-backed
/// event set with `n` registered sessions; returns wall nanoseconds.
fn run_scale(n: u32, events: u64) -> u128 {
    let mut d = LitDiscipline::new(LinkParams::paper_t1());
    register_sessions(&mut d, n);
    let mut q: EventQueue<u32> = EventQueue::with_backend(EventBackend::Wheel);
    // One outstanding event per session, staggered so the wheel sees the
    // steady interleaving a live network produces rather than one giant
    // same-instant slot.
    for i in 0..n {
        // lit-lint: allow(raw-time-arithmetic, "bench setup: synthetic stagger offsets, bounded by 37 ms at the 1M-session scale")
        q.push(Time::ZERO + Duration::from_ns(u64::from(i) * 37), i);
    }
    let gap = Duration::from_us(50);
    let mut sum = 0u128;
    let t = Instant::now();
    for seq in 0..events {
        let Some((at, sid)) = q.pop() else { break };
        let mut pkt = Packet::new(SessionId(sid), seq, 424, at);
        let dec = d.on_arrival(&mut pkt, at);
        sum ^= dec.key;
        q.push(at + gap, sid);
    }
    let ns = t.elapsed().as_nanos();
    black_box(sum);
    ns
}

/// Build the 32-node fat tandem at `shards` shards and run it to
/// `horizon`; returns (wall nanoseconds of `run_until`, events
/// processed). Topology mirrors `tests/shard_determinism.rs`: sources
/// staggered so results are shard-count-invariant (pinned there, timed
/// here).
fn run_sharded(shards: usize, horizon: Time) -> (u128, u64) {
    let mut b = NetworkBuilder::new()
        .seed(42)
        .shards(shards)
        .stats(StatsConfig::default());
    let nodes = b.tandem(SHARD_NODES, LinkParams::paper_t1());
    for i in 0..12u64 {
        b.add_session(
            SessionSpec::atm(SessionId(0), 32_000).with_jitter_control(),
            &nodes,
            Box::new(
                DeterministicSource::new(Duration::from_us(13_250), 424)
                    // lit-lint: allow(raw-time-arithmetic, "bench setup: stagger offsets bounded by 12·37 ns")
                    .with_offset(Duration::from_ns(1 + i * 37)),
            ),
        );
    }
    let mut net = b.build(&|l| Box::new(LitDiscipline::new(*l)) as _);
    let t = Instant::now();
    net.run_until(horizon);
    let ns = t.elapsed().as_nanos();
    (ns, net.event_count())
}

/// Minimum of a sample; NaN when empty.
fn min_of(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Half-width of the 95% confidence interval of the sample mean
/// (normal approximation, sample standard deviation). Zero for fewer
/// than two samples.
fn ci95_half_width(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    1.96 * (var / n as f64).sqrt()
}

/// `reps` paired (calibration, sweep) samples for one scale: each entry
/// of the returned vectors is one rep's ns/event and its ratio to that
/// same rep's calibration unit.
fn sample_scale(n: u32, events: u64, reps: u32) -> (Vec<f64>, Vec<f64>) {
    let mut ns_per_event = Vec::new();
    let mut rel = Vec::new();
    for _ in 0..reps.max(1) {
        let calib_unit = calibrate() as f64 / CALIBRATE_ITERS as f64;
        let ns = run_scale(n, events) as f64 / events.max(1) as f64;
        ns_per_event.push(ns);
        rel.push(ns / calib_unit);
    }
    (ns_per_event, rel)
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_scale [--test|--quick] [--reps N] [--events N] \
         [--max-sessions N] [--out DIR] [--check FILE] [--tol F] [--shard-guard]"
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut reps = 3u32;
    let mut events = 2_000_000u64;
    let mut max_sessions = u32::MAX;
    let mut out = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut check: Option<PathBuf> = None;
    let mut tol = 0.15f64;
    let mut shard_guard = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--test" | "--quick" => quick = true,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--events" => {
                events = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-sessions" => {
                max_sessions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--check" => check = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--tol" => {
                tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--shard-guard" => shard_guard = true,
            "--bench" => {} // appended by `cargo bench`
            _ => usage(),
        }
    }
    if let Some(dir) = std::env::var_os("BENCH_OUT") {
        out = PathBuf::from(dir);
    }
    let mut shard_horizon = Time::from_ms(2_000);
    if quick {
        events = events.min(200_000);
        max_sessions = max_sessions.min(10_000);
        reps = reps.min(2);
        shard_horizon = Time::from_ms(300);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Read the committed curve before the sweep: `--check` may name the
    // same path the fresh artifact is about to overwrite.
    let committed = check.as_ref().map(|p| {
        std::fs::read_to_string(p)
            .ok()
            .and_then(|s| lit_obs::json::Value::parse(&s).ok())
    });
    let committed_points: Vec<(u32, f64)> = committed
        .as_ref()
        .and_then(|v| v.as_ref())
        .and_then(|v| v.get("points"))
        .and_then(|p| p.as_array())
        .map(|arr| {
            arr.iter()
                .filter_map(|p| {
                    let sessions = p.get("sessions")?.as_f64()? as u32;
                    let rel = p.get("rel_calib")?.as_f64()?;
                    Some((sessions, rel))
                })
                .collect()
        })
        .unwrap_or_default();

    let calib_ns = calibrate();
    println!(
        "bench_scale: calibration {:.1} ms ({:.2} ns/iter), \
         {events} events/scale, {reps} reps, {cores} cores",
        calib_ns as f64 / 1e6,
        calib_ns as f64 / CALIBRATE_ITERS as f64
    );

    let mut points = Vec::new();
    for &n in SCALES.iter().filter(|&&n| n <= max_sessions) {
        let (mut ns_samples, mut rel_samples) = sample_scale(n, events, reps);
        // Under `--check`, a scale that looks regressed gets more paired
        // samples folded in before the verdict: shared runners have slow
        // phases, and the floor tightens as the sample grows. A genuine
        // regression survives every retry.
        if let Some(&(_, base)) = committed_points.iter().find(|(s, _)| *s == n) {
            for retry in 0..2 {
                if min_of(&rel_samples) <= base * (1.0 + tol) {
                    break;
                }
                let more = reps.max(1) * (retry + 2);
                eprintln!("bench_scale: {n} sessions above tolerance, retrying with {more} reps");
                let (a, b) = sample_scale(n, events, more);
                ns_samples.extend(a);
                rel_samples.extend(b);
            }
        }
        let ns_per_event = min_of(&ns_samples);
        let ci95_ns = ci95_half_width(&ns_samples);
        let rel_calib = min_of(&rel_samples);
        println!(
            "  {n:>9} sessions  {ns_per_event:>7.1} ns/event  ±{ci95_ns:.1}  rel {rel_calib:.3}"
        );
        points.push(Point {
            sessions: n,
            events,
            ns_per_event,
            ci95_ns,
            rel_calib,
            samples: ns_samples.len(),
        });
    }

    let mut shard_points: Vec<ShardPoint> = Vec::new();
    for &s in &SHARD_COUNTS {
        let mut ns_samples = Vec::new();
        let mut ev = 0u64;
        for _ in 0..reps.max(1) {
            let (wall, n_ev) = run_sharded(s, shard_horizon);
            ev = n_ev;
            ns_samples.push(wall as f64 / n_ev.max(1) as f64);
        }
        let ns_per_event = min_of(&ns_samples);
        let ci95_ns = ci95_half_width(&ns_samples);
        let speedup = shard_points
            .first()
            .map_or(1.0, |base| base.ns_per_event / ns_per_event);
        println!(
            "  {s:>9} shards    {ns_per_event:>7.1} ns/event  ±{ci95_ns:.1}  \
             {:.2} Mev/s  speedup {speedup:.2}x",
            1e3 / ns_per_event
        );
        shard_points.push(ShardPoint {
            shards: s,
            events: ev,
            ns_per_event,
            ci95_ns,
            events_per_sec: 1e9 / ns_per_event,
            speedup,
        });
    }

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut artifact = format!(
        "{{\n  \"bench\": \"scale\",\n  \"unix_time_secs\": {stamp},\n  \
         \"quick\": {quick},\n  \"calib_ns\": {calib_ns},\n  \"cores\": {cores},\n  \
         \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        artifact.push_str(&format!(
            "    {{\"sessions\": {}, \"events\": {}, \"ns_per_event\": {:.3}, \
             \"ci95_ns\": {:.3}, \"rel_calib\": {:.4}, \"samples\": {}}}{}\n",
            p.sessions,
            p.events,
            p.ns_per_event,
            p.ci95_ns,
            p.rel_calib,
            p.samples,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    artifact.push_str("  ],\n  \"shards\": [\n");
    for (i, p) in shard_points.iter().enumerate() {
        artifact.push_str(&format!(
            "    {{\"shards\": {}, \"events\": {}, \"ns_per_event\": {:.3}, \
             \"ci95_ns\": {:.3}, \"events_per_sec\": {:.0}, \"speedup\": {:.3}}}{}\n",
            p.shards,
            p.events,
            p.ns_per_event,
            p.ci95_ns,
            p.events_per_sec,
            p.speedup,
            if i + 1 < shard_points.len() { "," } else { "" }
        ));
    }
    artifact.push_str("  ]\n}\n");
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("bench_scale: cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let path = out.join("BENCH_scale.json");
    if let Err(e) = std::fs::write(&path, &artifact) {
        eprintln!("bench_scale: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("[json] {}", path.display());

    let mut failed = false;

    if shard_guard {
        // The speedup floor scales with the cores actually present:
        // 0.75·cores up to the 8-shard sweep ceiling, capped at the 2×
        // the acceptance bar asks of a many-core machine. Below 2 cores
        // there is no parallelism to measure — skip with a notice so
        // 1-core CI runners stay honest rather than red.
        if cores < 2 {
            println!(
                "bench_scale: shard guard skipped ({cores} core(s) — \
                 no parallelism to measure)"
            );
        } else {
            let floor = (0.75 * cores.min(8) as f64).min(2.0);
            let top = shard_points.last().expect("SHARD_COUNTS is non-empty");
            if top.speedup < floor {
                eprintln!(
                    "bench_scale: FAIL {} shards speedup {:.2}x below floor {:.2}x ({cores} cores)",
                    top.shards, top.speedup, floor
                );
                failed = true;
            } else {
                println!(
                    "bench_scale: shard guard passed ({} shards {:.2}x >= {:.2}x)",
                    top.shards, top.speedup, floor
                );
            }
        }
    }

    if let Some(check_path) = check {
        if matches!(committed, Some(None)) {
            eprintln!("bench_scale: cannot read {}", check_path.display());
            std::process::exit(1);
        }
        let mut compared = 0;
        for p in &points {
            let Some(&(_, base)) = committed_points.iter().find(|(s, _)| *s == p.sessions) else {
                continue;
            };
            compared += 1;
            let drift = p.rel_calib / base - 1.0;
            if drift > tol {
                eprintln!(
                    "bench_scale: FAIL {} sessions regressed {:+.1}% vs committed curve (limit {:.0}%)",
                    p.sessions,
                    drift * 100.0,
                    tol * 100.0
                );
                failed = true;
            } else {
                println!(
                    "bench_scale: {} sessions {:+.1}% vs committed curve (limit {:.0}%)",
                    p.sessions,
                    drift * 100.0,
                    tol * 100.0
                );
            }
        }
        if compared == 0 && max_sessions > 0 {
            eprintln!(
                "bench_scale: no comparable scales in {}",
                check_path.display()
            );
            failed = true;
        }
        if !failed {
            println!("bench_scale: regression guard passed");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
