//! Differential fuzzer CLI — see `lit_repro::fuzz`.
//!
//! ```text
//! fuzz_diff [--cases N] [--seed S] [--max-seconds T] [--out DIR]
//! ```
//!
//! Runs `N` random scenarios (default 500) from campaign seed `S`
//! (default 1), each compared three ways: Leave-in-Time heap vs calendar
//! event backend, and Leave-in-Time vs VirtualClock in the degenerate
//! regime where the paper proves they coincide — all under the counting
//! conformance oracle. Stops early after `--max-seconds` of wall clock
//! (for CI smoke runs). Minimized failures land in `DIR` (default
//! `results/diff_failures`) as replayable `.scn` files; exits nonzero if
//! any case failed.

#![forbid(unsafe_code)]

use lit_repro::fuzz;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: fuzz_diff [--cases N] [--seed S] [--max-seconds T] [--out DIR]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cases = 500u64;
    let mut seed = 1u64;
    let mut max_seconds = None;
    let mut out = PathBuf::from("results/diff_failures");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--cases" => cases = num(&mut it),
            "--seed" => seed = num(&mut it),
            "--max-seconds" => max_seconds = Some(std::time::Duration::from_secs(num(&mut it))),
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    eprintln!(
        "fuzz_diff: {cases} case(s), campaign seed {seed}, failures to {}",
        out.display()
    );
    let report = fuzz::campaign(seed, cases, max_seconds, &out);
    if report.failures.is_empty() {
        eprintln!("fuzz_diff: {} case(s), no divergences", report.cases);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fuzz_diff: {} case(s), {} FAILURE(S):",
            report.cases,
            report.failures.len()
        );
        for (seed, why, path) in &report.failures {
            eprintln!("  seed {seed:#018x}: {why} -> {}", path.display());
        }
        ExitCode::FAILURE
    }
}
