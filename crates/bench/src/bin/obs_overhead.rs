//! `obs_overhead` — the observability layer's overhead guard.
//!
//! Runs one ~10⁶-event Leave-in-Time scenario three ways — probes off,
//! metrics-only probe, metrics + trace probe — and reports wall time per
//! simulator event for each arm. Two guards:
//!
//! * **within-run**: the probed arms may cost at most `--tol-on`
//!   (default 10%) over the probes-off arm of the *same* run;
//! * **cross-run** (only with `--baseline FILE`): the probes-off arm,
//!   normalized by a fixed pure-CPU calibration loop to absorb machine
//!   speed differences, may regress at most `--tol-off` (default 2%)
//!   against the committed baseline.
//!
//! `--write-baseline` refreshes the committed baseline;
//! every invocation writes `results/BENCH_obs_overhead.json`.
//!
//! Usage: `obs_overhead [--test|--quick] [--reps N] [--out DIR]
//! [--baseline FILE] [--write-baseline] [--tol-off F] [--tol-on F]`

#![forbid(unsafe_code)]

use lit_net::{ObsProbe, OracleMode};
use lit_repro::scenario::{RunOptions, Scenario};
use lit_sim::Duration;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The paper's Figure 8 CROSS shape — two five-hop voice sessions
/// against Poisson cross traffic near saturation on every link. 30
/// simulated seconds push ~10⁶ events through the future-event set with
/// realistically deep queues (an idle drip would understate the
/// probes-off baseline and overstate the relative probe cost).
const SCENARIO: &str = "\
nodes 5 rate=1536000 prop=1ms lmax=424
discipline lit
seed 11
session route=0..4 rate=32000 source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..4 rate=32000 jc source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..0 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=1..1 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=2..2 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=3..3 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=4..4 rate=1472000 source=poisson(gap=0.28804ms,len=424)
run 30s
";

/// Fixed pure-CPU workload whose wall time tracks single-core speed; the
/// probes-off time divided by this is the machine-independent number the
/// committed baseline stores.
fn calibrate() -> u128 {
    // Mixed ALU + memory reference load: random read-modify-writes over
    // an L2-sized buffer, roughly the cache behavior of the simulator's
    // heap churn. A pure-ALU spin tracks frequency scaling but not
    // memory contention, and the off/calib ratio then drifts several
    // percent between contention phases on shared runners.
    const WORDS: usize = 1 << 16; // 512 KiB
    let mut rng = lit_sim::SimRng::seed_from(3);
    let mut buf = vec![0u64; WORDS];
    let t = Instant::now();
    for _ in 0..10_000_000u64 {
        let r = rng.next_u64();
        let idx = (r as usize) & (WORDS - 1);
        buf[idx] = buf[idx].wrapping_add(r);
    }
    black_box(&buf);
    t.elapsed().as_nanos()
}

/// Measured arm times and drift-cancelled overhead ratios.
struct ArmTimes {
    /// Best wall time per arm (off, metrics, trace), nanoseconds.
    best: [u128; 3],
    /// Minimum within-rep `arm / off` ratio for metrics and trace: the
    /// two runs of one rep execute back to back, so common-mode machine
    /// drift divides out and the minimum is the quietest paired sample.
    overhead: [f64; 2],
    /// Minimum paired `off / calibration` ratio — the machine-speed
    /// normalized probes-off cost the committed baseline stores.
    off_rel: f64,
    /// Best calibration time, nanoseconds.
    calib_ns: u128,
    /// Future-event-set events per run (probe-independent).
    events: u64,
}

/// Run the three arms — probes off, metrics-only, metrics + trace —
/// with every probed run sandwiched directly after a fresh probes-off
/// run (`off, metrics, off, trace` per rep), so each ratio pairs two
/// back-to-back runs and slow drift (thermal throttling, noisy
/// neighbours) divides out.
fn time_arms(sc: &Scenario, reps: u32, trace_cap: usize) -> ArmTimes {
    let opts = RunOptions {
        backend: None,
        stats: None,
        oracle: OracleMode::Off,
    };
    let mut best = [u128::MAX; 3];
    let mut overhead = [f64::INFINITY; 2];
    let mut events = 0;
    let mut timed = |probe: Option<Box<dyn lit_net::Probe>>| -> u128 {
        let t = Instant::now();
        let (net, _) = sc.run_probed(&opts, probe);
        let ns = t.elapsed().as_nanos();
        events = net.event_count();
        black_box(&net);
        ns
    };
    let mut off_rel = f64::INFINITY;
    let mut calib_best = u128::MAX;
    for _ in 0..reps.max(1) {
        // Pair a calibration sample with the first off run of the rep so
        // the cross-run baseline ratio is drift-cancelled the same way
        // the within-run overhead ratios are.
        let calib = calibrate();
        calib_best = calib_best.min(calib);
        for probed in 0..2 {
            let off = timed(None);
            let on = timed(Some(Box::new(ObsProbe::new(if probed == 0 {
                0
            } else {
                trace_cap
            }))));
            best[0] = best[0].min(off);
            best[probed + 1] = best[probed + 1].min(on);
            overhead[probed] = overhead[probed].min(on as f64 / off.max(1) as f64 - 1.0);
            if probed == 0 {
                off_rel = off_rel.min(off as f64 / calib.max(1) as f64);
            }
        }
    }
    ArmTimes {
        best,
        overhead,
        off_rel,
        calib_ns: calib_best,
        events,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_overhead [--test|--quick] [--reps N] [--out DIR] \
         [--baseline FILE] [--write-baseline] [--tol-off F] [--tol-on F]"
    );
    std::process::exit(2);
}

/// Pull `"key": <number>` out of a parsed baseline file.
fn field(v: &lit_obs::json::Value, key: &str) -> Option<f64> {
    v.get(key).and_then(|x| x.as_f64())
}

fn main() {
    let mut quick = false;
    let mut reps = 7u32;
    let mut out = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut tol_off = 0.02f64;
    let mut tol_on = 0.10f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--test" | "--quick" => quick = true,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--baseline" => baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--write-baseline" => write_baseline = true,
            "--tol-off" => {
                tol_off = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--tol-on" => {
                tol_on = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--bench" => {} // appended by `cargo bench`
            _ => usage(),
        }
    }
    if std::env::var_os("BENCH_OUT").is_some() {
        out = PathBuf::from(std::env::var_os("BENCH_OUT").unwrap());
    }

    let mut sc = Scenario::parse(SCENARIO).expect("built-in scenario parses");
    if quick {
        sc = sc.with_horizon(Duration::from_ms(4_000));
        reps = reps.min(2);
    }

    let base_rel = baseline.as_ref().and_then(|p| {
        std::fs::read_to_string(p)
            .ok()
            .and_then(|s| lit_obs::json::Value::parse(&s).ok())
            .and_then(|v| field(&v, "off_rel_calib"))
    });
    let mut t = time_arms(&sc, reps, lit_obs::hub::DEFAULT_TRACE_CAP);
    let over_base = |t: &ArmTimes| base_rel.is_some_and(|b| t.off_rel > b * (1.0 + tol_off));
    let mut retry_reps = reps * 2;
    for _ in 0..3 {
        if !(t.overhead.iter().any(|&o| o > tol_on) || over_base(&t)) {
            break;
        }
        // Shared runners have sustained slow phases; before failing the
        // guard, fold in longer retries and keep the quietest pairs. A
        // persistent regression still fails: no amount of retrying makes
        // a genuinely slower binary match the baseline's quiet phase.
        eprintln!("obs_overhead: overhead above tolerance, retrying with {retry_reps} reps");
        let r = time_arms(&sc, retry_reps, lit_obs::hub::DEFAULT_TRACE_CAP);
        for arm in 0..3 {
            t.best[arm] = t.best[arm].min(r.best[arm]);
        }
        for probed in 0..2 {
            t.overhead[probed] = t.overhead[probed].min(r.overhead[probed]);
        }
        t.off_rel = t.off_rel.min(r.off_rel);
        t.calib_ns = t.calib_ns.min(r.calib_ns);
        retry_reps = (retry_reps * 3 / 2).min(reps * 4);
    }
    let ([off_ns, metrics_ns, trace_ns], events) = (t.best, t.events);
    let [metrics_over, trace_over] = t.overhead;
    let (off_rel, calib_ns) = (t.off_rel, t.calib_ns);

    let per_event = off_ns as f64 / events.max(1) as f64;
    println!(
        "obs_overhead: {events} events, calib {:.1} ms",
        calib_ns as f64 / 1e6
    );
    println!(
        "  off     {:>9.1} ms  ({per_event:.1} ns/event, {off_rel:.4} of calib)",
        off_ns as f64 / 1e6
    );
    println!(
        "  metrics {:>9.1} ms  ({:+.2}% vs off)",
        metrics_ns as f64 / 1e6,
        metrics_over * 100.0
    );
    println!(
        "  trace   {:>9.1} ms  ({:+.2}% vs off)",
        trace_ns as f64 / 1e6,
        trace_over * 100.0
    );

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("obs_overhead: cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let artifact = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"unix_time_secs\": {stamp},\n  \
         \"events\": {events},\n  \"calib_ns\": {calib_ns},\n  \"off_ns\": {off_ns},\n  \
         \"metrics_ns\": {metrics_ns},\n  \"trace_ns\": {trace_ns},\n  \
         \"off_ns_per_event\": {per_event:.3},\n  \"off_rel_calib\": {off_rel:.6},\n  \
         \"metrics_overhead\": {metrics_over:.6},\n  \"trace_overhead\": {trace_over:.6}\n}}\n"
    );
    let path = out.join("BENCH_obs_overhead.json");
    if let Err(e) = std::fs::write(&path, &artifact) {
        eprintln!("obs_overhead: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("[json] {}", path.display());

    if write_baseline {
        let base = format!(
            "{{\n  \"bench\": \"obs_overhead_baseline\",\n  \"unix_time_secs\": {stamp},\n  \
             \"events\": {events},\n  \"off_rel_calib\": {off_rel:.6},\n  \
             \"off_ns_per_event\": {per_event:.3}\n}}\n"
        );
        let bpath = baseline
            .clone()
            .unwrap_or_else(|| out.join("BENCH_obs_baseline.json"));
        if let Err(e) = std::fs::write(&bpath, base) {
            eprintln!("obs_overhead: cannot write {}: {e}", bpath.display());
            std::process::exit(1);
        }
        println!("[baseline] {}", bpath.display());
        return;
    }

    let mut failed = false;
    if metrics_over > tol_on || trace_over > tol_on {
        eprintln!(
            "obs_overhead: FAIL probes-on overhead (metrics {:+.2}%, trace {:+.2}%) exceeds {:.0}%",
            metrics_over * 100.0,
            trace_over * 100.0,
            tol_on * 100.0
        );
        failed = true;
    }
    if let Some(bpath) = baseline {
        match base_rel {
            Some(base) => {
                if off_rel > base * (1.0 + tol_off) {
                    eprintln!(
                        "obs_overhead: FAIL probes-off regressed {:+.2}% vs baseline (limit {:.0}%)",
                        (off_rel / base - 1.0) * 100.0,
                        tol_off * 100.0
                    );
                    failed = true;
                } else {
                    println!(
                        "obs_overhead: probes-off {:+.2}% vs baseline (limit {:.0}%)",
                        (off_rel / base - 1.0) * 100.0,
                        tol_off * 100.0
                    );
                }
            }
            None => {
                eprintln!("obs_overhead: cannot read baseline {}", bpath.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("obs_overhead: guards passed");
}
