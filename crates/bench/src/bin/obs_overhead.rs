//! `obs_overhead` — the observability layer's overhead guard.
//!
//! Runs one ~10⁶-event Leave-in-Time scenario three ways — probes off,
//! metrics-only probe, metrics + trace probe — and reports wall time per
//! simulator event for each arm. Each rep is an interleaved burst of
//! `k` back-to-back `(off, on)` pairs per probed arm; one overhead
//! sample is `min-of-k(on) / min-of-k(off) − 1`. The minimum within an
//! arm filters scheduler noise, which only ever adds time; taking it
//! *inside* a short burst keeps the two arms' minima drawn from the
//! same machine conditions, so drift divides out of the ratio. The
//! reported overhead is the **median** of those burst ratios with an
//! order-statistic ~95% confidence interval. (Earlier versions paired
//! single runs — the CI routinely spanned impossible negative
//! overheads — and before that took the minimum *ratio*, which is
//! biased downward: the quietest `on` against an average `off`.)
//!
//! Two guards:
//!
//! * **within-run**: the metrics arm's median overhead may be at most
//!   `--tol-on` (default 15%) over the probes-off arm, the trace arm's at
//!   most `--tol-trace` (default 25%). (The tolerances are wider than the
//!   old 10% because the median does not under-report the way the min
//!   did.)
//! * **cross-run** (only with `--baseline FILE`): the probes-off arm,
//!   normalized by a fixed pure-CPU calibration loop to absorb machine
//!   speed differences, may regress at most `--tol-off` (default 5%)
//!   against the committed baseline (also a median — refresh it with a
//!   generous `--reps` so the stored value is not one contention phase).
//!
//! `--write-baseline` refreshes the committed baseline;
//! every invocation writes `results/BENCH_obs_overhead.json`.
//!
//! Usage: `obs_overhead [--test|--quick] [--reps N] [--min-k K]
//! [--out DIR] [--baseline FILE] [--write-baseline] [--tol-off F]
//! [--tol-on F] [--tol-trace F]`

#![forbid(unsafe_code)]

use lit_bench::calibrate;
use lit_net::{ObsProbe, OracleMode};
use lit_repro::scenario::{RunOptions, Scenario};
use lit_sim::Duration;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The paper's Figure 8 CROSS shape — two five-hop voice sessions
/// against Poisson cross traffic near saturation on every link. 30
/// simulated seconds push ~10⁶ events through the future-event set with
/// realistically deep queues (an idle drip would understate the
/// probes-off baseline and overstate the relative probe cost).
const SCENARIO: &str = "\
nodes 5 rate=1536000 prop=1ms lmax=424
discipline lit
seed 11
session route=0..4 rate=32000 source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..4 rate=32000 jc source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..0 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=1..1 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=2..2 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=3..3 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=4..4 rate=1472000 source=poisson(gap=0.28804ms,len=424)
run 30s
";

/// Raw paired samples from interleaved runs; medians are computed after
/// all reps (including guard retries) are merged.
struct ArmSamples {
    /// Best wall time per arm (off, metrics, trace), nanoseconds.
    best: [u128; 3],
    /// Within-rep paired `arm / off − 1` ratios for metrics and trace:
    /// the two runs of one rep execute back to back, so common-mode
    /// machine drift divides out of each sample.
    overhead: [Vec<f64>; 2],
    /// Paired `off / calibration` ratios — the machine-speed normalized
    /// probes-off cost the committed baseline stores (as a median).
    off_rel: Vec<f64>,
    /// Best calibration time, nanoseconds.
    calib_ns: u128,
    /// Future-event-set events per run (probe-independent).
    events: u64,
}

impl ArmSamples {
    /// Fold another round of samples into this one.
    fn merge(&mut self, other: ArmSamples) {
        for arm in 0..3 {
            self.best[arm] = self.best[arm].min(other.best[arm]);
        }
        for probed in 0..2 {
            self.overhead[probed].extend(&other.overhead[probed]);
        }
        self.off_rel.extend(&other.off_rel);
        self.calib_ns = self.calib_ns.min(other.calib_ns);
    }
}

/// Median of a sample; NaN when empty.
fn median(xs: &[f64]) -> f64 {
    let mut xs = xs.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Order-statistic ~95% confidence interval for the median (normal
/// approximation to the binomial ranks; degenerates to the sample range
/// for very small n).
fn median_ci(xs: &[f64]) -> (f64, f64) {
    let mut xs = xs.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n == 0 {
        return (f64::NAN, f64::NAN);
    }
    let k = (1.96 * (n as f64).sqrt() / 2.0).ceil() as usize;
    let lo = (n / 2).saturating_sub(k);
    let hi = (n / 2 + k).min(n - 1);
    (xs[lo], xs[hi])
}

/// Run the three arms — probes off, metrics-only, metrics + trace.
/// Each rep runs one interleaved burst of `k` back-to-back `(off, on)`
/// pairs per probed arm and contributes a single
/// `min-of-k(on) / min-of-k(off) − 1` overhead sample: the minimum
/// filters scheduler noise (which only ever adds time), and taking both
/// minima inside the same short burst means slow drift (thermal
/// throttling, noisy neighbours) divides out of the ratio.
fn time_arms(sc: &Scenario, reps: u32, k: u32, trace_cap: usize) -> ArmSamples {
    let opts = RunOptions {
        backend: None,
        stats: None,
        oracle: OracleMode::Off,
        batch: false,
        shards: None,
        regulator: None,
    };
    let mut best = [u128::MAX; 3];
    let mut overhead: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut events = 0;
    let mut timed = |probe: Option<Box<dyn lit_net::Probe>>| -> u128 {
        let t = Instant::now();
        let (net, _) = sc.run_probed(&opts, probe);
        let ns = t.elapsed().as_nanos();
        events = net.event_count();
        black_box(&net);
        ns
    };
    let mut off_rel = Vec::new();
    let mut calib_best = u128::MAX;
    for _ in 0..reps.max(1) {
        // Pair a calibration sample with the off burst of the rep so
        // the cross-run baseline ratio is drift-cancelled the same way
        // the within-run overhead ratios are.
        let calib = calibrate();
        calib_best = calib_best.min(calib);
        for probed in 0..2 {
            let mut off_min = u128::MAX;
            let mut on_min = u128::MAX;
            for _ in 0..k.max(1) {
                off_min = off_min.min(timed(None));
                on_min = on_min.min(timed(Some(Box::new(ObsProbe::new(if probed == 0 {
                    0
                } else {
                    trace_cap
                })))));
            }
            best[0] = best[0].min(off_min);
            best[probed + 1] = best[probed + 1].min(on_min);
            overhead[probed].push(on_min as f64 / off_min.max(1) as f64 - 1.0);
            if probed == 0 {
                off_rel.push(off_min as f64 / calib.max(1) as f64);
            }
        }
    }
    ArmSamples {
        best,
        overhead,
        off_rel,
        calib_ns: calib_best,
        events,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_overhead [--test|--quick] [--reps N] [--min-k K] \
         [--out DIR] [--baseline FILE] [--write-baseline] [--tol-off F] \
         [--tol-on F] [--tol-trace F]"
    );
    std::process::exit(2);
}

/// Pull `"key": <number>` out of a parsed baseline file.
fn field(v: &lit_obs::json::Value, key: &str) -> Option<f64> {
    v.get(key).and_then(|x| x.as_f64())
}

fn main() {
    let mut quick = false;
    let mut reps = 7u32;
    let mut min_k = 3u32;
    let mut out = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut tol_off = 0.05f64;
    let mut tol_on = 0.15f64;
    let mut tol_trace = 0.25f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--test" | "--quick" => quick = true,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--min-k" => {
                min_k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--baseline" => baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--write-baseline" => write_baseline = true,
            "--tol-off" => {
                tol_off = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--tol-on" => {
                tol_on = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--tol-trace" => {
                tol_trace = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--bench" => {} // appended by `cargo bench`
            _ => usage(),
        }
    }
    if std::env::var_os("BENCH_OUT").is_some() {
        out = PathBuf::from(std::env::var_os("BENCH_OUT").unwrap());
    }

    let mut sc = Scenario::parse(SCENARIO).expect("built-in scenario parses");
    if quick {
        sc = sc.with_horizon(Duration::from_ms(4_000));
        reps = reps.min(2);
        min_k = min_k.min(2);
    }

    let base_rel = baseline.as_ref().and_then(|p| {
        std::fs::read_to_string(p)
            .ok()
            .and_then(|s| lit_obs::json::Value::parse(&s).ok())
            .and_then(|v| field(&v, "off_rel_calib"))
    });
    let mut t = time_arms(&sc, reps, min_k, lit_obs::hub::DEFAULT_TRACE_CAP);
    let over_tol = |t: &ArmSamples| {
        median(&t.overhead[0]) > tol_on
            || median(&t.overhead[1]) > tol_trace
            || base_rel.is_some_and(|b| median(&t.off_rel) > b * (1.0 + tol_off))
    };
    let mut retry_reps = reps * 2;
    for _ in 0..3 {
        if !over_tol(&t) {
            break;
        }
        // Shared runners have sustained slow phases; before failing the
        // guard, fold in more paired samples — the median tightens as the
        // sample grows. A persistent regression still fails: more samples
        // of a genuinely slower binary only confirm its median.
        eprintln!("obs_overhead: overhead above tolerance, retrying with {retry_reps} reps");
        t.merge(time_arms(
            &sc,
            retry_reps,
            min_k,
            lit_obs::hub::DEFAULT_TRACE_CAP,
        ));
        retry_reps = (retry_reps * 3 / 2).min(reps * 4);
    }
    let ([off_ns, metrics_ns, trace_ns], events) = (t.best, t.events);
    let metrics_over = median(&t.overhead[0]);
    let trace_over = median(&t.overhead[1]);
    let (metrics_lo, metrics_hi) = median_ci(&t.overhead[0]);
    let (trace_lo, trace_hi) = median_ci(&t.overhead[1]);
    let off_rel = median(&t.off_rel);
    let (off_rel_lo, off_rel_hi) = median_ci(&t.off_rel);
    let calib_ns = t.calib_ns;

    let per_event = off_ns as f64 / events.max(1) as f64;
    println!(
        "obs_overhead: {events} events, calib {:.1} ms, {} min-of-{min_k} burst samples",
        calib_ns as f64 / 1e6,
        t.overhead[0].len()
    );
    println!(
        "  off     {:>9.1} ms  ({per_event:.1} ns/event, {off_rel:.4} of calib, \
         CI [{off_rel_lo:.4}, {off_rel_hi:.4}])",
        off_ns as f64 / 1e6
    );
    println!(
        "  metrics {:>9.1} ms  ({:+.2}% vs off, CI [{:+.2}%, {:+.2}%])",
        metrics_ns as f64 / 1e6,
        metrics_over * 100.0,
        metrics_lo * 100.0,
        metrics_hi * 100.0
    );
    println!(
        "  trace   {:>9.1} ms  ({:+.2}% vs off, CI [{:+.2}%, {:+.2}%])",
        trace_ns as f64 / 1e6,
        trace_over * 100.0,
        trace_lo * 100.0,
        trace_hi * 100.0
    );

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("obs_overhead: cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    let artifact = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"unix_time_secs\": {stamp},\n  \
         \"events\": {events},\n  \"calib_ns\": {calib_ns},\n  \"off_ns\": {off_ns},\n  \
         \"metrics_ns\": {metrics_ns},\n  \"trace_ns\": {trace_ns},\n  \
         \"off_ns_per_event\": {per_event:.3},\n  \"off_rel_calib\": {off_rel:.6},\n  \
         \"off_rel_calib_ci\": [{off_rel_lo:.6}, {off_rel_hi:.6}],\n  \
         \"metrics_overhead\": {metrics_over:.6},\n  \
         \"metrics_overhead_ci\": [{metrics_lo:.6}, {metrics_hi:.6}],\n  \
         \"trace_overhead\": {trace_over:.6},\n  \
         \"trace_overhead_ci\": [{trace_lo:.6}, {trace_hi:.6}]\n}}\n"
    );
    let path = out.join("BENCH_obs_overhead.json");
    if let Err(e) = std::fs::write(&path, &artifact) {
        eprintln!("obs_overhead: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("[json] {}", path.display());

    if write_baseline {
        let base = format!(
            "{{\n  \"bench\": \"obs_overhead_baseline\",\n  \"unix_time_secs\": {stamp},\n  \
             \"events\": {events},\n  \"off_rel_calib\": {off_rel:.6},\n  \
             \"off_ns_per_event\": {per_event:.3}\n}}\n"
        );
        let bpath = baseline
            .clone()
            .unwrap_or_else(|| out.join("BENCH_obs_baseline.json"));
        if let Err(e) = std::fs::write(&bpath, base) {
            eprintln!("obs_overhead: cannot write {}: {e}", bpath.display());
            std::process::exit(1);
        }
        println!("[baseline] {}", bpath.display());
        return;
    }

    let mut failed = false;
    if metrics_over > tol_on || trace_over > tol_trace {
        eprintln!(
            "obs_overhead: FAIL probes-on overhead (metrics {:+.2}% vs limit {:.0}%, \
             trace {:+.2}% vs limit {:.0}%)",
            metrics_over * 100.0,
            tol_on * 100.0,
            trace_over * 100.0,
            tol_trace * 100.0
        );
        failed = true;
    }
    if let Some(bpath) = baseline {
        match base_rel {
            Some(base) => {
                if off_rel > base * (1.0 + tol_off) {
                    eprintln!(
                        "obs_overhead: FAIL probes-off regressed {:+.2}% vs baseline (limit {:.0}%)",
                        (off_rel / base - 1.0) * 100.0,
                        tol_off * 100.0
                    );
                    failed = true;
                } else {
                    println!(
                        "obs_overhead: probes-off {:+.2}% vs baseline (limit {:.0}%)",
                        (off_rel / base - 1.0) * 100.0,
                        tol_off * 100.0
                    );
                }
            }
            None => {
                eprintln!("obs_overhead: cannot read baseline {}", bpath.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("obs_overhead: guards passed");
}
