//! # lit-bench — benchmarks
//!
//! Performance characterization of the implementation (the paper's
//! figures measure *simulated* service quality; these measure the
//! *simulator and scheduler* themselves):
//!
//! * `sched_ops` — per-packet scheduling cost of each discipline;
//! * `event_queue` — future-event-set throughput;
//! * `end_to_end` — whole-network simulation rate (simulated seconds per
//!   wall second) for the paper's MIX/CROSS configurations;
//! * `admission` — AC1/AC2's O(P) tests vs AC3's exponential subset test;
//! * `analysis` — M/D/1 evaluation and histogram cost.
//!
//! The bench targets are plain `harness = false` binaries on the in-repo
//! [`Bencher`] stopwatch (the workspace carries no external crates), so
//! `cargo bench -p lit-bench` runs them all and
//! `cargo bench -p lit-bench -- --test` does one verifying iteration each.
//! Helpers shared by the bench targets live here too.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use lit_net::{DelayAssignment, Discipline, LinkParams, Packet, SessionId, SessionSpec};
use lit_sim::{Duration, Time};
use std::cell::RefCell;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration as WallDuration, Instant, SystemTime, UNIX_EPOCH};

/// Register `n` sessions with rates spread across a T1 link.
pub fn register_sessions(d: &mut dyn Discipline, n: u32) {
    for i in 0..n {
        let rate = 1_536_000 / u64::from(n.max(1)) - u64::from(i % 7) * 8;
        let spec = SessionSpec::atm(SessionId(i), rate.max(8_000));
        d.register_session(&spec, &DelayAssignment::LenOverRate);
    }
}

/// Drive `packets` arrivals/departures round-robin over `sessions`
/// registered sessions; returns a checksum so the work is not optimized
/// away.
pub fn drive_discipline(d: &mut dyn Discipline, sessions: u32, packets: u64) -> u128 {
    let mut sum = 0u128;
    let link = LinkParams::paper_t1();
    for i in 0..packets {
        let sid = SessionId((i % u64::from(sessions)) as u32);
        let now = Time::ZERO + Duration::from_us(50) * i;
        let mut pkt = Packet::new(sid, i / u64::from(sessions) + 1, 424, now);
        let dec = d.on_arrival(&mut pkt, now);
        sum ^= dec.key;
        d.on_departure(&mut pkt, now.max(dec.eligible) + link.lmax_time());
        // lit-lint: allow(checked-clock-ops, "u128 checksum accumulator defeating dead-code elimination; wrap-around is mixing, not clock math")
        sum = sum.wrapping_add(pkt.hold.as_ps() as u128);
    }
    sum
}

/// Drive `batches` same-(session, instant) arrival bursts of size
/// `batch` through the discipline, rotating over `sessions` registered
/// sessions: per burst, either `batch` scalar `on_arrival` calls or one
/// `on_arrival_batch` call. The packet buffer is reused across bursts so
/// the measured cost is the arrival math itself, not allocation. Returns
/// a checksum so the work is not optimized away.
pub fn drive_arrival_batches(
    d: &mut dyn Discipline,
    sessions: u32,
    batches: u64,
    batch: usize,
    batched: bool,
) -> u128 {
    let mut sum = 0u128;
    let mut out: Vec<lit_net::ScheduleDecision> = Vec::with_capacity(batch);
    let mut buf: Vec<Packet> = (0..batch)
        .map(|i| Packet::new(SessionId(0), i as u64 + 1, 424, Time::ZERO))
        .collect();
    for b in 0..batches {
        let sid = SessionId((b % u64::from(sessions)) as u32);
        let now = Time::ZERO + Duration::from_us(50) * b;
        for p in buf.iter_mut() {
            p.session = sid;
        }
        if batched {
            out.clear();
            d.on_arrival_batch(&mut buf, now, &mut out);
            for dec in &out {
                sum ^= dec.key;
            }
        } else {
            for p in buf.iter_mut() {
                let dec = d.on_arrival(p, now);
                sum ^= dec.key;
            }
        }
    }
    sum
}

/// Number of read-modify-write iterations [`calibrate`] performs; divide
/// its return by this for a per-iteration "machine speed unit".
pub const CALIBRATE_ITERS: u64 = 10_000_000;

/// Fixed pure-CPU workload whose wall time tracks single-core speed; a
/// measured time divided by this is a machine-independent number a
/// committed baseline can store. Mixed ALU + memory reference load:
/// random read-modify-writes over an L2-sized buffer, roughly the cache
/// behavior of the simulator's heap churn. A pure-ALU spin tracks
/// frequency scaling but not memory contention, and the measured/calib
/// ratio then drifts several percent between contention phases on shared
/// runners. Returns nanoseconds.
pub fn calibrate() -> u128 {
    const WORDS: usize = 1 << 16; // 512 KiB
    let mut rng = lit_sim::SimRng::seed_from(3);
    let mut buf = vec![0u64; WORDS];
    let t = Instant::now();
    for _ in 0..CALIBRATE_ITERS {
        let r = rng.next_u64();
        let idx = (r as usize) & (WORDS - 1);
        buf[idx] = buf[idx].wrapping_add(r);
    }
    black_box(&buf);
    t.elapsed().as_nanos()
}

/// A minimal wall-clock stopwatch harness for the `harness = false` bench
/// targets: estimates a per-iteration cost, then loops for a fixed time
/// budget and reports mean and best. With `--test` (what CI's smoke run
/// passes) every benchmark executes exactly once, as a compile-and-run
/// check.
pub struct Bencher {
    quick: bool,
    budget: WallDuration,
    results: RefCell<Vec<BenchResult>>,
}

/// One timed measurement, as recorded by [`Bencher::run`] and serialized
/// by [`Bencher::write_json`].
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// The benchmark's name as passed to [`Bencher::run`].
    pub name: String,
    /// Timed iterations (1 in `--test`/`--quick` mode).
    pub iters: u32,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: u128,
    /// Best (minimum) wall time over all iterations, nanoseconds.
    pub best_ns: u128,
}

impl Bencher {
    /// Build from the process arguments: `--test` or `--quick` selects the
    /// single-iteration mode; all other flags (e.g. the `--bench` cargo
    /// appends) are ignored.
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Self::new(quick)
    }

    /// Build directly (tests use this to avoid reading the process args).
    pub fn new(quick: bool) -> Self {
        Bencher {
            quick,
            budget: WallDuration::from_millis(300),
            results: RefCell::new(Vec::new()),
        }
    }

    /// Whether this run is the single-iteration smoke mode.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Time `f`, printing one line `name  iters  mean  best` and recording
    /// the measurement for [`Bencher::write_json`].
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed();
        if self.quick {
            println!("{name:<56} ok ({})", fmt_ns(est.as_nanos()));
            self.results.borrow_mut().push(BenchResult {
                name: name.to_string(),
                iters: 1,
                mean_ns: est.as_nanos(),
                best_ns: est.as_nanos(),
            });
            return;
        }
        let iters = (self.budget.as_nanos() / est.as_nanos().max(1)).clamp(1, 100_000) as u32;
        let mut best = u128::MAX;
        let mut total = 0u128;
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            let e = t.elapsed().as_nanos();
            total += e;
            best = best.min(e);
        }
        println!(
            "{name:<56} {iters:>6} iters  mean {:>10}  best {:>10}",
            fmt_ns(total / u128::from(iters)),
            fmt_ns(best)
        );
        self.results.borrow_mut().push(BenchResult {
            name: name.to_string(),
            iters,
            mean_ns: total / u128::from(iters),
            best_ns: best,
        });
    }

    /// The measurements recorded so far, in run order.
    pub fn results(&self) -> Vec<BenchResult> {
        self.results.borrow().clone()
    }

    /// Serialize every recorded measurement as the tracked-artifact JSON
    /// (`{"bench": ..., "unix_time_secs": ..., "quick": ..., "results": [...]}`).
    pub fn results_json(&self, bench: &str) -> String {
        let stamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut s = format!(
            "{{\n  \"bench\": \"{bench}\",\n  \"unix_time_secs\": {stamp},\n  \"quick\": {},\n  \"results\": [\n",
            self.quick
        );
        let results = self.results.borrow();
        for (i, r) in results.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"mean_ns\": {}, \"best_ns\": {}}}{}\n",
                r.name,
                r.iters,
                r.mean_ns,
                r.best_ns,
                if i + 1 < results.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Write `BENCH_<bench>.json` into `dir`; returns the path.
    pub fn write_json_to(&self, dir: &Path, bench: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{bench}.json"));
        std::fs::write(&path, self.results_json(bench))?;
        Ok(path)
    }

    /// Write the tracked artifact into the workspace's `results/`
    /// directory (override with the `BENCH_OUT` environment variable).
    /// Best-effort: failures go to stderr, never panic a bench run.
    pub fn write_json(&self, bench: &str) {
        let dir = std::env::var_os("BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
            });
        match self.write_json_to(&dir, bench) {
            Ok(path) => println!("[json] {}", path.display()),
            Err(e) => eprintln!("bench {bench}: cannot write artifact: {e}"),
        }
    }
}

impl Default for Bencher {
    fn default() -> Self {
        Self::from_args()
    }
}

/// Nanoseconds in a human unit (ns/µs/ms/s) for the console lines.
fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_artifact_json_parses_with_expected_keys() {
        let b = Bencher::new(true);
        b.run("demo/one", || black_box(1 + 1));
        b.run("demo/two", || black_box(2 + 2));
        let v = lit_obs::json::Value::parse(&b.results_json("demo")).expect("artifact parses");
        assert_eq!(v.get("bench").and_then(|x| x.as_str()), Some("demo"));
        assert!(v.get("unix_time_secs").and_then(|x| x.as_f64()).is_some());
        assert_eq!(v.get("quick").and_then(|x| x.as_bool()), Some(true));
        let results = v
            .get("results")
            .and_then(|r| r.as_array())
            .expect("results array");
        assert_eq!(results.len(), 2);
        for r in results {
            for key in ["name", "iters", "mean_ns", "best_ns"] {
                assert!(r.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn bench_artifact_writes_named_file() {
        let b = Bencher::new(true);
        b.run("demo/one", || black_box(7));
        let dir = std::env::temp_dir().join(format!("lit_bench_json_{}", std::process::id()));
        let path = b.write_json_to(&dir, "demo").expect("write artifact");
        assert!(path.ends_with("BENCH_demo.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        lit_obs::json::Value::parse(&body).expect("written artifact parses");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
