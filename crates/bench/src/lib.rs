//! # lit-bench — benchmarks
//!
//! Performance characterization of the implementation (the paper's
//! figures measure *simulated* service quality; these measure the
//! *simulator and scheduler* themselves):
//!
//! * `sched_ops` — per-packet scheduling cost of each discipline;
//! * `event_queue` — future-event-set throughput;
//! * `end_to_end` — whole-network simulation rate (simulated seconds per
//!   wall second) for the paper's MIX/CROSS configurations;
//! * `admission` — AC1/AC2's O(P) tests vs AC3's exponential subset test;
//! * `analysis` — M/D/1 evaluation and histogram cost.
//!
//! The bench targets are plain `harness = false` binaries on the in-repo
//! [`Bencher`] stopwatch (the workspace carries no external crates), so
//! `cargo bench -p lit-bench` runs them all and
//! `cargo bench -p lit-bench -- --test` does one verifying iteration each.
//! Helpers shared by the bench targets live here too.

#![forbid(unsafe_code)]

use lit_net::{DelayAssignment, Discipline, LinkParams, Packet, SessionId, SessionSpec};
use lit_sim::Time;
use std::hint::black_box;
use std::time::{Duration as WallDuration, Instant};

/// Register `n` sessions with rates spread across a T1 link.
pub fn register_sessions(d: &mut dyn Discipline, n: u32) {
    for i in 0..n {
        let rate = 1_536_000 / u64::from(n.max(1)) - u64::from(i % 7) * 8;
        let spec = SessionSpec::atm(SessionId(i), rate.max(8_000));
        d.register_session(&spec, &DelayAssignment::LenOverRate);
    }
}

/// Drive `packets` arrivals/departures round-robin over `sessions`
/// registered sessions; returns a checksum so the work is not optimized
/// away.
pub fn drive_discipline(d: &mut dyn Discipline, sessions: u32, packets: u64) -> u128 {
    let mut sum = 0u128;
    let link = LinkParams::paper_t1();
    for i in 0..packets {
        let sid = SessionId((i % u64::from(sessions)) as u32);
        let now = Time::from_us(i * 50);
        let mut pkt = Packet::new(sid, i / u64::from(sessions) + 1, 424, now);
        let dec = d.on_arrival(&mut pkt, now);
        sum ^= dec.key;
        d.on_departure(&mut pkt, now.max(dec.eligible) + link.lmax_time());
        sum = sum.wrapping_add(pkt.hold.as_ps() as u128);
    }
    sum
}

/// A minimal wall-clock stopwatch harness for the `harness = false` bench
/// targets: estimates a per-iteration cost, then loops for a fixed time
/// budget and reports mean and best. With `--test` (what CI's smoke run
/// passes) every benchmark executes exactly once, as a compile-and-run
/// check.
pub struct Bencher {
    quick: bool,
    budget: WallDuration,
}

impl Bencher {
    /// Build from the process arguments: `--test` or `--quick` selects the
    /// single-iteration mode; all other flags (e.g. the `--bench` cargo
    /// appends) are ignored.
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Bencher {
            quick,
            budget: WallDuration::from_millis(300),
        }
    }

    /// Whether this run is the single-iteration smoke mode.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Time `f`, printing one line `name  iters  mean  best`.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed();
        if self.quick {
            println!("{name:<56} ok ({})", fmt_ns(est.as_nanos()));
            return;
        }
        let iters = (self.budget.as_nanos() / est.as_nanos().max(1)).clamp(1, 100_000) as u32;
        let mut best = u128::MAX;
        let mut total = 0u128;
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            let e = t.elapsed().as_nanos();
            total += e;
            best = best.min(e);
        }
        println!(
            "{name:<56} {iters:>6} iters  mean {:>10}  best {:>10}",
            fmt_ns(total / u128::from(iters)),
            fmt_ns(best)
        );
    }
}

impl Default for Bencher {
    fn default() -> Self {
        Self::from_args()
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}
