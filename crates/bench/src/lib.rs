//! # lit-bench — Criterion benchmarks
//!
//! Performance characterization of the implementation (the paper's
//! figures measure *simulated* service quality; these measure the
//! *simulator and scheduler* themselves):
//!
//! * `sched_ops` — per-packet scheduling cost of each discipline;
//! * `event_queue` — future-event-set throughput;
//! * `end_to_end` — whole-network simulation rate (simulated seconds per
//!   wall second) for the paper's MIX/CROSS configurations;
//! * `admission` — AC1/AC2's O(P) tests vs AC3's exponential subset test;
//! * `analysis` — M/D/1 evaluation and histogram cost.
//!
//! Helpers shared by the bench targets live here.

#![forbid(unsafe_code)]

use lit_net::{DelayAssignment, Discipline, LinkParams, Packet, SessionId, SessionSpec};
use lit_sim::Time;

/// Register `n` sessions with rates spread across a T1 link.
pub fn register_sessions(d: &mut dyn Discipline, n: u32) {
    for i in 0..n {
        let rate = 1_536_000 / u64::from(n.max(1)) - u64::from(i % 7) * 8;
        let spec = SessionSpec::atm(SessionId(i), rate.max(8_000));
        d.register_session(&spec, &DelayAssignment::LenOverRate);
    }
}

/// Drive `packets` arrivals/departures round-robin over `sessions`
/// registered sessions; returns a checksum so the work is not optimized
/// away.
pub fn drive_discipline(d: &mut dyn Discipline, sessions: u32, packets: u64) -> u128 {
    let mut sum = 0u128;
    let link = LinkParams::paper_t1();
    for i in 0..packets {
        let sid = SessionId((i % u64::from(sessions)) as u32);
        let now = Time::from_us(i * 50);
        let mut pkt = Packet::new(sid, i / u64::from(sessions) + 1, 424, now);
        let dec = d.on_arrival(&mut pkt, now);
        sum ^= dec.key;
        d.on_departure(&mut pkt, now.max(dec.eligible) + link.lmax_time());
        sum = sum.wrapping_add(pkt.hold.as_ps() as u128);
    }
    sum
}
