//! Per-packet scheduling cost of each discipline: one `on_arrival` (stamp
//! computation) plus one `on_departure` (header stamping) per packet, with
//! 48 registered sessions (the paper's per-link session count).
//!
//! Expected shape: FCFS < VirtualClock ≈ Leave-in-Time ≈ SCFQ ≪ WFQ —
//! LiT's stamp is O(1) per packet like VirtualClock's (the paper's
//! efficiency claim), while WFQ pays for advancing the GPS virtual time
//! across the backlogged set.

#![forbid(unsafe_code)]

use lit_baselines::{
    FcfsDiscipline, ScfqDiscipline, StopAndGoDiscipline, VirtualClockDiscipline, WfqDiscipline,
};
use lit_bench::{drive_discipline, register_sessions, Bencher};
use lit_core::LitDiscipline;
use lit_net::{Discipline, LinkParams};
use lit_sim::Duration;

const SESSIONS: u32 = 48;
const PACKETS: u64 = 10_000;

fn bench_discipline(b: &Bencher, name: &str, mk: impl Fn() -> Box<dyn Discipline>) {
    b.run(&format!("sched_ops/{name}/48sess"), || {
        let mut d = mk();
        register_sessions(d.as_mut(), SESSIONS);
        drive_discipline(d.as_mut(), SESSIONS, PACKETS)
    });
}

fn main() {
    let b = Bencher::from_args();
    let link = LinkParams::paper_t1();
    bench_discipline(&b, "fcfs", || Box::new(FcfsDiscipline::new()));
    bench_discipline(&b, "virtualclock", || {
        Box::new(VirtualClockDiscipline::new())
    });
    bench_discipline(&b, "leave-in-time", move || {
        Box::new(LitDiscipline::new(link))
    });
    bench_discipline(&b, "scfq", || Box::new(ScfqDiscipline::new()));
    bench_discipline(&b, "wfq", move || Box::new(WfqDiscipline::new(link)));
    bench_discipline(&b, "stop-and-go", || {
        Box::new(StopAndGoDiscipline::new(Duration::from_ms(10)))
    });
    b.write_json("sched_ops");
}
