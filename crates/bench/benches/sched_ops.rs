//! Per-packet scheduling cost of each discipline: one `on_arrival` (stamp
//! computation) plus one `on_departure` (header stamping) per packet, with
//! 48 registered sessions (the paper's per-link session count).
//!
//! Expected shape: FCFS < VirtualClock ≈ Leave-in-Time ≈ SCFQ ≪ WFQ —
//! LiT's stamp is O(1) per packet like VirtualClock's (the paper's
//! efficiency claim), while WFQ pays for advancing the GPS virtual time
//! across the backlogged set.

#![forbid(unsafe_code)]

use lit_baselines::{
    FcfsDiscipline, ScfqDiscipline, StopAndGoDiscipline, VirtualClockDiscipline, WfqDiscipline,
};
use lit_bench::{drive_arrival_batches, drive_discipline, register_sessions, Bencher};
use lit_core::LitDiscipline;
use lit_net::{Discipline, LinkParams};
use lit_sim::Duration;

const SESSIONS: u32 = 48;
const PACKETS: u64 = 10_000;
/// Burst size for the scalar-vs-batched arrival arms: the fixed-cell
/// common case where `on_arrival_batch` amortizes its divisions.
const BATCH: usize = 64;
const BATCHES: u64 = 2_000;

fn bench_discipline(b: &Bencher, name: &str, mk: impl Fn() -> Box<dyn Discipline>) {
    b.run(&format!("sched_ops/{name}/48sess"), || {
        let mut d = mk();
        register_sessions(d.as_mut(), SESSIONS);
        drive_discipline(d.as_mut(), SESSIONS, PACKETS)
    });
}

fn main() {
    let b = Bencher::from_args();
    let link = LinkParams::paper_t1();
    bench_discipline(&b, "fcfs", || Box::new(FcfsDiscipline::new()));
    bench_discipline(&b, "virtualclock", || {
        Box::new(VirtualClockDiscipline::new())
    });
    bench_discipline(&b, "leave-in-time", move || {
        Box::new(LitDiscipline::new(link))
    });
    bench_discipline(&b, "scfq", || Box::new(ScfqDiscipline::new()));
    bench_discipline(&b, "wfq", move || Box::new(WfqDiscipline::new(link)));
    bench_discipline(&b, "stop-and-go", || {
        Box::new(StopAndGoDiscipline::new(Duration::from_ms(10)))
    });

    // Scalar-vs-batched eq. 8–11: same packets, same sessions, but the
    // batched arm hands each 64-packet same-session burst to one
    // `on_arrival_batch` call instead of 64 dispatched `on_arrival`s.
    let drive = |batched: bool| {
        move || {
            let mut d = LitDiscipline::new(link);
            register_sessions(&mut d, SESSIONS);
            drive_arrival_batches(&mut d, SESSIONS, BATCHES, BATCH, batched)
        }
    };
    b.run(
        &format!("sched_ops/leave-in-time/scalar-arrivals/48sess-batch{BATCH}"),
        drive(false),
    );
    b.run(
        &format!("sched_ops/leave-in-time/batched-arrivals/48sess-batch{BATCH}"),
        drive(true),
    );
    let results = b.results();
    let best = |tag: &str| {
        results
            .iter()
            .find(|r| r.name.contains(tag))
            .map(|r| r.best_ns.max(1))
    };
    if let (Some(scalar), Some(batch)) = (best("/scalar-arrivals/"), best("/batched-arrivals/")) {
        let pkts = (BATCHES as u128 * BATCH as u128).max(1);
        let speedup = scalar as f64 / batch as f64;
        println!(
            "sched_ops: batched arrivals {speedup:.2}x over scalar \
             ({:.1} vs {:.1} ns/pkt over {pkts} pkts)",
            batch as f64 / pkts as f64,
            scalar as f64 / pkts as f64,
        );
        // `--batch-guard F` (CI): fail if the batched path does not beat
        // the scalar one by at least the given factor.
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            if arg == "--batch-guard" {
                let want: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batch-guard takes a factor");
                if speedup < want {
                    eprintln!(
                        "sched_ops: FAIL batched speedup {speedup:.2}x below required {want:.2}x"
                    );
                    std::process::exit(1);
                }
                println!("sched_ops: batched speedup guard {want:.2}x passed");
            }
        }
    }
    b.write_json("sched_ops");
}
