//! Admission-control cost: the paper's complexity claims made measurable.
//!
//! * AC1/AC2 perform O(P) tests per admission — flat in the number of
//!   already-admitted sessions;
//! * AC3 tests `2^(n)` subsets for the n-th admission — the exponential
//!   blow-up §2 warns about is plainly visible in the timings;
//! * `ac3_fast` runs the same fills through the incremental
//!   class-aggregated service ([`Ac3Fast`]), where cost tracks the
//!   number of distinct parameter classes rather than resident sessions.

#![forbid(unsafe_code)]

use lit_bench::Bencher;
use lit_core::{
    Ac3Admission, Ac3Fast, ClassedAdmission, DRule, DelayClass, Procedure, SessionRequest,
};
use lit_sim::Duration;

fn classes(p: usize, link: u64) -> Vec<DelayClass> {
    (1..=p)
        .map(|k| DelayClass {
            max_bandwidth_bps: link * k as u64 / p as u64,
            base_delay: Duration::from_ms(k as u64 * 10),
        })
        .collect()
}

fn classed(b: &Bencher) {
    for &p in &[1usize, 4, 16] {
        b.run(&format!("admission/classed_fill/ac1/{p}"), || {
            let mut ac =
                ClassedAdmission::new(Procedure::Proc1, 100_000_000, classes(p, 100_000_000))
                    .unwrap();
            let req = SessionRequest::new(100_000, 424);
            let mut ok = 0u32;
            for _ in 0..500 {
                if ac.try_admit(p - 1, &req, DRule::PerSessionMax).is_ok() {
                    ok += 1;
                }
            }
            ok
        });
    }
}

fn ac3(b: &Bencher) {
    for &n in &[8usize, 14, 20] {
        b.run(&format!("admission/ac3_exhaustive/{n}"), || {
            let mut ac = Ac3Admission::new(100_000_000);
            let mut ok = 0u32;
            for i in 0..n {
                let d = Duration::from_ms(5 + i as u64);
                if ac.try_admit(200_000, 424, d).is_ok() {
                    ok += 1;
                }
            }
            ok
        });
    }
}

fn ac3_fast(b: &Bencher) {
    // Same fill shapes as `ac3`, plus a 1000-session fill the exact
    // enumerator could never attempt: cost stays flat because every
    // session lands in one of 12 parameter classes.
    for &n in &[8usize, 14, 20, 1_000] {
        b.run(&format!("admission/ac3_fast_fill/{n}"), || {
            let mut ac = Ac3Fast::new(100_000_000);
            let mut ok = 0u32;
            for i in 0..n {
                let d = Duration::from_ms(5 + (i % 12) as u64);
                if ac.try_admit(20_000, 424, d).is_ok() {
                    ok += 1;
                }
            }
            ok
        });
    }
    // Steady-state churn at 1000 resident: admit + release, the
    // long-running-node hot path.
    b.run("admission/ac3_fast_churn/1000", || {
        let mut ac = Ac3Fast::new(100_000_000);
        for i in 0..1_000u64 {
            let d = Duration::from_ms(5 + i % 12);
            ac.try_admit(20_000, 424, d).unwrap();
        }
        let d = Duration::from_ms(5);
        let mut ok = 0u32;
        for _ in 0..100 {
            if let Ok((h, _)) = ac.try_admit(20_000, 424, d) {
                ok += 1;
                ac.release(h);
            }
        }
        ok
    });
}

fn main() {
    let b = Bencher::from_args();
    classed(&b);
    ac3(&b);
    ac3_fast(&b);
    // `BENCH_admission.json` belongs to the `bench_admission` storm
    // binary (the guarded artifact); the micro rows get their own file.
    b.write_json("admission_micro");
}
