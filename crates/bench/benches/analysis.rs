//! Analysis-side costs: the M/D/1 Crommelin series (per-point evaluation,
//! as used to draw the Figures 9–11 bound curves) and the streaming
//! histogram (per-sample cost paid for every delivered packet).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lit_analysis::{DurationHistogram, Md1};
use lit_sim::Duration;
use std::hint::black_box;

fn md1(c: &mut Criterion) {
    let q = Md1::from_mean_gap(
        Duration::from_secs_f64(1.5143e-3),
        Duration::from_bits_at_rate(424, 400_000),
    );
    let mut g = c.benchmark_group("analysis/md1_sojourn_ccdf");
    for &t_ms in &[2u64, 10, 25, 60] {
        g.bench_with_input(BenchmarkId::from_parameter(t_ms), &t_ms, |b, &t_ms| {
            let t = Duration::from_ms(t_ms);
            b.iter(|| black_box(q.sojourn_ccdf(black_box(t))))
        });
    }
    g.finish();
}

fn histogram(c: &mut Criterion) {
    c.bench_function("analysis/histogram_record_10k", |b| {
        b.iter(|| {
            let mut h = DurationHistogram::new(Duration::from_us(250), 4000);
            for i in 0..10_000u64 {
                h.record(Duration::from_ps(
                    i.wrapping_mul(2_654_435_761) % 1_000_000_000,
                ));
            }
            black_box(h.count())
        })
    });
    c.bench_function("analysis/histogram_ccdf_eval", |b| {
        let mut h = DurationHistogram::new(Duration::from_us(250), 4000);
        for i in 0..100_000u64 {
            h.record(Duration::from_ps(
                i.wrapping_mul(2_654_435_761) % 1_000_000_000,
            ));
        }
        b.iter(|| black_box(h.ccdf_at(Duration::from_us(500))))
    });
}

criterion_group!(analysis, md1, histogram);
criterion_main!(analysis);
