//! Analysis-side costs: the M/D/1 Crommelin series (per-point evaluation,
//! as used to draw the Figures 9–11 bound curves) and the streaming
//! histogram (per-sample cost paid for every delivered packet).

#![forbid(unsafe_code)]

use lit_analysis::{DurationHistogram, Md1};
use lit_bench::Bencher;
use lit_sim::Duration;

fn md1(b: &Bencher) {
    let q = Md1::from_mean_gap(
        Duration::from_secs_f64(1.5143e-3),
        Duration::from_bits_at_rate(424, 400_000),
    );
    for &t_ms in &[2u64, 10, 25, 60] {
        let t = Duration::from_ms(t_ms);
        b.run(&format!("analysis/md1_sojourn_ccdf/{t_ms}ms"), || {
            q.sojourn_ccdf(t)
        });
    }
}

fn histogram(b: &Bencher) {
    b.run("analysis/histogram_record_10k", || {
        let mut h = DurationHistogram::new(Duration::from_us(250), 4000);
        for i in 0..10_000u64 {
            h.record(Duration::from_ps(
                i.wrapping_mul(2_654_435_761) % 1_000_000_000,
            ));
        }
        h.count()
    });
    let mut h = DurationHistogram::new(Duration::from_us(250), 4000);
    for i in 0..100_000u64 {
        h.record(Duration::from_ps(
            i.wrapping_mul(2_654_435_761) % 1_000_000_000,
        ));
    }
    b.run("analysis/histogram_ccdf_eval", || {
        h.ccdf_at(Duration::from_us(500))
    });
}

fn main() {
    let b = Bencher::from_args();
    md1(&b);
    histogram(&b);
    b.write_json("analysis");
}
