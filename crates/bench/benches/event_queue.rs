//! Future-event-set throughput: the simulator's hottest structure.
//!
//! Patterns benched:
//! * `hold` — the classic hold model: at steady size N, pop one / push one
//!   with a random increment (what a running simulation actually does);
//! * `burst` — push N then drain N (network start-up / tear-down shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lit_sim::{Duration, EventQueue, SimRng, Time};
use std::hint::black_box;

fn hold(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/hold");
    for &n in &[64usize, 1024, 16_384] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Pre-fill to steady state.
            let mut rng = SimRng::seed_from(9);
            let mut q = EventQueue::with_capacity(n + 1);
            let mut now = Time::ZERO;
            for i in 0..n {
                q.push(now + Duration::from_ns(rng.below(1_000_000)), i as u64);
            }
            b.iter(|| {
                let (t, e) = q.pop().expect("steady state");
                now = t;
                q.push(now + Duration::from_ns(1 + rng.below(1_000_000)), e);
                black_box(e)
            });
        });
    }
    g.finish();
}

fn burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/burst");
    for &n in &[1024usize, 16_384] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = SimRng::seed_from(5);
                let mut q = EventQueue::with_capacity(n);
                for i in 0..n {
                    q.push(Time::from_ns(rng.below(1_000_000_000)), i as u64);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                black_box(sum)
            });
        });
    }
    g.finish();
}

criterion_group!(event_queue, hold, burst);
criterion_main!(event_queue);
