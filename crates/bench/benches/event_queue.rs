//! Future-event-set throughput: the simulator's hottest structure.
//!
//! Every pattern runs under both [`EventBackend`]s — the default binary
//! heap and the opt-in calendar ring — so the O(log n) vs amortized-O(1)
//! crossover is visible directly. Patterns benched:
//!
//! * `hold` — the classic hold model: at steady size N, pop one / push one
//!   with a random increment (what a running simulation actually does);
//! * `burst` — push N then drain N (network start-up / tear-down shape).
//!
//! The headline comparison is `hold` at N = 1 000 000: the calendar is
//! expected to hold a ≥ 2× advantage there (see `results/BENCH_queues.json`
//! written by the `bench_queues` binary for the tracked numbers).

#![forbid(unsafe_code)]

use lit_bench::Bencher;
use lit_sim::{Duration, EventBackend, EventQueue, SimRng, Time};

const BACKENDS: [(EventBackend, &str); 2] = [
    (EventBackend::Heap, "heap"),
    (EventBackend::Calendar, "calendar"),
];

const HOLD_OPS: u64 = 10_000;

fn hold(b: &Bencher) {
    for (backend, label) in BACKENDS {
        for &n in &[100usize, 10_000, 1_000_000] {
            // Pre-fill to steady state once; each measured run then does
            // HOLD_OPS pop-one/push-one cycles against the shared queue,
            // which keeps the population at n throughout.
            let mut rng = SimRng::seed_from(9);
            let mut q = EventQueue::with_capacity_in(n + 1, backend);
            let mut now = Time::ZERO;
            for i in 0..n {
                q.push(now + Duration::from_ns(rng.below(1_000_000)), i as u64);
            }
            b.run(&format!("event_queue/hold/{label}/{n}"), || {
                let mut sum = 0u64;
                for _ in 0..HOLD_OPS {
                    let (t, e) = q.pop().expect("steady state");
                    now = t;
                    q.push(now + Duration::from_ns(1 + rng.below(1_000_000)), e);
                    sum = sum.wrapping_add(e);
                }
                sum
            });
        }
    }
}

fn burst(b: &Bencher) {
    for (backend, label) in BACKENDS {
        for &n in &[1024usize, 16_384] {
            b.run(&format!("event_queue/burst/{label}/{n}"), || {
                let mut rng = SimRng::seed_from(5);
                let mut q = EventQueue::with_capacity_in(n, backend);
                for i in 0..n {
                    q.push(Time::from_ns(rng.below(1_000_000_000)), i as u64);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                sum
            });
        }
    }
}

fn main() {
    let b = Bencher::from_args();
    hold(&b);
    burst(&b);
    b.write_json("event_queue");
}
