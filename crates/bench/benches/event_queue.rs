//! Future-event-set throughput: the simulator's hottest structure.
//!
//! Every pattern runs under both [`EventBackend`]s — the default binary
//! heap and the opt-in calendar ring — so the O(log n) vs amortized-O(1)
//! crossover is visible directly. Patterns benched:
//!
//! * `hold` — the classic hold model: at steady size N, pop one / push one
//!   with a random increment (what a running simulation actually does);
//! * `burst` — push N then drain N (network start-up / tear-down shape).
//!
//! The headline comparison is `hold` at N = 1 000 000: the calendar is
//! expected to hold a ≥ 2× advantage there (see `results/BENCH_queues.json`
//! written by the `bench_queues` binary for the tracked numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lit_sim::{Duration, EventBackend, EventQueue, SimRng, Time};
use std::hint::black_box;

const BACKENDS: [(EventBackend, &str); 2] = [
    (EventBackend::Heap, "heap"),
    (EventBackend::Calendar, "calendar"),
];

fn hold(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/hold");
    // The 1e6 population needs a long pre-fill per sample; 20 samples keep
    // the run bounded and the per-op noise floor far below the 2× margin.
    g.sample_size(20);
    for (backend, label) in BACKENDS {
        for &n in &[100usize, 10_000, 1_000_000] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                // Pre-fill to steady state.
                let mut rng = SimRng::seed_from(9);
                let mut q = EventQueue::with_capacity_in(n + 1, backend);
                let mut now = Time::ZERO;
                for i in 0..n {
                    q.push(now + Duration::from_ns(rng.below(1_000_000)), i as u64);
                }
                b.iter(|| {
                    let (t, e) = q.pop().expect("steady state");
                    now = t;
                    q.push(now + Duration::from_ns(1 + rng.below(1_000_000)), e);
                    black_box(e)
                });
            });
        }
    }
    g.finish();
}

fn burst(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue/burst");
    for (backend, label) in BACKENDS {
        for &n in &[1024usize, 16_384] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let mut rng = SimRng::seed_from(5);
                    let mut q = EventQueue::with_capacity_in(n, backend);
                    for i in 0..n {
                        q.push(Time::from_ns(rng.below(1_000_000_000)), i as u64);
                    }
                    let mut sum = 0u64;
                    while let Some((_, e)) = q.pop() {
                        sum = sum.wrapping_add(e);
                    }
                    black_box(sum)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(event_queue, hold, burst);
criterion_main!(event_queue);
