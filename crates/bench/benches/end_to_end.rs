//! Whole-network simulation rate for the paper's experiment
//! configurations: how many simulated seconds of the Figure 6 network one
//! wall-clock second buys, per discipline.
//!
//! Each iteration builds the 116-session MIX network (or the CROSS
//! network) and runs 2 simulated seconds — roughly 120 000 packet
//! transmissions across the five links.

#![forbid(unsafe_code)]

use lit_baselines::{FcfsDiscipline, WfqDiscipline};
use lit_bench::Bencher;
use lit_core::LitDiscipline;
use lit_net::{LinkParams, NodeId, QueueKind};
use lit_repro::experiments::common::{
    build_cross_onoff, build_cross_onoff_queued, build_mix_one_class,
};
use lit_sim::{Duration, Time};

fn mix(b: &Bencher) {
    b.run("end_to_end/mix_2s/leave-in-time", || {
        let (mut net, tagged) = build_mix_one_class(Duration::from_ms(88), 1);
        net.run_until(Time::from_secs(2));
        net.session_stats(tagged).delivered
    });
}

fn cross(b: &Bencher) {
    b.run("end_to_end/cross_2s/leave-in-time", || {
        let (mut net, no_jc, _) = build_cross_onoff(1);
        net.run_until(Time::from_secs(2));
        net.session_stats(no_jc).delivered
    });
    // Approximate-queue ablation: same workload, bucketed eligible queue.
    b.run("end_to_end/cross_2s/leave-in-time-bucketed-1ms", || {
        let (mut net, no_jc, _) = build_cross_onoff_queued(
            1,
            QueueKind::Bucketed {
                bucket: Duration::from_ms(1),
            },
        );
        net.run_until(Time::from_secs(2));
        net.session_stats(no_jc).delivered
    });
}

/// Same traffic volume under different disciplines, to expose the
/// scheduler's share of the event-loop cost.
fn disciplines(bench: &Bencher) {
    use lit_net::{NetworkBuilder, SessionId, SessionSpec};
    use lit_traffic::PoissonSource;
    let build = |factory: &lit_net::DisciplineFactory<'_>| {
        let mut b = NetworkBuilder::new().seed(7);
        let nodes = b.tandem(3, LinkParams::paper_t1());
        for i in 0..32u64 {
            b.add_session(
                SessionSpec::atm(SessionId(0), 40_000),
                &nodes,
                Box::new(PoissonSource::new(Duration::from_us(12_000 + i * 37), 424)),
            );
        }
        b.build(factory)
    };
    let lit = |l: &LinkParams| Box::new(LitDiscipline::new(*l)) as Box<dyn lit_net::Discipline>;
    let fcfs = FcfsDiscipline::factory();
    let wfq = WfqDiscipline::factory();
    let cases: Vec<(&str, &lit_net::DisciplineFactory<'_>)> =
        vec![("leave-in-time", &lit), ("fcfs", &fcfs), ("wfq", &wfq)];
    for (name, factory) in cases {
        bench.run(&format!("end_to_end/32poisson_3hop_5s/{name}"), || {
            let mut net = build(factory);
            net.run_until(Time::from_secs(5));
            net.node_stats(NodeId(0)).transmitted
        });
    }
}

fn main() {
    let b = Bencher::from_args();
    mix(&b);
    cross(&b);
    disciplines(&b);
    b.write_json("end_to_end");
}
