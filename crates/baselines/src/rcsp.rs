//! Rate-Controlled Static-Priority queueing (Zhang & Ferrari,
//! INFOCOM '93) — paper §4's "avoids both framing strategies … and sorted
//! priority queues, by the separation of rate-control and delay-control".
//!
//! Two components per node:
//!
//! * a per-session **rate controller**: packet `i` becomes eligible at
//!   `E_i = max{ t_i, E_{i-1} + x_min }` — the arriving stream is
//!   reconstructed to its declared minimum spacing, whatever upstream
//!   nodes did to it;
//! * a **static-priority scheduler**: each session is assigned to a
//!   priority level with an associated per-node delay bound; eligible
//!   packets are served highest level first, FIFO within a level — no
//!   sorted queue at all.
//!
//! The admission test per level `p` is the paper's worst-case demand
//! condition: within any window of length `d_p`, the traffic from all
//! sessions at levels `≤ p` (each contributing `⌈d_p/x_min⌉ + 1` packets
//! at most) plus one blocking lower-priority packet must fit at link rate.

use lit_net::{
    DelayAssignment, Discipline, LinkParams, Packet, ScheduleDecision, SessionId, SessionSpec,
    SessionTable,
};
use lit_sim::{Duration, Time};

/// Per-session rate-controller state.
#[derive(Clone, Copy, Debug)]
struct RcspState {
    x_min: Duration,
    /// Priority level (0 = highest).
    level: u32,
    /// Delay bound of the level (diagnostic only at run time).
    d: Duration,
    /// Eligibility of the previous packet.
    e_prev: Option<Time>,
}

/// The RCSP scheduler for one node.
///
/// Sessions are mapped to priority levels by their delay assignment: at
/// registration, the session's `d` is matched against the node's level
/// table (the smallest level bound `≥ d` wins... the closest level whose
/// bound does not exceed the request).
pub struct RcspDiscipline {
    /// Level delay bounds, ascending (level 0 = tightest).
    level_bounds: Vec<Duration>,
    sessions: SessionTable<RcspState>,
}

impl RcspDiscipline {
    /// A scheduler with the given ascending level delay bounds.
    ///
    /// # Panics
    /// Panics if `level_bounds` is empty or not strictly ascending.
    pub fn new(level_bounds: Vec<Duration>) -> Self {
        assert!(!level_bounds.is_empty(), "RCSP: no priority levels");
        assert!(
            level_bounds.windows(2).all(|w| w[0] < w[1]),
            "RCSP: level bounds must ascend"
        );
        RcspDiscipline {
            level_bounds,
            sessions: SessionTable::new(),
        }
    }

    /// A boxed factory with identical levels at every node.
    pub fn factory(level_bounds: Vec<Duration>) -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        move |_: &LinkParams| {
            Box::new(RcspDiscipline::new(level_bounds.clone())) as Box<dyn Discipline>
        }
    }

    /// The level a session with per-node delay bound `d` lands in: the
    /// highest (tightest) level whose bound is at least `d`… i.e. the
    /// first level bound `≥ d`, or the last level if `d` exceeds them all.
    fn level_for(&self, d: Duration) -> u32 {
        self.level_bounds
            .iter()
            .position(|&b| b >= d)
            .unwrap_or(self.level_bounds.len() - 1) as u32
    }
}

impl Discipline for RcspDiscipline {
    fn name(&self) -> &'static str {
        "rcsp"
    }

    fn register_session(&mut self, spec: &SessionSpec, delay: &DelayAssignment) {
        let d = delay.d_max(spec.max_len_bits, spec.rate_bps);
        let level = self.level_for(d);
        self.sessions.insert(
            spec.id,
            RcspState {
                x_min: Duration::from_bits_at_rate(spec.max_len_bits as u64, spec.rate_bps),
                level,
                d: self.level_bounds[level as usize],
                e_prev: None,
            },
        );
    }

    fn unregister_session(&mut self, id: SessionId) {
        self.sessions.remove(id);
    }

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        let s = self
            .sessions
            .get_mut(pkt.session)
            .expect("packet from unregistered session");
        // Rate controller: reconstruct x_min spacing.
        let eligible = match s.e_prev {
            Some(prev) => now.max(prev + s.x_min),
            None => now,
        };
        s.e_prev = Some(eligible);
        pkt.deadline = eligible + s.d;
        pkt.d = s.d;
        // Static priority: the key is just the level — FIFO within a
        // level comes from the queue's arrival-order tie break.
        ScheduleDecision {
            eligible,
            key: s.level as u128,
        }
    }

    fn on_departure(&mut self, _: &mut Packet, _: Time) {}
}

/// One admitted RCSP session, for the admission test.
#[derive(Clone, Copy, Debug)]
struct RcspSession {
    x_min: Duration,
    max_len_bits: u32,
    level: usize,
}

/// Rejections from RCSP admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RcspError {
    /// The requested level does not exist.
    UnknownLevel,
    /// The worst-case demand test failed at the given level.
    LevelOverloaded {
        /// Level index at which the test failed.
        level: usize,
    },
    /// A parameter was zero.
    ZeroParameter,
}

impl std::fmt::Display for RcspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RcspError::UnknownLevel => write!(f, "no such priority level"),
            RcspError::LevelOverloaded { level } => {
                write!(f, "worst-case demand exceeds bound at level {level}")
            }
            RcspError::ZeroParameter => write!(f, "x_min must be positive"),
        }
    }
}

impl std::error::Error for RcspError {}

/// RCSP admission control for one node.
#[derive(Clone, Debug)]
pub struct RcspAdmission {
    link_bps: u64,
    level_bounds: Vec<Duration>,
    sessions: Vec<RcspSession>,
}

impl RcspAdmission {
    /// Admission state for a link of capacity `C` and the given ascending
    /// level bounds.
    pub fn new(link_bps: u64, level_bounds: Vec<Duration>) -> Self {
        assert!(link_bps > 0 && !level_bounds.is_empty());
        assert!(level_bounds.windows(2).all(|w| w[0] < w[1]));
        RcspAdmission {
            link_bps,
            level_bounds,
            sessions: Vec::new(),
        }
    }

    /// Worst-case work (transmission time) session `s` can demand within
    /// a window `w`: `(⌈w/x_min⌉ + 1)` maximum-length packets.
    fn demand_in(&self, s: &RcspSession, w: Duration) -> Duration {
        let n = w.as_ps().div_ceil(s.x_min.as_ps()) + 1;
        Duration::from_bits_at_rate(s.max_len_bits as u64 * n, self.link_bps)
    }

    /// Check every level's bound against worst-case demand from levels at
    /// or above it, plus one blocking packet from below.
    fn feasible(&self, cand: RcspSession) -> Result<(), RcspError> {
        let mut all = self.sessions.clone();
        all.push(cand);
        let lmax_tx: Duration = all
            .iter()
            .map(|s| Duration::from_bits_at_rate(s.max_len_bits as u64, self.link_bps))
            .max()
            .unwrap_or(Duration::ZERO);
        for (p, &dp) in self.level_bounds.iter().enumerate() {
            let mut demand = Duration::ZERO;
            let mut any = false;
            for s in &all {
                if s.level <= p {
                    demand += self.demand_in(s, dp);
                    any = true;
                }
            }
            if !any {
                continue;
            }
            if demand + lmax_tx > dp {
                return Err(RcspError::LevelOverloaded { level: p });
            }
        }
        Ok(())
    }

    /// Try to admit a session at `level` with declared minimum spacing
    /// `x_min` and maximum length `max_len_bits`. The granted delay
    /// assignment is the level's bound.
    pub fn try_admit(
        &mut self,
        level: usize,
        x_min: Duration,
        max_len_bits: u32,
    ) -> Result<DelayAssignment, RcspError> {
        if x_min == Duration::ZERO || max_len_bits == 0 {
            return Err(RcspError::ZeroParameter);
        }
        if level >= self.level_bounds.len() {
            return Err(RcspError::UnknownLevel);
        }
        let cand = RcspSession {
            x_min,
            max_len_bits,
            level,
        };
        self.feasible(cand)?;
        self.sessions.push(cand);
        Ok(DelayAssignment::Fixed(self.level_bounds[level]))
    }

    /// Number of admitted sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session was admitted yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    fn levels() -> Vec<Duration> {
        vec![
            Duration::from_ms(2),
            Duration::from_ms(10),
            Duration::from_ms(50),
        ]
    }

    #[test]
    fn rate_controller_spaces_eligibility() {
        let mut d = RcspDiscipline::new(levels());
        d.register_session(
            &SessionSpec::atm(SessionId(0), 32_000),
            &DelayAssignment::Fixed(Duration::from_ms(10)),
        );
        // Burst of three at t = 0: eligibility at 0, x_min, 2·x_min.
        let mut es = Vec::new();
        for i in 0..3u64 {
            let mut p = Packet::new(SessionId(0), i + 1, 424, Time::ZERO);
            es.push(d.on_arrival(&mut p, Time::ZERO).eligible);
        }
        assert_eq!(es[0], Time::ZERO);
        assert_eq!(es[1], Time::from_us(13_250));
        assert_eq!(es[2], Time::from_us(26_500));
    }

    #[test]
    fn level_mapping_and_priority_keys() {
        let mut d = RcspDiscipline::new(levels());
        d.register_session(
            &SessionSpec::atm(SessionId(0), 32_000),
            &DelayAssignment::Fixed(Duration::from_ms(1)), // → level 0
        );
        d.register_session(
            &SessionSpec::atm(SessionId(1), 32_000),
            &DelayAssignment::Fixed(Duration::from_ms(30)), // → level 2
        );
        let mut p0 = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        let mut p1 = Packet::new(SessionId(1), 1, 424, Time::ZERO);
        let k0 = d.on_arrival(&mut p0, Time::ZERO).key;
        let k1 = d.on_arrival(&mut p1, Time::ZERO).key;
        assert!(k0 < k1, "higher priority must have smaller key");
        assert_eq!(k0, 0);
        assert_eq!(k1, 2);
    }

    #[test]
    fn oversized_request_lands_in_last_level() {
        let d = RcspDiscipline::new(levels());
        assert_eq!(d.level_for(Duration::from_secs(1)), 2);
        assert_eq!(d.level_for(Duration::from_us(1)), 0);
    }

    #[test]
    fn admission_fills_then_rejects_top_level() {
        let mut adm = RcspAdmission::new(1_536_000, levels());
        // Each voice session demands (⌈2ms/13.25ms⌉+1)=2 cells in the
        // 2 ms window ⇒ 0.552 ms; plus 1 blocking cell 0.276 ms. Level 0
        // holds 3 such sessions (1.93 ms ≤ 2 ms), not 4.
        let x = Duration::from_us(13_250);
        for i in 0..3 {
            adm.try_admit(0, x, 424)
                .unwrap_or_else(|e| panic!("session {i}: {e}"));
        }
        assert_eq!(
            adm.try_admit(0, x, 424).unwrap_err(),
            RcspError::LevelOverloaded { level: 0 }
        );
        // But the same session is welcome at level 1.
        adm.try_admit(1, x, 424).unwrap();
        assert_eq!(adm.len(), 4);
    }

    #[test]
    fn lower_levels_count_against_higher_bounds() {
        let mut adm = RcspAdmission::new(1_536_000, levels());
        // Saturate level 1's 10 ms window with high-priority traffic…
        let x = Duration::from_us(1_000); // ~424 kbit/s peak each
        adm.try_admit(0, x, 424).unwrap(); // demand in 10ms: 11 cells
        adm.try_admit(1, x, 424).unwrap();
        adm.try_admit(1, x, 424).unwrap();
        // Each session demands ⌈10/1⌉+1 = 11 cells ≈ 3.04 ms in the 10 ms
        // window; a few more and level 1 must overflow before level 2.
        let mut last = None;
        for _ in 0..5 {
            match adm.try_admit(1, x, 424) {
                Ok(_) => {}
                Err(e) => {
                    last = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(last, Some(RcspError::LevelOverloaded { .. })));
    }

    #[test]
    fn unknown_level_rejected() {
        let mut adm = RcspAdmission::new(1_536_000, levels());
        assert_eq!(
            adm.try_admit(9, Duration::from_ms(1), 424).unwrap_err(),
            RcspError::UnknownLevel
        );
    }
}
