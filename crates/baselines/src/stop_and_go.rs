//! Stop-and-Go queueing (Golestani '90) — the framing-based,
//! non-work-conserving discipline of paper §4's comparison.
//!
//! Time on every link is divided into frames of length `T`. A packet
//! arriving during one frame may not be transmitted until the start of the
//! next frame — even if the link is idle — which bounds both the minimum
//! and maximum per-hop delay and yields end-to-end delay `αHT ± T`
//! (`α ∈ [1, 2)`) and jitter `≤ 2T` for `(r, T)`-smooth sessions.
//!
//! Within a frame, eligible packets are served FCFS (the admission rule —
//! at most `r_s·T` bits per session per frame, `Σ r_s ≤ C` — guarantees a
//! frame's worth of eligible traffic always fits in a frame, so intra-frame
//! order does not matter). The coupling the paper criticizes is visible
//! directly in the API: the only delay knob is the global `T`, and
//! bandwidth comes in increments of `L/T`.

use lit_net::{DelayAssignment, Discipline, LinkParams, Packet, ScheduleDecision, SessionSpec};
use lit_sim::{Duration, Time};

/// The Stop-and-Go scheduler (one per node).
#[derive(Clone, Debug)]
pub struct StopAndGoDiscipline {
    /// Frame length `T`.
    frame: Duration,
}

impl StopAndGoDiscipline {
    /// A Stop-and-Go scheduler with frame length `frame`.
    ///
    /// # Panics
    /// Panics if the frame length is zero.
    pub fn new(frame: Duration) -> Self {
        assert!(frame > Duration::ZERO, "StopAndGo: zero frame");
        StopAndGoDiscipline { frame }
    }

    /// A boxed factory for [`lit_net::NetworkBuilder::build`] with a
    /// common frame length on every link.
    pub fn factory(frame: Duration) -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        move |_: &LinkParams| Box::new(StopAndGoDiscipline::new(frame)) as Box<dyn Discipline>
    }

    /// Start of the frame *after* the one containing `t`.
    fn next_frame_start(&self, t: Time) -> Time {
        // lit-lint: allow(raw-time-arithmetic, "dimensionless frame index: ratio of two ps counts; division cannot overflow")
        let k = t.as_ps() / self.frame.as_ps();
        Time::ZERO + self.frame * (k + 1)
    }
}

impl Discipline for StopAndGoDiscipline {
    fn name(&self) -> &'static str {
        "stop-and-go"
    }

    fn register_session(&mut self, _: &SessionSpec, _: &DelayAssignment) {}

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        // Held until the next frame boundary; FCFS within the frame
        // (equal keys resolve FIFO in the node queue).
        let eligible = self.next_frame_start(now);
        pkt.deadline = eligible + self.frame;
        ScheduleDecision::at(eligible, eligible)
    }

    fn on_departure(&mut self, _: &mut Packet, _: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    #[test]
    fn packets_wait_for_the_next_frame() {
        let d = StopAndGoDiscipline::new(Duration::from_ms(10));
        assert_eq!(d.next_frame_start(Time::from_ms(0)), Time::from_ms(10));
        assert_eq!(d.next_frame_start(Time::from_ms(9)), Time::from_ms(10));
        // A packet arriving exactly at a boundary belongs to the frame
        // that starts there and waits for the following one.
        assert_eq!(d.next_frame_start(Time::from_ms(10)), Time::from_ms(20));
    }

    #[test]
    fn eligibility_is_frame_aligned() {
        let mut d = StopAndGoDiscipline::new(Duration::from_ms(10));
        d.register_session(
            &SessionSpec::atm(SessionId(0), 32_000),
            &DelayAssignment::LenOverRate,
        );
        let mut p = Packet::new(SessionId(0), 1, 424, Time::from_us(3_700));
        let dec = d.on_arrival(&mut p, Time::from_us(3_700));
        assert_eq!(dec.eligible, Time::from_ms(10));
        // Per-hop delay is at most 2T: held < T, then served within the
        // next frame.
        assert_eq!(p.deadline, Time::from_ms(20));
    }
}
