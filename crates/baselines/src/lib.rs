//! # lit-baselines — the service disciplines the paper compares against
//!
//! Independent implementations of the schedulers discussed in §4 of the
//! Leave-in-Time paper, all plugging into the same `lit-net`
//! [`lit_net::Discipline`] interface:
//!
//! * [`FcfsDiscipline`] — first-come-first-served (no isolation at all);
//! * [`VirtualClockDiscipline`] — L. Zhang's VirtualClock (eq. 2), the
//!   discipline Leave-in-Time reduces to with one class and `d = L/r`;
//! * [`WfqDiscipline`] — Weighted Fair Queueing with Parekh's GPS virtual
//!   time (the PGPS comparison point);
//! * [`ScfqDiscipline`] — Golestani's Self-Clocked Fair Queueing;
//! * [`StopAndGoDiscipline`] — framing-based, non-work-conserving
//!   Stop-and-Go;
//! * [`EddDiscipline`] — Delay-EDD and Jitter-EDD with the `(x_min, d)`
//!   schedulability test ([`EddAdmission`]);
//! * [`RcspDiscipline`] — Rate-Controlled Static-Priority queueing with
//!   per-level worst-case-demand admission ([`RcspAdmission`]).
//!
//! * [`HrrDiscipline`] — single-level Hierarchical Round Robin (framed
//!   slot quotas; "the same upper bound on delay as Stop-and-Go" but no
//!   delay floor guarantee).
//!
//! The integration test suite uses these to verify, by simulation, the
//! paper's equivalence and comparison claims.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod edd;
mod fcfs;
mod hrr;
mod rcsp;
mod scfq;
mod stop_and_go;
mod virtual_clock;
mod wfq;

pub use edd::{EddAdmission, EddDiscipline, EddError};
pub use fcfs::FcfsDiscipline;
pub use hrr::HrrDiscipline;
pub use rcsp::{RcspAdmission, RcspDiscipline, RcspError};
pub use scfq::ScfqDiscipline;
pub use stop_and_go::StopAndGoDiscipline;
pub use virtual_clock::VirtualClockDiscipline;
pub use wfq::WfqDiscipline;

#[cfg(test)]
mod tests {
    use super::*;
    use lit_core::LitDiscipline;
    use lit_net::{DelayAssignment, LinkParams, NetworkBuilder, SessionId, SessionSpec};
    use lit_sim::{Duration, Time};
    use lit_traffic::{BurstSource, OnOffConfig, OnOffSource, PoissonSource};

    /// Build the same 3-hop, 12-session ON-OFF network under a given
    /// discipline factory and return per-session (delivered, max, jitter).
    fn run_mix(
        factory: &lit_net::DisciplineFactory<'_>,
        seed: u64,
    ) -> Vec<(u64, Duration, Duration)> {
        let mut b = NetworkBuilder::new().seed(seed);
        let nodes = b.tandem(3, LinkParams::paper_t1());
        let mut sids = Vec::new();
        for i in 0..12 {
            let cfg = OnOffConfig::paper_voice(Duration::from_ms(88))
                .with_offset(Duration::from_us(i * 731));
            sids.push(b.add_session(
                SessionSpec::atm(SessionId(0), 32_000),
                &nodes,
                Box::new(OnOffSource::new(cfg)),
            ));
        }
        // Heterogeneous-rate Poisson sessions: their reference clocks run
        // ahead of arrivals during bursts, so deadline order genuinely
        // differs from arrival order.
        for _ in 0..2 {
            sids.push(b.add_session(
                SessionSpec::atm(SessionId(0), 400_000),
                &nodes,
                Box::new(PoissonSource::new(Duration::from_us(1_200), 424)),
            ));
        }
        let mut net = b.build(factory);
        net.run_until(Time::from_secs(60));
        sids.iter()
            .map(|&s| {
                let st = net.session_stats(s);
                (st.delivered, st.max_delay().unwrap(), st.jitter().unwrap())
            })
            .collect()
    }

    #[test]
    fn virtualclock_equals_lit_special_case() {
        // The paper: Leave-in-Time with admission control procedure 1,
        // one class, d = L/r, no jitter control *is* VirtualClock. Same
        // seed ⇒ identical arrivals ⇒ the two disciplines must produce
        // identical delivery statistics.
        let lit = run_mix(&|l: &LinkParams| Box::new(LitDiscipline::new(*l)), 11);
        let vc = run_mix(
            &|_: &LinkParams| Box::new(VirtualClockDiscipline::new()),
            11,
        );
        assert_eq!(lit, vc);
    }

    #[test]
    fn fcfs_differs_from_deadline_scheduling_under_load() {
        let fcfs = run_mix(&|_: &LinkParams| Box::new(FcfsDiscipline::new()), 11);
        let vc = run_mix(
            &|_: &LinkParams| Box::new(VirtualClockDiscipline::new()),
            11,
        );
        // Same arrivals, but at ~74 % load the schedules diverge.
        assert_ne!(fcfs, vc);
    }

    #[test]
    fn firewall_lit_isolates_where_fcfs_does_not() {
        // One well-behaved CBR-ish session shares a link with a hugely
        // misbehaving burster that reserved only 32 kbit/s. Under FCFS the
        // victim's max delay explodes; under Leave-in-Time it stays near
        // its isolated value.
        let run = |factory: &lit_net::DisciplineFactory<'_>| {
            let mut b = NetworkBuilder::new().seed(5);
            let nodes = b.tandem(1, LinkParams::paper_t1());
            let victim = b.add_session(
                SessionSpec::atm(SessionId(0), 32_000),
                &nodes,
                Box::new(OnOffSource::new(OnOffConfig::paper_voice(Duration::ZERO))),
            );
            // Misbehaving: 100 packets dumped every 50 ms ≈ 848 kbit/s
            // offered on a 32 kbit/s reservation.
            b.add_session(
                SessionSpec::atm(SessionId(0), 32_000),
                &nodes,
                Box::new(BurstSource::new(Duration::from_ms(50), 100, 424)),
            );
            let mut net = b.build(factory);
            net.run_until(Time::from_secs(30));
            net.session_stats(victim).max_delay().unwrap()
        };
        let under_fcfs = run(&|_: &LinkParams| Box::new(FcfsDiscipline::new()));
        let under_lit = run(&|l: &LinkParams| Box::new(LitDiscipline::new(*l)));
        // FCFS: the victim waits behind ~100-packet bursts (> 20 ms).
        assert!(
            under_fcfs > Duration::from_ms(20),
            "fcfs victim max delay {under_fcfs}"
        );
        // LiT: the bound b0/r + β + α = 13.25 + 0.276 + 1 ms (1 hop)
        // holds regardless of the burster.
        assert!(
            under_lit < Duration::from_ms(16),
            "lit victim max delay {under_lit}"
        );
        assert!(under_fcfs.as_ps() > 2 * under_lit.as_ps());
    }

    #[test]
    fn wfq_and_lit_bound_token_bucket_sessions_alike() {
        // The paper: for token-bucket sessions the LiT(1-class) bound
        // equals the PGPS bound. Empirically both disciplines must keep a
        // conforming session below that common bound.
        let bound = {
            use lit_core::{HopSpec, PathBounds};
            let hop = HopSpec {
                link: LinkParams::paper_t1(),
                assignment: DelayAssignment::LenOverRate,
            };
            PathBounds::new(32_000, 424, 424, vec![hop; 3]).delay_bound_token_bucket(424)
        };
        let lit_factory =
            |l: &LinkParams| Box::new(LitDiscipline::new(*l)) as Box<dyn lit_net::Discipline>;
        let wfq_factory = WfqDiscipline::factory();
        let factories: [&lit_net::DisciplineFactory<'_>; 2] = [&lit_factory, &wfq_factory];
        for factory in factories {
            let mut b = NetworkBuilder::new().seed(9);
            let nodes = b.tandem(3, LinkParams::paper_t1());
            let tagged = b.add_session(
                SessionSpec::atm(SessionId(0), 32_000),
                &nodes,
                Box::new(OnOffSource::new(OnOffConfig::paper_voice(
                    Duration::from_ms(650),
                ))),
            );
            // Poisson cross traffic filling most of each link.
            for n in &nodes {
                b.add_session(
                    SessionSpec::atm(SessionId(0), 1_472_000),
                    &[*n],
                    Box::new(PoissonSource::new(Duration::from_secs_f64(0.28804e-3), 424)),
                );
            }
            let mut net = b.build(factory);
            net.run_until(Time::from_secs(60));
            let got = net.session_stats(tagged).max_delay().unwrap();
            assert!(got < bound, "max {got} vs bound {bound}");
        }
    }

    #[test]
    fn stop_and_go_delay_within_frame_bounds() {
        // A (r, T)-smooth session under Stop-and-Go over H hops must see
        // delay within [HT − T, 2HT + T] plus transmission/propagation
        // slack, and jitter ≤ 2T plus the same slack variation.
        let frame = Duration::from_us(13_250); // T chosen so r·T = one cell
        let mut b = NetworkBuilder::new().seed(2);
        let nodes = b.tandem(3, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(OnOffSource::new(OnOffConfig::paper_voice(
                Duration::from_ms(650),
            ))),
        );
        let mut net = b.build(&StopAndGoDiscipline::factory(frame));
        net.run_until(Time::from_secs(120));
        let st = net.session_stats(sid);
        let h = 3u64;
        let slack = (LinkParams::paper_t1().lmax_time() + Duration::from_ms(1)) * h;
        let max = st.max_delay().unwrap();
        let min = st.e2e.min().unwrap();
        assert!(max <= frame * (2 * h + 1) + slack, "max={max}");
        assert!(min >= frame * (h - 1), "min={min}");
        assert!(
            st.jitter().unwrap() <= frame * 2 + slack,
            "jitter={}",
            st.jitter().unwrap()
        );
    }

    #[test]
    fn scfq_shares_capacity_fairly_under_backlog() {
        // Two sessions with 3:1 reservations, both persistently sending
        // more than reserved: throughput must split ≈ 3:1.
        let mut b = NetworkBuilder::new().seed(4);
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let heavy = b.add_session(
            SessionSpec::atm(SessionId(0), 1_152_000),
            &nodes,
            Box::new(PoissonSource::new(Duration::from_us(200), 424)),
        );
        let light = b.add_session(
            SessionSpec::atm(SessionId(0), 384_000),
            &nodes,
            Box::new(PoissonSource::new(Duration::from_us(200), 424)),
        );
        let mut net = b.build(&ScfqDiscipline::factory());
        net.run_until(Time::from_secs(30));
        let h = net.session_stats(heavy).delivered as f64;
        let l = net.session_stats(light).delivered as f64;
        let ratio = h / l;
        assert!((ratio - 3.0).abs() < 0.1, "ratio={ratio}");
    }
}
