//! Delay-EDD (Ferrari & Verma, JSAC '90) and Jitter-EDD (Verma, Zhang &
//! Ferrari, TriCom '91) — the earliest-due-date disciplines of paper §4.
//!
//! Unlike Leave-in-Time/VirtualClock, the deadline here is **not** coupled
//! to the reserved rate: at connection establishment each session is
//! assigned a per-node *local delay bound* `d`, and each packet's deadline
//! is its rate-controlled expected arrival plus `d`:
//!
//! ```text
//! ExA_1 = E_1,   ExA_i = max{ E_i, ExA_{i-1} + x_min },
//! Deadline_i = ExA_i + d
//! ```
//!
//! where `x_min` is the session's declared minimum packet interarrival
//! time. The expected-arrival clamp is Delay-EDD's rate control: a session
//! sending faster than `x_min` only pushes its own deadlines out.
//!
//! **Jitter-EDD** adds a per-hop delay regulator: the upstream node stamps
//! the *slack* `Deadline − F̂` (deadline minus actual finish) into the
//! packet header, and the next hop holds the packet that long before it
//! becomes eligible — so every packet leaves hop `n` appearing to have
//! experienced exactly its local delay bound. This is the mechanism
//! Leave-in-Time's regulators (eq. 9) build on.
//!
//! Because deadlines are decoupled from rates, a separate **schedulability
//! test** ([`EddAdmission`]) is required — the paper's point about the
//! "compromise on the looser coupling": peak-rate bandwidth reservation
//! plus a non-preemptive EDF feasibility test.
//!
//! In this implementation the declared peak rate is the reserved rate:
//! `x_min = L_max / r` (the paper notes that in [26] "bandwidth is
//! reserved at the peak rate implied by `x_min`").

use lit_net::{
    DelayAssignment, Discipline, Packet, ScheduleDecision, SessionId, SessionSpec, SessionTable,
};
use lit_sim::{Duration, Time};

/// Per-session EDD state at one node.
#[derive(Clone, Copy, Debug)]
struct EddState {
    /// Declared minimum packet interarrival time.
    x_min: Duration,
    /// Local delay bound `d` assigned at establishment.
    d: Duration,
    /// Expected arrival of the previous packet; `None` before packet 1.
    exa_prev: Option<Time>,
}

/// The (Delay-/Jitter-)EDD scheduler for one node.
pub struct EddDiscipline {
    /// `true` ⇒ Jitter-EDD (regulators on), `false` ⇒ Delay-EDD.
    jitter: bool,
    sessions: SessionTable<EddState>,
}

impl EddDiscipline {
    /// A Delay-EDD scheduler (work-conserving, no regulators).
    pub fn delay_edd() -> Self {
        EddDiscipline {
            jitter: false,
            sessions: SessionTable::new(),
        }
    }

    /// A Jitter-EDD scheduler (delay regulators at every hop).
    pub fn jitter_edd() -> Self {
        EddDiscipline {
            jitter: true,
            sessions: SessionTable::new(),
        }
    }

    /// A boxed factory for [`lit_net::NetworkBuilder::build`].
    pub fn factory(jitter: bool) -> impl Fn(&lit_net::LinkParams) -> Box<dyn Discipline> {
        move |_: &lit_net::LinkParams| {
            Box::new(if jitter {
                EddDiscipline::jitter_edd()
            } else {
                EddDiscipline::delay_edd()
            }) as Box<dyn Discipline>
        }
    }
}

impl Discipline for EddDiscipline {
    fn name(&self) -> &'static str {
        if self.jitter {
            "jitter-edd"
        } else {
            "delay-edd"
        }
    }

    fn register_session(&mut self, spec: &SessionSpec, delay: &DelayAssignment) {
        self.sessions.insert(
            spec.id,
            EddState {
                x_min: Duration::from_bits_at_rate(spec.max_len_bits as u64, spec.rate_bps),
                // The local delay bound: the session's delay assignment
                // evaluated at its maximum length (EDD bounds are per
                // session, not per packet).
                d: delay.d_max(spec.max_len_bits, spec.rate_bps),
                exa_prev: None,
            },
        );
    }

    fn unregister_session(&mut self, id: SessionId) {
        self.sessions.remove(id);
    }

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        let jitter = self.jitter;
        let s = self
            .sessions
            .get_mut(pkt.session)
            .expect("packet from unregistered session");
        // Jitter-EDD: the regulator holds the packet for the upstream
        // slack carried in the header.
        let eligible = if jitter { now + pkt.hold } else { now };
        let exa = match s.exa_prev {
            Some(prev) => eligible.max(prev + s.x_min),
            None => eligible,
        };
        s.exa_prev = Some(exa);
        let deadline = exa + s.d;
        pkt.deadline = deadline;
        pkt.d = s.d;
        ScheduleDecision::at(eligible, deadline)
    }

    fn on_departure(&mut self, pkt: &mut Packet, finish: Time) {
        if self.jitter {
            // Stamp the slack: how far ahead of its deadline the packet
            // finished. (Zero if it finished late — EDF may miss deadlines
            // when the admission test was not applied.)
            pkt.hold = pkt.deadline.checked_since(finish).unwrap_or(Duration::ZERO);
        }
    }
}

/// One admitted EDD session, as seen by the schedulability test.
#[derive(Clone, Copy, Debug)]
struct EddSession {
    x_min: Duration,
    max_len_bits: u32,
    d: Duration,
}

/// Rejections from the EDD admission test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EddError {
    /// Peak-rate bandwidth test failed: `Σ L_max/x_min > C`.
    PeakRateExceeded,
    /// The non-preemptive EDF feasibility test failed for the session
    /// with the given local delay bound.
    Unschedulable {
        /// The `d` at which feasibility broke.
        at_bound: Duration,
    },
    /// A parameter was zero.
    ZeroParameter,
}

impl std::fmt::Display for EddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EddError::PeakRateExceeded => write!(f, "peak-rate bandwidth exceeded"),
            EddError::Unschedulable { at_bound } => {
                write!(f, "EDF schedulability failed at local bound {at_bound}")
            }
            EddError::ZeroParameter => write!(f, "x_min and d must be positive"),
        }
    }
}

impl std::error::Error for EddError {}

/// The Delay-EDD admission ("schedulability") test for one node — the
/// paper's "schedulability test at connection establishment time \[5\] to
/// avoid scheduling saturation, which can occur even if bandwidth is not
/// overbooked".
///
/// Two conditions:
///
/// 1. **peak-rate bandwidth**: `Σ_j L_max,j / x_min,j ≤ C`;
/// 2. **non-preemptive EDF feasibility** (sufficient condition): for every
///    admitted bound `d_j`, the worst-case backlog of work that may be due
///    by `d_j` — one maximum-length packet from every session with
///    `d_k ≤ d_j`, plus one blocking packet from the longest session with
///    `d_k > d_j` — must fit within `d_j` at link rate.
#[derive(Clone, Debug)]
pub struct EddAdmission {
    link_bps: u64,
    sessions: Vec<EddSession>,
}

impl EddAdmission {
    /// Admission state for a link of capacity `C` bit/s.
    pub fn new(link_bps: u64) -> Self {
        assert!(link_bps > 0, "EddAdmission: zero link rate");
        EddAdmission {
            link_bps,
            sessions: Vec::new(),
        }
    }

    /// Number of admitted sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session was admitted yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    fn tx(&self, bits: u32) -> Duration {
        Duration::from_bits_at_rate(bits as u64, self.link_bps)
    }

    /// Feasibility of a candidate set (all current sessions + `cand`).
    fn feasible(&self, cand: EddSession) -> Result<(), EddError> {
        let mut all: Vec<EddSession> = self.sessions.clone();
        all.push(cand);
        // 1. Peak-rate bandwidth.
        let mut load = 0.0f64;
        for s in &all {
            load += s.max_len_bits as f64 / s.x_min.as_secs_f64();
        }
        if load > self.link_bps as f64 {
            return Err(EddError::PeakRateExceeded);
        }
        // 2. Non-preemptive EDF sufficient test.
        for j in &all {
            let mut demand = Duration::ZERO;
            let mut blocking = Duration::ZERO;
            for k in &all {
                if k.d <= j.d {
                    demand += self.tx(k.max_len_bits);
                } else {
                    blocking = blocking.max(self.tx(k.max_len_bits));
                }
            }
            if demand + blocking > j.d {
                return Err(EddError::Unschedulable { at_bound: j.d });
            }
        }
        Ok(())
    }

    /// Try to admit a session with minimum interarrival `x_min`, maximum
    /// length `max_len_bits`, and requested local delay bound `d`. On
    /// success the bound is granted as a fixed [`DelayAssignment`].
    pub fn try_admit(
        &mut self,
        x_min: Duration,
        max_len_bits: u32,
        d: Duration,
    ) -> Result<DelayAssignment, EddError> {
        if x_min == Duration::ZERO || d == Duration::ZERO || max_len_bits == 0 {
            return Err(EddError::ZeroParameter);
        }
        let cand = EddSession {
            x_min,
            max_len_bits,
            d,
        };
        self.feasible(cand)?;
        self.sessions.push(cand);
        Ok(DelayAssignment::Fixed(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    fn spec(rate: u64) -> SessionSpec {
        SessionSpec::atm(SessionId(0), rate)
    }

    #[test]
    fn expected_arrival_rate_controls_deadlines() {
        // Three back-to-back packets with x_min = 13.25 ms: deadlines
        // spread at x_min even though arrivals are simultaneous.
        let mut d = EddDiscipline::delay_edd();
        d.register_session(&spec(32_000), &DelayAssignment::Fixed(Duration::from_ms(5)));
        let mut stamps = Vec::new();
        for i in 0..3u64 {
            let mut p = Packet::new(SessionId(0), i + 1, 424, Time::ZERO);
            d.on_arrival(&mut p, Time::ZERO);
            stamps.push(p.deadline);
        }
        assert_eq!(stamps[0], Time::from_ms(5));
        assert_eq!(stamps[1], Time::from_ms(5) + Duration::from_us(13_250));
        assert_eq!(stamps[2], Time::from_ms(5) + Duration::from_us(26_500));
    }

    #[test]
    fn slow_arrivals_keep_fresh_deadlines() {
        let mut d = EddDiscipline::delay_edd();
        d.register_session(&spec(32_000), &DelayAssignment::Fixed(Duration::from_ms(5)));
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        d.on_arrival(&mut p, Time::ZERO);
        let mut p = Packet::new(SessionId(0), 2, 424, Time::ZERO);
        d.on_arrival(&mut p, Time::from_ms(100));
        assert_eq!(p.deadline, Time::from_ms(105));
    }

    #[test]
    fn jitter_edd_stamps_slack_and_holds() {
        let mut d = EddDiscipline::jitter_edd();
        d.register_session(&spec(32_000), &DelayAssignment::Fixed(Duration::from_ms(5)));
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        let dec = d.on_arrival(&mut p, Time::ZERO);
        assert_eq!(dec.eligible, Time::ZERO);
        assert_eq!(p.deadline, Time::from_ms(5));
        // Finishes 2 ms early ⇒ slack 2 ms stamped for the next hop.
        d.on_departure(&mut p, Time::from_ms(3));
        assert_eq!(p.hold, Duration::from_ms(2));
        // At the next hop a fresh (Jitter-EDD) node honours the hold.
        let mut d2 = EddDiscipline::jitter_edd();
        d2.register_session(&spec(32_000), &DelayAssignment::Fixed(Duration::from_ms(5)));
        let dec = d2.on_arrival(&mut p, Time::from_ms(4));
        assert_eq!(dec.eligible, Time::from_ms(6));
    }

    #[test]
    fn admission_peak_rate() {
        let mut adm = EddAdmission::new(1_536_000);
        // 424 bits / 1 ms = 424 kbit/s peak each; 3 fit, the 4th passes
        // too (1.696M > 1.536M fails).
        for i in 0..3 {
            adm.try_admit(Duration::from_ms(1), 424, Duration::from_ms(10))
                .unwrap_or_else(|e| panic!("session {i}: {e}"));
        }
        assert_eq!(
            adm.try_admit(Duration::from_ms(1), 424, Duration::from_ms(10))
                .unwrap_err(),
            EddError::PeakRateExceeded
        );
    }

    #[test]
    fn admission_edf_feasibility() {
        let adm_base = EddAdmission::new(1_536_000);
        // One cell takes 0.276 ms. A lone session asking d just above
        // one cell time is fine; ten sessions all asking 1 ms are not
        // (10 cells = 2.76 ms > 1 ms), even though peak bandwidth fits.
        let mut adm = adm_base.clone();
        adm.try_admit(Duration::from_ms(50), 424, Duration::from_us(300))
            .unwrap();
        let mut adm = adm_base.clone();
        let mut failed = None;
        for i in 0..10 {
            if let Err(e) = adm.try_admit(Duration::from_ms(50), 424, Duration::from_ms(1)) {
                failed = Some((i, e));
                break;
            }
        }
        let (i, e) = failed.expect("must eventually fail EDF test");
        assert!(i >= 2, "fails too early at {i}");
        assert!(matches!(e, EddError::Unschedulable { .. }));
    }

    #[test]
    fn admission_rejects_zero_params() {
        let mut adm = EddAdmission::new(1000);
        assert_eq!(
            adm.try_admit(Duration::ZERO, 424, Duration::from_ms(1))
                .unwrap_err(),
            EddError::ZeroParameter
        );
    }
}
