//! Self-Clocked Fair Queueing (Golestani, INFOCOM '94) — referenced by the
//! paper as "a relevant work on fair queueing systems".
//!
//! SCFQ avoids WFQ's GPS reference simulation by using the service tag of
//! the packet **currently in service** as the virtual time:
//!
//! ```text
//! F_i = max{ F_{i-1}, v(t_i) } + L_i / φ_j
//! ```
//!
//! This makes the stamp O(1) like VirtualClock's, at the cost of a looser
//! delay bound. The in-service tag is tracked via the
//! [`Discipline::on_service_start`] hook; when the server goes idle at the
//! end of a busy period, the virtual time and all session stamps reset.

use lit_net::{
    DelayAssignment, Discipline, LinkParams, Packet, ScheduleDecision, SessionId, SessionSpec,
    SessionTable,
};
use lit_sim::Time;

/// Per-session SCFQ state.
#[derive(Clone, Copy, Debug)]
struct ScfqState {
    weight: f64,
    f_last: f64,
}

/// The SCFQ scheduler (one per node).
pub struct ScfqDiscipline {
    sessions: SessionTable<ScfqState>,
    /// Virtual time: tag of the packet in (or last in) service.
    v: f64,
    /// Packets currently queued or in service (busy-period tracking).
    backlog: u64,
}

impl ScfqDiscipline {
    /// A new SCFQ scheduler.
    pub fn new() -> Self {
        ScfqDiscipline {
            sessions: SessionTable::new(),
            v: 0.0,
            backlog: 0,
        }
    }

    /// A boxed factory for [`lit_net::NetworkBuilder::build`].
    pub fn factory() -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        |_: &LinkParams| Box::new(ScfqDiscipline::new()) as Box<dyn Discipline>
    }
}

impl Default for ScfqDiscipline {
    fn default() -> Self {
        Self::new()
    }
}

impl Discipline for ScfqDiscipline {
    fn name(&self) -> &'static str {
        "scfq"
    }

    fn register_session(&mut self, spec: &SessionSpec, _: &DelayAssignment) {
        self.sessions.insert(
            spec.id,
            ScfqState {
                weight: spec.rate_bps as f64,
                f_last: 0.0,
            },
        );
    }

    fn unregister_session(&mut self, id: SessionId) {
        self.sessions.remove(id);
    }

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        self.backlog += 1;
        let v = self.v;
        let s = self
            .sessions
            .get_mut(pkt.session)
            .expect("packet from unregistered session");
        let f = s.f_last.max(v) + pkt.len_bits as f64 / s.weight;
        s.f_last = f;
        // The tag rides in the packet's scratch deadline field (virtual
        // seconds mapped onto the Time axis) so the service-start hook can
        // read it back.
        // lit-lint: allow(raw-time-arithmetic, "SCFQ's virtual clock is a float by definition; it is mapped onto the Time axis only to ride the packet's deadline field")
        pkt.deadline = Time::ZERO + lit_sim::Duration::from_secs_f64(f);
        ScheduleDecision {
            eligible: now,
            key: f.to_bits() as u128,
        }
    }

    fn on_service_start(&mut self, pkt: &Packet, _now: Time) {
        // The in-service packet's tag becomes the virtual time.
        let tag = (pkt.deadline - Time::ZERO).as_secs_f64();
        self.v = self.v.max(tag);
    }

    fn on_departure(&mut self, _pkt: &mut Packet, _finish: Time) {
        self.backlog -= 1;
        if self.backlog == 0 {
            // End of busy period: reset the virtual clock and all stamps.
            self.v = 0.0;
            for s in self.sessions.values_mut() {
                s.f_last = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    #[test]
    fn stamps_share_like_fair_queueing() {
        let mut d = ScfqDiscipline::new();
        d.register_session(
            &SessionSpec::atm(SessionId(0), 32_000),
            &DelayAssignment::LenOverRate,
        );
        d.register_session(
            &SessionSpec::atm(SessionId(1), 32_000),
            &DelayAssignment::LenOverRate,
        );
        let mut keys = Vec::new();
        for i in 0..3u64 {
            for sid in 0..2u32 {
                let mut p = Packet::new(SessionId(sid), i + 1, 424, Time::ZERO);
                keys.push((sid, d.on_arrival(&mut p, Time::ZERO).key));
            }
        }
        keys.sort_by_key(|&(_, k)| k);
        let order: Vec<u32> = keys.iter().map(|&(s, _)| s).collect();
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn busy_period_reset_on_drain() {
        let mut d = ScfqDiscipline::new();
        d.register_session(
            &SessionSpec::atm(SessionId(0), 32_000),
            &DelayAssignment::LenOverRate,
        );
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        let k1 = d.on_arrival(&mut p, Time::ZERO).key;
        d.on_departure(&mut p, Time::from_ms(1));
        let mut p2 = Packet::new(SessionId(0), 2, 424, Time::ZERO);
        let k2 = d.on_arrival(&mut p2, Time::from_secs(5)).key;
        assert_eq!(k1, k2);
    }
}
