//! Weighted Fair Queueing (Demers, Keshav & Shenker '89) with Parekh's
//! GPS virtual time — the PGPS comparison point of paper §4.
//!
//! Each packet is stamped with the virtual time at which it would finish
//! under bit-by-bit round robin:
//!
//! ```text
//! S_i = max{ V(t_i), F_{i-1} },   F_i = S_i + L_i / φ_j
//! ```
//!
//! where the weight `φ_j` is the session's reserved rate and the GPS
//! virtual time advances as `dV/dt = C / Σ_{j ∈ B(t)} φ_j` over the set
//! `B(t)` of sessions backlogged **in the GPS reference system**
//! (`F_j > V`). `V` and the per-session stamps reset at the end of each
//! GPS busy period.
//!
//! Contrast with Leave-in-Time/VirtualClock: the WFQ stamp of a packet
//! depends on *which other sessions are backlogged* at its arrival —
//! virtual time is global state — whereas the LiT deadline is a function
//! of the session's own history alone. That difference is exactly the
//! paper's "most significant difference between PGPS and Leave-in-Time".
//!
//! Complexity: advancing `V` scans the registered sessions per boundary
//! crossing, `O(S)` per arrival worst case — fine at the paper's scale
//! (≤ ~120 sessions/node) and kept simple on purpose; see the bench crate
//! for measured cost.

use lit_net::{
    DelayAssignment, Discipline, LinkParams, Packet, ScheduleDecision, SessionId, SessionSpec,
    SessionTable,
};
use lit_sim::Time;

/// Per-session WFQ state.
#[derive(Clone, Copy, Debug)]
struct WfqState {
    /// Weight `φ_j` (the reserved rate, in bit/s).
    weight: f64,
    /// Virtual finish time of the session's latest packet (0 = none).
    f_last: f64,
}

/// The WFQ scheduler (one per node).
pub struct WfqDiscipline {
    link_bps: f64,
    sessions: SessionTable<WfqState>,
    /// Current GPS virtual time.
    v: f64,
    /// Real time at which `v` was last updated.
    v_at: Time,
}

impl WfqDiscipline {
    /// A WFQ scheduler for a node with the given outgoing link.
    pub fn new(link: LinkParams) -> Self {
        WfqDiscipline {
            link_bps: link.rate_bps as f64,
            sessions: SessionTable::new(),
            v: 0.0,
            v_at: Time::ZERO,
        }
    }

    /// A boxed factory for [`lit_net::NetworkBuilder::build`].
    pub fn factory() -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        |link: &LinkParams| Box::new(WfqDiscipline::new(*link)) as Box<dyn Discipline>
    }

    /// Advance the GPS virtual time to real instant `now`, walking the
    /// piecewise-linear segments between GPS departure boundaries.
    fn advance_virtual(&mut self, now: Time) {
        let mut dt = (now - self.v_at).as_secs_f64();
        self.v_at = now;
        while dt > 0.0 {
            // Backlogged weight and the nearest stamp above V.
            let mut sum_phi = 0.0;
            let mut next_f = f64::INFINITY;
            for s in self.sessions.values() {
                if s.f_last > self.v {
                    sum_phi += s.weight;
                    next_f = next_f.min(s.f_last);
                }
            }
            if sum_phi == 0.0 {
                // GPS idle: end of a busy period. Reset the virtual clock
                // and every stamp so the next busy period starts at 0.
                self.v = 0.0;
                for s in self.sessions.values_mut() {
                    s.f_last = 0.0;
                }
                return;
            }
            let rate = self.link_bps / sum_phi; // dV/dt on this segment
            let dv_to_boundary = next_f - self.v;
            let dt_to_boundary = dv_to_boundary / rate;
            if dt_to_boundary >= dt {
                self.v += dt * rate;
                return;
            }
            self.v = next_f;
            dt -= dt_to_boundary;
        }
    }
}

impl Discipline for WfqDiscipline {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn register_session(&mut self, spec: &SessionSpec, _: &DelayAssignment) {
        self.sessions.insert(
            spec.id,
            WfqState {
                weight: spec.rate_bps as f64,
                f_last: 0.0,
            },
        );
    }

    fn unregister_session(&mut self, id: SessionId) {
        self.sessions.remove(id);
    }

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        self.advance_virtual(now);
        let v = self.v;
        let s = self
            .sessions
            .get_mut(pkt.session)
            .expect("packet from unregistered session");
        let start = v.max(s.f_last);
        let f = start + pkt.len_bits as f64 / s.weight;
        s.f_last = f;
        // Virtual stamps are non-negative f64s; their IEEE-754 bit pattern
        // is order-preserving, giving a monotone u128 key.
        ScheduleDecision {
            eligible: now,
            key: f.to_bits() as u128,
        }
    }

    fn on_departure(&mut self, _: &mut Packet, _: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    fn link() -> LinkParams {
        LinkParams::paper_t1()
    }

    fn spec(id: u32, rate: u64) -> SessionSpec {
        SessionSpec::atm(SessionId(id), rate)
    }

    fn key_to_f(key: u128) -> f64 {
        f64::from_bits(key as u64)
    }

    #[test]
    fn lone_session_virtual_time_tracks_reference() {
        // One backlogged session of weight r on a link of rate C: V
        // advances at C/r, so a packet's virtual finish L/r corresponds to
        // real service L/C.
        let mut d = WfqDiscipline::new(link());
        d.register_session(&spec(0, 32_000), &DelayAssignment::LenOverRate);
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        let k1 = d.on_arrival(&mut p, Time::ZERO).key;
        assert!((key_to_f(k1) - 424.0 / 32_000.0).abs() < 1e-12);
    }

    #[test]
    fn equal_weights_interleave() {
        // Two equally weighted sessions dump 3 packets each at t = 0; the
        // stamps must interleave one-for-one.
        let mut d = WfqDiscipline::new(link());
        d.register_session(&spec(0, 32_000), &DelayAssignment::LenOverRate);
        d.register_session(&spec(1, 32_000), &DelayAssignment::LenOverRate);
        let mut keys = Vec::new();
        for i in 0..3u64 {
            for sid in 0..2u32 {
                let mut p = Packet::new(SessionId(sid), i + 1, 424, Time::ZERO);
                keys.push((sid, d.on_arrival(&mut p, Time::ZERO).key));
            }
        }
        keys.sort_by_key(|&(_, k)| k);
        let order: Vec<u32> = keys.iter().map(|&(s, _)| s).collect();
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn fresh_session_beats_backlogged_one() {
        let mut d = WfqDiscipline::new(link());
        d.register_session(&spec(0, 32_000), &DelayAssignment::LenOverRate);
        d.register_session(&spec(1, 32_000), &DelayAssignment::LenOverRate);
        let mut greedy_key = 0u128;
        for i in 0..20u64 {
            let mut p = Packet::new(SessionId(0), i + 1, 424, Time::ZERO);
            greedy_key = d.on_arrival(&mut p, Time::ZERO).key;
        }
        // Later, after V has advanced a little, session 1 sends one packet.
        let mut p = Packet::new(SessionId(1), 1, 424, Time::from_ms(5));
        let polite_key = d.on_arrival(&mut p, Time::from_ms(5)).key;
        assert!(polite_key < greedy_key);
    }

    #[test]
    fn busy_period_reset() {
        let mut d = WfqDiscipline::new(link());
        d.register_session(&spec(0, 32_000), &DelayAssignment::LenOverRate);
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        let k1 = d.on_arrival(&mut p, Time::ZERO).key;
        // Long idle gap: GPS drains, V resets, so an identical packet gets
        // an identical stamp.
        let mut p = Packet::new(SessionId(0), 2, 424, Time::from_secs(10));
        let k2 = d.on_arrival(&mut p, Time::from_secs(10)).key;
        assert_eq!(k1, k2);
    }

    #[test]
    fn weights_split_proportionally() {
        // Weights 3:1 — in one virtual unit the heavy session finishes 3
        // packets for every 1 of the light one.
        let mut d = WfqDiscipline::new(link());
        d.register_session(&spec(0, 96_000), &DelayAssignment::LenOverRate);
        d.register_session(&spec(1, 32_000), &DelayAssignment::LenOverRate);
        let mut stamps = Vec::new();
        for i in 0..4u64 {
            let mut p = Packet::new(SessionId(0), i + 1, 424, Time::ZERO);
            stamps.push((0u32, key_to_f(d.on_arrival(&mut p, Time::ZERO).key)));
        }
        let mut p = Packet::new(SessionId(1), 1, 424, Time::ZERO);
        stamps.push((1, key_to_f(d.on_arrival(&mut p, Time::ZERO).key)));
        stamps.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        // The light session's single packet (stamp L/32k) sorts after the
        // heavy session's third packet (3·L/96k = L/32k, FIFO tie goes to
        // the earlier stamp equality) and before its fourth.
        let order: Vec<u32> = stamps.iter().map(|&(s, _)| s).collect();
        assert_eq!(order[4], 0, "heavy session's 4th packet is last");
        assert_eq!(&order[..2], &[0, 0]);
    }
}
