//! Hierarchical Round Robin (Kalmanek, Kanakia & Keshav, GlobeCom '90) —
//! the second framing discipline of paper §4.
//!
//! One level of the hierarchy is implemented (the paper's comparison only
//! uses the per-level mechanics): time on the link is divided into frames
//! of `slots_per_frame` fixed-size slots, each long enough for one
//! maximum-length packet; a session admitted with `n_j` slots per frame
//! may transmit at most `n_j` packets per frame, and — like Stop-and-Go —
//! a packet arriving during one frame is not eligible before the next
//! frame starts (non-work-conserving). Bandwidth therefore comes in
//! increments of `L_MAX/T_frame`, and the per-hop delay is bounded by two
//! frame times, "the same upper bound on delay as Stop-and-Go" but with
//! no guaranteed lower bound (a session's slots may fall anywhere within
//! the frame).
//!
//! Mapping onto the [`Discipline`] interface: eligibility is the start of
//! the first frame *after* arrival that still has quota for the session;
//! the priority key is that frame index (FIFO within a frame), so framed
//! service order emerges from the node's ordinary eligible queue.

use lit_net::{
    DelayAssignment, Discipline, LinkParams, Packet, ScheduleDecision, SessionId, SessionSpec,
    SessionTable,
};
use lit_sim::{Duration, Time};

/// Per-session HRR state at one node.
#[derive(Clone, Copy, Debug)]
struct HrrState {
    /// Slots per frame granted to the session.
    quota: u32,
    /// Frame index the session is currently filling.
    frame: u64,
    /// Slots already claimed in `frame`.
    used: u32,
}

/// The single-level HRR scheduler for one node.
#[derive(Clone, Debug)]
pub struct HrrDiscipline {
    /// Frame length `T = slots_per_frame · L_MAX/C`.
    frame: Duration,
    slots_per_frame: u32,
    /// Slots handed out so far (admission bookkeeping).
    slots_granted: u32,
    sessions: SessionTable<HrrState>,
}

impl HrrDiscipline {
    /// A scheduler whose frame holds `slots_per_frame` maximum-length
    /// packets on `link`.
    ///
    /// # Panics
    /// Panics if `slots_per_frame` is zero.
    pub fn new(link: LinkParams, slots_per_frame: u32) -> Self {
        assert!(slots_per_frame > 0, "HRR: empty frame");
        HrrDiscipline {
            // Exact frame length: slots·L_MAX at link rate, divided once
            // (per-slot rounding would drift by a few ps per slot).
            frame: Duration::from_bits_at_rate(
                slots_per_frame as u64 * link.lmax_bits as u64,
                link.rate_bps,
            ),
            slots_per_frame,
            slots_granted: 0,
            sessions: SessionTable::new(),
        }
    }

    /// A boxed factory for [`lit_net::NetworkBuilder::build`].
    pub fn factory(slots_per_frame: u32) -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        move |link: &LinkParams| {
            Box::new(HrrDiscipline::new(*link, slots_per_frame)) as Box<dyn Discipline>
        }
    }

    /// The frame length `T`.
    pub fn frame(&self) -> Duration {
        self.frame
    }

    /// Slots a session of rate `r` needs: `⌈r·T / L_MAX⌉`, the paper's
    /// `L/T`-granularity bandwidth allocation.
    fn slots_for(&self, spec: &SessionSpec) -> u32 {
        let bits_per_frame =
            spec.rate_bps as u128 * self.frame.as_ps() as u128 / lit_sim::PS_PER_SEC as u128;
        bits_per_frame.div_ceil(spec.max_len_bits as u128).max(1) as u32
    }

    /// Frame index containing `t`.
    fn frame_of(&self, t: Time) -> u64 {
        // lit-lint: allow(raw-time-arithmetic, "dimensionless frame index: ratio of two ps counts; division cannot overflow")
        t.as_ps() / self.frame.as_ps()
    }

    /// Start instant of frame `k` (test helper).
    #[cfg(test)]
    fn frame_start(&self, k: u64) -> Time {
        Time::from_ps(k * self.frame.as_ps())
    }
}

impl Discipline for HrrDiscipline {
    fn name(&self) -> &'static str {
        "hrr"
    }

    fn register_session(&mut self, spec: &SessionSpec, _: &DelayAssignment) {
        let quota = self.slots_for(spec);
        self.slots_granted += quota;
        debug_assert!(
            self.slots_granted <= self.slots_per_frame,
            "HRR: frame over-allocated ({} of {} slots)",
            self.slots_granted,
            self.slots_per_frame
        );
        self.sessions.insert(
            spec.id,
            HrrState {
                quota,
                frame: 0,
                used: 0,
            },
        );
    }

    fn unregister_session(&mut self, id: SessionId) {
        if let Some(s) = self.sessions.remove(id) {
            // Return the slots so a future establishment can reuse them.
            self.slots_granted -= s.quota;
        }
    }

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        let earliest = self.frame_of(now) + 1; // never the arrival frame
        let frame_len = self.frame;
        let frame_ps = self.frame.as_ps();
        let s = self
            .sessions
            .get_mut(pkt.session)
            .expect("packet from unregistered session");
        // Find the first frame ≥ earliest with quota left for the session.
        if s.frame < earliest {
            s.frame = earliest;
            s.used = 0;
        }
        if s.used == s.quota {
            s.frame += 1;
            s.used = 0;
        }
        s.used += 1;
        let eligible = Time::ZERO + Duration::from_ps(frame_ps) * s.frame;
        pkt.deadline = eligible + frame_len; // must clear within its frame
        ScheduleDecision {
            eligible,
            key: s.frame as u128,
        }
    }

    fn on_departure(&mut self, _: &mut Packet, _: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    fn link() -> LinkParams {
        LinkParams::paper_t1()
    }

    #[test]
    fn frame_length_is_slots_times_cell() {
        let d = HrrDiscipline::new(link(), 48);
        // 48 cells at 276.042 us each = 13.25 ms.
        assert_eq!(d.frame(), Duration::from_bits_at_rate(48 * 424, 1_536_000));
    }

    #[test]
    fn voice_session_gets_one_slot_per_frame() {
        let mut d = HrrDiscipline::new(link(), 48);
        // 32 kbit/s over a 13.25 ms frame = exactly one 424-bit cell.
        let spec = SessionSpec::atm(SessionId(0), 32_000);
        d.register_session(&spec, &DelayAssignment::LenOverRate);
        // Two packets in the same arrival frame: quota 1 ⇒ the second is
        // pushed to the following frame.
        let mut p1 = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        let e1 = d.on_arrival(&mut p1, Time::ZERO).eligible;
        let mut p2 = Packet::new(SessionId(0), 2, 424, Time::ZERO);
        let e2 = d.on_arrival(&mut p2, Time::ZERO).eligible;
        assert_eq!(e1, d.frame_start(1));
        assert_eq!(e2, d.frame_start(2));
    }

    #[test]
    fn arrival_frame_never_serves() {
        let mut d = HrrDiscipline::new(link(), 48);
        d.register_session(
            &SessionSpec::atm(SessionId(0), 32_000),
            &DelayAssignment::LenOverRate,
        );
        // Arrive late within frame 3: eligible at frame 4's start.
        let t = d.frame_start(4) - Duration::from_us(1);
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        let e = d.on_arrival(&mut p, t).eligible;
        assert_eq!(e, d.frame_start(4));
    }

    #[test]
    fn end_to_end_delay_within_two_frames_per_hop() {
        use lit_net::NetworkBuilder;
        use lit_traffic::{OnOffConfig, OnOffSource};
        let mut b = NetworkBuilder::new().seed(6);
        let nodes = b.tandem(3, link());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(OnOffSource::new(OnOffConfig::paper_voice(
                Duration::from_ms(650),
            ))),
        );
        let mut net = b.build(&HrrDiscipline::factory(48));
        net.run_until(Time::from_secs(120));
        let st = net.session_stats(sid);
        assert!(st.delivered > 1000);
        let frame = Duration::from_bits_at_rate(48 * 424, 1_536_000);
        let slack = (link().lmax_time() + Duration::from_ms(1)) * 3;
        // ≤ 2 frames per hop (held < 1 frame, served within 1 frame).
        assert!(
            st.max_delay().unwrap() <= frame * 6 + slack,
            "max {}",
            st.max_delay().unwrap()
        );
        // Like Stop-and-Go, a floor exists too: at least one full frame
        // wait at the first hop.
        assert!(st.e2e.min().unwrap() >= frame - link().lmax_time());
    }

    #[test]
    fn bandwidth_granularity_is_l_over_t() {
        // A 33 kbit/s session needs 2 slots of a 13.25 ms frame — the
        // coarse granularity the paper criticizes framing schemes for.
        let d = HrrDiscipline::new(link(), 48);
        assert_eq!(d.slots_for(&SessionSpec::atm(SessionId(0), 32_000)), 1);
        assert_eq!(d.slots_for(&SessionSpec::atm(SessionId(0), 33_000)), 2);
    }
}
