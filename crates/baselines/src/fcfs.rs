//! First-come-first-served — the non-solution the paper's introduction
//! argues against.
//!
//! FCFS gives no per-session guarantees: a misbehaving session inflates
//! every other session's delay without limit. It is included as the
//! baseline for the firewall/isolation experiments and as the simplest
//! possible [`Discipline`] implementation.

use lit_net::{DelayAssignment, Discipline, Packet, ScheduleDecision, SessionSpec};
use lit_sim::Time;

/// Plain FCFS: every packet is immediately eligible and served in arrival
/// order.
#[derive(Clone, Debug, Default)]
pub struct FcfsDiscipline;

impl FcfsDiscipline {
    /// A new FCFS scheduler.
    pub fn new() -> Self {
        FcfsDiscipline
    }

    /// A boxed factory for [`lit_net::NetworkBuilder::build`].
    pub fn factory() -> impl Fn(&lit_net::LinkParams) -> Box<dyn Discipline> {
        |_: &lit_net::LinkParams| Box::new(FcfsDiscipline) as Box<dyn Discipline>
    }
}

impl Discipline for FcfsDiscipline {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn register_session(&mut self, _: &SessionSpec, _: &DelayAssignment) {}

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        // The "deadline" diagnostic for FCFS is simply the arrival time.
        pkt.deadline = now;
        ScheduleDecision::at(now, now)
    }

    fn on_departure(&mut self, _: &mut Packet, _: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;
    use lit_sim::Duration;

    #[test]
    fn arrival_order_is_service_order() {
        let mut d = FcfsDiscipline::new();
        d.register_session(
            &SessionSpec::atm(SessionId(0), 1),
            &DelayAssignment::LenOverRate,
        );
        let mut p1 = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        let mut p2 = Packet::new(SessionId(0), 2, 424, Time::ZERO);
        let k1 = d.on_arrival(&mut p1, Time::from_ms(1)).key;
        let k2 = d.on_arrival(&mut p2, Time::from_ms(2)).key;
        assert!(k1 < k2);
        let e = d.on_arrival(&mut p2, Time::from_ms(3));
        assert_eq!(e.eligible, Time::from_ms(3));
        let _ = Duration::ZERO;
    }
}
