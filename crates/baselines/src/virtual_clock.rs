//! VirtualClock (L. Zhang, SIGCOMM '90 / ToCS '91) — the discipline
//! Leave-in-Time generalizes.
//!
//! Each packet is stamped with the finishing time it would have in the
//! session's dedicated fixed-rate server (eq. 2 of the Leave-in-Time
//! paper):
//!
//! ```text
//! F_i = max{ t_i, F_{i-1} } + L_i / r,    F_0 = t_1
//! ```
//!
//! and packets are served in increasing stamp order. This file is an
//! *independent* implementation (it never touches `lit-core`), which lets
//! the test suite verify the paper's claim that Leave-in-Time with one
//! admission class, `d = L/r`, and no jitter control behaves identically.

use lit_net::{
    DelayAssignment, Discipline, Packet, ScheduleDecision, SessionId, SessionSpec, SessionTable,
};
use lit_sim::{Duration, Time};

/// Per-session VirtualClock state.
#[derive(Clone, Copy, Debug)]
struct VcState {
    rate_bps: u64,
    /// `F_{i-1}`; `None` before the first packet.
    f_prev: Option<Time>,
}

/// The VirtualClock scheduler (one per node).
#[derive(Clone, Debug, Default)]
pub struct VirtualClockDiscipline {
    sessions: SessionTable<VcState>,
}

impl VirtualClockDiscipline {
    /// A new VirtualClock scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// A boxed factory for [`lit_net::NetworkBuilder::build`].
    pub fn factory() -> impl Fn(&lit_net::LinkParams) -> Box<dyn Discipline> {
        |_: &lit_net::LinkParams| Box::new(VirtualClockDiscipline::new()) as Box<dyn Discipline>
    }
}

impl Discipline for VirtualClockDiscipline {
    fn name(&self) -> &'static str {
        "virtualclock"
    }

    fn register_session(&mut self, spec: &SessionSpec, _: &DelayAssignment) {
        self.sessions.insert(
            spec.id,
            VcState {
                rate_bps: spec.rate_bps,
                f_prev: None,
            },
        );
    }

    fn unregister_session(&mut self, id: SessionId) {
        self.sessions.remove(id);
    }

    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
        let s = self
            .sessions
            .get_mut(pkt.session)
            .expect("packet from unregistered session");
        let service = Duration::from_bits_at_rate(pkt.len_bits as u64, s.rate_bps);
        let base = match s.f_prev {
            Some(f) => now.max(f),
            None => now,
        };
        let f = base + service;
        s.f_prev = Some(f);
        pkt.deadline = f;
        pkt.d = service;
        ScheduleDecision::at(now, f)
    }

    fn on_departure(&mut self, _: &mut Packet, _: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_net::SessionId;

    #[test]
    fn stamp_recursion_matches_eq2() {
        let mut d = VirtualClockDiscipline::new();
        d.register_session(
            &SessionSpec::atm(SessionId(0), 32_000),
            &DelayAssignment::LenOverRate,
        );
        let mut p = Packet::new(SessionId(0), 1, 424, Time::ZERO);
        d.on_arrival(&mut p, Time::ZERO);
        assert_eq!(p.deadline, Time::from_us(13_250));
        let mut p = Packet::new(SessionId(0), 2, 424, Time::ZERO);
        d.on_arrival(&mut p, Time::from_ms(1));
        assert_eq!(p.deadline, Time::from_us(26_500));
        let mut p = Packet::new(SessionId(0), 3, 424, Time::ZERO);
        d.on_arrival(&mut p, Time::from_ms(100));
        assert_eq!(p.deadline, Time::from_us(113_250));
    }

    #[test]
    fn stamps_isolate_sessions() {
        // A backlogged session's stamps run ahead; a fresh session's first
        // packet stamps near real time and therefore wins.
        let mut d = VirtualClockDiscipline::new();
        d.register_session(
            &SessionSpec::atm(SessionId(0), 32_000),
            &DelayAssignment::LenOverRate,
        );
        d.register_session(
            &SessionSpec::atm(SessionId(1), 32_000),
            &DelayAssignment::LenOverRate,
        );
        let mut greedy_key = 0u128;
        for i in 0..50 {
            let mut p = Packet::new(SessionId(0), i + 1, 424, Time::ZERO);
            greedy_key = d.on_arrival(&mut p, Time::ZERO).key;
        }
        let mut p = Packet::new(SessionId(1), 1, 424, Time::ZERO);
        let polite_key = d.on_arrival(&mut p, Time::ZERO).key;
        assert!(polite_key < greedy_key);
    }
}
