//! Network-level behaviour of the EDD and RCSP baselines.

#![forbid(unsafe_code)]

use lit_baselines::{EddAdmission, EddDiscipline, RcspDiscipline};
use lit_net::{DelayAssignment, LinkParams, NetworkBuilder, NodeId, SessionId, SessionSpec};
use lit_sim::{Duration, Time};
use lit_traffic::{BurstSource, OnOffConfig, OnOffSource, PoissonSource};

/// Build a 3-hop network with two tagged voice sessions (one per flag) and
/// Poisson load, under the given discipline factory.
fn run_tagged_pair(
    factory: &lit_net::DisciplineFactory<'_>,
    jc_flags: [bool; 2],
) -> [lit_net::SessionStats; 2] {
    let mut b = NetworkBuilder::new().seed(21);
    let nodes = b.tandem(3, LinkParams::paper_t1());
    let mut tagged = Vec::new();
    for &jc in &jc_flags {
        let mut spec = SessionSpec::atm(SessionId(0), 32_000);
        spec.jitter_control = jc;
        tagged.push(b.add_session(
            spec,
            &nodes,
            Box::new(OnOffSource::new(OnOffConfig::paper_voice(
                Duration::from_ms(650),
            ))),
        ));
    }
    for n in &nodes {
        b.add_session(
            SessionSpec::atm(SessionId(0), 1_400_000),
            &[*n],
            Box::new(PoissonSource::new(Duration::from_secs_f64(0.32e-3), 424)),
        );
    }
    let mut net = b.build(factory);
    net.run_until(Time::from_secs(60));
    [
        net.session_stats(tagged[0]).clone(),
        net.session_stats(tagged[1]).clone(),
    ]
}

#[test]
fn jitter_edd_regulators_cut_jitter() {
    // Note: the jitter_control *spec flag* is irrelevant for EDD — the
    // regulator choice is the discipline variant itself — so the pair is
    // run once per discipline.
    let dedd = EddDiscipline::factory(false);
    let jedd = EddDiscipline::factory(true);
    let [plain, _] = run_tagged_pair(&dedd, [false, false]);
    let [smooth, _] = run_tagged_pair(&jedd, [false, false]);
    assert!(plain.delivered > 1000 && smooth.delivered > 1000);
    assert!(
        smooth.jitter().unwrap().as_ps() * 2 < plain.jitter().unwrap().as_ps(),
        "jitter-edd {} vs delay-edd {}",
        smooth.jitter().unwrap(),
        plain.jitter().unwrap()
    );
    // Regulators trade mean delay for smoothness.
    assert!(smooth.mean_delay().unwrap() > plain.mean_delay().unwrap());
}

#[test]
fn rcsp_priority_levels_order_delays() {
    // Two voice sessions on 3 hops, one mapped to the tight level and one
    // to the loose level; heavy shared Poisson load in between at the
    // middle level.
    let levels = vec![
        Duration::from_ms(2),
        Duration::from_ms(15),
        Duration::from_ms(80),
    ];
    let mut b = NetworkBuilder::new().seed(33);
    let nodes = b.tandem(3, LinkParams::paper_t1());
    let fast = b.add_session(
        SessionSpec::atm(SessionId(0), 32_000)
            .with_delay(DelayAssignment::Fixed(Duration::from_ms(2))),
        &nodes,
        Box::new(OnOffSource::new(OnOffConfig::paper_voice(
            Duration::from_ms(88),
        ))),
    );
    let slow = b.add_session(
        SessionSpec::atm(SessionId(0), 32_000)
            .with_delay(DelayAssignment::Fixed(Duration::from_ms(80))),
        &nodes,
        Box::new(OnOffSource::new(OnOffConfig::paper_voice(
            Duration::from_ms(88),
        ))),
    );
    for n in &nodes {
        b.add_session(
            SessionSpec::atm(SessionId(0), 1_400_000)
                .with_delay(DelayAssignment::Fixed(Duration::from_ms(15))),
            &[*n],
            Box::new(PoissonSource::new(Duration::from_secs_f64(0.3e-3), 424)),
        );
    }
    let mut net = b.build(&RcspDiscipline::factory(levels));
    net.run_until(Time::from_secs(60));
    let f = net.session_stats(fast);
    let s = net.session_stats(slow);
    assert!(f.delivered > 1000 && s.delivered > 1000);
    assert!(
        f.max_delay().unwrap() < s.max_delay().unwrap(),
        "fast {} !< slow {}",
        f.max_delay().unwrap(),
        s.max_delay().unwrap()
    );
    assert!(f.mean_delay().unwrap() < s.mean_delay().unwrap());
}

#[test]
fn rcsp_rate_control_tames_a_misbehaver() {
    // A misbehaving burster shares the top priority level with a polite
    // session. RCSP's rate controller spaces the burster's eligibility at
    // its declared x_min, so the victim barely notices.
    let levels = vec![Duration::from_ms(10), Duration::from_ms(100)];
    let mut b = NetworkBuilder::new().seed(4);
    let nodes = b.tandem(1, LinkParams::paper_t1());
    let victim = b.add_session(
        SessionSpec::atm(SessionId(0), 32_000)
            .with_delay(DelayAssignment::Fixed(Duration::from_ms(10))),
        &nodes,
        Box::new(OnOffSource::new(OnOffConfig::paper_voice(Duration::ZERO))),
    );
    b.add_session(
        SessionSpec::atm(SessionId(0), 32_000)
            .with_delay(DelayAssignment::Fixed(Duration::from_ms(10))),
        &nodes,
        Box::new(BurstSource::new(Duration::from_ms(50), 100, 424)),
    );
    let mut net = b.build(&RcspDiscipline::factory(levels));
    net.run_until(Time::from_secs(30));
    let st = net.session_stats(victim);
    assert!(
        st.max_delay().unwrap() < Duration::from_ms(5),
        "victim max {}",
        st.max_delay().unwrap()
    );
}

#[test]
fn admitted_edd_sessions_meet_their_deadlines() {
    // Admit a mix of local delay bounds through the schedulability test,
    // then run exactly that set: no packet may finish past its deadline
    // (NodeStats.max_lateness ≤ 0).
    let mut adm = EddAdmission::new(1_536_000);
    let mut accepted = Vec::new();
    for (rate, d_ms) in [(64_000u64, 2u64), (128_000, 3), (256_000, 5), (256_000, 8)] {
        let x_min = Duration::from_bits_at_rate(424, rate);
        if adm.try_admit(x_min, 424, Duration::from_ms(d_ms)).is_ok() {
            accepted.push((rate, d_ms));
        }
    }
    assert!(
        accepted.len() >= 3,
        "admission too conservative: {accepted:?}"
    );

    let mut b = NetworkBuilder::new().seed(77);
    let nodes = b.tandem(1, LinkParams::paper_t1());
    for &(rate, d_ms) in &accepted {
        // Offer exactly the declared peak: CBR at x_min spacing.
        let x_min = Duration::from_bits_at_rate(424, rate);
        b.add_session(
            SessionSpec::atm(SessionId(0), rate)
                .with_delay(DelayAssignment::Fixed(Duration::from_ms(d_ms))),
            &nodes,
            Box::new(lit_traffic::DeterministicSource::new(x_min, 424)),
        );
    }
    let mut net = b.build(&EddDiscipline::factory(false));
    net.run_until(Time::from_secs(30));
    let lateness = net.node_stats(NodeId(0)).max_lateness().unwrap();
    assert!(lateness <= 0, "a deadline was missed by {lateness} ps");
}

#[test]
fn unadmitted_overload_misses_edd_deadlines() {
    // The complement: skip admission, overload the link with tight
    // deadlines, and watch EDF miss them — the saturation the paper says
    // the schedulability test exists to prevent.
    let mut b = NetworkBuilder::new().seed(78);
    let nodes = b.tandem(1, LinkParams::paper_t1());
    for _ in 0..12 {
        b.add_session(
            SessionSpec::atm(SessionId(0), 128_000)
                .with_delay(DelayAssignment::Fixed(Duration::from_us(500))),
            &nodes,
            Box::new(PoissonSource::new(Duration::from_us(3_000), 424)),
        );
    }
    let mut net = b.build(&EddDiscipline::factory(false));
    net.run_until(Time::from_secs(10));
    let lateness = net.node_stats(NodeId(0)).max_lateness().unwrap();
    assert!(lateness > 0, "expected missed deadlines, got {lateness} ps");
}
