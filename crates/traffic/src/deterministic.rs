//! Deterministic (fixed packet rate / CBR) source, plus a worst-case burst
//! source used by adversarial tests.
//!
//! The paper uses Deterministic sources "in experiments where we want to
//! commit all the bandwidth of a server" (Fig. 11: 47 × 32 kbit/s CBR
//! sessions as cross traffic). Spacing is `a_D = 13.25 ms` with 424-bit
//! packets, i.e. exactly the 32 kbit/s reservation.

use crate::source::{Emission, Source};
use lit_sim::{Duration, SimRng, Time};

/// A constant-bit-rate source: one `len_bits` packet every `gap`.
#[derive(Clone, Debug)]
pub struct DeterministicSource {
    gap: Duration,
    len_bits: u32,
    /// Time of the next emission.
    next_at: Time,
}

impl DeterministicSource {
    /// Create a CBR source with the given spacing and packet length,
    /// first emission at `gap` (so an idle origin does not emit at t = 0).
    ///
    /// # Panics
    /// Panics if `gap` is zero.
    pub fn new(gap: Duration, len_bits: u32) -> Self {
        assert!(gap > Duration::ZERO, "DeterministicSource: zero gap");
        DeterministicSource {
            gap,
            len_bits,
            next_at: Time::ZERO + gap,
        }
    }

    /// Shift the emission phase: first packet at `gap + offset`.
    /// Staggering phases is how Fig. 11's 47 CBR cross sessions per link
    /// avoid all arriving in one aligned batch.
    pub fn with_offset(mut self, offset: Duration) -> Self {
        self.next_at += offset;
        self
    }

    /// The paper's CBR configuration: 424-bit packets every 13.25 ms
    /// (32 kbit/s).
    pub fn paper_cbr() -> Self {
        DeterministicSource::new(Duration::from_us(13_250), 424)
    }
}

impl Source for DeterministicSource {
    fn next_emission(&mut self, _rng: &mut SimRng) -> Option<Emission> {
        let at = self.next_at;
        self.next_at = at + self.gap;
        Some(Emission {
            at,
            len_bits: self.len_bits,
        })
    }

    fn mean_rate_bps(&self) -> Option<f64> {
        Some(self.len_bits as f64 / self.gap.as_secs_f64())
    }
}

/// An adversarial source: every `period`, emits `burst` packets
/// back-to-back (all stamped at the same instant).
///
/// Not part of the paper's source mix — used by saturation and bound tests
/// to realize worst-case token-bucket behaviour (a full bucket dumped at
/// once), and to show what happens to FCFS under misbehaving traffic.
#[derive(Clone, Debug)]
pub struct BurstSource {
    period: Duration,
    burst: u32,
    len_bits: u32,
    next_burst_at: Time,
    remaining_in_burst: u32,
}

impl BurstSource {
    /// Create a burst source; first burst at `Time::ZERO + period`.
    ///
    /// # Panics
    /// Panics if `period` is zero or `burst` is zero.
    pub fn new(period: Duration, burst: u32, len_bits: u32) -> Self {
        assert!(period > Duration::ZERO, "BurstSource: zero period");
        assert!(burst > 0, "BurstSource: empty burst");
        BurstSource {
            period,
            burst,
            len_bits,
            next_burst_at: Time::ZERO + period,
            remaining_in_burst: 0,
        }
    }
}

impl Source for BurstSource {
    fn next_emission(&mut self, _rng: &mut SimRng) -> Option<Emission> {
        if self.remaining_in_burst == 0 {
            self.remaining_in_burst = self.burst;
        }
        let at = self.next_burst_at;
        self.remaining_in_burst -= 1;
        if self.remaining_in_burst == 0 {
            self.next_burst_at = at + self.period;
        }
        Some(Emission {
            at,
            len_bits: self.len_bits,
        })
    }

    fn mean_rate_bps(&self) -> Option<f64> {
        Some(self.burst as f64 * self.len_bits as f64 / self.period.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceExt;

    #[test]
    fn paper_cbr_is_32kbps() {
        let s = DeterministicSource::paper_cbr();
        assert!((s.mean_rate_bps().unwrap() - 32_000.0).abs() < 1.0);
    }

    #[test]
    fn exact_spacing() {
        let mut s = DeterministicSource::new(Duration::from_ms(5), 1000);
        let mut rng = SimRng::seed_from(0);
        let em = s.emissions_until(Time::from_secs(1), &mut rng);
        assert_eq!(em.len(), 199); // 5ms, 10ms, …, 995ms
        for (i, e) in em.iter().enumerate() {
            assert_eq!(e.at, Time::from_ms(5 * (i as u64 + 1)));
        }
    }

    #[test]
    fn offset_shifts_phase() {
        let mut s =
            DeterministicSource::new(Duration::from_ms(5), 424).with_offset(Duration::from_ms(2));
        let mut rng = SimRng::seed_from(0);
        assert_eq!(s.next_emission(&mut rng).unwrap().at, Time::from_ms(7));
    }

    #[test]
    fn burst_source_emits_simultaneous_packets() {
        let mut s = BurstSource::new(Duration::from_ms(10), 4, 424);
        let mut rng = SimRng::seed_from(0);
        let em = s.emissions_until(Time::from_ms(25), &mut rng);
        assert_eq!(em.len(), 8);
        assert!(em[..4].iter().all(|e| e.at == Time::from_ms(10)));
        assert!(em[4..].iter().all(|e| e.at == Time::from_ms(20)));
    }

    #[test]
    fn burst_rate() {
        let s = BurstSource::new(Duration::from_ms(100), 10, 424);
        assert!((s.mean_rate_bps().unwrap() - 42_400.0).abs() < 1.0);
    }
}
