//! The [`Source`] abstraction: anything that emits a timed sequence of
//! packets into the network.
//!
//! A source is a *pull*-style generator: the simulation executor asks for
//! the next emission and schedules it. Sources carry their own internal
//! clock, so they are independent of the event loop and can be unit-tested
//! (and property-tested) in isolation.

use lit_sim::{SimRng, Time};

/// A single packet emission: the instant the packet is handed to the
/// network (its last bit generated) and its length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Emission {
    /// When the packet enters the network.
    pub at: Time,
    /// Packet length in bits (header + payload, as the paper counts it).
    pub len_bits: u32,
}

/// A packet generator with its own notion of time.
///
/// Implementations must be **monotone**: successive calls return
/// non-decreasing `at` values. `None` means the source is exhausted and
/// will never emit again.
///
/// `Send` is a supertrait so the sharded executor can pin each session's
/// source to the worker thread owning its first hop; sources are
/// self-contained generators with no shared handles.
pub trait Source: Send {
    /// Produce the next emission, advancing internal state.
    fn next_emission(&mut self, rng: &mut SimRng) -> Option<Emission>;

    /// Long-run average bit rate, if the model has one in closed form.
    /// Used for documentation, sanity checks and utilization estimates —
    /// never for scheduling.
    fn mean_rate_bps(&self) -> Option<f64> {
        None
    }
}

/// Extension helpers for working with sources outside the event loop.
pub trait SourceExt: Source {
    /// Collect every emission up to (and excluding) `horizon`.
    ///
    /// Convenient for analysis and tests; the real simulator pulls lazily.
    fn emissions_until(&mut self, horizon: Time, rng: &mut SimRng) -> Vec<Emission> {
        let mut out = Vec::new();
        while let Some(e) = self.next_emission(rng) {
            if e.at >= horizon {
                break;
            }
            out.push(e);
        }
        out
    }
}

impl<S: Source + ?Sized> SourceExt for S {}

#[cfg(test)]
mod tests {
    use super::*;
    use lit_sim::Duration;

    /// A two-packet source for exercising the trait plumbing.
    struct TwoShots {
        sent: u32,
    }

    impl Source for TwoShots {
        fn next_emission(&mut self, _rng: &mut SimRng) -> Option<Emission> {
            if self.sent >= 2 {
                return None;
            }
            self.sent += 1;
            Some(Emission {
                at: Time::ZERO + Duration::from_ms(self.sent as u64),
                len_bits: 424,
            })
        }
    }

    #[test]
    fn emissions_until_respects_horizon() {
        let mut rng = SimRng::seed_from(0);
        let mut s = TwoShots { sent: 0 };
        let got = s.emissions_until(Time::from_ms(2), &mut rng);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].at, Time::from_ms(1));
    }

    #[test]
    fn exhaustion() {
        let mut rng = SimRng::seed_from(0);
        let mut s = TwoShots { sent: 0 };
        assert!(s.next_emission(&mut rng).is_some());
        assert!(s.next_emission(&mut rng).is_some());
        assert!(s.next_emission(&mut rng).is_none());
    }
}
