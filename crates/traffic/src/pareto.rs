//! Heavy-tailed ON-OFF source — an extension beyond the paper's source
//! mix.
//!
//! The paper's guarantees hold for *any* dynamic traffic behaviour; its
//! evaluation only exercises exponential/deterministic models. Measured
//! data traffic, however, is famously heavy-tailed (self-similar), and the
//! "simulated upper bound" recipe of Figures 9–11 is exactly the tool for
//! such sessions: no closed-form reference distribution exists, but the
//! co-simulated reference server still yields a valid ineq.-16 bound.
//!
//! [`ParetoOnOffSource`] keeps the paper's ON-OFF skeleton (fixed in-burst
//! spacing `T`) but draws both the burst length (in packets) and the OFF
//! duration from Pareto distributions: `P(X > x) = (x_m/x)^α` with shape
//! `α` and scale `x_m`. Shapes in `(1, 2]` give finite mean but infinite
//! variance — the classical self-similarity regime.

use crate::source::{Emission, Source};
use lit_sim::{Duration, SimRng, Time};

/// Configuration of a heavy-tailed ON-OFF source.
#[derive(Clone, Copy, Debug)]
pub struct ParetoOnOffConfig {
    /// Pareto shape for the burst length (packets); `1 < α ≤ 2` for the
    /// heavy-tailed regime.
    pub on_shape: f64,
    /// Mean burst length in packets (must exceed 1).
    pub mean_burst_packets: f64,
    /// Pareto shape for the OFF duration.
    pub off_shape: f64,
    /// Mean OFF duration.
    pub mean_off: Duration,
    /// In-burst packet spacing `T`.
    pub spacing: Duration,
    /// Packet length in bits.
    pub len_bits: u32,
}

impl ParetoOnOffConfig {
    /// A voice-like heavy-tailed profile: spacing and packet size as the
    /// paper's ON-OFF source, burst/silence Pareto with shape 1.5.
    pub fn heavy_voice(mean_off: Duration) -> Self {
        ParetoOnOffConfig {
            on_shape: 1.5,
            mean_burst_packets: 26.566, // a_ON/T of the paper's source
            off_shape: 1.5,
            mean_off,
            spacing: Duration::from_us(13_250),
            len_bits: 424,
        }
    }
}

/// Draw a Pareto variate with the given shape and **mean**: scale is
/// derived as `x_m = mean·(α−1)/α` (finite mean requires `α > 1`).
fn pareto_with_mean(rng: &mut SimRng, shape: f64, mean: f64) -> f64 {
    debug_assert!(shape > 1.0, "pareto: shape must exceed 1 for finite mean");
    let xm = mean * (shape - 1.0) / shape;
    let u = 1.0 - rng.unit_f64(); // (0, 1]
    xm / u.powf(1.0 / shape)
}

/// The heavy-tailed ON-OFF state machine.
#[derive(Clone, Debug)]
pub struct ParetoOnOffSource {
    cfg: ParetoOnOffConfig,
    next_at: Time,
    remaining: u64,
    started: bool,
}

impl ParetoOnOffSource {
    /// Create a source; an OFF period precedes the first burst.
    ///
    /// # Panics
    /// Panics unless both shapes exceed 1 (finite means) and the mean
    /// burst length is at least 1 packet.
    pub fn new(cfg: ParetoOnOffConfig) -> Self {
        assert!(
            cfg.on_shape > 1.0 && cfg.off_shape > 1.0,
            "shapes must be > 1"
        );
        assert!(
            cfg.mean_burst_packets >= 1.0,
            "bursts must average ≥ 1 packet"
        );
        ParetoOnOffSource {
            cfg,
            next_at: Time::ZERO,
            remaining: 0,
            started: false,
        }
    }

    fn draw_off(&self, rng: &mut SimRng) -> Duration {
        let secs = pareto_with_mean(rng, self.cfg.off_shape, self.cfg.mean_off.as_secs_f64());
        // Cap a single silence at an hour: keeps pathological tail draws
        // from overflowing the clock while distorting the mean by < 1e-6
        // at any realistic configuration.
        // lit-lint: allow(raw-time-arithmetic, "Pareto sampling is float by nature; the 1h cap above bounds the draw before rounding")
        Duration::from_secs_f64(secs.min(3_600.0))
    }

    fn draw_burst(&self, rng: &mut SimRng) -> u64 {
        let n = pareto_with_mean(rng, self.cfg.on_shape, self.cfg.mean_burst_packets);
        // At least one packet; cap at a million to bound event memory.
        (n.round() as u64).clamp(1, 1_000_000)
    }
}

impl Source for ParetoOnOffSource {
    fn next_emission(&mut self, rng: &mut SimRng) -> Option<Emission> {
        if !self.started {
            self.started = true;
            let off = self.draw_off(rng);
            self.remaining = self.draw_burst(rng);
            self.next_at = Time::ZERO + off;
        }
        if self.remaining == 0 {
            let off = self.draw_off(rng);
            self.remaining = self.draw_burst(rng);
            self.next_at += off;
        }
        let at = self.next_at;
        self.remaining -= 1;
        self.next_at = at + self.cfg.spacing;
        Some(Emission {
            at,
            len_bits: self.cfg.len_bits,
        })
    }

    fn mean_rate_bps(&self) -> Option<f64> {
        let t = self.cfg.spacing.as_secs_f64();
        let on = self.cfg.mean_burst_packets * t;
        let duty = on / (on + self.cfg.mean_off.as_secs_f64());
        Some(self.cfg.len_bits as f64 / t * duty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceExt;

    #[test]
    fn monotone_and_spaced() {
        let mut rng = SimRng::seed_from(5);
        let mut s = ParetoOnOffSource::new(ParetoOnOffConfig::heavy_voice(Duration::from_ms(650)));
        let mut prev = Time::ZERO;
        for _ in 0..5_000 {
            let e = s.next_emission(&mut rng).unwrap();
            assert!(e.at >= prev);
            prev = e.at;
        }
    }

    #[test]
    fn long_run_rate_tracks_mean() {
        let mut rng = SimRng::seed_from(12);
        let mut s = ParetoOnOffSource::new(ParetoOnOffConfig::heavy_voice(Duration::from_ms(650)));
        let horizon = Time::from_secs(20_000);
        let em = s.emissions_until(horizon, &mut rng);
        let bits: u64 = em.iter().map(|e| e.len_bits as u64).sum();
        let rate = bits as f64 / horizon.as_secs_f64();
        let want = s.mean_rate_bps().unwrap();
        // Heavy tails converge slowly; 20 % at this horizon is expected.
        assert!(
            (rate - want).abs() / want < 0.2,
            "rate={rate:.0} want={want:.0}"
        );
    }

    #[test]
    fn bursts_are_heavy_tailed() {
        // The burst-length distribution must produce rare giants: with
        // α = 1.5 and mean ~26, bursts over 10× the mean should appear at
        // a rate far exceeding the exponential model's (which would be
        // e^{-10} ≈ 5e-5).
        let mut rng = SimRng::seed_from(3);
        let mut giants = 0;
        let n = 20_000;
        for _ in 0..n {
            if pareto_with_mean(&mut rng, 1.5, 26.566) > 265.66 {
                giants += 1;
            }
        }
        let frac = giants as f64 / n as f64;
        assert!(frac > 0.002, "giant-burst fraction {frac}");
    }

    #[test]
    fn pareto_mean_is_calibrated() {
        let mut rng = SimRng::seed_from(7);
        let n = 2_000_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += pareto_with_mean(&mut rng, 2.5, 10.0);
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "shapes must be > 1")]
    fn infinite_mean_rejected() {
        let mut cfg = ParetoOnOffConfig::heavy_voice(Duration::from_ms(1));
        cfg.on_shape = 0.9;
        let _ = ParetoOnOffSource::new(cfg);
    }
}
