//! # lit-traffic — traffic source models
//!
//! The source models of the paper's evaluation (§3 "Traffic Source
//! Models"), plus the token-bucket filter/shaper its analysis relies on:
//!
//! * [`OnOffSource`] — two-state Markov-modulated: fixed spacing `T` while
//!   ON, geometric burst length with mean `a_ON/T`, exponential OFF with
//!   mean `a_OFF`; models standard voice;
//! * [`PoissonSource`] — exponential interarrivals (the session whose
//!   reference server is M/D/1, enabling the analytic bound of Figs 9–11);
//! * [`DeterministicSource`] — CBR, for fully committed links (Fig. 11);
//! * [`BurstSource`] — adversarial back-to-back bursts (worst cases);
//! * [`TokenBucket`] / [`ShapedSource`] — conformance checking and
//!   enforcement for `(r, b₀)` leaky-bucket sessions (ineq. 14–15);
//! * [`TraceSource`] — replay of recorded/handcrafted arrival sequences
//!   (CSV import/export for external traces);
//! * [`ParetoOnOffSource`] — heavy-tailed ON-OFF (extension beyond the
//!   paper: the self-similar regime where only the *simulated* bound of
//!   Figs. 9–11 is available).
//!
//! All packet lengths in the paper's experiments are 424 bits (one ATM
//! cell); every model takes the length as a parameter regardless.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod deterministic;
mod onoff;
mod pareto;
mod poisson;
mod source;
mod token_bucket;
mod trace;

pub use deterministic::{BurstSource, DeterministicSource};
pub use onoff::{OnOffConfig, OnOffSource};
pub use pareto::{ParetoOnOffConfig, ParetoOnOffSource};
pub use poisson::PoissonSource;
pub use source::{Emission, Source, SourceExt};
pub use token_bucket::{ShapedSource, TokenBucket};
pub use trace::TraceSource;

/// Packet length used throughout the paper's evaluation: one ATM cell.
pub const ATM_CELL_BITS: u32 = 424;
