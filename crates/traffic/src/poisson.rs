//! Poisson source (paper §3): exponentially distributed interarrival times
//! with mean `a_P`, fixed packet length.
//!
//! The paper uses Poisson sessions for two purposes: to exercise the
//! firewall property (their reference-server backlog is unbounded, so they
//! stress the scheduler), and because the reference server of a Poisson
//! session is an M/D/1 queue whose delay distribution is known in closed
//! form — which is what makes the analytic bound of Figures 9–11 computable.

use crate::source::{Emission, Source};
use lit_sim::{Duration, SimRng, Time};

/// A Poisson packet source.
#[derive(Clone, Debug)]
pub struct PoissonSource {
    /// Mean interarrival time `a_P`.
    mean_gap: Duration,
    /// Fixed packet length in bits.
    len_bits: u32,
    /// Internal clock: time of the previous emission.
    now: Time,
}

impl PoissonSource {
    /// Create a source with mean interarrival `mean_gap` and fixed packet
    /// length `len_bits`.
    ///
    /// # Panics
    /// Panics if `mean_gap` is zero (the arrival rate would be infinite).
    pub fn new(mean_gap: Duration, len_bits: u32) -> Self {
        assert!(mean_gap > Duration::ZERO, "PoissonSource: zero mean gap");
        PoissonSource {
            mean_gap,
            len_bits,
            now: Time::ZERO,
        }
    }

    /// The configured mean interarrival time.
    pub fn mean_gap(&self) -> Duration {
        self.mean_gap
    }

    /// Arrival rate λ in packets per second.
    pub fn lambda(&self) -> f64 {
        1.0 / self.mean_gap.as_secs_f64()
    }
}

impl Source for PoissonSource {
    fn next_emission(&mut self, rng: &mut SimRng) -> Option<Emission> {
        let gap = rng.exponential(self.mean_gap);
        self.now += gap;
        Some(Emission {
            at: self.now,
            len_bits: self.len_bits,
        })
    }

    fn mean_rate_bps(&self) -> Option<f64> {
        Some(self.len_bits as f64 * self.lambda())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceExt;

    #[test]
    fn rate_matches_lambda() {
        // Paper Fig. 9 session: a_P = 1.5143 ms, 424-bit packets
        // => 424/0.0015143 ≈ 280 kbit/s offered on a 400 kbit/s reservation.
        let mut s = PoissonSource::new(Duration::from_secs_f64(1.5143e-3), 424);
        let mut rng = SimRng::seed_from(21);
        let horizon = Time::from_secs(600);
        let em = s.emissions_until(horizon, &mut rng);
        let bits: u64 = em.iter().map(|e| e.len_bits as u64).sum();
        let rate = bits as f64 / horizon.as_secs_f64();
        let want = s.mean_rate_bps().unwrap();
        assert!((rate - want).abs() / want < 0.02, "rate={rate} want={want}");
        assert!((want - 279_963.0).abs() < 100.0, "want={want}");
    }

    #[test]
    fn interarrival_cv_close_to_one() {
        // Exponential gaps have coefficient of variation 1.
        let mut s = PoissonSource::new(Duration::from_ms(10), 424);
        let mut rng = SimRng::seed_from(2);
        let em = s.emissions_until(Time::from_secs(2_000), &mut rng);
        let gaps: Vec<f64> = em
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_secs_f64())
            .collect();
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<f64>() / n;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv={cv}");
    }

    #[test]
    fn monotone_strictly_increasing_clock() {
        let mut s = PoissonSource::new(Duration::from_us(100), 424);
        let mut rng = SimRng::seed_from(3);
        let mut prev = Time::ZERO;
        for _ in 0..1000 {
            let e = s.next_emission(&mut rng).unwrap();
            assert!(e.at >= prev);
            prev = e.at;
        }
    }

    #[test]
    #[should_panic(expected = "zero mean gap")]
    fn zero_gap_rejected() {
        let _ = PoissonSource::new(Duration::ZERO, 424);
    }
}
