//! Two-state Markov-modulated ON-OFF source (paper §3, "Traffic Source
//! Models").
//!
//! In the ON state the source emits fixed-length packets at fixed spacing
//! `T`; in the OFF state it is silent. ON durations are exponential with
//! mean `a_ON`, approximated — exactly as in the paper — by drawing the
//! *number of packets per burst* from a geometric distribution with mean
//! `a_ON / T`. OFF durations are exponential with mean `a_OFF`.
//!
//! The paper's voice-like configuration is `a_ON = 352 ms`, `T = 13.25 ms`
//! (424-bit cells at 32 kbit/s while ON) and `a_OFF` swept from 6.5 ms
//! (≈ CBR, 98.2 % duty) to 650 ms (standard voice, 35.1 % duty).

use crate::source::{Emission, Source};
use lit_sim::{Duration, SimRng, Time};

/// Parameters of an ON-OFF source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OnOffConfig {
    /// Mean ON-state duration `a_ON`.
    pub mean_on: Duration,
    /// Mean OFF-state duration `a_OFF`. May be zero (degenerates towards a
    /// fixed-rate source, as the paper notes).
    pub mean_off: Duration,
    /// Packet spacing `T` while ON.
    pub spacing: Duration,
    /// Packet length in bits.
    pub len_bits: u32,
    /// Extra silence before the very first burst; lets experiments stagger
    /// many identically configured sources without touching their RNG
    /// streams.
    pub initial_offset: Duration,
}

impl OnOffConfig {
    /// The paper's ON-OFF configuration: `a_ON = 352 ms`, `T = 13.25 ms`,
    /// 424-bit packets (32 kbit/s while ON), with the given `a_OFF`.
    pub fn paper_voice(mean_off: Duration) -> Self {
        OnOffConfig {
            mean_on: Duration::from_ms(352),
            mean_off,
            spacing: Duration::from_us(13_250),
            len_bits: 424,
            initial_offset: Duration::ZERO,
        }
    }

    /// Same configuration shifted by an initial offset.
    pub fn with_offset(mut self, offset: Duration) -> Self {
        self.initial_offset = offset;
        self
    }

    /// Long-run duty cycle `a_ON / (a_ON + a_OFF)`.
    pub fn duty_cycle(&self) -> f64 {
        let on = self.mean_on.as_secs_f64();
        let off = self.mean_off.as_secs_f64();
        if on + off == 0.0 {
            0.0
        } else {
            on / (on + off)
        }
    }
}

/// The ON-OFF source state machine.
///
/// A burst entered at `t₀` with drawn packet count `N ≥ 1` emits packets at
/// `t₀, t₀+T, …, t₀+(N−1)T`; the ON period is accounted as lasting `N·T`,
/// after which an exponential OFF period begins. This makes the mean number
/// of packets per burst `a_ON/T` yield a mean ON duration of `a_ON`,
/// matching the paper's approximation.
#[derive(Clone, Debug)]
pub struct OnOffSource {
    cfg: OnOffConfig,
    /// Emission time of the next packet if mid-burst.
    next_at: Time,
    /// Packets remaining in the current burst (0 = must start a new burst).
    remaining: u64,
    /// Whether the first burst has been scheduled yet.
    started: bool,
}

impl OnOffSource {
    /// Create a source; the first OFF period (plus `initial_offset`)
    /// precedes the first burst, so an ensemble of sources starts
    /// desynchronized.
    pub fn new(cfg: OnOffConfig) -> Self {
        OnOffSource {
            cfg,
            next_at: Time::ZERO,
            remaining: 0,
            started: false,
        }
    }

    /// The configuration this source was built with.
    pub fn config(&self) -> &OnOffConfig {
        &self.cfg
    }

    fn mean_burst_len(&self) -> f64 {
        let t = self.cfg.spacing.as_secs_f64();
        if t == 0.0 {
            1.0
        } else {
            self.cfg.mean_on.as_secs_f64() / t
        }
    }

    /// Begin a new burst starting at `start`, drawing its length.
    fn start_burst(&mut self, start: Time, rng: &mut SimRng) {
        self.remaining = rng.geometric_min1(self.mean_burst_len());
        self.next_at = start;
    }
}

impl Source for OnOffSource {
    fn next_emission(&mut self, rng: &mut SimRng) -> Option<Emission> {
        if !self.started {
            self.started = true;
            let off = rng.exponential(self.cfg.mean_off);
            self.start_burst(Time::ZERO + self.cfg.initial_offset + off, rng);
        }
        if self.remaining == 0 {
            // End of burst: the ON period covers one spacing past the last
            // packet, then an OFF period follows.
            let off = rng.exponential(self.cfg.mean_off);
            let start = self.next_at + off;
            self.start_burst(start, rng);
        }
        let at = self.next_at;
        self.remaining -= 1;
        self.next_at = at + self.cfg.spacing;
        Some(Emission {
            at,
            len_bits: self.cfg.len_bits,
        })
    }

    fn mean_rate_bps(&self) -> Option<f64> {
        let t = self.cfg.spacing.as_secs_f64();
        if t == 0.0 {
            return None;
        }
        let peak = self.cfg.len_bits as f64 / t;
        Some(peak * self.cfg.duty_cycle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceExt;

    fn paper_cfg(off_ms: u64) -> OnOffConfig {
        OnOffConfig::paper_voice(Duration::from_ms(off_ms))
    }

    #[test]
    fn duty_cycle_matches_paper_endpoints() {
        // Paper: utilization 98.2% at a_OFF=6.5ms, 35.1% at a_OFF=650ms.
        let lo = OnOffConfig::paper_voice(Duration::from_us(6_500)).duty_cycle();
        let hi = OnOffConfig::paper_voice(Duration::from_ms(650)).duty_cycle();
        assert!((lo - 0.982).abs() < 1e-3, "lo={lo}");
        assert!((hi - 0.351).abs() < 1e-3, "hi={hi}");
    }

    #[test]
    fn in_burst_spacing_is_exactly_t() {
        let mut rng = SimRng::seed_from(11);
        let mut s = OnOffSource::new(paper_cfg(650));
        let em = s.emissions_until(Time::from_secs(60), &mut rng);
        assert!(em.len() > 500, "got {}", em.len());
        let t = Duration::from_us(13_250);
        let mut in_burst_gaps = 0;
        for w in em.windows(2) {
            let gap = w[1].at - w[0].at;
            assert!(gap >= t, "gap below spacing: {gap}");
            if gap == t {
                in_burst_gaps += 1;
            }
        }
        assert!(in_burst_gaps > em.len() / 2);
    }

    #[test]
    fn long_run_rate_close_to_mean() {
        let mut rng = SimRng::seed_from(5);
        let mut s = OnOffSource::new(paper_cfg(650));
        let horizon = Time::from_secs(3_000);
        let em = s.emissions_until(horizon, &mut rng);
        let bits: u64 = em.iter().map(|e| e.len_bits as u64).sum();
        let rate = bits as f64 / horizon.as_secs_f64();
        let want = s.mean_rate_bps().unwrap(); // ≈ 32000 * 0.351 ≈ 11240
        assert!(
            (rate - want).abs() / want < 0.05,
            "rate={rate}, want={want}"
        );
    }

    #[test]
    fn peak_rate_is_32kbps_while_on() {
        let cfg = paper_cfg(650);
        let peak = cfg.len_bits as f64 / cfg.spacing.as_secs_f64();
        assert!((peak - 32_000.0).abs() < 1.0, "peak={peak}");
    }

    #[test]
    fn initial_offset_shifts_first_emission() {
        let mut r1 = SimRng::seed_from(9);
        let mut r2 = SimRng::seed_from(9);
        let mut a = OnOffSource::new(paper_cfg(100));
        let mut b = OnOffSource::new(paper_cfg(100).with_offset(Duration::from_ms(7)));
        let ea = a.next_emission(&mut r1).unwrap();
        let eb = b.next_emission(&mut r2).unwrap();
        assert_eq!(eb.at - ea.at, Duration::from_ms(7));
    }

    #[test]
    fn zero_off_time_is_nearly_cbr() {
        let mut rng = SimRng::seed_from(3);
        let mut s = OnOffSource::new(paper_cfg(0));
        let em = s.emissions_until(Time::from_secs(10), &mut rng);
        let t = Duration::from_us(13_250);
        for w in em.windows(2) {
            assert_eq!(w[1].at - w[0].at, t);
        }
        assert!((s.mean_rate_bps().unwrap() - 32_000.0).abs() < 1.0);
    }

    #[test]
    fn monotone_emissions() {
        let mut rng = SimRng::seed_from(17);
        let mut s = OnOffSource::new(paper_cfg(88));
        let mut prev = Time::ZERO;
        for _ in 0..10_000 {
            let e = s.next_emission(&mut rng).unwrap();
            assert!(e.at >= prev);
            prev = e.at;
        }
    }
}
