//! Trace-replay source: emits a pre-recorded packet sequence.
//!
//! Used by tests (hand-crafted adversarial arrival patterns), by the
//! property-test harness (arbitrary arrival sequences from proptest), and
//! by anyone wanting to feed measured traces through the simulator.

use crate::source::{Emission, Source};
use lit_sim::{SimRng, Time};

/// Replays a fixed list of emissions, in order.
#[derive(Clone, Debug)]
pub struct TraceSource {
    trace: Vec<Emission>,
    pos: usize,
}

impl TraceSource {
    /// Build from an emission list.
    ///
    /// # Panics
    /// Panics if the trace is not sorted by time (a source must be
    /// monotone).
    pub fn new(trace: Vec<Emission>) -> Self {
        assert!(
            trace.windows(2).all(|w| w[0].at <= w[1].at),
            "TraceSource: trace not time-sorted"
        );
        TraceSource { trace, pos: 0 }
    }

    /// Build from `(time, len_bits)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Time, u32)>) -> Self {
        Self::new(
            pairs
                .into_iter()
                .map(|(at, len_bits)| Emission { at, len_bits })
                .collect(),
        )
    }

    /// Number of emissions not yet replayed.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }

    /// Parse a trace from CSV text with a `time_us,len_bits` header —
    /// the interchange format for replaying externally captured traces.
    /// Times are fractional microseconds.
    ///
    /// # Errors
    /// Returns a message naming the offending 1-based line.
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut pairs = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (i == 0 && line.starts_with("time_us")) {
                continue;
            }
            let (t, l) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: expected 'time_us,len_bits'", i + 1))?;
            let t_us: f64 = t
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad time '{t}'", i + 1))?;
            if !t_us.is_finite() || t_us < 0.0 {
                return Err(format!("line {}: time out of range", i + 1));
            }
            let len: u32 = l
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad length '{l}'", i + 1))?;
            pairs.push((
                // lit-lint: allow(raw-time-arithmetic, "trace files carry timestamps as fractional microseconds; one rounding at load time, fail-loud on overflow")
                lit_sim::Time::ZERO + lit_sim::Duration::from_secs_f64(t_us / 1e6),
                len,
            ));
        }
        if pairs.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err("trace not time-sorted".to_string());
        }
        Ok(Self::from_pairs(pairs))
    }

    /// Serialize the *remaining* trace as CSV (`time_us,len_bits`),
    /// inverse of [`TraceSource::from_csv`] up to microsecond rounding.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_us,len_bits\n");
        for e in &self.trace[self.pos..] {
            out.push_str(&format!(
                "{:.3},{}\n",
                (e.at - lit_sim::Time::ZERO).as_secs_f64() * 1e6,
                e.len_bits
            ));
        }
        out
    }
}

impl Source for TraceSource {
    fn next_emission(&mut self, _rng: &mut SimRng) -> Option<Emission> {
        let e = self.trace.get(self.pos).copied()?;
        self.pos += 1;
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_in_order_then_exhausts() {
        let mut s = TraceSource::from_pairs([
            (Time::from_ms(1), 100),
            (Time::from_ms(1), 200),
            (Time::from_ms(3), 300),
        ]);
        let mut rng = SimRng::seed_from(0);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_emission(&mut rng).unwrap().len_bits, 100);
        assert_eq!(s.next_emission(&mut rng).unwrap().len_bits, 200);
        assert_eq!(s.next_emission(&mut rng).unwrap().len_bits, 300);
        assert_eq!(s.next_emission(&mut rng), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "not time-sorted")]
    fn rejects_unsorted_trace() {
        let _ = TraceSource::from_pairs([(Time::from_ms(2), 1), (Time::from_ms(1), 1)]);
    }

    #[test]
    fn csv_roundtrip() {
        let src = TraceSource::from_pairs([
            (Time::from_us(1_500), 424),
            (Time::from_ms(2), 212),
            (Time::from_ms(2), 424),
        ]);
        let csv = src.to_csv();
        assert!(csv.starts_with("time_us,len_bits\n"));
        let back = TraceSource::from_csv(&csv).unwrap();
        assert_eq!(back.remaining(), 3);
        let mut rng = lit_sim::SimRng::seed_from(0);
        let mut a = src;
        let mut b = back;
        for _ in 0..3 {
            let x = a.next_emission(&mut rng).unwrap();
            let y = b.next_emission(&mut rng).unwrap();
            assert_eq!(x.len_bits, y.len_bits);
            // Round-trip through fractional microseconds: sub-ns exact.
            let dx = (x.at.as_ps() as i128 - y.at.as_ps() as i128).abs();
            assert!(dx < 1_000_000, "time drifted by {dx} ps");
        }
    }

    #[test]
    fn csv_parse_errors_name_lines() {
        assert!(TraceSource::from_csv("time_us,len_bits\nxyz,1")
            .unwrap_err()
            .contains("line 2"));
        assert!(TraceSource::from_csv("5,424\n1,424")
            .unwrap_err()
            .contains("not time-sorted"));
        assert!(TraceSource::from_csv("1").unwrap_err().contains("line 1"));
        assert!(TraceSource::from_csv("-3,424")
            .unwrap_err()
            .contains("range"));
    }
}
