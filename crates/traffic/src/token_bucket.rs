//! Token-bucket filter `(r, b₀)` — the traffic characterization under which
//! the paper's closed-form delay bound holds (footnote 1 and ineq. 14–15).
//!
//! The bucket holds at most `b₀` tokens (here: bits), starts full, and
//! refills continuously at rate `r`. A session *conforms* if every packet
//! of length `L` finds at least `L` tokens, which are then removed.
//!
//! Token state is kept in **picobits** (`1 bit = 10¹² picobits`): since
//! time is in picoseconds, a refill over `Δps` at `r` bit/s is *exactly*
//! `Δps · r` picobits — integer arithmetic, no drift, so conformance
//! decisions are exact and reproducible.
//!
//! Two consumers:
//! * [`TokenBucket::try_consume`] — conformance *checking* (used by tests
//!   and bound validation);
//! * [`ShapedSource`] — conformance *enforcing*: wraps any [`Source`] and
//!   delays each packet to its earliest conforming instant.

use crate::source::{Emission, Source};
use lit_sim::{Duration, SimRng, Time, PS_PER_SEC};

/// Exact token-bucket state.
///
/// ```
/// use lit_traffic::TokenBucket;
/// use lit_sim::Time;
///
/// // (32 kbit/s, one 424-bit cell): full at t = 0, refills one cell
/// // every 13.25 ms.
/// let mut tb = TokenBucket::new(32_000, 424);
/// assert!(tb.try_consume(Time::ZERO, 424));
/// assert!(!tb.try_consume(Time::ZERO, 424)); // empty now
/// assert!(tb.try_consume(Time::from_us(13_250), 424)); // refilled
/// ```
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Refill rate `r` in bits per second.
    rate_bps: u64,
    /// Capacity `b₀` in picobits.
    depth_pb: u128,
    /// Current fill in picobits (`0 ..= depth_pb`).
    tokens_pb: u128,
    /// Instant of the last update.
    last: Time,
}

const PB_PER_BIT: u128 = PS_PER_SEC as u128; // 10^12

impl TokenBucket {
    /// A bucket `(r, b₀)` that starts full at `Time::ZERO`.
    ///
    /// # Panics
    /// Panics if `rate_bps` or `depth_bits` is zero.
    pub fn new(rate_bps: u64, depth_bits: u64) -> Self {
        assert!(rate_bps > 0, "TokenBucket: zero rate");
        assert!(depth_bits > 0, "TokenBucket: zero depth");
        let depth_pb = depth_bits as u128 * PB_PER_BIT;
        TokenBucket {
            rate_bps,
            depth_pb,
            tokens_pb: depth_pb,
            last: Time::ZERO,
        }
    }

    /// Refill rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Bucket depth `b₀` in bits.
    pub fn depth_bits(&self) -> u64 {
        (self.depth_pb / PB_PER_BIT) as u64
    }

    /// Advance the refill clock to `now` (idempotent; `now` must not
    /// precede the last update).
    fn refill(&mut self, now: Time) {
        let dt = now
            .checked_since(self.last)
            .expect("TokenBucket: time went backwards");
        self.last = now;
        let add = dt.as_ps() as u128 * self.rate_bps as u128;
        self.tokens_pb = (self.tokens_pb + add).min(self.depth_pb);
    }

    /// Current fill in (fractional) bits at `now`.
    pub fn tokens_bits_at(&mut self, now: Time) -> f64 {
        self.refill(now);
        self.tokens_pb as f64 / PB_PER_BIT as f64
    }

    /// If at `now` the bucket holds at least `len_bits` tokens, consume
    /// them and return `true`; otherwise leave the bucket untouched and
    /// return `false`.
    pub fn try_consume(&mut self, now: Time, len_bits: u32) -> bool {
        self.refill(now);
        let need = len_bits as u128 * PB_PER_BIT;
        if self.tokens_pb >= need {
            self.tokens_pb -= need;
            true
        } else {
            false
        }
    }

    /// The earliest instant `≥ now` at which `len_bits` tokens will be
    /// available, or `None` if the packet can never conform
    /// (`len_bits > b₀`). Does not consume.
    pub fn earliest_conforming(&mut self, now: Time, len_bits: u32) -> Option<Time> {
        self.refill(now);
        let need = len_bits as u128 * PB_PER_BIT;
        if need > self.depth_pb {
            return None;
        }
        if self.tokens_pb >= need {
            return Some(now);
        }
        let deficit = need - self.tokens_pb;
        // ceil(deficit / rate) picoseconds until the deficit refills.
        let wait_ps = u64::try_from(deficit.div_ceil(self.rate_bps as u128))
            .expect("token-bucket refill wait fits u64 ps");
        Some(now + Duration::from_ps(wait_ps))
    }
}

/// Wraps a [`Source`], delaying each emission to its earliest conforming
/// instant under a token bucket `(r, b₀)` — i.e. a *shaper*.
///
/// The output of a `ShapedSource` is guaranteed to conform to the bucket,
/// so the paper's `D^ref_max = b₀/r` (eq. 14) and hence the closed-form
/// end-to-end bound (ineq. 15) apply to it.
#[derive(Clone, Debug)]
pub struct ShapedSource<S> {
    inner: S,
    bucket: TokenBucket,
    /// Shaping must not reorder: next output may not precede this.
    last_out: Time,
}

impl<S: Source> ShapedSource<S> {
    /// Shape `inner` through a fresh bucket `(rate_bps, depth_bits)`.
    pub fn new(inner: S, rate_bps: u64, depth_bits: u64) -> Self {
        ShapedSource {
            inner,
            bucket: TokenBucket::new(rate_bps, depth_bits),
            last_out: Time::ZERO,
        }
    }

    /// The bucket parameters, for bound computation.
    pub fn bucket_params(&self) -> (u64, u64) {
        (self.bucket.rate_bps(), self.bucket.depth_bits())
    }
}

impl<S: Source> Source for ShapedSource<S> {
    fn next_emission(&mut self, rng: &mut SimRng) -> Option<Emission> {
        let e = self.inner.next_emission(rng)?;
        let at = e.at.max(self.last_out);
        let at = self
            .bucket
            .earliest_conforming(at, e.len_bits)
            .expect("ShapedSource: packet longer than bucket depth");
        let ok = self.bucket.try_consume(at, e.len_bits);
        debug_assert!(ok, "earliest_conforming then try_consume must succeed");
        self.last_out = at;
        Some(Emission {
            at,
            len_bits: e.len_bits,
        })
    }

    fn mean_rate_bps(&self) -> Option<f64> {
        self.inner.mean_rate_bps().map(|r| {
            // The shaper caps the long-run rate at the bucket rate.
            r.min(self.bucket.rate_bps() as f64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deterministic::BurstSource;
    use crate::poisson::PoissonSource;
    use crate::source::SourceExt;

    #[test]
    fn starts_full_and_caps_at_depth() {
        let mut tb = TokenBucket::new(32_000, 424);
        assert_eq!(tb.tokens_bits_at(Time::ZERO), 424.0);
        // After a long idle period it is still capped at b0.
        assert_eq!(tb.tokens_bits_at(Time::from_secs(100)), 424.0);
    }

    #[test]
    fn consume_and_refill_exactly() {
        let mut tb = TokenBucket::new(32_000, 424);
        assert!(tb.try_consume(Time::ZERO, 424));
        assert_eq!(tb.tokens_bits_at(Time::ZERO), 0.0);
        // 13.25 ms at 32 kbit/s refills exactly 424 bits.
        let t = Time::from_us(13_250);
        assert_eq!(tb.tokens_bits_at(t), 424.0);
    }

    #[test]
    fn rejects_when_empty_without_consuming() {
        let mut tb = TokenBucket::new(32_000, 424);
        assert!(tb.try_consume(Time::ZERO, 424));
        assert!(!tb.try_consume(Time::ZERO, 1));
        // Nothing was taken by the failed attempt.
        let t = Time::from_ps(Duration::from_bits_at_rate(1, 32_000).as_ps());
        assert!(tb.try_consume(t, 1));
    }

    #[test]
    fn earliest_conforming_is_tight() {
        let mut tb = TokenBucket::new(32_000, 424);
        assert!(tb.try_consume(Time::ZERO, 424));
        let t = tb.earliest_conforming(Time::ZERO, 424).unwrap();
        assert_eq!(t, Time::from_us(13_250));
        // And at that instant consumption succeeds.
        assert!(tb.try_consume(t, 424));
    }

    #[test]
    fn oversized_packet_never_conforms() {
        let mut tb = TokenBucket::new(32_000, 424);
        assert_eq!(tb.earliest_conforming(Time::ZERO, 425), None);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn refill_rejects_time_reversal() {
        let mut tb = TokenBucket::new(1000, 100);
        let _ = tb.tokens_bits_at(Time::from_ms(5));
        let _ = tb.tokens_bits_at(Time::from_ms(4));
    }

    #[test]
    fn shaped_burst_is_spaced_at_bucket_rate() {
        // A 10-packet instantaneous burst through a (32 kbit/s, 424 bit)
        // bucket: first packet passes at once (full bucket), the rest are
        // spaced L/r = 13.25 ms apart.
        let burst = BurstSource::new(Duration::from_ms(1), 10, 424);
        let mut s = ShapedSource::new(burst, 32_000, 424);
        let mut rng = SimRng::seed_from(0);
        let mut prev: Option<Time> = None;
        for i in 0..10 {
            let e = s.next_emission(&mut rng).unwrap();
            if let Some(p) = prev {
                assert_eq!(e.at - p, Duration::from_us(13_250), "packet {i}");
            }
            prev = Some(e.at);
        }
    }

    #[test]
    fn shaped_output_conforms() {
        // Whatever comes out of the shaper must pass an independent
        // conformance checker with the same parameters.
        let src = PoissonSource::new(Duration::from_ms(5), 424);
        let mut shaped = ShapedSource::new(src, 100_000, 1_272); // 3 packets deep
        let mut rng = SimRng::seed_from(77);
        let mut checker = TokenBucket::new(100_000, 1_272);
        let em = shaped.emissions_until(Time::from_secs(50), &mut rng);
        assert!(em.len() > 1000);
        for e in &em {
            assert!(checker.try_consume(e.at, e.len_bits), "at {}", e.at);
        }
    }

    #[test]
    fn shaper_preserves_order_and_never_advances_early() {
        let src = BurstSource::new(Duration::from_ms(50), 5, 424);
        let mut raw = BurstSource::new(Duration::from_ms(50), 5, 424);
        let mut shaped = ShapedSource::new(src, 64_000, 848);
        let mut r1 = SimRng::seed_from(0);
        let mut r2 = SimRng::seed_from(0);
        for _ in 0..100 {
            let a = raw.next_emission(&mut r1).unwrap();
            let b = shaped.next_emission(&mut r2).unwrap();
            assert!(b.at >= a.at, "shaped packet released early");
        }
    }
}
