//! Property tests: structural contracts of every traffic source.
//!
//! * emission times are non-decreasing (the `Source` trait contract);
//! * long-run rates track `mean_rate_bps` where defined;
//! * the token bucket's exact integer arithmetic never drifts.

#![forbid(unsafe_code)]

use lit_prop::check;
use lit_sim::{Duration, SimRng, Time};
use lit_traffic::{
    BurstSource, DeterministicSource, OnOffConfig, OnOffSource, PoissonSource, Source, TokenBucket,
};

fn assert_monotone(src: &mut dyn Source, rng: &mut SimRng, n: usize) {
    let mut prev = Time::ZERO;
    for _ in 0..n {
        let e = src.next_emission(rng).expect("infinite source");
        assert!(e.at >= prev, "time went backwards: {} < {}", e.at, prev);
        assert!(e.len_bits > 0);
        prev = e.at;
    }
}

#[test]
fn onoff_monotone() {
    check("onoff_monotone", |g| {
        let seed = g.u64();
        let cfg = OnOffConfig {
            mean_on: Duration::from_ms(g.range(1, 1_000)),
            mean_off: Duration::from_ms(g.below(2_000)),
            spacing: Duration::from_us(g.range(100, 100_000)),
            len_bits: 424,
            initial_offset: Duration::ZERO,
        };
        let mut rng = SimRng::seed_from(seed);
        assert_monotone(&mut OnOffSource::new(cfg), &mut rng, 300);
    });
}

#[test]
fn poisson_monotone_and_rate() {
    check("poisson_monotone_and_rate", |g| {
        let seed = g.u64();
        let gap_us = g.range(10, 1_000_000);
        let mut rng = SimRng::seed_from(seed);
        let mut src = PoissonSource::new(Duration::from_us(gap_us), 424);
        assert_monotone(&mut src, &mut rng, 300);
        assert!((src.mean_rate_bps().unwrap() - 424.0 / (gap_us as f64 / 1e6)).abs() < 1.0);
    });
}

#[test]
fn deterministic_exact_grid() {
    check("deterministic_exact_grid", |g| {
        let gap_us = g.range(1, 1_000_000);
        let offset_us = g.below(1_000_000);
        let mut rng = SimRng::seed_from(0);
        let mut src = DeterministicSource::new(Duration::from_us(gap_us), 424)
            .with_offset(Duration::from_us(offset_us));
        let mut expect = Time::from_us(gap_us + offset_us);
        for _ in 0..100 {
            let e = src.next_emission(&mut rng).unwrap();
            assert_eq!(e.at, expect);
            expect += Duration::from_us(gap_us);
        }
    });
}

#[test]
fn burst_shape() {
    check("burst_shape", |g| {
        let period_ms = g.range(1, 100);
        let burst = g.range(1, 50) as u32;
        let mut rng = SimRng::seed_from(0);
        let mut src = BurstSource::new(Duration::from_ms(period_ms), burst, 424);
        for round in 1..=3u64 {
            let t0 = Time::from_ms(period_ms * round);
            for _ in 0..burst {
                let e = src.next_emission(&mut rng).unwrap();
                assert_eq!(e.at, t0);
            }
        }
    });
}

#[test]
fn token_bucket_never_exceeds_depth_nor_goes_negative() {
    check("token_bucket_never_exceeds_depth_nor_goes_negative", |g| {
        let rate = g.range(1_000, 10_000_000);
        let depth_cells = g.range(1, 16);
        let n_offers = g.size(1, 100);
        let offers: Vec<(u64, u32)> = (0..n_offers)
            .map(|_| (g.below(100_000), g.range(1, 425) as u32))
            .collect();
        let depth = depth_cells * 424;
        let mut tb = TokenBucket::new(rate, depth);
        let mut now = Time::ZERO;
        let mut spent: u64 = 0;
        for (gap_us, len) in offers {
            now += Duration::from_us(gap_us);
            let level = tb.tokens_bits_at(now);
            assert!(level >= 0.0 && level <= depth as f64 + 1e-9);
            if tb.try_consume(now, len) {
                spent += len as u64;
            }
            // Conservation: what was spent can never exceed the initial
            // fill plus what the refill could have earned by `now`.
            let max_earn =
                depth as u128 + now.as_ps() as u128 * rate as u128 / 1_000_000_000_000u128;
            assert!(
                (spent as u128) <= max_earn + 1,
                "spent {spent} > earn {max_earn}"
            );
        }
    });
}
