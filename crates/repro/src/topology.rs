//! The paper's network topology and traffic configurations (§3, Figure 6).
//!
//! Five server nodes in tandem with T1 links (1536 kbit/s, 1 ms
//! propagation). Entrance points `a`–`e` feed nodes 1–5; exit points
//! `f`–`j` drain them. A route is named by an entrance/exit letter pair:
//! `a-j` crosses all five nodes, `b-g` only node 2, etc.
//!
//! Two standard traffic configurations:
//!
//! * **MIX** — 12 routes with per-route session counts chosen so that
//!   *every link carries exactly 48 sessions* (48 × 32 kbit/s = C). The
//!   paper's prose total ("8 four-hop sessions") disagrees with its own
//!   per-route listing (6 + 6 = 12); the listing is the only assignment
//!   that exactly fills every link, so the listing wins (see DESIGN.md).
//! * **CROSS** — route `a-j` plus the five one-hop routes `a-f` … `e-j`
//!   (the "cross traffic").

use lit_net::{LinkParams, NetworkBuilder, NodeId};

/// Number of server nodes in the paper's topology.
pub const NUM_NODES: usize = 5;

/// A route through the tandem, by entrance and exit letter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Route {
    /// Entrance letter, `'a'..='e'` (node 1..5).
    pub entry: char,
    /// Exit letter, `'f'..='j'` (after node 1..5).
    pub exit: char,
}

impl Route {
    /// Construct and validate a route.
    ///
    /// # Panics
    /// Panics on letters outside `a..=e` / `f..=j` or an exit before the
    /// entry.
    pub fn new(entry: char, exit: char) -> Self {
        let r = Route { entry, exit };
        let _ = r.node_indices();
        r
    }

    /// The 0-based node indices this route traverses.
    pub fn node_indices(&self) -> std::ops::RangeInclusive<usize> {
        assert!(
            ('a'..='e').contains(&self.entry),
            "bad entry {}",
            self.entry
        );
        assert!(('f'..='j').contains(&self.exit), "bad exit {}", self.exit);
        let first = self.entry as usize - 'a' as usize;
        let last = self.exit as usize - 'f' as usize;
        assert!(
            first <= last,
            "route {}-{} goes backwards",
            self.entry,
            self.exit
        );
        first..=last
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.node_indices().count()
    }

    /// The node ids of this route within a network whose tandem nodes are
    /// `nodes`.
    pub fn nodes(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        self.node_indices().map(|i| nodes[i]).collect()
    }

    /// Render as the paper's `a-j` notation.
    pub fn name(&self) -> String {
        format!("{}-{}", self.entry, self.exit)
    }
}

/// The MIX configuration: `(route, session_count)` pairs, exactly as the
/// paper lists them. Every link ends up with 48 sessions.
pub fn mix_routes() -> Vec<(Route, usize)> {
    vec![
        (Route::new('a', 'j'), 10), // five-hop
        (Route::new('b', 'g'), 10), // one-hop
        (Route::new('c', 'h'), 10), // one-hop
        (Route::new('d', 'i'), 10), // one-hop
        (Route::new('a', 'f'), 16), // one-hop
        (Route::new('e', 'j'), 16), // one-hop
        (Route::new('a', 'h'), 8),  // three-hop
        (Route::new('c', 'j'), 8),  // three-hop
        (Route::new('a', 'g'), 8),  // two-hop
        (Route::new('d', 'j'), 8),  // two-hop
        (Route::new('a', 'i'), 6),  // four-hop
        (Route::new('b', 'j'), 6),  // four-hop
    ]
}

/// The CROSS configuration's one-hop cross routes.
pub fn cross_routes() -> Vec<Route> {
    vec![
        Route::new('a', 'f'),
        Route::new('b', 'g'),
        Route::new('c', 'h'),
        Route::new('d', 'i'),
        Route::new('e', 'j'),
    ]
}

/// The five-hop route `a-j` every reported measurement uses.
pub fn five_hop() -> Route {
    Route::new('a', 'j')
}

/// Create the paper's five T1 nodes in a builder, returning their ids.
pub fn paper_tandem(b: &mut NetworkBuilder) -> Vec<NodeId> {
    b.tandem(NUM_NODES, LinkParams::paper_t1())
}

/// Number of uplinks (= server nodes) in a complete `fanout`-ary tree of
/// `depth` levels below the root — what the `fattree` generator stanza
/// instantiates.
pub fn fattree_num_nodes(depth: usize, fanout: usize) -> usize {
    (1..=depth).map(|l| fanout.pow(l as u32)).sum()
}

/// One leaf→root uplink path per leaf of a complete `fanout`-ary tree.
///
/// Uplinks are labeled breadth-first with level 1 (just below the root)
/// first, so path `k` runs from leaf `k`'s uplink (vertex `k` at level
/// `depth`) through its ancestors' uplinks down to a level-1 uplink —
/// node ids strictly *decrease* along each path. Every level-1 uplink is
/// shared by `fanout^(depth-1)` paths: the bottleneck.
pub fn fattree_uplink_paths(depth: usize, fanout: usize) -> Vec<Vec<usize>> {
    // level_base[l] = id of level l's first uplink (1-based levels).
    let mut acc = 0usize;
    let level_base: Vec<usize> = (0..=depth)
        .map(|l| {
            let base = acc;
            if l > 0 {
                acc += fanout.pow(l as u32);
            }
            base
        })
        .collect();
    (0..fanout.pow(depth as u32))
        .map(|k| {
            let mut path = Vec::with_capacity(depth);
            let mut idx = k;
            for l in (1..=depth).rev() {
                path.push(level_base[l] + idx);
                idx /= fanout;
            }
            path
        })
        .collect()
}

/// SplitMix64 finalizer — the WAN generator's only "randomness", fully
/// determined by the flow index so path sets reproduce bit-identically
/// everywhere.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `flows` deterministic forward paths over a `nodes`-link line — what
/// the `wan` generator stanza instantiates. Each flow starts at a
/// pseudorandom node and jumps 1–3 links while room remains, capped at 5
/// hops; node ids strictly increase, so any flow set is acyclic.
pub fn wan_paths(flows: usize, nodes: usize) -> Vec<Vec<usize>> {
    (0..flows)
        .map(|flow| {
            let mut h = splitmix(flow as u64);
            let mut cur = (h % nodes.max(1) as u64) as usize;
            let mut path = vec![cur];
            while path.len() < 5 {
                h = splitmix(h);
                let step = 1 + (h % 3) as usize;
                if cur + step >= nodes {
                    break;
                }
                cur += step;
                path.push(cur);
            }
            path
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_spans() {
        assert_eq!(five_hop().hops(), 5);
        assert_eq!(Route::new('b', 'g').hops(), 1);
        assert_eq!(Route::new('a', 'h').hops(), 3);
        assert_eq!(Route::new('d', 'j').hops(), 2);
        assert_eq!(Route::new('b', 'j').hops(), 4);
        assert_eq!(
            Route::new('a', 'i').node_indices().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(five_hop().name(), "a-j");
    }

    #[test]
    #[should_panic(expected = "goes backwards")]
    fn backwards_route_rejected() {
        Route::new('e', 'f');
    }

    #[test]
    fn mix_fills_every_link_with_exactly_48_sessions() {
        let mut per_link = [0usize; NUM_NODES];
        for (route, count) in mix_routes() {
            for n in route.node_indices() {
                per_link[n] += count;
            }
        }
        assert_eq!(per_link, [48; NUM_NODES]);
        // 48 × 32 kbit/s = 1536 kbit/s = T1: every link exactly full.
    }

    #[test]
    fn mix_hop_census_matches_paper_listing() {
        let mut by_hops = [0usize; 6];
        for (route, count) in mix_routes() {
            by_hops[route.hops()] += count;
        }
        assert_eq!(by_hops[5], 10);
        assert_eq!(by_hops[4], 12); // the paper's prose says 8 — see module docs
        assert_eq!(by_hops[3], 16);
        assert_eq!(by_hops[2], 16);
        assert_eq!(by_hops[1], 62);
        assert_eq!(mix_routes().iter().map(|(_, c)| c).sum::<usize>(), 116);
    }

    #[test]
    fn cross_routes_cover_each_link_once() {
        let mut per_link = [0usize; NUM_NODES];
        for r in cross_routes() {
            assert_eq!(r.hops(), 1);
            per_link[*r.node_indices().start()] += 1;
        }
        assert_eq!(per_link, [1; NUM_NODES]);
    }

    #[test]
    fn fattree_paths_descend_and_share_level1_bottlenecks() {
        let (depth, fanout) = (3, 2);
        let n = fattree_num_nodes(depth, fanout);
        assert_eq!(n, 2 + 4 + 8);
        let paths = fattree_uplink_paths(depth, fanout);
        assert_eq!(paths.len(), 8); // one per leaf
        let mut level1_load = vec![0usize; fanout];
        for p in &paths {
            assert_eq!(p.len(), depth);
            assert!(p.windows(2).all(|w| w[0] > w[1]), "{p:?}");
            assert!(*p.iter().max().unwrap() < n);
            let last = *p.last().unwrap();
            assert!(last < fanout, "path must end on a level-1 uplink: {p:?}");
            level1_load[last] += 1;
        }
        // Every level-1 uplink carries fanout^(depth-1) flows.
        assert!(level1_load.iter().all(|&c| c == fanout.pow(2)));
    }

    #[test]
    fn wan_paths_are_forward_bounded_and_deterministic() {
        let paths = wan_paths(32, 12);
        assert_eq!(paths, wan_paths(32, 12));
        assert_eq!(paths.len(), 32);
        for p in &paths {
            assert!(!p.is_empty() && p.len() <= 5);
            assert!(p.windows(2).all(|w| w[0] < w[1]), "{p:?}");
            assert!(*p.iter().max().unwrap() < 12);
        }
        // Degenerate single-node network: every flow is one hop at node 0.
        assert!(wan_paths(4, 1).iter().all(|p| p == &[0]));
    }
}
