//! The paper's network topology and traffic configurations (§3, Figure 6).
//!
//! Five server nodes in tandem with T1 links (1536 kbit/s, 1 ms
//! propagation). Entrance points `a`–`e` feed nodes 1–5; exit points
//! `f`–`j` drain them. A route is named by an entrance/exit letter pair:
//! `a-j` crosses all five nodes, `b-g` only node 2, etc.
//!
//! Two standard traffic configurations:
//!
//! * **MIX** — 12 routes with per-route session counts chosen so that
//!   *every link carries exactly 48 sessions* (48 × 32 kbit/s = C). The
//!   paper's prose total ("8 four-hop sessions") disagrees with its own
//!   per-route listing (6 + 6 = 12); the listing is the only assignment
//!   that exactly fills every link, so the listing wins (see DESIGN.md).
//! * **CROSS** — route `a-j` plus the five one-hop routes `a-f` … `e-j`
//!   (the "cross traffic").

use lit_net::{LinkParams, NetworkBuilder, NodeId};

/// Number of server nodes in the paper's topology.
pub const NUM_NODES: usize = 5;

/// A route through the tandem, by entrance and exit letter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Route {
    /// Entrance letter, `'a'..='e'` (node 1..5).
    pub entry: char,
    /// Exit letter, `'f'..='j'` (after node 1..5).
    pub exit: char,
}

impl Route {
    /// Construct and validate a route.
    ///
    /// # Panics
    /// Panics on letters outside `a..=e` / `f..=j` or an exit before the
    /// entry.
    pub fn new(entry: char, exit: char) -> Self {
        let r = Route { entry, exit };
        let _ = r.node_indices();
        r
    }

    /// The 0-based node indices this route traverses.
    pub fn node_indices(&self) -> std::ops::RangeInclusive<usize> {
        assert!(
            ('a'..='e').contains(&self.entry),
            "bad entry {}",
            self.entry
        );
        assert!(('f'..='j').contains(&self.exit), "bad exit {}", self.exit);
        let first = self.entry as usize - 'a' as usize;
        let last = self.exit as usize - 'f' as usize;
        assert!(
            first <= last,
            "route {}-{} goes backwards",
            self.entry,
            self.exit
        );
        first..=last
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.node_indices().count()
    }

    /// The node ids of this route within a network whose tandem nodes are
    /// `nodes`.
    pub fn nodes(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        self.node_indices().map(|i| nodes[i]).collect()
    }

    /// Render as the paper's `a-j` notation.
    pub fn name(&self) -> String {
        format!("{}-{}", self.entry, self.exit)
    }
}

/// The MIX configuration: `(route, session_count)` pairs, exactly as the
/// paper lists them. Every link ends up with 48 sessions.
pub fn mix_routes() -> Vec<(Route, usize)> {
    vec![
        (Route::new('a', 'j'), 10), // five-hop
        (Route::new('b', 'g'), 10), // one-hop
        (Route::new('c', 'h'), 10), // one-hop
        (Route::new('d', 'i'), 10), // one-hop
        (Route::new('a', 'f'), 16), // one-hop
        (Route::new('e', 'j'), 16), // one-hop
        (Route::new('a', 'h'), 8),  // three-hop
        (Route::new('c', 'j'), 8),  // three-hop
        (Route::new('a', 'g'), 8),  // two-hop
        (Route::new('d', 'j'), 8),  // two-hop
        (Route::new('a', 'i'), 6),  // four-hop
        (Route::new('b', 'j'), 6),  // four-hop
    ]
}

/// The CROSS configuration's one-hop cross routes.
pub fn cross_routes() -> Vec<Route> {
    vec![
        Route::new('a', 'f'),
        Route::new('b', 'g'),
        Route::new('c', 'h'),
        Route::new('d', 'i'),
        Route::new('e', 'j'),
    ]
}

/// The five-hop route `a-j` every reported measurement uses.
pub fn five_hop() -> Route {
    Route::new('a', 'j')
}

/// Create the paper's five T1 nodes in a builder, returning their ids.
pub fn paper_tandem(b: &mut NetworkBuilder) -> Vec<NodeId> {
    b.tandem(NUM_NODES, LinkParams::paper_t1())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_spans() {
        assert_eq!(five_hop().hops(), 5);
        assert_eq!(Route::new('b', 'g').hops(), 1);
        assert_eq!(Route::new('a', 'h').hops(), 3);
        assert_eq!(Route::new('d', 'j').hops(), 2);
        assert_eq!(Route::new('b', 'j').hops(), 4);
        assert_eq!(
            Route::new('a', 'i').node_indices().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(five_hop().name(), "a-j");
    }

    #[test]
    #[should_panic(expected = "goes backwards")]
    fn backwards_route_rejected() {
        Route::new('e', 'f');
    }

    #[test]
    fn mix_fills_every_link_with_exactly_48_sessions() {
        let mut per_link = [0usize; NUM_NODES];
        for (route, count) in mix_routes() {
            for n in route.node_indices() {
                per_link[n] += count;
            }
        }
        assert_eq!(per_link, [48; NUM_NODES]);
        // 48 × 32 kbit/s = 1536 kbit/s = T1: every link exactly full.
    }

    #[test]
    fn mix_hop_census_matches_paper_listing() {
        let mut by_hops = [0usize; 6];
        for (route, count) in mix_routes() {
            by_hops[route.hops()] += count;
        }
        assert_eq!(by_hops[5], 10);
        assert_eq!(by_hops[4], 12); // the paper's prose says 8 — see module docs
        assert_eq!(by_hops[3], 16);
        assert_eq!(by_hops[2], 16);
        assert_eq!(by_hops[1], 62);
        assert_eq!(mix_routes().iter().map(|(_, c)| c).sum::<usize>(), 116);
    }

    #[test]
    fn cross_routes_cover_each_link_once() {
        let mut per_link = [0usize; NUM_NODES];
        for r in cross_routes() {
            assert_eq!(r.hops(), 1);
            per_link[*r.node_indices().start()] += 1;
        }
        assert_eq!(per_link, [1; NUM_NODES]);
    }
}
