//! `lit-repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! lit-repro [--quick] [--seed N] [--threads N] [--shards N] [--replicas N] [--out DIR] <command>
//!
//! commands:
//!   fig7        max delay/jitter sweep, MIX ON-OFF, AC1/one class
//!   fig8        jitter control vs none, CROSS + Poisson cross traffic
//!   fig9        delay CCDF vs bounds, Poisson session rho = 0.7
//!   fig10       delay CCDF vs bounds, Poisson session rho = 0.33
//!   fig11       same session, Deterministic (CBR) cross traffic
//!   fig12       buffer distribution, session without jitter control
//!   fig13       buffer distribution, session with jitter control
//!   fig14-17    AC2 two-class delay-shifting sweep
//!   tables      §2 admission examples, PGPS equivalence, §4 Stop-and-Go
//!   firewall    victim vs misbehaving bursts across five disciplines
//!   all         everything above
//! ```
//!
//! `--quick` shrinks every run to ~20 simulated seconds and pools 4
//! replicas per distribution experiment for smoke tests; the default
//! reproduces the paper's 5/10-minute horizons with a single replica.
//! Independent runs (sweep points, disciplines, replicas) spread over
//! `--threads N` workers (default: all cores); the thread count never
//! changes results, only wall-clock time. `--shards N` splits every
//! network *within* one run across N per-core shard executors (default:
//! 1, the scalar engine) — byte-identical results across every `N ≥ 2`,
//! and identical to `N = 1` on the experiments' staggered traffic where
//! no two events share an instant (the general tie-order caveat and the
//! fallback cases are documented at `lit_net::shard`; a run whose
//! `--shards` request degraded to scalar says so on stderr). Tables
//! print to stdout and are also written as CSV under `--out` (default
//! `results/`).

#![forbid(unsafe_code)]

use lit_core::Ac3Backend;
use lit_net::OracleMode;
use lit_repro::experiments::{
    ablation, fig14_17, fig7, fig8, fig9_11, firewall, heavytail, tables, RunConfig,
};
use lit_repro::report::Table;
use lit_repro::scenario::Scenario;
use lit_sim::Duration;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    cfg: RunConfig,
    out: PathBuf,
    command: String,
    extra: Vec<String>,
    /// `--metrics FILE`: write the pooled observability metrics JSON here.
    metrics: Option<PathBuf>,
    /// `--trace FILE`: write the pooled packet-lifecycle trace here
    /// (Chrome `trace_event` JSON; `.jsonl` extension selects JSONL).
    trace: Option<PathBuf>,
    /// `--ac3 exact|fast`: vet scenario sessions through per-node
    /// procedure-3 admission before running, dropping rejected sessions.
    ac3: Option<Ac3Backend>,
    /// `--ladder r1,r2,...`: sweep the scenario's `generate` stanzas over
    /// these offered loads with heavy-traffic cross-checks instead of a
    /// single run.
    ladder: Option<Vec<u32>>,
}

fn usage() -> ! {
    eprintln!(
        "usage: lit-repro [--quick] [--seconds N] [--seed N] [--threads N] [--shards N] [--replicas N] [--out DIR] \
         [--oracle off|count|panic] [--regulator per-session|interleaved] [--metrics FILE] [--trace FILE] \
         [--ac3 exact|fast] [--ladder R1,R2,...] \
         <fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14-17|fig14-17-ac1|tables|firewall|ablation-queue|heavytail|scenario FILE|all>\n\
         --ac3 applies to `scenario`: establishment is vetted per node by procedure 3 \
         (the exact enumerator or the incremental fast service) and rejected sessions are dropped\n\
         --ladder applies to `scenario`: re-target the file's `generate` stanzas at each offered \
         load (e.g. 0.5,0.8,0.95,1.2) and cross-check utilization, drainage and the delay frontier\n\
         --regulator overrides the eligibility-regulator backend for every network built"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut quick = false;
    let mut seconds = None;
    let mut seed = None;
    let mut threads = None;
    let mut replicas = None;
    let mut out = PathBuf::from("results");
    let mut command = None;
    let mut extra = Vec::new();
    let mut metrics = None;
    let mut trace = None;
    let mut ac3 = None;
    let mut ladder = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--seconds" => seconds = Some(num(&mut it)),
            "--seed" => seed = Some(num(&mut it)),
            "--threads" => threads = Some(num(&mut it).max(1) as usize),
            "--shards" => lit_net::shard::set_global_shards(num(&mut it) as usize),
            "--replicas" => replicas = Some(num(&mut it).max(1) as u32),
            "--out" => out = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--metrics" => metrics = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--trace" => trace = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--ac3" => {
                ac3 = Some(
                    it.next()
                        .and_then(|v| v.parse::<Ac3Backend>().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--oracle" => {
                let mode = it
                    .next()
                    .and_then(|v| v.parse::<OracleMode>().ok())
                    .unwrap_or_else(|| usage());
                lit_net::oracle::set_global_mode(mode);
            }
            "--regulator" => {
                let backend = it
                    .next()
                    .and_then(|v| v.parse::<lit_net::RegulatorBackend>().ok())
                    .unwrap_or_else(|| usage());
                lit_net::set_global_regulator(backend);
            }
            "--ladder" => {
                let spec = it.next().unwrap_or_else(|| usage());
                ladder = Some(lit_repro::heavy::parse_ladder(&spec).unwrap_or_else(|e| {
                    eprintln!("--ladder: {e}");
                    std::process::exit(2);
                }));
            }
            c if !c.starts_with('-') && command.is_none() => command = Some(c.to_string()),
            c if !c.starts_with('-') => extra.push(c.to_string()),
            _ => usage(),
        }
    }
    // --quick selects the reduced preset (20 s horizon, 4 pooled
    // replicas); explicit flags override it regardless of order.
    let mut cfg = if quick {
        RunConfig::quick()
    } else {
        RunConfig::paper()
    };
    if let Some(s) = seconds {
        cfg.seconds = Some(s);
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(t) = threads {
        cfg.threads = Some(t);
    }
    if let Some(r) = replicas {
        cfg.replicas = r;
    }
    // Arm the global observability hub before anything builds a network.
    lit_obs::hub::set_global(metrics.is_some() || trace.is_some(), trace.is_some());
    Args {
        cfg,
        out,
        command: command.unwrap_or_else(|| usage()),
        extra,
        metrics,
        trace,
        ac3,
        ladder,
    }
}

/// Vet a parsed scenario through per-node AC3 (`--ac3`): print one
/// verdict per session line and return the scenario with the rejected
/// sessions dropped, or `None` if nothing was admitted.
fn vet_scenario(sc: &Scenario, backend: Ac3Backend) -> Option<Scenario> {
    let verdicts = sc.ac3_vet(backend);
    let keep: Vec<bool> = verdicts.iter().map(|v| v.is_ok()).collect();
    for (i, v) in verdicts.iter().enumerate() {
        match v {
            Ok(()) => println!("ac3[{backend:?}]: session {i} admitted"),
            Err(e) => println!("ac3[{backend:?}]: session {i} REJECTED ({e})"),
        }
    }
    let admitted = keep.iter().filter(|&&k| k).count();
    println!(
        "ac3[{backend:?}]: {admitted}/{} session(s) admitted",
        keep.len()
    );
    if admitted == 0 {
        return None;
    }
    Some(sc.retain_sessions(&keep))
}

/// After the run: flush the pooled observability output to the paths the
/// `--metrics` / `--trace` flags named. Both exports are deterministic
/// for a given seed and workload, independent of `--threads`.
fn write_obs(args: &Args) {
    if let Some(path) = &args.metrics {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(path, lit_obs::hub::metrics_json()) {
            Ok(()) => eprintln!("[metrics] {}", path.display()),
            Err(e) => eprintln!("[metrics] failed to write {}: {e}", path.display()),
        }
    }
    if let Some(path) = &args.trace {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            lit_obs::hub::trace_jsonl()
        } else {
            lit_obs::hub::chrome_trace_json()
        };
        match std::fs::write(path, body) {
            Ok(()) => eprintln!("[trace] {}", path.display()),
            Err(e) => eprintln!("[trace] failed to write {}: {e}", path.display()),
        }
    }
}

fn emit(out: &Path, name: &str, t: &Table) {
    print!("{}", t.render());
    println!();
    match t.write_csv(out, name) {
        Ok(()) => println!("[csv] {}/{name}.csv", out.display()),
        Err(e) => eprintln!("[csv] failed to write {name}.csv: {e}"),
    }
    println!();
}

fn run_command(cmd: &str, cfg: &RunConfig, out: &Path) -> bool {
    match cmd {
        "fig7" => {
            let points = fig7::run(cfg);
            emit(out, "fig7", &fig7::table(&points));
        }
        "fig8" | "fig12" | "fig13" => {
            let r = fig8::run(cfg);
            match cmd {
                "fig8" => {
                    emit(out, "fig8_summary", &fig8::table(&r));
                    emit(out, "fig8_pdf", &fig8::pdf_table(&r));
                }
                "fig12" => emit(out, "fig12_buffer_nojc", &fig8::buffer_table(&r, false)),
                _ => emit(out, "fig13_buffer_jc", &fig8::buffer_table(&r, true)),
            }
        }
        "fig9" | "fig10" | "fig11" => {
            let variant = match cmd {
                "fig9" => fig9_11::Variant::Fig9,
                "fig10" => fig9_11::Variant::Fig10,
                _ => fig9_11::Variant::Fig11,
            };
            let r = fig9_11::run(cfg, variant);
            emit(out, cmd, &fig9_11::table(&r));
            if let (Some(ana), Some(emp)) =
                (r.analytic_percentile(1e-4), r.empirical_percentile(1e-4))
            {
                println!(
                    "0.01% tail: analytic bound {:.1} ms, observed {:.1} ms",
                    ana.as_millis_f64(),
                    emp.as_millis_f64()
                );
            }
        }
        "fig14-17" | "fig14" | "fig15" | "fig16" | "fig17" => {
            let points = fig14_17::run(cfg);
            emit(out, "fig14_17", &fig14_17::table(&points));
        }
        "tables" => {
            emit(
                out,
                "table_admission_examples",
                &tables::admission_examples(),
            );
            emit(out, "table_pgps_equivalence", &tables::pgps_equivalence(10));
            emit(out, "table_stop_and_go", &tables::stop_and_go_table());
            emit(
                out,
                "table_virtualclock_bounds",
                &tables::virtualclock_bounds(10),
            );
        }
        "firewall" => {
            let rows = firewall::run(cfg);
            emit(out, "firewall", &firewall::table(&rows));
        }
        "fig14-17-ac1" => {
            let t = fig14_17::procedure_comparison(cfg, Duration::from_ms(88));
            emit(out, "fig14_17_ac1_vs_ac2", &t);
        }
        "ablation-queue" => {
            let rows = ablation::run(cfg);
            emit(out, "ablation_queue", &ablation::table(&rows));
        }
        "heavytail" => {
            let r = heavytail::run(cfg);
            emit(out, "heavytail", &heavytail::table(&r));
        }
        "scenario" => unreachable!("handled in main"),
        "all" => {
            for c in [
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "fig12",
                "fig13",
                "fig14-17",
                "fig14-17-ac1",
                "tables",
                "firewall",
                "ablation-queue",
                "heavytail",
            ] {
                println!("==> {c}");
                run_command(c, cfg, out);
            }
        }
        _ => return false,
    }
    true
}

/// After a run: if `--shards` asked for parallelism but some network
/// builds degraded to the scalar engine (probe installed, panic-mode
/// oracle, zero-lookahead edge), say so — the results are still valid,
/// but any wall-clock numbers were measured on the scalar engine.
fn report_shard_fallbacks() {
    let fb = lit_net::shard::shard_fallbacks();
    if lit_net::shard::global_shards() > 1 && fb > 0 {
        eprintln!(
            "shards: {fb} network build(s) fell back to the scalar engine \
             (probe / panic-mode oracle / zero-lookahead edge; results unaffected)"
        );
    }
}

/// After a run: report the process-global conformance-oracle tally (every
/// Leave-in-Time network built by the experiments feeds it, drain checks
/// included) and turn a nonzero count into a failing exit.
fn oracle_verdict() -> ExitCode {
    if lit_net::oracle::global_mode() == OracleMode::Off {
        return ExitCode::SUCCESS;
    }
    let v = lit_net::oracle::global_violations();
    if v == 0 {
        eprintln!("oracle: 0 violations");
        ExitCode::SUCCESS
    } else {
        eprintln!("oracle: {v} violation(s) — bounds do not conform");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.command == "scenario" {
        let path = args.extra.first().cloned().unwrap_or_else(|| usage());
        return match Scenario::load(&path) {
            Ok(sc) => {
                if let Some(rungs) = &args.ladder {
                    let opts = lit_repro::scenario::RunOptions {
                        oracle: lit_net::oracle::global_mode(),
                        ..Default::default()
                    };
                    let report = lit_repro::heavy::run_ladder(&sc, rungs, &opts);
                    emit(
                        &args.out,
                        "scenario_ladder",
                        &lit_repro::heavy::table(&report),
                    );
                    for f in &report.failures {
                        eprintln!("ladder: {f}");
                    }
                    write_obs(&args);
                    report_shard_fallbacks();
                    let verdict = oracle_verdict();
                    return if report.failures.is_empty() {
                        verdict
                    } else {
                        eprintln!("ladder: {} cross-check failure(s)", report.failures.len());
                        ExitCode::FAILURE
                    };
                }
                // Expand `generate` stanzas up front so AC3 vetting and
                // the report index the concrete session list.
                let sc = sc.expanded();
                let sc = match args.ac3 {
                    Some(backend) => match vet_scenario(&sc, backend) {
                        Some(sc) => sc,
                        None => {
                            eprintln!("scenario: ac3 admitted no sessions");
                            return ExitCode::FAILURE;
                        }
                    },
                    None => sc,
                };
                emit(&args.out, "scenario", &sc.run_report());
                write_obs(&args);
                report_shard_fallbacks();
                oracle_verdict()
            }
            Err(e) => {
                eprintln!("scenario: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mode = match args.cfg.seconds {
        Some(s) => format!("{s} s (reduced)"),
        None => "paper horizons (5/10 min)".to_string(),
    };
    let oracle = match lit_net::oracle::global_mode() {
        OracleMode::Off => String::new(),
        m => format!(" | oracle {m:?}"),
    };
    eprintln!(
        "lit-repro: {} | seed {} | horizon {mode} | {} worker thread(s) | {} replica(s){oracle}",
        args.command,
        args.cfg.seed,
        args.cfg.worker_count(),
        args.cfg.replicas.max(1),
    );
    if run_command(&args.command, &args.cfg, &args.out) {
        write_obs(&args);
        report_shard_fallbacks();
        oracle_verdict()
    } else {
        usage()
    }
}
