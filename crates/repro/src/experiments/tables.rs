//! The paper's in-text numeric artifacts rendered as tables:
//!
//! * §2's worked admission-control examples (AC1 vs AC2 `d` values);
//! * §2's PGPS-equivalence claim (ineq. 15 = Parekh's bound), checked by
//!   computing both sides independently over a hop sweep;
//! * §4's Stop-and-Go delay-bound comparison.

use crate::report::{ms, Table};
use lit_core::{
    stop_and_go_comparison, ClassedAdmission, DRule, DelayClass, HopSpec, PathBounds, Procedure,
    SessionRequest,
};
use lit_net::{DelayAssignment, LinkParams};
use lit_sim::Duration;

/// The worked example's class ladder: (10 Mbit/s, 0.2 ms),
/// (40 Mbit/s, 1.6 ms), (100 Mbit/s, 4 ms) on a 100 Mbit/s link.
fn example_classes() -> Vec<DelayClass> {
    vec![
        DelayClass {
            max_bandwidth_bps: 10_000_000,
            base_delay: Duration::from_us(200),
        },
        DelayClass {
            max_bandwidth_bps: 40_000_000,
            base_delay: Duration::from_us(1_600),
        },
        DelayClass {
            max_bandwidth_bps: 100_000_000,
            base_delay: Duration::from_ms(4),
        },
    ]
}

/// §2 worked examples: `d` per class under AC1 and AC2 for the
/// 100 kbit/s and 10 kbit/s sessions. Expected values (paper):
/// AC1 100 kbit/s → 0.4 / 1.8 / 5.6 ms; AC2 100 kbit/s → 0.2 / 2.0 /
/// 5.6 ms; class-1 10 kbit/s → 4 ms (AC1) vs 0.2 ms (AC2).
pub fn admission_examples() -> Table {
    let mut t = Table::new(
        "§2 worked examples — d_{i,s} per class (C = 100 Mbit/s, L = 400 bits)",
        &["procedure", "rate_kbps", "class", "d_ms"],
    );
    for (proc_name, procedure) in [("AC1", Procedure::Proc1), ("AC2", Procedure::Proc2)] {
        let ac = ClassedAdmission::new(procedure, 100_000_000, example_classes())
            .expect("example classes are valid");
        for rate in [100_000u64, 10_000] {
            let req = SessionRequest::new(rate, 400);
            for class in 0..3usize {
                let a = ac.d_assignment(class, &req, DRule::PerSessionMax);
                let d = a.d_for(400, rate);
                t.push(vec![
                    proc_name.to_string(),
                    (rate / 1000).to_string(),
                    (class + 1).to_string(),
                    ms(d),
                ]);
            }
        }
    }
    t
}

/// §2 PGPS equivalence: for a token-bucket `(r, b₀)` session with
/// `d = L/r` at every hop, ineq. (15) must coincide with Parekh's PGPS
/// bound `b₀/r + (N−1)·L_max/r + Σₙ(L_MAX/Cₙ + Γₙ)`, computed here from
/// its published closed form, independent of `PathBounds`.
pub fn pgps_equivalence(max_hops: usize) -> Table {
    let mut t = Table::new(
        "§2 — Leave-in-Time (AC1/one class) delay bound vs PGPS closed form",
        &["hops", "lit_bound_ms", "pgps_bound_ms", "equal"],
    );
    let link = LinkParams::paper_t1();
    let (rate, b0, lmax) = (32_000u64, 424u64, 424u64);
    for n in 1..=max_hops {
        let hop = HopSpec {
            link,
            assignment: DelayAssignment::LenOverRate,
        };
        let lit = PathBounds::new(rate, lmax as u32, lmax as u32, vec![hop; n])
            .delay_bound_token_bucket(b0);
        // PGPS closed form (Parekh eq. 23 plus propagation).
        let mut pgps = Duration::from_bits_at_rate(b0, rate);
        pgps += Duration::from_bits_at_rate(lmax, rate) * (n as u64 - 1);
        for _ in 0..n {
            pgps += link.lmax_time() + link.propagation;
        }
        t.push(vec![
            n.to_string(),
            ms(lit),
            ms(pgps),
            (lit == pgps).to_string(),
        ]);
    }
    t
}

/// §4 Stop-and-Go comparison over a frame-size sweep: the session sends
/// ≤ 10 packets of `0.01·T·C` bits per `T` (average rate `0.1·C`), both
/// schemes reserve `0.1·C`, Leave-in-Time uses `d = L/r = 0.1·T`.
pub fn stop_and_go_table() -> Table {
    let mut t = Table::new(
        "§4 — end-to-end delay bounds: Stop-and-Go vs Leave-in-Time (H = 5 hops, no propagation)",
        &["frame_T_ms", "sng_low_ms", "sng_high_ms", "lit_bound_ms"],
    );
    for t_ms in [5u64, 10, 20, 50, 100] {
        let frame = Duration::from_ms(t_ms);
        let link = LinkParams {
            rate_bps: 1_536_000,
            propagation: Duration::ZERO,
            lmax_bits: 424,
        };
        let rate = link.rate_bps / 10; // 0.1·C
        let d_max = frame / 10; // 0.1·T
        let (lo, hi, lit) = stop_and_go_comparison(frame, 5, &link, rate, d_max);
        t.push(vec![t_ms.to_string(), ms(lo), ms(hi), ms(lit)]);
    }
    t
}

/// §5's "new results for VirtualClock": because VirtualClock is
/// Leave-in-Time with one class, `d = L/r`, and no jitter control, the
/// paper's jitter / distribution-shift / buffer bounds apply to it — the
/// first such bounds published for VirtualClock. This table evaluates them
/// for the paper's standard voice session over 1–10 hops.
pub fn virtualclock_bounds(max_hops: usize) -> Table {
    let mut t = Table::new(
        "§5 — bounds inherited by VirtualClock (32 kbit/s voice session, T1 links)",
        &[
            "hops",
            "delay_bound_ms",
            "jitter_bound_ms",
            "dist_shift_ms",
            "buffer_bound_last_node_bits",
        ],
    );
    let link = LinkParams::paper_t1();
    let dref = Duration::from_us(13_250); // b0/r for a one-cell bucket
    for n in 1..=max_hops {
        let hop = HopSpec {
            link,
            assignment: DelayAssignment::LenOverRate,
        };
        let pb = PathBounds::new(32_000, 424, 424, vec![hop; n]);
        t.push(vec![
            n.to_string(),
            ms(pb.delay_bound(dref)),
            ms(pb.jitter_bound(dref, false)),
            format!("{:.3}", pb.shift_ps() as f64 / 1e9),
            pb.buffer_bound_bits(dref, n - 1, false).to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgps_rows_all_equal() {
        let t = pgps_equivalence(10);
        let csv = t.to_csv();
        assert_eq!(csv.matches("true").count(), 10, "{csv}");
        assert!(!csv.contains("false"));
    }

    #[test]
    fn admission_example_table_has_all_rows() {
        let t = admission_examples();
        assert_eq!(t.len(), 12);
        let csv = t.to_csv();
        // Spot-check the paper's headline values.
        assert!(csv.contains("AC1,100,1,0.400"));
        assert!(csv.contains("AC2,100,1,0.200"));
        assert!(csv.contains("AC1,10,1,4.000"));
        assert!(csv.contains("AC2,10,1,0.200"));
        assert!(csv.contains("AC1,100,3,5.600"));
        assert!(csv.contains("AC2,100,3,5.600"));
    }

    #[test]
    fn virtualclock_bounds_grow_linearly_in_hops() {
        let t = virtualclock_bounds(10);
        assert_eq!(t.len(), 10);
        let csv = t.to_csv();
        let rows: Vec<Vec<f64>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // Delay bound and jitter bound increase with every hop; the
        // increments are constant (β is linear in N).
        for w in rows.windows(2) {
            assert!(w[1][1] > w[0][1]);
            assert!(w[1][2] > w[0][2]);
            assert!(w[1][4] >= w[0][4]);
        }
        let inc1 = rows[1][1] - rows[0][1];
        let inc2 = rows[9][1] - rows[8][1];
        assert!((inc1 - inc2).abs() < 1e-6, "{inc1} vs {inc2}");
    }

    #[test]
    fn stop_and_go_lit_wins_at_every_frame_size() {
        let csv = stop_and_go_table().to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let lo: f64 = cells[1].parse().unwrap();
            let lit: f64 = cells[3].parse().unwrap();
            assert!(lit < lo, "{line}");
        }
    }
}
