//! Figures 8, 12, 13 — one 10-minute CROSS run with two tagged five-hop
//! ON-OFF sessions (with/without delay-jitter control) and Poisson cross
//! traffic.
//!
//! * Figure 8: end-to-end delay distributions of the two sessions. Paper:
//!   jitter drops from 59.7 ms observed (bound 66.25 ms) without control
//!   to 12.4 ms (bound 13.25 ms) with control, at the price of a higher
//!   *average* delay.
//! * Figures 12/13: buffer-space distributions of the same two sessions at
//!   the first and last nodes, against the calculated bounds (observed max
//!   within about two packets of the bound).

use super::common::{
    build_cross_onoff, max_lateness_fraction, run_points, voice_bounds, PooledSession, RunConfig,
};
use crate::report::{frac, ms, Table};
use lit_net::{Network, SessionId};
use lit_sim::Duration;

/// Everything measured in the Figure 8/12/13 run.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    /// Summary per tagged session (no-JC first, JC second).
    pub sessions: [SessionSummary; 2],
    /// Scheduler-saturation diagnostic.
    pub lateness_fraction: f64,
}

/// Per-session measurements and bounds.
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// `true` for the session with delay-jitter control.
    pub jitter_control: bool,
    /// Delivered packet count.
    pub delivered: u64,
    /// Observed jitter (max − min delay).
    pub jitter: Duration,
    /// Jitter bound (66.25 ms without JC, 13.25 ms with, per the paper).
    pub jitter_bound: Duration,
    /// Observed max delay and the delay bound.
    pub max_delay: Duration,
    /// Analytic end-to-end delay bound (ineq. 15).
    pub delay_bound: Duration,
    /// Mean delay (jitter control should *raise* it).
    pub mean_delay: Duration,
    /// Delay histogram, `(bin_lower_edge, fraction)` — Figure 8's curves.
    pub delay_pdf: Vec<(Duration, f64)>,
    /// Buffer occupancy at the first node: `(max_bits, bound_bits, pdf)`.
    pub buffer_first: BufferSummary,
    /// Buffer occupancy at the last node.
    pub buffer_last: BufferSummary,
}

/// Buffer occupancy at one node (Figures 12/13).
#[derive(Clone, Debug)]
pub struct BufferSummary {
    /// Largest observed occupancy, bits.
    pub max_bits: u64,
    /// The calculated upper bound, bits.
    pub bound_bits: u64,
    /// `(occupancy_bits, fraction)` distribution.
    pub pdf: Vec<(u64, f64)>,
}

/// Analytic bounds of one tagged session. Bounds depend only on the
/// admission sequence, which is identical in every replica.
#[derive(Clone, Copy, Debug)]
struct SessionBounds {
    jitter_bound: Duration,
    delay_bound: Duration,
    buffer_first_bound: u64,
    buffer_last_bound: u64,
}

fn bounds_of(net: &Network, id: SessionId, jc: bool) -> SessionBounds {
    let (pb, dref) = voice_bounds(net, id);
    SessionBounds {
        jitter_bound: pb.jitter_bound(dref, jc),
        delay_bound: pb.delay_bound(dref),
        buffer_first_bound: pb.buffer_bound_bits(dref, 0, jc),
        buffer_last_bound: pb.buffer_bound_bits(dref, pb.hops() - 1, jc),
    }
}

fn summarize(pooled: &PooledSession, b: &SessionBounds, jc: bool) -> SessionSummary {
    SessionSummary {
        jitter_control: jc,
        delivered: pooled.delivered,
        jitter: pooled.jitter().unwrap_or(Duration::ZERO),
        jitter_bound: b.jitter_bound,
        max_delay: pooled.max_delay().unwrap_or(Duration::ZERO),
        delay_bound: b.delay_bound,
        mean_delay: pooled.mean_delay().unwrap_or(Duration::ZERO),
        delay_pdf: pooled.e2e.pdf(),
        buffer_first: BufferSummary {
            max_bits: pooled.buffer_first.max_bits(),
            bound_bits: b.buffer_first_bound,
            pdf: pooled.buffer_first.pdf(),
        },
        buffer_last: BufferSummary {
            max_bits: pooled.buffer_last.max_bits(),
            bound_bits: b.buffer_last_bound,
            pdf: pooled.buffer_last.pdf(),
        },
    }
}

/// One replica's measurements: the two tagged sessions plus diagnostics.
struct Replica {
    sessions: [PooledSession; 2],
    bounds: [SessionBounds; 2],
    lateness_fraction: f64,
}

/// Run the experiment: [`RunConfig::replicas`] independent runs on the
/// worker pool, pooled into one pair of session distributions.
pub fn run(cfg: &RunConfig) -> Fig8Result {
    let seeds = cfg.replica_seeds();
    let reps: Vec<Replica> = run_points(cfg, &seeds, |_, &seed| {
        let (mut net, no_jc, jc) = build_cross_onoff(seed);
        net.run_until(cfg.horizon(600));
        Replica {
            sessions: [
                PooledSession::from_stats(net.session_stats(no_jc)),
                PooledSession::from_stats(net.session_stats(jc)),
            ],
            bounds: [bounds_of(&net, no_jc, false), bounds_of(&net, jc, true)],
            lateness_fraction: max_lateness_fraction(&net),
        }
    });
    let bounds = reps[0].bounds;
    let lateness_fraction = reps
        .iter()
        .map(|r| r.lateness_fraction)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut per_session: [Vec<PooledSession>; 2] = [Vec::new(), Vec::new()];
    for rep in reps {
        let [a, b] = rep.sessions;
        per_session[0].push(a);
        per_session[1].push(b);
    }
    let [no_jc_snaps, jc_snaps] = per_session;
    Fig8Result {
        sessions: [
            summarize(&PooledSession::pool(no_jc_snaps), &bounds[0], false),
            summarize(&PooledSession::pool(jc_snaps), &bounds[1], true),
        ],
        lateness_fraction,
    }
}

/// Figure 8 summary table.
pub fn table(r: &Fig8Result) -> Table {
    let mut t = Table::new(
        "Figure 8 — delay jitter with/without delay-jitter control (CROSS, Poisson cross traffic)",
        &[
            "session",
            "delivered",
            "jitter_ms",
            "jitter_bound_ms",
            "max_delay_ms",
            "delay_bound_ms",
            "mean_delay_ms",
        ],
    );
    for s in &r.sessions {
        t.push(vec![
            if s.jitter_control { "with-jc" } else { "no-jc" }.to_string(),
            s.delivered.to_string(),
            ms(s.jitter),
            ms(s.jitter_bound),
            ms(s.max_delay),
            ms(s.delay_bound),
            ms(s.mean_delay),
        ]);
    }
    t
}

/// Figure 8 delay-distribution table (both sessions' PDFs on a common
/// axis).
pub fn pdf_table(r: &Fig8Result) -> Table {
    let mut t = Table::new(
        "Figure 8 — delay distributions",
        &["delay_ms", "fraction_no_jc", "fraction_with_jc"],
    );
    use std::collections::BTreeMap;
    let mut bins: BTreeMap<u64, [f64; 2]> = BTreeMap::new();
    for (i, s) in r.sessions.iter().enumerate() {
        for &(edge, f) in &s.delay_pdf {
            bins.entry(edge.as_ps()).or_default()[i] = f;
        }
    }
    for (edge_ps, fr) in bins {
        t.push(vec![
            format!("{:.3}", Duration::from_ps(edge_ps).as_millis_f64()),
            frac(fr[0]),
            frac(fr[1]),
        ]);
    }
    t
}

/// Figures 12/13 buffer table for one session.
pub fn buffer_table(r: &Fig8Result, jc: bool) -> Table {
    let s = &r.sessions[usize::from(jc)];
    let fig = if jc { "Figure 13" } else { "Figure 12" };
    let mut t = Table::new(
        format!(
            "{fig} — buffer space, session {} delay-jitter control (max/bound: first {}/{} bits, last {}/{} bits)",
            if jc { "with" } else { "without" },
            s.buffer_first.max_bits,
            s.buffer_first.bound_bits,
            s.buffer_last.max_bits,
            s.buffer_last.bound_bits,
        ),
        &["buffer_bits", "fraction_first_node", "fraction_last_node"],
    );
    use std::collections::BTreeMap;
    let mut bins: BTreeMap<u64, [f64; 2]> = BTreeMap::new();
    for &(bits, f) in &s.buffer_first.pdf {
        bins.entry(bits).or_default()[0] = f;
    }
    for &(bits, f) in &s.buffer_last.pdf {
        bins.entry(bits).or_default()[1] = f;
    }
    for (bits, fr) in bins {
        t.push(vec![bits.to_string(), frac(fr[0]), frac(fr[1])]);
    }
    t
}
