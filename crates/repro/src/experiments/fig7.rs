//! Figure 7: maximum delay and delay jitter of a five-hop ON-OFF session
//! in the MIX configuration under admission control procedure 1 with one
//! class, swept over the mean OFF time (5-minute runs).
//!
//! Paper observations to reproduce: utilization sweeps 35.1 %–98.2 %;
//! observed maximum delay stays well below the calculated upper bound
//! (≈ 72.6 ms) and is largely insensitive to utilization.

use super::common::{
    build_mix_one_class, max_lateness_fraction, run_points, voice_bounds, RunConfig, A_OFF_SWEEP_US,
};
use crate::report::{ms, Table};
use lit_net::NodeId;
use lit_sim::Duration;

/// One sweep point of Figure 7.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Point {
    /// Mean OFF duration `a_OFF`.
    pub a_off: Duration,
    /// Long-run source duty cycle (the paper's "utilization factor").
    pub expected_utilization: f64,
    /// Measured mean link utilization across the five nodes.
    pub measured_utilization: f64,
    /// Observed maximum end-to-end delay of the tagged session.
    pub max_delay: Duration,
    /// Observed end-to-end jitter (max − min).
    pub jitter: Duration,
    /// Mean end-to-end delay.
    pub mean_delay: Duration,
    /// Batch-means 95 % half-width on the mean delay (`None` for very
    /// short runs).
    pub mean_ci: Option<Duration>,
    /// Analytic delay bound (ineq. 15).
    pub delay_bound: Duration,
    /// Analytic jitter bound (no jitter control).
    pub jitter_bound: Duration,
    /// Packets delivered for the tagged session.
    pub delivered: u64,
    /// Worst `finish − deadline` across nodes as a fraction of `L_MAX/C`
    /// (< 1 ⇔ no scheduler saturation).
    pub lateness_fraction: f64,
}

/// Run one sweep point.
pub fn point(cfg: &RunConfig, a_off: Duration) -> Fig7Point {
    let (mut net, tagged) = build_mix_one_class(a_off, cfg.seed);
    let horizon = cfg.horizon(300);
    net.run_until(horizon);
    let st = net.session_stats(tagged);
    let (pb, dref) = voice_bounds(&net, tagged);
    let measured = (0..net.num_nodes())
        .map(|n| net.node_stats(NodeId(n as u32)).utilization_at(horizon))
        .sum::<f64>()
        / net.num_nodes() as f64;
    let duty = 352.0 / (352.0 + a_off.as_millis_f64());
    Fig7Point {
        a_off,
        expected_utilization: duty,
        measured_utilization: measured,
        max_delay: st.max_delay().unwrap_or(Duration::ZERO),
        jitter: st.jitter().unwrap_or(Duration::ZERO),
        mean_delay: st.mean_delay().unwrap_or(Duration::ZERO),
        mean_ci: st.mean_delay_ci().map(|(_, h)| h),
        delay_bound: pb.delay_bound(dref),
        jitter_bound: pb.jitter_bound(dref, false),
        delivered: st.delivered,
        lateness_fraction: max_lateness_fraction(&net),
    }
}

/// Run the full sweep. Points are independent simulations; the shared
/// worker pool spreads them over [`RunConfig::worker_count`] threads.
pub fn run(cfg: &RunConfig) -> Vec<Fig7Point> {
    run_points(cfg, &A_OFF_SWEEP_US, |_, &us| {
        point(cfg, Duration::from_us(us))
    })
}

/// Render the sweep as a table.
pub fn table(points: &[Fig7Point]) -> Table {
    let mut t = Table::new(
        "Figure 7 — five-hop ON-OFF session, MIX, AC1/one class",
        &[
            "a_off_ms",
            "util_expected",
            "util_measured",
            "max_delay_ms",
            "jitter_ms",
            "mean_delay_ms",
            "mean_ci_ms",
            "delay_bound_ms",
            "jitter_bound_ms",
            "delivered",
            "lateness_frac",
        ],
    );
    for p in points {
        t.push(vec![
            format!("{:.1}", p.a_off.as_millis_f64()),
            format!("{:.3}", p.expected_utilization),
            format!("{:.3}", p.measured_utilization),
            ms(p.max_delay),
            ms(p.jitter),
            ms(p.mean_delay),
            p.mean_ci.map(ms).unwrap_or_else(|| "-".into()),
            ms(p.delay_bound),
            ms(p.jitter_bound),
            p.delivered.to_string(),
            format!("{:.3}", p.lateness_fraction),
        ]);
    }
    t
}
