//! One module per figure/table of the paper's evaluation, plus shared
//! machinery. See DESIGN.md's experiment index for the mapping.

pub mod ablation;
pub mod common;
pub mod fig14_17;
pub mod fig7;
pub mod fig8;
pub mod fig9_11;
pub mod firewall;
pub mod heavytail;
pub mod tables;

pub use common::{replica_seed, run_points, PooledSession, RunConfig};
