//! Ablation: exact vs approximate (bucketed) priority queue.
//!
//! The paper: "Leave-in-Time uses an approximate sorted priority queue
//! algorithm which runs in O(1) time with a small cost in emulation
//! error". This experiment quantifies that cost on the Figure 8 workload:
//! the same CROSS network is run with the exact deadline heap and with
//! bucketed queues of increasing bucket width. Per-hop inversions are
//! bounded by one bucket, so end-to-end delay/jitter may grow by at most
//! `hops × bucket` — measured here alongside the wall-clock cost of each
//! queue.

use super::common::{build_cross_onoff_queued, max_lateness_fraction, run_points, RunConfig};
use crate::report::{ms, Table};
use lit_net::QueueKind;
use lit_sim::Duration;

/// Measurements for one queue configuration.
#[derive(Clone, Copy, Debug)]
pub struct AblationRow {
    /// Bucket width; `None` = exact heap.
    pub bucket: Option<Duration>,
    /// Tagged no-jitter-control session: observed max delay.
    pub max_delay: Duration,
    /// Tagged no-jitter-control session: observed jitter.
    pub jitter: Duration,
    /// Tagged jitter-control session: observed jitter.
    pub jitter_jc: Duration,
    /// Worst scheduler lateness as a fraction of `L_MAX/C` (may exceed 1
    /// for coarse buckets — that is the emulation error showing up).
    pub lateness_fraction: f64,
    /// Wall-clock seconds for the run (throughput cost of the queue).
    pub wall_seconds: f64,
}

/// Run the ablation: exact, then bucket widths of 0.1 ms, 1 ms, and one
/// full cell time at the session rate (13.25 ms). The four configurations
/// run on the worker pool; each row's wall clock is measured inside its
/// own worker, so with `--threads 1` the timings stay contention-free
/// (the mode to use when the wall column matters).
pub fn run(cfg: &RunConfig) -> Vec<AblationRow> {
    let cases = [
        None,
        Some(Duration::from_us(100)),
        Some(Duration::from_ms(1)),
        Some(Duration::from_us(13_250)),
    ];
    run_points(cfg, &cases, |_, &bucket| {
        let kind = match bucket {
            None => QueueKind::Exact,
            Some(b) => QueueKind::Bucketed { bucket: b },
        };
        let started = std::time::Instant::now();
        let (mut net, no_jc, jc) = build_cross_onoff_queued(cfg.seed, kind);
        net.run_until(cfg.horizon(600));
        let wall = started.elapsed().as_secs_f64();
        let st = net.session_stats(no_jc);
        AblationRow {
            bucket,
            max_delay: st.max_delay().unwrap_or(Duration::ZERO),
            jitter: st.jitter().unwrap_or(Duration::ZERO),
            jitter_jc: net.session_stats(jc).jitter().unwrap_or(Duration::ZERO),
            lateness_fraction: max_lateness_fraction(&net),
            wall_seconds: wall,
        }
    })
}

/// Render the ablation as a table.
pub fn table(rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        "Ablation — exact vs bucketed (approximate) priority queue, Figure 8 workload",
        &[
            "queue",
            "max_delay_ms",
            "jitter_ms",
            "jitter_jc_ms",
            "lateness_frac",
            "wall_s",
        ],
    );
    for r in rows {
        t.push(vec![
            match r.bucket {
                None => "exact".to_string(),
                Some(b) => format!("bucket={:.2}ms", b.as_millis_f64()),
            },
            ms(r.max_delay),
            ms(r.jitter),
            ms(r.jitter_jc),
            format!("{:.3}", r.lateness_fraction),
            format!("{:.2}", r.wall_seconds),
        ]);
    }
    t
}
