//! Extension experiment: the delay-distribution bound for a heavy-tailed
//! session, where no closed-form reference distribution exists.
//!
//! The paper stresses that its method "is able to provide this function
//! for sessions with **any** kind of dynamic traffic behavior" — for
//! sessions that resist analysis, ineq. (16) still works with the
//! reference-server distribution obtained *by simulation* (the recipe
//! demonstrated on Figures 9–11 with the "simulated upper bound" curve).
//!
//! Here a Pareto ON-OFF session (infinite-variance bursts and silences,
//! the self-similar regime of measured data traffic) crosses the five-hop
//! CROSS configuration; its empirical delay CCDF is compared against the
//! shifted co-simulated reference CCDF. There is no analytic column —
//! that is the point.

use super::common::{
    finish_lit, max_lateness_fraction, run_points, PooledSession, RunConfig, T1_BPS,
};
use crate::report::{frac, Table};
use crate::topology::{cross_routes, five_hop, paper_tandem};
use lit_core::{ClassedAdmission, DRule, PathBounds, SessionRequest};
use lit_net::{DelayAssignment, NetworkBuilder, SessionId, SessionSpec};
use lit_sim::Duration;
use lit_traffic::{ParetoOnOffConfig, ParetoOnOffSource, PoissonSource, ATM_CELL_BITS};

/// One CCDF point of the heavy-tail experiment.
#[derive(Clone, Copy, Debug)]
pub struct HeavyTailPoint {
    /// Delay value.
    pub delay: Duration,
    /// Empirical `P(D > d)`.
    pub empirical: f64,
    /// Simulated ineq.-16 bound (shifted reference CCDF).
    pub simulated_bound: f64,
}

/// The experiment's result.
#[derive(Clone, Debug)]
pub struct HeavyTailResult {
    /// CCDF curves.
    pub points: Vec<HeavyTailPoint>,
    /// Delivered packets of the tagged session.
    pub delivered: u64,
    /// Largest per-packet excess over the reference server (signed ps),
    /// versus the theoretical ceiling `β + α` (ps).
    pub max_excess_ps: i128,
    /// The ceiling itself.
    pub shift_ps: i128,
    /// Saturation diagnostic.
    pub lateness_fraction: f64,
}

/// Build the heavy-tail CROSS network for one replica seed.
fn build(seed: u64) -> (lit_net::Network, SessionId) {
    let mut b = NetworkBuilder::new().seed(seed);
    let nodes = paper_tandem(&mut b);
    let mut admission: Vec<ClassedAdmission> = nodes
        .iter()
        .map(|_| ClassedAdmission::one_class(T1_BPS))
        .collect();

    // Tagged: heavy-tailed voice-like session, reserved at 32 kbit/s.
    let req = SessionRequest::new(32_000, ATM_CELL_BITS);
    let hops: Vec<(u32, DelayAssignment)> = five_hop()
        .node_indices()
        .map(|n| {
            let a = admission[n]
                .try_admit(0, &req, DRule::PerPacket)
                .expect("32 kbit/s fits");
            (nodes[n].0, a)
        })
        .collect();
    let tagged = b.add_session_with_hops(
        SessionSpec::atm(SessionId(0), 32_000),
        hops,
        Box::new(ParetoOnOffSource::new(ParetoOnOffConfig::heavy_voice(
            Duration::from_ms(650),
        ))),
    );
    // Poisson cross load.
    for route in cross_routes() {
        let creq = SessionRequest::new(1_472_000, ATM_CELL_BITS);
        let hops: Vec<(u32, DelayAssignment)> = route
            .node_indices()
            .map(|n| {
                let a = admission[n]
                    .try_admit(0, &creq, DRule::PerPacket)
                    .expect("cross fits");
                (nodes[n].0, a)
            })
            .collect();
        b.add_session_with_hops(
            SessionSpec::atm(SessionId(0), 1_472_000),
            hops,
            Box::new(PoissonSource::new(
                // lit-lint: allow(raw-time-arithmetic, "paper's Table 1 gives mean gaps in fractional milliseconds; one rounding at config build, sub-ps error")
                Duration::from_secs_f64(0.28804e-3),
                ATM_CELL_BITS,
            )),
        );
    }

    let net = finish_lit(b);
    (net, tagged)
}

/// Run the heavy-tail extension on the CROSS topology (default horizon
/// 10 minutes, as Figures 9–11): [`RunConfig::replicas`] independent
/// runs on the worker pool, pooled into one distribution.
pub fn run(cfg: &RunConfig) -> HeavyTailResult {
    let seeds = cfg.replica_seeds();
    let reps: Vec<(PooledSession, PathBounds, f64)> = run_points(cfg, &seeds, |_, &seed| {
        let (mut net, tagged) = build(seed);
        net.run_until(cfg.horizon(600));
        (
            PooledSession::from_stats(net.session_stats(tagged)),
            PathBounds::for_session(&net, tagged),
            max_lateness_fraction(&net),
        )
    });
    let pb = reps[0].1.clone();
    let lateness_fraction = reps
        .iter()
        .map(|&(_, _, l)| l)
        .fold(f64::NEG_INFINITY, f64::max);
    let st = PooledSession::pool(reps.into_iter().map(|(s, _, _)| s).collect());

    let top = st.max_delay().unwrap_or(Duration::ZERO) + Duration::from_ms(20);
    let mut points = Vec::new();
    let mut d = Duration::ZERO;
    while d <= top {
        points.push(HeavyTailPoint {
            delay: d,
            empirical: st.e2e.ccdf_at(d),
            simulated_bound: pb.delay_ccdf_bound(|t| st.reference.ccdf_at(t), d),
        });
        d += Duration::from_ms(1);
    }
    HeavyTailResult {
        points,
        delivered: st.delivered,
        max_excess_ps: if st.delivered > 0 {
            st.max_excess_ps
        } else {
            i128::MIN
        },
        shift_ps: pb.shift_ps(),
        lateness_fraction,
    }
}

/// Render as a table.
pub fn table(r: &HeavyTailResult) -> Table {
    let mut t = Table::new(
        format!(
            "Extension — heavy-tailed (Pareto) session: simulated ineq.-16 bound, {} packets, max pathwise excess {:.3} ms of {:.3} ms allowed",
            r.delivered,
            r.max_excess_ps as f64 / 1e9,
            r.shift_ps as f64 / 1e9,
        ),
        &["delay_ms", "empirical", "simulated_bound"],
    );
    for p in &r.points {
        if p.empirical >= 1.0 && p.simulated_bound >= 1.0 {
            continue;
        }
        t.push(vec![
            format!("{:.1}", p.delay.as_millis_f64()),
            frac(p.empirical),
            frac(p.simulated_bound),
        ]);
    }
    t
}
