//! Figures 14–17 — delay shifting with admission control procedure 2 and
//! two classes, MIX ON-OFF sweep (5-minute runs).
//!
//! Class 1 (R₁ = 640 kbit/s, σ₁ = 2.77 ms ⇒ d = 2.77 ms) holds 5 five-hop
//! and 5 four-hop sessions; class 2 (R₂ = C, σ₂ = 13.25 ms ⇒ d ≈ 18.77 ms)
//! holds everything else. Four tagged five-hop sessions are measured:
//! class 1 and class 2, each with and without delay-jitter control.
//!
//! Paper observation: class-1 sessions see markedly lower delay *and*
//! jitter than class-2 sessions — the class hierarchy shifts delay from
//! one set of sessions to the other without touching anyone's reserved
//! rate.

use super::common::{
    build_mix_ac2, build_mix_classed, max_lateness_fraction, run_points, voice_bounds, RunConfig,
    A_OFF_SWEEP_US,
};
use crate::report::{ms, Table};
use lit_core::Procedure;
use lit_net::{Network, SessionId};
use lit_sim::Duration;

/// Measurements of one tagged session at one sweep point.
#[derive(Clone, Copy, Debug)]
pub struct TaggedMeasure {
    /// Observed maximum end-to-end delay.
    pub max_delay: Duration,
    /// Observed jitter.
    pub jitter: Duration,
    /// Mean delay.
    pub mean_delay: Duration,
    /// Analytic delay bound (ineq. 12 with D^ref = L/r token bucket).
    pub delay_bound: Duration,
    /// Analytic jitter bound for the session's jitter-control mode.
    pub jitter_bound: Duration,
    /// Delivered packets.
    pub delivered: u64,
}

/// One sweep point: the four tagged sessions of Figures 14–17 in order
/// (class 1 no-JC, class 1 JC, class 2 no-JC, class 2 JC).
#[derive(Clone, Copy, Debug)]
pub struct Fig14Point {
    /// Mean OFF duration of every source.
    pub a_off: Duration,
    /// Figures 14, 15, 16, 17 respectively.
    pub tagged: [TaggedMeasure; 4],
    /// Scheduler-saturation diagnostic.
    pub lateness_fraction: f64,
}

fn measure(net: &Network, id: SessionId, jc: bool) -> TaggedMeasure {
    let st = net.session_stats(id);
    let (pb, dref) = voice_bounds(net, id);
    TaggedMeasure {
        max_delay: st.max_delay().unwrap_or(Duration::ZERO),
        jitter: st.jitter().unwrap_or(Duration::ZERO),
        mean_delay: st.mean_delay().unwrap_or(Duration::ZERO),
        delay_bound: pb.delay_bound(dref),
        jitter_bound: pb.jitter_bound(dref, jc),
        delivered: st.delivered,
    }
}

/// Run one sweep point.
pub fn point(cfg: &RunConfig, a_off: Duration) -> Fig14Point {
    let (mut net, tagged) = build_mix_ac2(a_off, cfg.seed);
    net.run_until(cfg.horizon(300));
    Fig14Point {
        a_off,
        tagged: [
            measure(&net, tagged.class1_nojc, false),
            measure(&net, tagged.class1_jc, true),
            measure(&net, tagged.class2_nojc, false),
            measure(&net, tagged.class2_jc, true),
        ],
        lateness_fraction: max_lateness_fraction(&net),
    }
}

/// Run the full sweep on the shared worker pool.
pub fn run(cfg: &RunConfig) -> Vec<Fig14Point> {
    run_points(cfg, &A_OFF_SWEEP_US, |_, &us| {
        point(cfg, Duration::from_us(us))
    })
}

/// Labels of the four tagged sessions, in array order.
pub const TAGGED_LABELS: [&str; 4] = [
    "fig14:class1-nojc",
    "fig15:class1-jc",
    "fig16:class2-nojc",
    "fig17:class2-jc",
];

/// Render the sweep as a table (one row per point × tagged session).
pub fn table(points: &[Fig14Point]) -> Table {
    let mut t = Table::new(
        "Figures 14-17 — AC2 with two classes (class 1: d = 2.77 ms; class 2: d = 18.77 ms)",
        &[
            "a_off_ms",
            "session",
            "max_delay_ms",
            "jitter_ms",
            "mean_delay_ms",
            "delay_bound_ms",
            "jitter_bound_ms",
            "delivered",
        ],
    );
    for p in points {
        for (label, m) in TAGGED_LABELS.iter().zip(&p.tagged) {
            t.push(vec![
                format!("{:.1}", p.a_off.as_millis_f64()),
                label.to_string(),
                ms(m.max_delay),
                ms(m.jitter),
                ms(m.mean_delay),
                ms(m.delay_bound),
                ms(m.jitter_bound),
                m.delivered.to_string(),
            ]);
        }
    }
    t
}

/// The paper's AC1-vs-AC2 remark, measured: the same two-class MIX
/// experiment under both procedures, comparing the class-1 and class-2
/// tagged sessions' bounds and observations.
pub fn procedure_comparison(cfg: &RunConfig, a_off: Duration) -> Table {
    let mut t = Table::new(
        "Figures 14-17 addendum — procedure 1 vs procedure 2, same class ladder",
        &[
            "procedure",
            "session",
            "d_ms",
            "max_delay_ms",
            "jitter_ms",
            "delay_bound_ms",
        ],
    );
    for (name, procedure) in [("AC1", Procedure::Proc1), ("AC2", Procedure::Proc2)] {
        let (mut net, tagged) = build_mix_classed(a_off, cfg.seed, procedure);
        net.run_until(cfg.horizon(300));
        for (label, id, _jc) in [
            ("class1-nojc", tagged.class1_nojc, false),
            ("class2-nojc", tagged.class2_nojc, false),
        ] {
            let st = net.session_stats(id);
            let (pb, dref) = voice_bounds(&net, id);
            let d = net.session_hops(id)[0]
                .1
                .d_max(424, net.session_spec(id).rate_bps);
            t.push(vec![
                name.to_string(),
                label.to_string(),
                ms(d),
                ms(st.max_delay().unwrap_or(Duration::ZERO)),
                ms(st.jitter().unwrap_or(Duration::ZERO)),
                ms(pb.delay_bound(dref)),
            ]);
        }
    }
    t
}
