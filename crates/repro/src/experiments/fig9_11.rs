//! Figures 9–11 — probability distribution of end-to-end delays of a
//! tagged five-hop Poisson session against two upper bounds (10-minute
//! CROSS runs):
//!
//! * the **analytic** bound: the M/D/1 sojourn CCDF of the session's
//!   reference server, shifted right by `β + α` (ineq. 16);
//! * the **simulated** bound: the same shift applied to the CCDF measured
//!   on a co-simulated reference server fed by the identical arrivals —
//!   the paper's recipe for sessions that resist analysis.
//!
//! | Figure | tagged session             | cross traffic              |
//! |--------|----------------------------|----------------------------|
//! | 9      | a_P = 1.5143 ms, 400 kbit/s (ρ=0.7)  | Poisson 1136 kbit/s, a_P = 0.3929 ms |
//! | 10     | a_P = 40 ms, 32 kbit/s (ρ=0.33)      | Poisson 1472 kbit/s, a_P = 0.28804 ms |
//! | 11     | a_P = 40 ms, 32 kbit/s (ρ=0.33)      | 47 × 32 kbit/s CBR per route |
//!
//! Paper shape: Fig. 9's analytic bound is tight enough for percentile
//! planning (≈ 26 ms bound vs ≈ 23 ms observed at the 10⁻⁴ tail); Fig. 10's
//! is loose (low reserved rate inflates β); Fig. 11 shows the same session
//! tight again under CBR cross traffic.

use super::common::{
    build_cross_poisson, max_lateness_fraction, run_points, CrossTraffic, PooledSession, RunConfig,
};
use crate::report::{frac, Table};
use lit_analysis::Md1;
use lit_core::PathBounds;
use lit_sim::Duration;
use lit_traffic::ATM_CELL_BITS;

/// Which of the three figures to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Figure 9.
    Fig9,
    /// Figure 10.
    Fig10,
    /// Figure 11.
    Fig11,
}

impl Variant {
    /// Tagged session `(rate_bps, mean_gap)`.
    pub fn session(self) -> (u64, Duration) {
        match self {
            // lit-lint: allow(raw-time-arithmetic, "paper's Table 1 gives mean gaps in fractional milliseconds; one rounding at config build, sub-ps error")
            Variant::Fig9 => (400_000, Duration::from_secs_f64(1.5143e-3)),
            Variant::Fig10 | Variant::Fig11 => (32_000, Duration::from_ms(40)),
        }
    }

    /// Cross-traffic configuration.
    pub fn cross(self) -> CrossTraffic {
        match self {
            Variant::Fig9 => CrossTraffic::Poisson {
                rate_bps: 1_136_000,
                // lit-lint: allow(raw-time-arithmetic, "paper's Table 1 gives mean gaps in fractional milliseconds; one rounding at config build, sub-ps error")
                mean_gap: Duration::from_secs_f64(0.3929e-3),
            },
            Variant::Fig10 => CrossTraffic::Poisson {
                rate_bps: 1_472_000,
                // lit-lint: allow(raw-time-arithmetic, "paper's Table 1 gives mean gaps in fractional milliseconds; one rounding at config build, sub-ps error")
                mean_gap: Duration::from_secs_f64(0.28804e-3),
            },
            Variant::Fig11 => CrossTraffic::Deterministic { count: 47 },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Fig9 => "Figure 9",
            Variant::Fig10 => "Figure 10",
            Variant::Fig11 => "Figure 11",
        }
    }
}

/// One CCDF sample point.
#[derive(Clone, Copy, Debug)]
pub struct CcdfPoint {
    /// Delay value `d`.
    pub delay: Duration,
    /// Empirical `P(D > d)` of the tagged session.
    pub empirical: f64,
    /// Analytic upper bound (shifted M/D/1).
    pub analytic_bound: f64,
    /// Simulated upper bound (shifted measured reference CCDF).
    pub simulated_bound: f64,
}

/// The experiment's result.
#[derive(Clone, Debug)]
pub struct DistResult {
    /// Which figure.
    pub variant: Variant,
    /// Utilization `ρ` of the tagged session's reference server.
    pub rho: f64,
    /// The shift `β + α` applied by ineq. (16).
    pub shift: Duration,
    /// CCDF curves on a delay grid.
    pub points: Vec<CcdfPoint>,
    /// Delivered packets of the tagged session.
    pub delivered: u64,
    /// Scheduler-saturation diagnostic.
    pub lateness_fraction: f64,
}

impl DistResult {
    /// The smallest grid delay with empirical CCDF at or below `p`
    /// (a percentile read-out, as the paper's 0.01 % example).
    pub fn empirical_percentile(&self, p: f64) -> Option<Duration> {
        self.points
            .iter()
            .find(|pt| pt.empirical <= p)
            .map(|pt| pt.delay)
    }

    /// Same read-out on the analytic bound curve.
    pub fn analytic_percentile(&self, p: f64) -> Option<Duration> {
        self.points
            .iter()
            .find(|pt| pt.analytic_bound <= p)
            .map(|pt| pt.delay)
    }
}

/// Run one of Figures 9–11: [`RunConfig::replicas`] independent runs on
/// the worker pool, pooled into one empirical distribution before the
/// CCDF grid is evaluated.
pub fn run(cfg: &RunConfig, variant: Variant) -> DistResult {
    let (rate, gap) = variant.session();
    let seeds = cfg.replica_seeds();
    let reps: Vec<(PooledSession, PathBounds, f64)> = run_points(cfg, &seeds, |_, &seed| {
        let (mut net, tagged) = build_cross_poisson(rate, gap, variant.cross(), seed);
        net.run_until(cfg.horizon(600));
        (
            PooledSession::from_stats(net.session_stats(tagged)),
            PathBounds::for_session(&net, tagged),
            max_lateness_fraction(&net),
        )
    });
    // Bounds depend only on admission, identical in every replica.
    let pb = reps[0].1.clone();
    let lateness_fraction = reps
        .iter()
        .map(|&(_, _, l)| l)
        .fold(f64::NEG_INFINITY, f64::max);
    let st = PooledSession::pool(reps.into_iter().map(|(s, _, _)| s).collect());

    let service = Duration::from_bits_at_rate(ATM_CELL_BITS as u64, rate);
    let md1 = Md1::from_mean_gap(gap, service);
    let shift_ps = u64::try_from(pb.shift_ps().max(0)).expect("shift fits u64 ps");
    let shift = Duration::from_ps(shift_ps);

    // Delay grid: half-millisecond steps from 0 to past the largest
    // observed delay (and at least past the shift, where the bounds
    // start to fall below 1).
    let max_obs = st.max_delay().unwrap_or(Duration::ZERO);
    // Extend far enough past the shift for the analytic bound to decay
    // through the percentiles the paper reads off (10⁻⁴ and below).
    let top = (max_obs + Duration::from_ms(20)).max(shift + Duration::from_ms(150));
    let step = Duration::from_us(500);
    let mut points = Vec::new();
    let mut d = Duration::ZERO;
    while d <= top {
        let empirical = st.e2e.ccdf_at(d);
        let analytic = pb.delay_ccdf_bound(|t| md1.sojourn_ccdf(t), d);
        let simulated = pb.delay_ccdf_bound(|t| st.reference.ccdf_at(t), d);
        points.push(CcdfPoint {
            delay: d,
            empirical,
            analytic_bound: analytic,
            simulated_bound: simulated,
        });
        d += step;
    }

    DistResult {
        variant,
        rho: md1.rho(),
        shift,
        points,
        delivered: st.delivered,
        lateness_fraction,
    }
}

/// Render the CCDF curves as a table.
pub fn table(r: &DistResult) -> Table {
    let mut t = Table::new(
        format!(
            "{} — P(delay > d), rho = {:.3}, shift beta+alpha = {:.3} ms, {} packets",
            r.variant.name(),
            r.rho,
            r.shift.as_millis_f64(),
            r.delivered
        ),
        &["delay_ms", "empirical", "analytic_bound", "simulated_bound"],
    );
    for p in &r.points {
        // Skip the flat all-ones prefix to keep tables readable.
        if p.empirical >= 1.0 && p.analytic_bound >= 1.0 && p.simulated_bound >= 1.0 {
            continue;
        }
        t.push(vec![
            format!("{:.1}", p.delay.as_millis_f64()),
            frac(p.empirical),
            frac(p.analytic_bound),
            frac(p.simulated_bound),
        ]);
    }
    t
}
