//! Shared experiment machinery: run configuration, admission-driven
//! session setup for the MIX and CROSS configurations, and bound helpers.

use crate::topology::{cross_routes, five_hop, mix_routes, paper_tandem};
use lit_analysis::DurationHistogram;
use lit_core::{
    install_oracle_bounds, ClassedAdmission, DRule, DelayClass, LitDiscipline, PathBounds,
    Procedure, SessionRequest,
};
use lit_net::{
    DelayAssignment, DisciplineFactory, Network, NetworkBuilder, OccupancyHistogram, OracleConfig,
    OracleMode, QueueKind, SessionId, SessionSpec, SessionStats, StatsConfig,
};
use lit_sim::{Duration, Time};
use lit_traffic::{DeterministicSource, OnOffConfig, OnOffSource, PoissonSource, ATM_CELL_BITS};
use std::sync::atomic::{AtomicUsize, Ordering};

/// T1 capacity, bits per second.
pub const T1_BPS: u64 = 1_536_000;
/// The standard 32 kbit/s reservation of the paper's ON-OFF/CBR sessions.
pub const VOICE_BPS: u64 = 32_000;

/// How long to simulate, with which master seed, and how to spread
/// independent runs over worker threads.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Override of the experiment's paper-specified duration (seconds of
    /// simulated time); `None` runs the full paper duration.
    pub seconds: Option<u64>,
    /// Master seed; every session derives its own stream from it.
    pub seed: u64,
    /// Worker-thread count for [`run_points`]; `None` uses every
    /// available core. Thread count never changes results — only
    /// wall-clock time.
    pub threads: Option<usize>,
    /// Independent repetitions of the single-run distribution experiments
    /// (Figures 8–13 and the heavy-tail extension), pooled into one set
    /// of histograms. Replica `r` runs with [`replica_seed`]`(seed, r)`,
    /// so replica 0 alone reproduces a `replicas = 1` run exactly.
    pub replicas: u32,
}

impl RunConfig {
    /// Full paper durations (5 or 10 minutes depending on the experiment).
    pub fn paper() -> Self {
        RunConfig {
            seconds: None,
            seed: 0x5EED_1995,
            threads: None,
            replicas: 1,
        }
    }

    /// A fast configuration for tests and smoke runs: reduced horizon,
    /// several pooled replicas so the distribution tails still fill in.
    pub fn quick() -> Self {
        RunConfig {
            seconds: Some(20),
            replicas: 4,
            ..RunConfig::paper()
        }
    }

    /// The horizon for an experiment whose paper duration is
    /// `paper_seconds`.
    pub fn horizon(&self, paper_seconds: u64) -> Time {
        Time::from_secs(self.seconds.unwrap_or(paper_seconds))
    }

    /// Number of worker threads [`run_points`] will use.
    pub fn worker_count(&self) -> usize {
        self.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(1)
            })
            .max(1)
    }

    /// The replica master seeds of this configuration, in replica order.
    pub fn replica_seeds(&self) -> Vec<u64> {
        (0..self.replicas.max(1))
            .map(|r| replica_seed(self.seed, r))
            .collect()
    }
}

/// Master seed of replica `r`: the configured seed itself for replica 0
/// (so single-replica runs are unchanged), an independent SplitMix64
/// derivation for the rest.
pub fn replica_seed(master: u64, replica: u32) -> u64 {
    if replica == 0 {
        return master;
    }
    // SplitMix64 output function over (master, replica) — statistically
    // independent streams without any shared state between replicas.
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(replica as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run every item of a sweep through `f` on a pool of
/// [`RunConfig::worker_count`] worker threads, preserving input order in
/// the output.
///
/// Determinism: item `i` always computes `f(i, &items[i])` with no shared
/// state, and results are reassembled by index — so the output is
/// byte-identical for any thread count, including 1 (where the pool is
/// skipped entirely). Workers claim items from a shared atomic counter,
/// so an expensive item does not leave a whole stripe of the sweep on
/// one thread.
pub fn run_points<P, R, F>(cfg: &RunConfig, items: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(usize, &P) -> R + Sync,
{
    let n = items.len();
    let workers = cfg.worker_count().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, p)| f(i, p)).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every sweep item computed"))
        .collect()
}

/// Distribution statistics of one tagged session, pooled across replicas.
///
/// Histograms add bin-by-bin ([`DurationHistogram::merge`] /
/// [`OccupancyHistogram::merge`]); counters add; extrema take the max.
/// With one replica this is a plain copy of the session's stats.
#[derive(Clone, Debug)]
pub struct PooledSession {
    /// Total delivered packets across replicas.
    pub delivered: u64,
    /// Pooled end-to-end delay distribution.
    pub e2e: DurationHistogram,
    /// Pooled co-simulated reference-server distribution.
    pub reference: DurationHistogram,
    /// Pooled first-hop buffer occupancy.
    pub buffer_first: OccupancyHistogram,
    /// Pooled last-hop buffer occupancy.
    pub buffer_last: OccupancyHistogram,
    /// Largest `D_i − D_i^ref` (signed ps) over all replicas.
    pub max_excess_ps: i128,
}

impl PooledSession {
    /// Snapshot one session's stats from one finished run.
    pub fn from_stats(st: &SessionStats) -> Self {
        let last = st.buffer.len() - 1;
        PooledSession {
            delivered: st.delivered,
            e2e: st.e2e.clone(),
            reference: st.reference.clone(),
            buffer_first: st.buffer[0].clone(),
            buffer_last: st.buffer[last].clone(),
            max_excess_ps: st.max_excess_ps,
        }
    }

    /// Pool another replica's snapshot into this one.
    pub fn absorb(&mut self, other: &PooledSession) {
        self.delivered += other.delivered;
        self.e2e.merge(&other.e2e);
        self.reference.merge(&other.reference);
        self.buffer_first.merge(&other.buffer_first);
        self.buffer_last.merge(&other.buffer_last);
        self.max_excess_ps = self.max_excess_ps.max(other.max_excess_ps);
    }

    /// Pool a whole replica set (one snapshot per replica, `≥ 1`).
    pub fn pool(mut snapshots: Vec<PooledSession>) -> PooledSession {
        let mut first = snapshots.remove(0);
        for s in &snapshots {
            first.absorb(s);
        }
        first
    }

    /// Largest pooled end-to-end delay.
    pub fn max_delay(&self) -> Option<Duration> {
        self.e2e.max()
    }

    /// Pooled jitter (max − min delay).
    pub fn jitter(&self) -> Option<Duration> {
        self.e2e.spread()
    }

    /// Pooled mean delay.
    pub fn mean_delay(&self) -> Option<Duration> {
        self.e2e.mean()
    }
}

/// The a_OFF sweep of Figures 7 and 14–17, in milliseconds (§3: "the same
/// as the ones used in \[25\]").
pub const A_OFF_SWEEP_US: [u64; 7] = [6_500, 18_500, 39_100, 88_000, 150_900, 288_000, 650_000];

/// Statistics sizing used by the delay-distribution experiments.
pub fn fine_stats() -> StatsConfig {
    StatsConfig {
        delay_bin: Duration::from_us(250),
        delay_bins: 8_000, // 2 s of delay headroom
        buffer_bin_bits: ATM_CELL_BITS as u64,
        buffer_bins: 512,
        delivery_log_cap: 0,
    }
}

/// Finish a Leave-in-Time network build, arming the conformance oracle at
/// the process-global mode (the CLI's `--oracle` flag, default off) and
/// installing every session's paper bounds so the pathwise delay, jitter,
/// and CCDF checks run alongside the experiment.
pub fn finish_lit(b: NetworkBuilder) -> Network {
    finish_with_oracle(b, &LitDiscipline::factory())
}

/// [`finish_lit`] with an explicit factory — for call sites that already
/// hold a Leave-in-Time factory by another name. The oracle's invariants
/// are LiT's; do not use this with baseline disciplines.
///
/// Also attaches the process-global observability probe when the CLI's
/// `--metrics` / `--trace` flags armed `lit_obs::hub` — every replica of
/// every experiment then submits its shard and trace ring to the hub.
pub fn finish_with_oracle(b: NetworkBuilder, factory: &DisciplineFactory<'_>) -> Network {
    let mode = lit_net::oracle::global_mode();
    let mut b = b
        .shards(lit_net::shard::global_shards())
        .oracle(OracleConfig::new(mode));
    if let Some(p) = lit_obs::hub::global_probe() {
        b = b.probe(p);
    }
    let mut net = b.build(factory);
    if mode != OracleMode::Off {
        install_oracle_bounds(&mut net);
    }
    net
}

/// Build the MIX configuration, all sessions ON-OFF with the given mean
/// OFF time, under admission control procedure 1 with one class
/// (`d = L/r`). Returns the network and the tagged five-hop session.
pub fn build_mix_one_class(a_off: Duration, seed: u64) -> (Network, SessionId) {
    let mut b = NetworkBuilder::new().seed(seed).stats(fine_stats());
    let nodes = paper_tandem(&mut b);
    let mut admission: Vec<ClassedAdmission> = nodes
        .iter()
        .map(|_| ClassedAdmission::one_class(T1_BPS))
        .collect();
    let req = SessionRequest::new(VOICE_BPS, ATM_CELL_BITS);
    let mut tagged = None;
    for (route, count) in mix_routes() {
        for k in 0..count {
            let hops: Vec<(u32, DelayAssignment)> = route
                .node_indices()
                .map(|n| {
                    let a = admission[n]
                        .try_admit(0, &req, DRule::PerPacket)
                        .expect("MIX exactly fills every link; admission must pass");
                    (nodes[n].0, a)
                })
                .collect();
            let src = OnOffSource::new(OnOffConfig::paper_voice(a_off));
            let id = b.add_session_with_hops(
                SessionSpec::atm(SessionId(0), VOICE_BPS),
                hops,
                Box::new(src),
            );
            if route == five_hop() && k == 0 {
                tagged = Some(id);
            }
        }
    }
    let net = finish_lit(b);
    (net, tagged.expect("MIX contains the five-hop route"))
}

/// The four tagged five-hop sessions of Figures 14–17.
#[derive(Clone, Copy, Debug)]
pub struct Ac2Tagged {
    /// Class 1, without delay-jitter control (Fig. 14).
    pub class1_nojc: SessionId,
    /// Class 1, with delay-jitter control (Fig. 15).
    pub class1_jc: SessionId,
    /// Class 2, without delay-jitter control (Fig. 16).
    pub class2_nojc: SessionId,
    /// Class 2, with delay-jitter control (Fig. 17).
    pub class2_jc: SessionId,
}

/// The paper's two-class AC2 configuration: class 1 (R₁ = 640 kbit/s,
/// σ₁ = 2.77 ms) and class 2 (R₂ = C, σ₂ = 13.25 ms).
pub fn ac2_two_classes() -> Vec<DelayClass> {
    vec![
        DelayClass {
            max_bandwidth_bps: 640_000,
            base_delay: Duration::from_us(2_770),
        },
        DelayClass {
            max_bandwidth_bps: T1_BPS,
            base_delay: Duration::from_us(13_250),
        },
    ]
}

/// Build the MIX configuration under admission control procedure 2 with
/// two classes (Figures 14–17): class 1 holds 5 five-hop (`a-j`) and 5
/// four-hop (`a-i`) sessions with `d = 2.77 ms`; everything else is
/// class 2 with `d ≈ 18.77 ms`. Among the class-1 and class-2 five-hop
/// sessions, one of each is given delay-jitter control.
pub fn build_mix_ac2(a_off: Duration, seed: u64) -> (Network, Ac2Tagged) {
    build_mix_classed(a_off, seed, Procedure::Proc2)
}

/// [`build_mix_ac2`] generalized over the admission procedure. The paper
/// reports having run Figures 14–17 under procedure 1 as well, observing
/// that procedure 2 gives class-1 sessions a lower bound; this builder
/// regenerates both variants from the same class ladder.
pub fn build_mix_classed(a_off: Duration, seed: u64, procedure: Procedure) -> (Network, Ac2Tagged) {
    let mut b = NetworkBuilder::new().seed(seed).stats(fine_stats());
    let nodes = paper_tandem(&mut b);
    let mut admission: Vec<ClassedAdmission> = nodes
        .iter()
        .map(|_| {
            ClassedAdmission::new(procedure, T1_BPS, ac2_two_classes())
                .expect("paper class configuration is valid")
        })
        .collect();
    let req = SessionRequest::new(VOICE_BPS, ATM_CELL_BITS);
    let mut ids: Vec<(String, usize, SessionId)> = Vec::new();
    for (route, count) in mix_routes() {
        for k in 0..count {
            // Class membership: first 5 sessions of a-j and of a-i.
            let class = if (route == five_hop() || route.name() == "a-i") && k < 5 {
                0
            } else {
                1
            };
            // Jitter control for two of the tagged five-hop sessions.
            let jc = route == five_hop() && (k == 1 || k == 6);
            let hops: Vec<(u32, DelayAssignment)> = route
                .node_indices()
                .map(|n| {
                    let a = admission[n]
                        .try_admit(class, &req, DRule::PerSessionMax)
                        .expect("paper AC2 configuration satisfies all tests");
                    (nodes[n].0, a)
                })
                .collect();
            let mut spec = SessionSpec::atm(SessionId(0), VOICE_BPS);
            spec.jitter_control = jc;
            let src = OnOffSource::new(OnOffConfig::paper_voice(a_off));
            let id = b.add_session_with_hops(spec, hops, Box::new(src));
            ids.push((route.name(), k, id));
        }
    }
    let find = |k: usize| {
        ids.iter()
            .find(|(r, kk, _)| r == "a-j" && *kk == k)
            .expect("tagged session exists")
            .2
    };
    let tagged = Ac2Tagged {
        class1_nojc: find(0),
        class1_jc: find(1),
        class2_nojc: find(5),
        class2_jc: find(6),
    };
    let net = finish_lit(b);
    (net, tagged)
}

/// Build the CROSS configuration of Figures 8/12/13: two tagged five-hop
/// ON-OFF sessions (a_OFF = 650 ms; the second with jitter control) plus
/// one 1472 kbit/s Poisson session per one-hop cross route
/// (a_P = 0.28804 ms). One-class admission. Returns
/// `(network, no_jc, jc)`.
pub fn build_cross_onoff(seed: u64) -> (Network, SessionId, SessionId) {
    build_cross_onoff_queued(seed, QueueKind::Exact)
}

/// [`build_cross_onoff`] with an explicit eligible-queue implementation —
/// the knob of the approximate-priority-queue ablation.
pub fn build_cross_onoff_queued(seed: u64, queue: QueueKind) -> (Network, SessionId, SessionId) {
    let mut b = NetworkBuilder::new()
        .seed(seed)
        .stats(fine_stats())
        .queue_kind(queue);
    let nodes = paper_tandem(&mut b);
    let mut admission: Vec<ClassedAdmission> = nodes
        .iter()
        .map(|_| ClassedAdmission::one_class(T1_BPS))
        .collect();
    let add = |b: &mut NetworkBuilder,
               admission: &mut Vec<ClassedAdmission>,
               route: crate::topology::Route,
               rate: u64,
               jc: bool,
               src: Box<dyn lit_traffic::Source>| {
        let req = SessionRequest::new(rate, ATM_CELL_BITS);
        let hops: Vec<(u32, DelayAssignment)> = route
            .node_indices()
            .map(|n| {
                let a = admission[n]
                    .try_admit(0, &req, DRule::PerPacket)
                    .expect("CROSS fills links exactly; admission must pass");
                (nodes[n].0, a)
            })
            .collect();
        let mut spec = SessionSpec::atm(SessionId(0), rate);
        spec.jitter_control = jc;
        b.add_session_with_hops(spec, hops, src)
    };
    let onoff = || {
        Box::new(OnOffSource::new(OnOffConfig::paper_voice(
            Duration::from_ms(650),
        ))) as Box<dyn lit_traffic::Source>
    };
    let no_jc = add(
        &mut b,
        &mut admission,
        five_hop(),
        VOICE_BPS,
        false,
        onoff(),
    );
    let jc = add(&mut b, &mut admission, five_hop(), VOICE_BPS, true, onoff());
    for route in cross_routes() {
        let src = Box::new(PoissonSource::new(
            // lit-lint: allow(raw-time-arithmetic, "paper's Table 1 gives mean gaps in fractional milliseconds; one rounding at config build, sub-ps error")
            Duration::from_secs_f64(0.28804e-3),
            ATM_CELL_BITS,
        ));
        add(&mut b, &mut admission, route, 1_472_000, false, src);
    }
    // A bucketed eligible queue deliberately approximates deadline order,
    // so the oracle's exactness invariants do not apply to the ablation
    // arms — only the exact queue runs under the oracle.
    let net = if queue == QueueKind::Exact {
        finish_lit(b)
    } else {
        b.build(&LitDiscipline::factory())
    };
    (net, no_jc, jc)
}

/// The cross-traffic flavor of the tagged-Poisson experiments.
#[derive(Clone, Copy, Debug)]
pub enum CrossTraffic {
    /// One Poisson session per one-hop route (Figs. 9 and 10).
    Poisson {
        /// Reserved rate of each cross session.
        rate_bps: u64,
        /// Mean interarrival time `a_P`.
        mean_gap: Duration,
    },
    /// `count` phase-staggered 32 kbit/s CBR sessions per one-hop route
    /// (Fig. 11).
    Deterministic {
        /// Sessions per cross route.
        count: usize,
    },
}

/// Build the CROSS configuration with one tagged five-hop **Poisson**
/// session (rate `rate_bps`, mean gap `mean_gap`) and the given cross
/// traffic (Figures 9–11). Returns `(network, tagged)`.
pub fn build_cross_poisson(
    rate_bps: u64,
    mean_gap: Duration,
    cross: CrossTraffic,
    seed: u64,
) -> (Network, SessionId) {
    let mut b = NetworkBuilder::new().seed(seed).stats(fine_stats());
    let nodes = paper_tandem(&mut b);
    let mut admission: Vec<ClassedAdmission> = nodes
        .iter()
        .map(|_| ClassedAdmission::one_class(T1_BPS))
        .collect();
    let add = |b: &mut NetworkBuilder,
               admission: &mut Vec<ClassedAdmission>,
               route: crate::topology::Route,
               rate: u64,
               src: Box<dyn lit_traffic::Source>| {
        let req = SessionRequest::new(rate, ATM_CELL_BITS);
        let hops: Vec<(u32, DelayAssignment)> = route
            .node_indices()
            .map(|n| {
                let a = admission[n]
                    .try_admit(0, &req, DRule::PerPacket)
                    .expect("CROSS rates fit the links; admission must pass");
                (nodes[n].0, a)
            })
            .collect();
        b.add_session_with_hops(SessionSpec::atm(SessionId(0), rate), hops, src)
    };
    let tagged = add(
        &mut b,
        &mut admission,
        five_hop(),
        rate_bps,
        Box::new(PoissonSource::new(mean_gap, ATM_CELL_BITS)),
    );
    for route in cross_routes() {
        match cross {
            CrossTraffic::Poisson { rate_bps, mean_gap } => {
                let src = Box::new(PoissonSource::new(mean_gap, ATM_CELL_BITS));
                add(&mut b, &mut admission, route, rate_bps, src);
            }
            CrossTraffic::Deterministic { count } => {
                for _ in 0..count {
                    // All CBR sessions share the same phase (they all
                    // start at connection time), so each frame delivers
                    // one aligned 47-packet batch — the worst case the
                    // paper's Figure 11 exercises, where the bound tightens
                    // against the observation.
                    let src = Box::new(DeterministicSource::paper_cbr());
                    add(&mut b, &mut admission, route, VOICE_BPS, src);
                }
            }
        }
    }
    let net = finish_lit(b);
    (net, tagged)
}

/// `PathBounds` for a session in a network, plus the token-bucket
/// reference bound `D^ref_max = b₀/r` for a one-cell-deep bucket (the
/// paper's ON-OFF and CBR sessions emit at most one cell per `L/r`).
pub fn voice_bounds(net: &Network, id: SessionId) -> (PathBounds, Duration) {
    let pb = PathBounds::for_session(net, id);
    let dref = Duration::from_bits_at_rate(ATM_CELL_BITS as u64, net.session_spec(id).rate_bps);
    (pb, dref)
}

/// Worst scheduler lateness across all nodes, as a fraction of `L_MAX/C`
/// — the saturation diagnostic. Leave-in-Time guarantees the value stays
/// below 1.
pub fn max_lateness_fraction(net: &Network) -> f64 {
    let lmax = lit_net::LinkParams::paper_t1().lmax_time().as_ps() as f64;
    (0..net.num_nodes())
        .filter_map(|n| net.node_stats(lit_net::NodeId(n as u32)).max_lateness())
        .map(|l| l as f64 / lmax)
        .fold(f64::NEG_INFINITY, f64::max)
}
