//! Extension experiment (DESIGN.md E13): the firewall property, head to
//! head.
//!
//! A well-behaved five-hop ON-OFF session crosses five links; on each
//! link a *misbehaving* session (reserved 32 kbit/s but offering ~850
//! kbit/s in periodic 100-packet bursts) competes with it, alongside
//! polite Poisson filler. The victim's delay is measured under FCFS,
//! Leave-in-Time, VirtualClock, WFQ, SCFQ, Delay-EDD, Jitter-EDD and RCSP.
//!
//! Expected shape: FCFS lets the burster push the victim *past* the
//! Leave-in-Time bound; every rate-based discipline keeps the victim under
//! it (ineq. 15). Jitter-EDD's mean delay is high by design (regulators
//! hold packets near the bound) but its jitter is tiny; RCSP's static
//! priority gives the lowest raw delay.

use super::common::{
    finish_with_oracle, max_lateness_fraction, run_points, voice_bounds, RunConfig, T1_BPS,
    VOICE_BPS,
};
use crate::report::{ms, Table};
use crate::topology::{cross_routes, five_hop, paper_tandem};
use lit_baselines::{
    EddDiscipline, FcfsDiscipline, HrrDiscipline, RcspDiscipline, ScfqDiscipline,
    VirtualClockDiscipline, WfqDiscipline,
};
use lit_core::LitDiscipline;
use lit_net::{DisciplineFactory, LinkParams, NetworkBuilder, SessionId, SessionSpec};
use lit_sim::{Duration, Time};
use lit_traffic::{BurstSource, OnOffConfig, OnOffSource, PoissonSource, ATM_CELL_BITS};

/// Result for one discipline.
#[derive(Clone, Debug)]
pub struct FirewallRow {
    /// Discipline name.
    pub discipline: &'static str,
    /// Victim's observed maximum end-to-end delay.
    pub max_delay: Duration,
    /// Victim's observed mean delay.
    pub mean_delay: Duration,
    /// Victim's jitter.
    pub jitter: Duration,
    /// The LiT/PGPS analytic bound for the victim (only the rate-based
    /// disciplines are expected to respect it).
    pub lit_bound: Duration,
    /// Scheduler lateness diagnostic (meaningful for deadline schedulers).
    pub lateness_fraction: f64,
}

fn run_one(factory: &DisciplineFactory<'_>, name: &'static str, cfg: &RunConfig) -> FirewallRow {
    let mut b = NetworkBuilder::new().seed(cfg.seed);
    let nodes = paper_tandem(&mut b);
    let victim = b.add_session(
        SessionSpec::atm(SessionId(0), VOICE_BPS),
        &five_hop().nodes(&nodes),
        Box::new(OnOffSource::new(OnOffConfig::paper_voice(
            Duration::from_ms(88),
        ))),
    );
    for route in cross_routes() {
        // The misbehaver: reserved 32 kbit/s, offered ~848 kbit/s.
        b.add_session(
            SessionSpec::atm(SessionId(0), VOICE_BPS),
            &route.nodes(&nodes),
            Box::new(BurstSource::new(Duration::from_ms(50), 100, ATM_CELL_BITS)),
        );
        // Polite filler so the link is otherwise moderately used.
        b.add_session(
            SessionSpec::atm(SessionId(0), 640_000),
            &route.nodes(&nodes),
            Box::new(PoissonSource::new(
                // lit-lint: allow(raw-time-arithmetic, "paper's Table 1 gives mean gaps in fractional milliseconds; one rounding at config build, sub-ps error")
                Duration::from_secs_f64(0.8e-3),
                ATM_CELL_BITS,
            )),
        );
    }
    let _ = T1_BPS; // victim + misbehaver + filler stay below C reserved
                    // The pathwise bounds hold for ANY arrival pattern (the firewall
                    // property itself), so the Leave-in-Time arm runs under the oracle —
                    // misbehaving source included. Baseline disciplines use other
                    // deadline semantics and are exempt.
    let mut net = if name == "leave-in-time" {
        finish_with_oracle(b, factory)
    } else {
        b.build(factory)
    };
    net.run_until(cfg.horizon(120));
    let st = net.session_stats(victim);
    let (pb, dref) = voice_bounds(&net, victim);
    FirewallRow {
        discipline: name,
        max_delay: st.max_delay().unwrap_or(Duration::ZERO),
        mean_delay: st.mean_delay().unwrap_or(Duration::ZERO),
        jitter: st.jitter().unwrap_or(Duration::ZERO),
        lit_bound: pb.delay_bound(dref),
        lateness_fraction: max_lateness_fraction(&net),
    }
}

/// The disciplines of the comparison, in table order.
pub const DISCIPLINES: [&str; 9] = [
    "fcfs",
    "leave-in-time",
    "virtualclock",
    "wfq",
    "scfq",
    "delay-edd",
    "jitter-edd",
    "rcsp",
    "hrr",
];

/// A factory for one discipline by name. Built fresh inside each worker
/// so the rows can run concurrently (factories are not `Sync`).
fn make_factory(name: &str) -> Box<DisciplineFactory<'static>> {
    match name {
        "fcfs" => Box::new(FcfsDiscipline::factory()),
        "leave-in-time" => Box::new(|l: &LinkParams| {
            Box::new(LitDiscipline::new(*l)) as Box<dyn lit_net::Discipline>
        }),
        "virtualclock" => Box::new(VirtualClockDiscipline::factory()),
        "wfq" => Box::new(WfqDiscipline::factory()),
        "scfq" => Box::new(ScfqDiscipline::factory()),
        "delay-edd" => Box::new(EddDiscipline::factory(false)),
        "jitter-edd" => Box::new(EddDiscipline::factory(true)),
        // RCSP levels chosen so the 13.25 ms LenOverRate assignments land
        // in the middle level.
        "rcsp" => Box::new(RcspDiscipline::factory(vec![
            Duration::from_ms(5),
            Duration::from_ms(20),
            Duration::from_ms(100),
        ])),
        // 48-slot frames = 13.25 ms, one slot per 32 kbit/s session.
        "hrr" => Box::new(HrrDiscipline::factory(48)),
        other => panic!("unknown discipline {other}"),
    }
}

/// Run the firewall comparison across all disciplines, one worker-pool
/// item per discipline (the runs are fully independent).
pub fn run(cfg: &RunConfig) -> Vec<FirewallRow> {
    run_points(cfg, &DISCIPLINES, |_, &name| {
        run_one(&*make_factory(name), name, cfg)
    })
}

/// Render the comparison.
pub fn table(rows: &[FirewallRow]) -> Table {
    let mut t = Table::new(
        "Firewall property — victim session vs per-link misbehaving bursts",
        &[
            "discipline",
            "max_delay_ms",
            "mean_delay_ms",
            "jitter_ms",
            "lit_bound_ms",
        ],
    );
    for r in rows {
        t.push(vec![
            r.discipline.to_string(),
            ms(r.max_delay),
            ms(r.mean_delay),
            ms(r.jitter),
            ms(r.lit_bound),
        ]);
    }
    t
}

/// A quick self-check used by tests: only FCFS breaks the Leave-in-Time
/// bound; every rate-based discipline honours it, and the
/// work-conserving ones beat FCFS's max delay by at least 2×.
pub fn fcfs_is_worst(rows: &[FirewallRow]) -> bool {
    let fcfs = rows
        .iter()
        .find(|r| r.discipline == "fcfs")
        .expect("fcfs row");
    // HRR is framing-based: it isolates, but its own delay bound is
    // 2 frames/hop, not the Leave-in-Time bound — exclude it from the
    // LiT-bound check (like Stop-and-Go it plays a different game).
    let others_bounded = rows
        .iter()
        .filter(|r| !matches!(r.discipline, "fcfs" | "hrr"))
        .all(|r| r.max_delay < r.lit_bound);
    // Jitter-EDD intentionally rides close to the bound and HRR holds
    // packets per frame; compare raw max delay only for the
    // work-conserving disciplines.
    let work_conserving_win = rows
        .iter()
        .filter(|r| !matches!(r.discipline, "fcfs" | "jitter-edd" | "hrr"))
        .all(|r| r.max_delay.as_ps() as u128 * 2 < fcfs.max_delay.as_ps() as u128);
    fcfs.max_delay > fcfs.lit_bound && others_bounded && work_conserving_win
}

#[allow(dead_code)]
fn _assert_horizon_type(t: Time) -> Time {
    t
}
