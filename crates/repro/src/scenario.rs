//! A small text format for describing and running experiments without
//! recompiling — `lit-repro scenario <file>`.
//!
//! ```text
//! # comment                      (blank lines and #-comments ignored)
//! nodes 5 rate=1536000 prop=1ms lmax=424
//! discipline lit                 # lit | fcfs | virtualclock | wfq |
//!                                # scfq | stop-and-go:frame=10ms |
//!                                # hrr:slots=48 | delay-edd | jitter-edd
//! queue bucket=1ms               # exact (default) | bucket=<duration>
//! seed 42
//! session route=0..4 rate=32000 jc d=2.77ms \
//!         source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
//! session route=1..1 rate=1472000 source=poisson(gap=0.28804ms,len=424)
//! session route=0..2 rate=64000 shape=64000:1696 \
//!         source=burst(period=50ms,count=10,len=424)
//! run 60s
//! ```
//!
//! Durations accept `s`, `ms`, `us`, `ns` suffixes with decimals.
//! Session options: `jc` (delay-jitter control), `d=<duration>` (fixed
//! per-hop delay; default is `L/r`), `shape=<rate>:<bits>` (pass the
//! source through a token-bucket shaper). Sources: `onoff`, `poisson`,
//! `cbr(gap,len[,offset])`, `burst(period,count,len)`.
//!
//! Further directives: `backend heap|calendar|wheel` selects the
//! event-set implementation (default heap; all deliver identically). A
//! parsed
//! [`Scenario`] serializes back to text with [`Scenario::to_text`] — the
//! differential fuzzer uses this to write minimized failures as
//! replayable files.

use crate::report::{ms, Table};
use lit_baselines::{
    EddDiscipline, FcfsDiscipline, HrrDiscipline, ScfqDiscipline, StopAndGoDiscipline,
    VirtualClockDiscipline, WfqDiscipline,
};
use lit_core::{
    install_oracle_bounds, Ac3Backend, Ac3Service, Ac3ServiceHandle, LitDiscipline, PathBounds,
};
use lit_net::{
    DelayAssignment, EventBackend, LinkParams, Network, NetworkBuilder, OracleConfig, OracleMode,
    QueueKind, SessionId, SessionSpec, StatsConfig,
};
use lit_sim::{Duration, Time};
use lit_traffic::{
    BurstSource, DeterministicSource, OnOffConfig, OnOffSource, PoissonSource, ShapedSource, Source,
};

/// A parse failure, with the offending 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Which discipline the scenario runs under.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum DisciplineChoice {
    Lit,
    Fcfs,
    VirtualClock,
    Wfq,
    Scfq,
    StopAndGo(Duration),
    Hrr(u32),
    DelayEdd,
    JitterEdd,
}

/// One session line.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SessionLine {
    pub(crate) first: usize,
    pub(crate) last: usize,
    pub(crate) rate: u64,
    pub(crate) jc: bool,
    pub(crate) d: Option<Duration>,
    pub(crate) shape: Option<(u64, u64)>,
    pub(crate) source: SourceSpec,
}

/// A parsed source description.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum SourceSpec {
    OnOff {
        on: Duration,
        off: Duration,
        t: Duration,
        len: u32,
    },
    Poisson {
        gap: Duration,
        len: u32,
    },
    Cbr {
        gap: Duration,
        len: u32,
        offset: Duration,
    },
    Burst {
        period: Duration,
        count: u32,
        len: u32,
    },
}

/// A fully parsed scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    pub(crate) nodes: usize,
    pub(crate) link: LinkParams,
    pub(crate) discipline: DisciplineChoice,
    pub(crate) queue: QueueKind,
    pub(crate) backend: EventBackend,
    pub(crate) seed: u64,
    pub(crate) sessions: Vec<SessionLine>,
    pub(crate) horizon: Duration,
}

/// Parse a duration literal like `13.25ms`, `60s`, `100us`, `500ns`.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit) = s
        .find(|c: char| c.is_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| format!("duration '{s}' is missing a unit"))?;
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad duration value '{num}'"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("duration '{s}' out of range"));
    }
    let secs = match unit {
        "s" => v,
        "ms" => v / 1e3,
        "us" => v / 1e6,
        "ns" => v / 1e9,
        other => return Err(format!("unknown duration unit '{other}'")),
    };
    // lit-lint: allow(raw-time-arithmetic, "scenario files carry durations as decimal unit strings; one rounding at parse time, fail-loud on overflow")
    Ok(Duration::from_secs_f64(secs))
}

/// Render a duration as the shortest exact literal [`parse_duration`]
/// accepts: the coarsest unit the value is a whole multiple of, with a
/// fractional-nanosecond fallback for sub-ns precision.
fn fmt_duration(d: Duration) -> String {
    let ps = d.as_ps();
    if ps.is_multiple_of(1_000_000_000_000) {
        format!("{}s", ps / 1_000_000_000_000)
    } else if ps.is_multiple_of(1_000_000_000) {
        format!("{}ms", ps / 1_000_000_000)
    } else if ps.is_multiple_of(1_000_000) {
        format!("{}us", ps / 1_000_000)
    } else if ps.is_multiple_of(1_000) {
        format!("{}ns", ps / 1_000)
    } else {
        format!("{}.{:03}ns", ps / 1_000, ps % 1_000)
    }
}

/// Run-time overrides for [`Scenario::run_opts`], none of which are part
/// of the scenario text itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Replace the scenario's event-set backend.
    pub backend: Option<EventBackend>,
    /// Replace the default statistics sizing (e.g. to turn on the
    /// delivery log for packet-for-packet comparison).
    pub stats: Option<StatsConfig>,
    /// Conformance-oracle mode; armed only when the discipline is `lit`
    /// with an exact eligible queue.
    pub oracle: OracleMode,
    /// Enable batched arrival dispatch (see
    /// [`NetworkBuilder::batch_arrivals`]); observably identical, and
    /// ignored while a probe or the oracle is installed.
    pub batch: bool,
    /// Shard-worker override (see [`NetworkBuilder::shards`]); `None`
    /// follows the process-global `--shards` flag. Results are identical
    /// for every value; a probe or panic-mode oracle forces scalar.
    pub shards: Option<usize>,
}

/// Split `key=value` (value may be absent for flags).
fn keyval(tok: &str) -> (&str, Option<&str>) {
    match tok.split_once('=') {
        Some((k, v)) => (k, Some(v)),
        None => (tok, None),
    }
}

/// Parse the inside of `name(...)` into `(name, args)`.
fn call(tok: &str) -> Option<(&str, Vec<(&str, &str)>)> {
    let open = tok.find('(')?;
    let close = tok.rfind(')')?;
    if close < open {
        return None;
    }
    let name = &tok[..open];
    let args = tok[open + 1..close]
        .split(',')
        .filter(|a| !a.is_empty())
        .map(|a| a.split_once('=').unwrap_or((a, "")))
        .collect();
    Some((name, args))
}

/// Parse a discipline name as written after the `discipline` directive.
fn parse_discipline(name: &str) -> Result<DisciplineChoice, String> {
    Ok(match name {
        "lit" | "leave-in-time" => DisciplineChoice::Lit,
        "fcfs" => DisciplineChoice::Fcfs,
        "virtualclock" | "vc" => DisciplineChoice::VirtualClock,
        "wfq" => DisciplineChoice::Wfq,
        "scfq" => DisciplineChoice::Scfq,
        "delay-edd" => DisciplineChoice::DelayEdd,
        "jitter-edd" => DisciplineChoice::JitterEdd,
        other => {
            if let Some(frame) = other.strip_prefix("stop-and-go:frame=") {
                DisciplineChoice::StopAndGo(parse_duration(frame)?)
            } else if let Some(slots) = other.strip_prefix("hrr:slots=") {
                DisciplineChoice::Hrr(
                    slots
                        .parse()
                        .map_err(|_| "hrr: bad slot count".to_string())?,
                )
            } else {
                return Err(format!("unknown discipline '{other}'"));
            }
        }
    })
}

impl Scenario {
    /// Read and parse a scenario file, attaching the path (and line, for
    /// parse failures) to any error so callers can print it verbatim.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Scenario, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Scenario::parse(&text).map_err(|e| format!("{}:{}: {}", path.display(), e.line, e.message))
    }

    /// Parse a scenario from text.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let mut nodes = None;
        let mut link = LinkParams::paper_t1();
        let mut discipline = DisciplineChoice::Lit;
        let mut queue = QueueKind::Exact;
        let mut backend = EventBackend::Heap;
        let mut seed = 0u64;
        let mut sessions = Vec::new();
        let mut horizon = None;

        let err = |line: usize, message: String| ParseError { line, message };

        // Join continuation lines ending in '\'.
        let mut logical: Vec<(usize, String)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some((_, prev)) = logical.last_mut() {
                if prev.ends_with('\\') {
                    prev.pop();
                    prev.push(' ');
                    prev.push_str(&line);
                    continue;
                }
            }
            logical.push((i + 1, line));
        }

        for (ln, line) in logical {
            let mut toks = line.split_whitespace();
            // Blank and comment-only lines were dropped above, but a
            // continuation backslash can still leave a whitespace-only
            // logical line; skip it rather than unwrap on it.
            let Some(head) = toks.next() else {
                continue;
            };
            match head {
                "nodes" => {
                    let count: usize = toks
                        .next()
                        .ok_or_else(|| err(ln, "nodes: missing count".into()))?
                        .parse()
                        .map_err(|_| err(ln, "nodes: bad count".into()))?;
                    for tok in toks {
                        match keyval(tok) {
                            ("rate", Some(v)) => {
                                link.rate_bps =
                                    v.parse().map_err(|_| err(ln, "nodes: bad rate".into()))?
                            }
                            ("prop", Some(v)) => {
                                link.propagation = parse_duration(v).map_err(|e| err(ln, e))?
                            }
                            ("lmax", Some(v)) => {
                                link.lmax_bits =
                                    v.parse().map_err(|_| err(ln, "nodes: bad lmax".into()))?
                            }
                            (k, _) => return Err(err(ln, format!("nodes: unknown option '{k}'"))),
                        }
                    }
                    nodes = Some(count);
                }
                "discipline" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| err(ln, "discipline: missing name".into()))?;
                    discipline = parse_discipline(name).map_err(|e| err(ln, e))?;
                }
                "backend" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| err(ln, "backend: missing name".into()))?;
                    backend = match name {
                        "heap" => EventBackend::Heap,
                        "calendar" => EventBackend::Calendar,
                        "wheel" => EventBackend::Wheel,
                        other => return Err(err(ln, format!("unknown backend '{other}'"))),
                    };
                }
                "queue" => {
                    let kind = toks
                        .next()
                        .ok_or_else(|| err(ln, "queue: missing kind".into()))?;
                    queue = match keyval(kind) {
                        ("exact", None) => QueueKind::Exact,
                        ("bucket", Some(v)) => QueueKind::Bucketed {
                            bucket: parse_duration(v).map_err(|e| err(ln, e))?,
                        },
                        _ => return Err(err(ln, format!("unknown queue kind '{kind}'"))),
                    };
                }
                "seed" => {
                    seed = toks
                        .next()
                        .ok_or_else(|| err(ln, "seed: missing value".into()))?
                        .parse()
                        .map_err(|_| err(ln, "seed: bad value".into()))?;
                }
                "session" => {
                    let mut first = None;
                    let mut rate = None;
                    let mut jc = false;
                    let mut d = None;
                    let mut shape = None;
                    let mut source = None;
                    for tok in toks {
                        match keyval(tok) {
                            ("route", Some(v)) => {
                                let (a, b) = v
                                    .split_once("..")
                                    .ok_or_else(|| err(ln, "route: want A..B".into()))?;
                                let a: usize =
                                    a.parse().map_err(|_| err(ln, "route: bad start".into()))?;
                                let b: usize =
                                    b.parse().map_err(|_| err(ln, "route: bad end".into()))?;
                                if b < a {
                                    return Err(err(ln, "route: end before start".into()));
                                }
                                first = Some((a, b));
                            }
                            ("rate", Some(v)) => {
                                rate = Some(v.parse().map_err(|_| err(ln, "bad rate".into()))?)
                            }
                            ("jc", None) => jc = true,
                            ("d", Some(v)) => d = Some(parse_duration(v).map_err(|e| err(ln, e))?),
                            ("shape", Some(v)) => {
                                let (r, depth) = v
                                    .split_once(':')
                                    .ok_or_else(|| err(ln, "shape: want rate:bits".into()))?;
                                shape = Some((
                                    r.parse().map_err(|_| err(ln, "shape: bad rate".into()))?,
                                    depth
                                        .parse()
                                        .map_err(|_| err(ln, "shape: bad depth".into()))?,
                                ));
                            }
                            ("source", Some(v)) => {
                                source = Some(Self::parse_source(v).map_err(|e| err(ln, e))?)
                            }
                            (k, _) => {
                                return Err(err(ln, format!("session: unknown option '{k}'")))
                            }
                        }
                    }
                    let (a, b) = first.ok_or_else(|| err(ln, "session: missing route".into()))?;
                    sessions.push(SessionLine {
                        first: a,
                        last: b,
                        rate: rate.ok_or_else(|| err(ln, "session: missing rate".into()))?,
                        jc,
                        d,
                        shape,
                        source: source.ok_or_else(|| err(ln, "session: missing source".into()))?,
                    });
                }
                "run" => {
                    let v = toks
                        .next()
                        .ok_or_else(|| err(ln, "run: missing duration".into()))?;
                    horizon = Some(parse_duration(v).map_err(|e| err(ln, e))?);
                }
                other => return Err(err(ln, format!("unknown directive '{other}'"))),
            }
        }

        let nodes = nodes.ok_or_else(|| err(0, "missing 'nodes' directive".into()))?;
        let horizon = horizon.ok_or_else(|| err(0, "missing 'run' directive".into()))?;
        for s in &sessions {
            if s.last >= nodes {
                return Err(err(0, format!("route ends at node {} of {nodes}", s.last)));
            }
        }
        if sessions.is_empty() {
            return Err(err(0, "no sessions defined".into()));
        }
        Ok(Scenario {
            nodes,
            link,
            discipline,
            queue,
            backend,
            seed,
            sessions,
            horizon,
        })
    }

    fn parse_source(v: &str) -> Result<SourceSpec, String> {
        let (name, args) = call(v).ok_or_else(|| format!("bad source syntax '{v}'"))?;
        let get = |key: &str| -> Result<&str, String> {
            args.iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("source {name}: missing '{key}'"))
        };
        let len = |key: &str| -> Result<u32, String> {
            get(key)?
                .parse()
                .map_err(|_| format!("source {name}: bad '{key}'"))
        };
        match name {
            "onoff" => Ok(SourceSpec::OnOff {
                on: parse_duration(get("on")?)?,
                off: parse_duration(get("off")?)?,
                t: parse_duration(get("t")?)?,
                len: len("len")?,
            }),
            "poisson" => Ok(SourceSpec::Poisson {
                gap: parse_duration(get("gap")?)?,
                len: len("len")?,
            }),
            "cbr" => Ok(SourceSpec::Cbr {
                gap: parse_duration(get("gap")?)?,
                len: len("len")?,
                offset: args
                    .iter()
                    .find(|(k, _)| *k == "offset")
                    .map(|(_, v)| parse_duration(v))
                    .transpose()?
                    .unwrap_or(Duration::ZERO),
            }),
            "burst" => Ok(SourceSpec::Burst {
                period: parse_duration(get("period")?)?,
                count: len("count")?,
                len: len("len")?,
            }),
            other => Err(format!("unknown source kind '{other}'")),
        }
    }

    /// Build and run the scenario; returns the finished network and the
    /// session ids in definition order. The conformance oracle follows the
    /// process-global mode (the CLI's `--oracle` flag).
    pub fn run(&self) -> (Network, Vec<SessionId>) {
        self.run_opts(&RunOptions {
            oracle: lit_net::oracle::global_mode(),
            ..RunOptions::default()
        })
    }

    /// [`Scenario::run`] with explicit overrides — the differential
    /// fuzzer's entry point. Attaches the process-global observability
    /// probe when `lit_obs::hub` collection is on (the CLI's `--metrics`
    /// / `--trace` flags).
    pub fn run_opts(&self, opts: &RunOptions) -> (Network, Vec<SessionId>) {
        self.run_probed(opts, lit_obs::hub::global_probe())
    }

    /// [`Scenario::run_opts`] with an explicit probe (or none) — tests
    /// install a local [`lit_net::ObsProbe`] here and read it back with
    /// `Network::take_probe`, without touching process-global state.
    pub fn run_probed(
        &self,
        opts: &RunOptions,
        probe: Option<Box<dyn lit_net::Probe>>,
    ) -> (Network, Vec<SessionId>) {
        let mut b = NetworkBuilder::new()
            .seed(self.seed)
            .queue_kind(self.queue)
            .event_backend(opts.backend.unwrap_or(self.backend))
            .batch_arrivals(opts.batch)
            .shards(opts.shards.unwrap_or_else(lit_net::shard::global_shards));
        // The oracle's invariants are Leave-in-Time's, checked against an
        // exact deadline queue; other disciplines and the bucketed
        // ablation queue run unchecked.
        let oracle = if self.discipline == DisciplineChoice::Lit && self.queue == QueueKind::Exact {
            opts.oracle
        } else {
            OracleMode::Off
        };
        b = b.oracle(OracleConfig::new(oracle));
        if let Some(p) = probe {
            b = b.probe(p);
        }
        if let Some(stats) = opts.stats {
            b = b.stats(stats);
        }
        let nodes = b.tandem(self.nodes, self.link);
        let mut ids = Vec::new();
        for s in &self.sessions {
            let mut spec = SessionSpec::atm(SessionId(0), s.rate);
            spec.jitter_control = s.jc;
            // The spec's packet-length range must cover what the source
            // emits: L_max enters d_max (eq. 9's holding-time stamp) and
            // β; L_min enters the jitter bound.
            let len = match s.source {
                SourceSpec::OnOff { len, .. }
                | SourceSpec::Poisson { len, .. }
                | SourceSpec::Cbr { len, .. }
                | SourceSpec::Burst { len, .. } => len,
            };
            spec.max_len_bits = len;
            spec.min_len_bits = len;
            if let Some(d) = s.d {
                spec.delay = DelayAssignment::Fixed(d);
            }
            let source: Box<dyn Source> = {
                let inner: Box<dyn Source> = match s.source {
                    SourceSpec::OnOff { on, off, t, len } => {
                        Box::new(OnOffSource::new(OnOffConfig {
                            mean_on: on,
                            mean_off: off,
                            spacing: t,
                            len_bits: len,
                            initial_offset: Duration::ZERO,
                        }))
                    }
                    SourceSpec::Poisson { gap, len } => Box::new(PoissonSource::new(gap, len)),
                    SourceSpec::Cbr { gap, len, offset } => {
                        Box::new(DeterministicSource::new(gap, len).with_offset(offset))
                    }
                    SourceSpec::Burst { period, count, len } => {
                        Box::new(BurstSource::new(period, count, len))
                    }
                };
                match s.shape {
                    Some((rate, depth)) => {
                        Box::new(ShapedSource::new(BoxedSource(inner), rate, depth))
                    }
                    None => inner,
                }
            };
            let route: Vec<_> = (s.first..=s.last).map(|n| nodes[n]).collect();
            ids.push(b.add_session(spec, &route, source));
        }
        type Factory = Box<dyn Fn(&LinkParams) -> Box<dyn lit_net::Discipline>>;
        let factory: Factory = match &self.discipline {
            DisciplineChoice::Lit => Box::new(|l: &LinkParams| {
                Box::new(LitDiscipline::new(*l)) as Box<dyn lit_net::Discipline>
            }),
            DisciplineChoice::Fcfs => Box::new(FcfsDiscipline::factory()),
            DisciplineChoice::VirtualClock => Box::new(VirtualClockDiscipline::factory()),
            DisciplineChoice::Wfq => Box::new(WfqDiscipline::factory()),
            DisciplineChoice::Scfq => Box::new(ScfqDiscipline::factory()),
            DisciplineChoice::StopAndGo(frame) => Box::new(StopAndGoDiscipline::factory(*frame)),
            DisciplineChoice::Hrr(slots) => Box::new(HrrDiscipline::factory(*slots)),
            DisciplineChoice::DelayEdd => Box::new(EddDiscipline::factory(false)),
            DisciplineChoice::JitterEdd => Box::new(EddDiscipline::factory(true)),
        };
        let mut net = b.build(&*factory);
        if oracle != OracleMode::Off {
            install_oracle_bounds(&mut net);
        }
        net.run_until(Time::ZERO + self.horizon);
        (net, ids)
    }

    /// Vet every session line through per-node procedure-3 admission
    /// (the CLI's `--ac3 exact|fast` flag), one [`Ac3Service`] per node
    /// at the scenario's link rate. Returns one verdict per session in
    /// definition order; a session admits only if every node on its
    /// route accepts it (a mid-route rejection rolls back the hops
    /// already granted, mirroring [`lit_core::ConnectionManager`]).
    ///
    /// The per-hop delay submitted is the session's `d=` option when
    /// present, else the `L/r` default the run itself would use.
    pub fn ac3_vet(&self, backend: Ac3Backend) -> Vec<Result<(), String>> {
        let mut nodes: Vec<Ac3Service> = (0..self.nodes)
            .map(|_| Ac3Service::new(backend, self.link.rate_bps))
            .collect();
        self.sessions
            .iter()
            .map(|s| {
                let len = match s.source {
                    SourceSpec::OnOff { len, .. }
                    | SourceSpec::Poisson { len, .. }
                    | SourceSpec::Cbr { len, .. }
                    | SourceSpec::Burst { len, .. } => len,
                };
                let d =
                    s.d.unwrap_or_else(|| Duration::from_bits_at_rate(len as u64, s.rate));
                let mut granted: Vec<(usize, Ac3ServiceHandle)> = Vec::new();
                for n in s.first..=s.last {
                    match nodes[n].try_admit(s.rate, len, d) {
                        Ok((h, _)) => granted.push((n, h)),
                        Err(e) => {
                            for (m, h) in granted.drain(..) {
                                nodes[m].release(h);
                            }
                            return Err(format!("node {n}: {e}"));
                        }
                    }
                }
                Ok(())
            })
            .collect()
    }

    /// The same scenario keeping only sessions whose `keep` entry is
    /// true (missing entries keep the session) — used to drop
    /// AC3-rejected sessions before a run.
    pub fn retain_sessions(&self, keep: &[bool]) -> Scenario {
        Scenario {
            sessions: self
                .sessions
                .iter()
                .enumerate()
                .filter(|(i, _)| keep.get(*i).copied().unwrap_or(true))
                .map(|(_, s)| s.clone())
                .collect(),
            ..self.clone()
        }
    }

    /// The same scenario under another discipline (for differential runs).
    pub fn with_discipline(&self, name: &str) -> Result<Scenario, String> {
        Ok(Scenario {
            discipline: parse_discipline(name)?,
            ..self.clone()
        })
    }

    /// The same scenario with a different run horizon (snapshot tests
    /// shorten the committed scenarios to keep golden runs fast).
    pub fn with_horizon(&self, horizon: Duration) -> Scenario {
        Scenario {
            horizon,
            ..self.clone()
        }
    }

    /// Serialize back to scenario text. `parse(to_text(sc)) == sc` for
    /// every scenario whose durations are whole nanoseconds (all of the
    /// fuzzer's, and every file under `scenarios/`).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "nodes {} rate={} prop={} lmax={}",
            self.nodes,
            self.link.rate_bps,
            fmt_duration(self.link.propagation),
            self.link.lmax_bits,
        );
        let disc = match &self.discipline {
            DisciplineChoice::Lit => "lit".to_string(),
            DisciplineChoice::Fcfs => "fcfs".to_string(),
            DisciplineChoice::VirtualClock => "virtualclock".to_string(),
            DisciplineChoice::Wfq => "wfq".to_string(),
            DisciplineChoice::Scfq => "scfq".to_string(),
            DisciplineChoice::StopAndGo(f) => format!("stop-and-go:frame={}", fmt_duration(*f)),
            DisciplineChoice::Hrr(slots) => format!("hrr:slots={slots}"),
            DisciplineChoice::DelayEdd => "delay-edd".to_string(),
            DisciplineChoice::JitterEdd => "jitter-edd".to_string(),
        };
        let _ = writeln!(out, "discipline {disc}");
        if let QueueKind::Bucketed { bucket } = self.queue {
            let _ = writeln!(out, "queue bucket={}", fmt_duration(bucket));
        }
        if self.backend == EventBackend::Calendar {
            let _ = writeln!(out, "backend calendar");
        } else if self.backend == EventBackend::Wheel {
            let _ = writeln!(out, "backend wheel");
        }
        let _ = writeln!(out, "seed {}", self.seed);
        for s in &self.sessions {
            let _ = write!(out, "session route={}..{} rate={}", s.first, s.last, s.rate);
            if s.jc {
                let _ = write!(out, " jc");
            }
            if let Some(d) = s.d {
                let _ = write!(out, " d={}", fmt_duration(d));
            }
            if let Some((rate, depth)) = s.shape {
                let _ = write!(out, " shape={rate}:{depth}");
            }
            let src = match &s.source {
                SourceSpec::OnOff { on, off, t, len } => format!(
                    "onoff(on={},off={},t={},len={len})",
                    fmt_duration(*on),
                    fmt_duration(*off),
                    fmt_duration(*t),
                ),
                SourceSpec::Poisson { gap, len } => {
                    format!("poisson(gap={},len={len})", fmt_duration(*gap))
                }
                SourceSpec::Cbr { gap, len, offset } => {
                    if *offset == Duration::ZERO {
                        format!("cbr(gap={},len={len})", fmt_duration(*gap))
                    } else {
                        format!(
                            "cbr(gap={},len={len},offset={})",
                            fmt_duration(*gap),
                            fmt_duration(*offset),
                        )
                    }
                }
                SourceSpec::Burst { period, count, len } => {
                    format!(
                        "burst(period={},count={count},len={len})",
                        fmt_duration(*period)
                    )
                }
            };
            let _ = writeln!(out, " source={src}");
        }
        let _ = writeln!(out, "run {}", fmt_duration(self.horizon));
        out
    }

    /// Run and render per-session results. The last column is the
    /// Leave-in-Time delay bound *assuming a one-cell token bucket* — it
    /// only applies to sessions whose traffic actually conforms (shaped
    /// or CBR/ON-OFF at the reserved rate), and is omitted for other
    /// disciplines.
    pub fn run_report(&self) -> Table {
        let (net, ids) = self.run();
        let bounded = matches!(
            self.discipline,
            DisciplineChoice::Lit | DisciplineChoice::VirtualClock
        );
        let mut t = Table::new(
            format!("scenario — {} nodes, horizon {}", self.nodes, self.horizon),
            &[
                "session",
                "route",
                "delivered",
                "max_delay_ms",
                "mean_delay_ms",
                "jitter_ms",
                "bound_if_1cell_tb_ms",
            ],
        );
        for (i, id) in ids.iter().enumerate() {
            let st = net.session_stats(*id);
            let bound = if bounded {
                let (pb, dref) = {
                    let pb = PathBounds::for_session(&net, *id);
                    let dref = Duration::from_bits_at_rate(
                        net.session_spec(*id).max_len_bits as u64,
                        net.session_spec(*id).rate_bps,
                    );
                    (pb, dref)
                };
                ms(pb.delay_bound(dref))
            } else {
                "-".to_string()
            };
            t.push(vec![
                i.to_string(),
                format!("{}..{}", self.sessions[i].first, self.sessions[i].last),
                st.delivered.to_string(),
                st.max_delay().map(ms).unwrap_or_else(|| "-".into()),
                st.mean_delay().map(ms).unwrap_or_else(|| "-".into()),
                st.jitter().map(ms).unwrap_or_else(|| "-".into()),
                bound,
            ]);
        }
        t
    }
}

/// Adapter: a boxed source as a `Source` (for shaping a dynamic inner).
struct BoxedSource(Box<dyn Source>);

impl Source for BoxedSource {
    fn next_emission(&mut self, rng: &mut lit_sim::SimRng) -> Option<lit_traffic::Emission> {
        self.0.next_emission(rng)
    }
    fn mean_rate_bps(&self) -> Option<f64> {
        self.0.mean_rate_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG8ISH: &str = r#"
# miniature figure 8
nodes 5 rate=1536000 prop=1ms lmax=424
discipline lit
seed 7
session route=0..4 rate=32000 source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..4 rate=32000 jc source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..0 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=1..1 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=2..2 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=3..3 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=4..4 rate=1472000 source=poisson(gap=0.28804ms,len=424)
run 10s
"#;

    #[test]
    fn parses_and_runs_fig8ish() {
        let sc = Scenario::parse(FIG8ISH).unwrap();
        assert_eq!(sc.nodes, 5);
        assert_eq!(sc.sessions.len(), 7);
        let (net, ids) = sc.run();
        assert!(net.session_stats(ids[0]).delivered > 100);
        // The jc session's jitter is smaller.
        let j0 = net.session_stats(ids[0]).jitter().unwrap();
        let j1 = net.session_stats(ids[1]).jitter().unwrap();
        assert!(j1 < j0, "jc {j1} !< plain {j0}");
        let report = sc.run_report();
        assert_eq!(report.len(), 7);
    }

    #[test]
    fn duration_literals() {
        assert_eq!(
            parse_duration("13.25ms").unwrap(),
            Duration::from_us(13_250)
        );
        assert_eq!(parse_duration("60s").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("100us").unwrap(), Duration::from_us(100));
        assert_eq!(parse_duration("500ns").unwrap(), Duration::from_ns(500));
        assert!(parse_duration("5").is_err());
        assert!(parse_duration("5parsecs").is_err());
        assert!(parse_duration("-1ms").is_err());
    }

    #[test]
    fn continuation_lines() {
        let text =
            "nodes 2\nsession route=0..1 rate=1000 \\\n  source=poisson(gap=1ms,len=424)\nrun 1s\n";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.sessions.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = Scenario::parse("nodes 2\nbogus directive\nrun 1s").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn route_validation() {
        let e = Scenario::parse(
            "nodes 2\nsession route=0..5 rate=1 source=poisson(gap=1ms,len=1)\nrun 1s",
        )
        .unwrap_err();
        assert!(e.message.contains("route ends"));
        let e = Scenario::parse(
            "nodes 2\nsession route=1..0 rate=1 source=poisson(gap=1ms,len=1)\nrun 1s",
        )
        .unwrap_err();
        assert!(e.message.contains("end before start"));
    }

    #[test]
    fn missing_directives() {
        assert!(Scenario::parse("run 1s").is_err());
        assert!(Scenario::parse("nodes 1").is_err());
        let e = Scenario::parse("nodes 1\nrun 1s").unwrap_err();
        assert!(e.message.contains("no sessions"));
    }

    #[test]
    fn disciplines_and_queue_parse() {
        for d in [
            "lit",
            "fcfs",
            "virtualclock",
            "wfq",
            "scfq",
            "delay-edd",
            "jitter-edd",
            "stop-and-go:frame=10ms",
            "hrr:slots=48",
        ] {
            let text = format!(
                "nodes 1\ndiscipline {d}\nqueue bucket=1ms\nsession route=0..0 rate=1000 source=cbr(gap=10ms,len=424)\nrun 1s"
            );
            let sc = Scenario::parse(&text).unwrap_or_else(|e| panic!("{d}: {e}"));
            let (net, ids) = sc.run();
            assert!(net.session_stats(ids[0]).delivered > 0, "{d}");
        }
    }

    #[test]
    fn shaped_and_burst_sources() {
        let text = "nodes 1\nsession route=0..0 rate=32000 shape=32000:848 \
                    source=burst(period=100ms,count=5,len=424)\nrun 5s";
        let sc = Scenario::parse(text).unwrap();
        let (net, ids) = sc.run();
        assert!(net.session_stats(ids[0]).delivered >= 200);
    }

    #[test]
    fn to_text_round_trips_every_feature() {
        // One scenario exercising every serializable field: non-default
        // link, bucketed queue, calendar backend, jc, fixed d, shaping,
        // all four source kinds, fractional-unit durations.
        let text = "nodes 3 rate=3072000 prop=0.5ms lmax=848\n\
                    discipline lit\n\
                    queue bucket=1ms\n\
                    backend calendar\n\
                    seed 99\n\
                    session route=0..2 rate=32000 jc d=13.25ms source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)\n\
                    session route=1..1 rate=64000 shape=64000:1696 source=poisson(gap=0.28804ms,len=848)\n\
                    session route=0..1 rate=32000 source=cbr(gap=13.25ms,len=424,offset=1.5ms)\n\
                    session route=2..2 rate=32000 source=burst(period=50ms,count=100,len=424)\n\
                    run 2.5s\n";
        let sc = Scenario::parse(text).unwrap();
        let serialized = sc.to_text();
        let back = Scenario::parse(&serialized).unwrap_or_else(|e| panic!("{e}\n{serialized}"));
        assert_eq!(back, sc, "serialized:\n{serialized}");
        // Serialization is a fixpoint: text → Scenario → text → Scenario
        // converges after one round.
        assert_eq!(back.to_text(), serialized);
    }

    #[test]
    fn duration_formatting_picks_shortest_exact_unit() {
        assert_eq!(fmt_duration(Duration::from_secs(60)), "60s");
        assert_eq!(fmt_duration(Duration::from_ms(13)), "13ms");
        assert_eq!(fmt_duration(Duration::from_us(13_250)), "13250us");
        assert_eq!(fmt_duration(Duration::from_ns(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_ps(1_500)), "1.500ns");
        for d in [
            Duration::from_us(13_250),
            Duration::from_ps(287_999_999),
            Duration::from_ns(1),
        ] {
            assert_eq!(parse_duration(&fmt_duration(d)).unwrap(), d, "{d}");
        }
    }

    #[test]
    fn malformed_inputs_error_with_context() {
        // (input, expected substring of the message)
        for (text, want) in [
            ("nodes 2 bogus=1\nrun 1s", "unknown option 'bogus'"),
            ("nodes x\nrun 1s", "bad count"),
            ("nodes 2\ndiscipline tardis\nrun 1s", "unknown discipline"),
            ("nodes 2\ndiscipline hrr:slots=zero\nrun 1s", "bad slot count"),
            ("nodes 2\nqueue fifo\nrun 1s", "unknown queue kind"),
            ("nodes 2\nbackend abacus\nrun 1s", "unknown backend"),
            ("nodes 2\nseed minus-one\nrun 1s", "bad value"),
            ("nodes 2\nrun 1parsec", "unknown duration unit"),
            ("nodes 2\nrun -1s", "out of range"),
            (
                "nodes 2\nsession rate=1 source=poisson(gap=1ms,len=1)\nrun 1s",
                "missing route",
            ),
            (
                "nodes 2\nsession route=0..1 source=poisson(gap=1ms,len=1)\nrun 1s",
                "missing rate",
            ),
            ("nodes 2\nsession route=0..1 rate=1\nrun 1s", "missing source"),
            (
                "nodes 2\nsession route=0..1 rate=1 source=chaos(x=1)\nrun 1s",
                "unknown source kind",
            ),
            (
                "nodes 2\nsession route=0..1 rate=1 source=poisson(len=1)\nrun 1s",
                "missing 'gap'",
            ),
            (
                "nodes 2\nsession route=0..1 rate=1 source=poisson\nrun 1s",
                "bad source syntax",
            ),
            (
                "nodes 2\nsession route=0..1 rate=1 shape=32000 source=poisson(gap=1ms,len=1)\nrun 1s",
                "want rate:bits",
            ),
        ] {
            let e = Scenario::parse(text).unwrap_err();
            assert!(
                e.message.contains(want),
                "for {text:?}: got {:?}, want substring {want:?}",
                e.message
            );
        }
    }

    const FIG8_CROSS_SCN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/fig8_cross.scn"
    ));
    const MISBEHAVER_SCN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/misbehaver.scn"
    ));

    #[test]
    fn golden_fig8_cross_scenario() {
        let sc = Scenario::parse(FIG8_CROSS_SCN).unwrap();
        assert_eq!(sc.nodes, 5);
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.discipline, DisciplineChoice::Lit);
        assert_eq!(sc.horizon, Duration::from_secs(60));
        assert_eq!(sc.sessions.len(), 7);
        assert!(sc.sessions[1].jc && !sc.sessions[0].jc);
        assert_eq!((sc.sessions[0].first, sc.sessions[0].last), (0, 4));
        match sc.sessions[2].source {
            SourceSpec::Poisson { gap, len } => {
                assert_eq!(gap, Duration::from_ns(288_040));
                assert_eq!(len, 424);
            }
            ref other => panic!("session 2: want poisson, got {other:?}"),
        }
        // Round-trips exactly (whole-ns durations throughout).
        assert_eq!(Scenario::parse(&sc.to_text()).unwrap(), sc);
    }

    #[test]
    fn golden_misbehaver_scenario() {
        let sc = Scenario::parse(MISBEHAVER_SCN).unwrap();
        assert_eq!(sc.nodes, 1);
        assert_eq!(sc.seed, 3);
        assert_eq!(sc.horizon, Duration::from_secs(30));
        assert_eq!(sc.sessions.len(), 2);
        match sc.sessions[1].source {
            SourceSpec::Burst { period, count, len } => {
                assert_eq!(period, Duration::from_ms(50));
                assert_eq!(count, 100);
                assert_eq!(len, 424);
            }
            ref other => panic!("session 1: want burst, got {other:?}"),
        }
        assert_eq!(Scenario::parse(&sc.to_text()).unwrap(), sc);
    }

    #[test]
    fn ac3_vet_admits_feasible_and_drops_overload() {
        // Two modest sessions fit node 0 of a T1; the third asks for a
        // per-hop d below its L/C floor and must be rejected by ineq. 19
        // — identically under both backends.
        let text = "nodes 2 rate=1536000 prop=1ms lmax=424\n\
                    session route=0..1 rate=32000 d=13.25ms source=cbr(gap=13.25ms,len=424)\n\
                    session route=0..1 rate=32000 d=13.25ms source=cbr(gap=13.25ms,len=424)\n\
                    session route=0..0 rate=64000 d=0.1ms source=cbr(gap=6.625ms,len=424)\n\
                    run 1s";
        let sc = Scenario::parse(text).unwrap();
        for backend in [Ac3Backend::Exact, Ac3Backend::Fast] {
            let verdicts = sc.ac3_vet(backend);
            assert_eq!(verdicts.len(), 3);
            assert!(verdicts[0].is_ok() && verdicts[1].is_ok(), "{backend:?}");
            let err = verdicts[2].as_ref().unwrap_err();
            assert!(err.starts_with("node 0:"), "{backend:?}: {err}");
        }
        // Dropping the rejected line leaves a runnable scenario.
        let kept = sc.retain_sessions(&[true, true, false]);
        assert_eq!(kept.sessions.len(), 2);
        let (net, ids) = kept.run();
        assert!(net.session_stats(ids[0]).delivered > 0);
    }

    #[test]
    fn ac3_vet_rolls_back_mid_route_rejection() {
        // Session 0 loads node 1 only; session 1 (route 0..1) clears
        // node 0 but is refused at node 1, and its node-0 grant must be
        // released so session 2 can still take node 0's full rate.
        let text = "nodes 2 rate=1536000 prop=1ms lmax=424\n\
                    session route=1..1 rate=1300000 d=1ms source=cbr(gap=1ms,len=424)\n\
                    session route=0..1 rate=400000 d=1ms source=cbr(gap=1ms,len=424)\n\
                    session route=0..0 rate=1536000 d=1ms source=cbr(gap=1ms,len=424)\n\
                    run 1s";
        let sc = Scenario::parse(text).unwrap();
        for backend in [Ac3Backend::Exact, Ac3Backend::Fast] {
            let verdicts = sc.ac3_vet(backend);
            assert!(verdicts[0].is_ok(), "{backend:?}");
            let err = verdicts[1].as_ref().unwrap_err();
            assert!(err.starts_with("node 1:"), "{backend:?}: {err}");
            assert!(
                verdicts[2].is_ok(),
                "{backend:?}: node 0 leaked the rolled-back grant: {:?}",
                verdicts[2]
            );
        }
    }

    #[test]
    fn with_discipline_swaps_only_the_discipline() {
        let sc = Scenario::parse(MISBEHAVER_SCN).unwrap();
        let vc = sc.with_discipline("virtualclock").unwrap();
        assert_eq!(vc.discipline, DisciplineChoice::VirtualClock);
        assert_eq!(vc.sessions, sc.sessions);
        assert!(sc.with_discipline("tardis").is_err());
    }
}
