//! A small text format for describing and running experiments without
//! recompiling — `lit-repro scenario <file>`.
//!
//! ```text
//! # comment                      (blank lines and #-comments ignored)
//! nodes 5 rate=1536000 prop=1ms lmax=424
//! discipline lit                 # lit | fcfs | virtualclock | wfq |
//!                                # scfq | stop-and-go:frame=10ms |
//!                                # hrr:slots=48 | delay-edd | jitter-edd
//! queue bucket=1ms               # exact (default) | bucket=<duration>
//! seed 42
//! session route=0..4 rate=32000 jc d=2.77ms \
//!         source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
//! session route=1..1 rate=1472000 source=poisson(gap=0.28804ms,len=424)
//! session route=0..2 rate=64000 shape=64000:1696 \
//!         source=burst(period=50ms,count=10,len=424)
//! run 60s
//! ```
//!
//! Durations accept `s`, `ms`, `us`, `ns` suffixes with decimals.
//! Session options: `jc` (delay-jitter control), `d=<duration>` (fixed
//! per-hop delay; default is `L/r`), `shape=<rate>:<bits>` (pass the
//! source through a token-bucket shaper). Sources: `onoff`, `poisson`,
//! `cbr(gap,len[,offset])`, `burst(period,count,len)`.
//!
//! Further directives: `backend heap|calendar|wheel` selects the
//! event-set implementation (default heap; all deliver identically);
//! `regulator per-session|interleaved` selects the eligibility-regulator
//! backend (default per-session — see
//! [`lit_net::RegulatorBackend`]). A session may give an explicit node
//! list where `route=A..B` would be contiguous: `session path=0,3,7 ...`.
//!
//! `generate` stanzas expand into whole session populations at a target
//! offered load ρ (see [`Scenario::expanded`]):
//!
//! ```text
//! generate tandem(n=8,rho=0.95,through=4,cross=4,len=424)
//! generate fattree(depth=2,fanout=4,rho=0.9,len=424)
//! generate wan(nodes=12,flows=32,rho=0.8,len=424)
//! ```
//!
//! A parsed
//! [`Scenario`] serializes back to text with [`Scenario::to_text`] — the
//! differential fuzzer uses this to write minimized failures as
//! replayable files.

use crate::report::{ms, Table};
use lit_baselines::{
    EddDiscipline, FcfsDiscipline, HrrDiscipline, ScfqDiscipline, StopAndGoDiscipline,
    VirtualClockDiscipline, WfqDiscipline,
};
use lit_core::{
    install_oracle_bounds, Ac3Backend, Ac3Service, Ac3ServiceHandle, LitDiscipline, PathBounds,
};
use lit_net::{
    DelayAssignment, EventBackend, LinkParams, Network, NetworkBuilder, OracleConfig, OracleMode,
    QueueKind, RegulatorBackend, SessionId, SessionSpec, StatsConfig,
};
use lit_sim::{Duration, Time};
use lit_traffic::{
    BurstSource, DeterministicSource, OnOffConfig, OnOffSource, PoissonSource, ShapedSource, Source,
};

/// A parse failure, with the offending 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Which discipline the scenario runs under.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum DisciplineChoice {
    Lit,
    Fcfs,
    VirtualClock,
    Wfq,
    Scfq,
    StopAndGo(Duration),
    Hrr(u32),
    DelayEdd,
    JitterEdd,
}

/// One session line.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SessionLine {
    pub(crate) first: usize,
    pub(crate) last: usize,
    pub(crate) rate: u64,
    pub(crate) jc: bool,
    pub(crate) d: Option<Duration>,
    pub(crate) shape: Option<(u64, u64)>,
    pub(crate) source: SourceSpec,
    /// Explicit node list (`path=0,3,7`); `None` means the contiguous
    /// `route=first..last`.
    pub(crate) path: Option<Vec<usize>>,
}

impl SessionLine {
    /// The node indices this session visits, in order.
    pub(crate) fn route_nodes(&self) -> Vec<usize> {
        match &self.path {
            Some(p) => p.clone(),
            None => (self.first..=self.last).collect(),
        }
    }

    /// Human-readable route for report tables.
    pub(crate) fn route_desc(&self) -> String {
        match &self.path {
            Some(p) => p
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("-"),
            None => format!("{}..{}", self.first, self.last),
        }
    }
}

/// A parsed source description.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum SourceSpec {
    OnOff {
        on: Duration,
        off: Duration,
        t: Duration,
        len: u32,
    },
    Poisson {
        gap: Duration,
        len: u32,
    },
    Cbr {
        gap: Duration,
        len: u32,
        offset: Duration,
    },
    Burst {
        period: Duration,
        count: u32,
        len: u32,
    },
}

/// Offered load ρ in basis points from a decimal literal (`0.95` →
/// `9_500`). Loads above 2.0 are rejected — far past saturation nothing
/// new is learned and backlogs explode.
pub(crate) fn parse_rho(s: &str) -> Result<u32, String> {
    let v: f64 = s.parse().map_err(|_| format!("bad rho '{s}'"))?;
    if !v.is_finite() || v <= 0.0 || v > 2.0 {
        return Err(format!("rho '{s}' out of range (0, 2]"));
    }
    Ok((v * 10_000.0).round() as u32)
}

/// Inverse of [`parse_rho`]: the shortest decimal that parses back to
/// the same basis points.
pub(crate) fn fmt_rho(bp: u32) -> String {
    if bp.is_multiple_of(10_000) {
        return format!("{}", bp / 10_000);
    }
    let mut frac = format!("{:04}", bp % 10_000);
    while frac.ends_with('0') {
        frac.pop();
    }
    format!("{}.{frac}", bp / 10_000)
}

/// ρ·C split evenly over the bottleneck's session count, floored so the
/// total reservation never exceeds ρ·C, and clamped to ≥ 1 bps.
fn per_session_rate(rate_bps: u64, rho_bp: u32, bottleneck_sessions: usize) -> u64 {
    let r = (rate_bps as u128 * rho_bp as u128) / (10_000u128 * bottleneck_sessions.max(1) as u128);
    r.max(1) as u64
}

/// One generated CBR session: reserved rate `r`, packet length `len`
/// bits, inter-packet gap rounded *up* to whole nanoseconds so the
/// emitted rate never exceeds the reservation (the traffic is
/// conformant whenever the reservations are admissible), and a
/// per-session phase offset `1 + 37·idx` ns so no two generated sources
/// tick in lockstep.
fn cbr_line(
    first: usize,
    last: usize,
    path: Option<Vec<usize>>,
    r: u64,
    len: u32,
    jc: bool,
    idx: usize,
) -> SessionLine {
    let gap_ns = (len as u128 * 1_000_000_000).div_ceil(r as u128) as u64;
    let offset_ns = 1 + idx as u64 * 37;
    SessionLine {
        first,
        last,
        rate: r,
        jc,
        d: None,
        shape: None,
        source: SourceSpec::Cbr {
            gap: Duration::from_ns(gap_ns),
            len,
            offset: Duration::from_ns(offset_ns),
        },
        path,
    }
}

/// A `generate` stanza: a parameterized scenario family that
/// [`Scenario::expanded`] resolves into concrete CBR session lines at a
/// target offered load ρ.
///
/// Every family sizes each session's reservation as `ρ·C / m` where `m`
/// is the session count on the *bottleneck* link, so the busiest link
/// carries an offered load of exactly ρ — admissible for ρ ≤ 1, an
/// overload fixture past it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum GenSpec {
    /// `tandem(n,rho[,through,cross,len])`: an `n`-hop line with
    /// `through` full-route jitter-controlled sessions plus `cross`
    /// single-hop sessions per node — every link carries
    /// `through + cross` sessions (the paper's fig. 8 CROSS shape,
    /// scaled).
    Tandem {
        n: usize,
        rho_bp: u32,
        through: usize,
        cross: usize,
        len: u32,
    },
    /// `fattree(depth,fanout,rho[,len])`: the uplinks of a complete
    /// `fanout`-ary tree of the given depth as server nodes (level 1 =
    /// just below the root, labeled breadth-first), one flow per leaf
    /// routed leaf → root. The level-1 uplinks are the bottleneck,
    /// carrying `fanout^(depth-1)` flows each.
    FatTree {
        depth: usize,
        fanout: usize,
        rho_bp: u32,
        len: u32,
    },
    /// `wan(nodes,flows,rho[,len])`: `flows` deterministic pseudorandom
    /// forward paths over a `nodes`-link line (see [`wan_path`]); rates
    /// are normalized by the most-loaded link.
    Wan {
        nodes: usize,
        flows: usize,
        rho_bp: u32,
        len: u32,
    },
}

impl GenSpec {
    /// Parse the token after `generate`, e.g.
    /// `tandem(n=8,rho=0.95,through=4,cross=4,len=424)`.
    pub(crate) fn parse_stanza(tok: &str) -> Result<GenSpec, String> {
        let (name, args) = call(tok).ok_or_else(|| format!("bad generator syntax '{tok}'"))?;
        let allow = |allowed: &[&str]| -> Result<(), String> {
            for (k, _) in &args {
                if !allowed.contains(k) {
                    return Err(format!("generate {name}: unknown option '{k}'"));
                }
            }
            Ok(())
        };
        let get = |key: &str| args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        let req = |key: &str| -> Result<usize, String> {
            get(key)
                .ok_or_else(|| format!("generate {name}: missing '{key}'"))?
                .parse()
                .map_err(|_| format!("generate {name}: bad '{key}'"))
        };
        let opt = |key: &str, default: usize| -> Result<usize, String> {
            match get(key) {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("generate {name}: bad '{key}'")),
                None => Ok(default),
            }
        };
        let rho_bp =
            parse_rho(get("rho").ok_or_else(|| format!("generate {name}: missing 'rho'"))?)?;
        let len = opt("len", 424)?;
        if len == 0 || len > 65_536 {
            return Err(format!("generate {name}: len out of range [1, 65536]"));
        }
        let len = len as u32;
        Ok(match name {
            "tandem" => {
                allow(&["n", "rho", "through", "cross", "len"])?;
                let n = req("n")?;
                let through = opt("through", 4)?;
                let cross = opt("cross", 4)?;
                if n == 0 || n > 1_024 {
                    return Err("generate tandem: n out of range [1, 1024]".into());
                }
                if through + cross == 0 || through > 4_096 || cross > 256 {
                    return Err("generate tandem: session counts out of range".into());
                }
                GenSpec::Tandem {
                    n,
                    rho_bp,
                    through,
                    cross,
                    len,
                }
            }
            "fattree" => {
                allow(&["depth", "fanout", "rho", "len"])?;
                let depth = req("depth")?;
                let fanout = req("fanout")?;
                if !(1..=6).contains(&depth) || !(2..=16).contains(&fanout) {
                    return Err("generate fattree: want depth in [1, 6], fanout in [2, 16]".into());
                }
                let g = GenSpec::FatTree {
                    depth,
                    fanout,
                    rho_bp,
                    len,
                };
                if g.num_nodes() > 4_096 {
                    return Err("generate fattree: more than 4096 nodes".into());
                }
                g
            }
            "wan" => {
                allow(&["nodes", "flows", "rho", "len"])?;
                let nodes = req("nodes")?;
                let flows = req("flows")?;
                if nodes == 0 || nodes > 4_096 || flows == 0 || flows > 4_096 {
                    return Err("generate wan: nodes/flows out of range [1, 4096]".into());
                }
                GenSpec::Wan {
                    nodes,
                    flows,
                    rho_bp,
                    len,
                }
            }
            other => return Err(format!("unknown generator family '{other}'")),
        })
    }

    /// Canonical stanza text (everything after `generate `).
    fn to_text(&self) -> String {
        match *self {
            GenSpec::Tandem {
                n,
                rho_bp,
                through,
                cross,
                len,
            } => format!(
                "tandem(n={n},rho={},through={through},cross={cross},len={len})",
                fmt_rho(rho_bp)
            ),
            GenSpec::FatTree {
                depth,
                fanout,
                rho_bp,
                len,
            } => format!(
                "fattree(depth={depth},fanout={fanout},rho={},len={len})",
                fmt_rho(rho_bp)
            ),
            GenSpec::Wan {
                nodes,
                flows,
                rho_bp,
                len,
            } => format!(
                "wan(nodes={nodes},flows={flows},rho={},len={len})",
                fmt_rho(rho_bp)
            ),
        }
    }

    /// How many server nodes this family needs.
    pub(crate) fn num_nodes(&self) -> usize {
        match *self {
            GenSpec::Tandem { n, .. } => n,
            GenSpec::FatTree { depth, fanout, .. } => {
                crate::topology::fattree_num_nodes(depth, fanout)
            }
            GenSpec::Wan { nodes, .. } => nodes,
        }
    }

    /// Resolve into concrete session lines. `base_idx` is the index of
    /// the first generated session in the combined list (phase offsets
    /// continue across stanzas); `rate_bps` is the link capacity C.
    pub(crate) fn expand(&self, base_idx: usize, rate_bps: u64) -> Vec<SessionLine> {
        match *self {
            GenSpec::Tandem {
                n,
                rho_bp,
                through,
                cross,
                len,
            } => {
                let r = per_session_rate(rate_bps, rho_bp, through + cross);
                let mut out = Vec::new();
                for _ in 0..through {
                    out.push(cbr_line(0, n - 1, None, r, len, true, base_idx + out.len()));
                }
                for node in 0..n {
                    for _ in 0..cross {
                        out.push(cbr_line(
                            node,
                            node,
                            None,
                            r,
                            len,
                            false,
                            base_idx + out.len(),
                        ));
                    }
                }
                out
            }
            GenSpec::FatTree {
                depth,
                fanout,
                rho_bp,
                len,
            } => {
                let paths = crate::topology::fattree_uplink_paths(depth, fanout);
                let r = per_session_rate(rate_bps, rho_bp, fanout.pow(depth as u32 - 1));
                paths
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let (first, last) = (p[0], p[p.len() - 1]);
                        let path = (p.len() > 1).then_some(p);
                        cbr_line(first, last, path, r, len, false, base_idx + i)
                    })
                    .collect()
            }
            GenSpec::Wan {
                nodes,
                flows,
                rho_bp,
                len,
            } => {
                let paths = crate::topology::wan_paths(flows, nodes);
                let mut load = vec![0usize; nodes];
                for p in &paths {
                    for &n in p {
                        load[n] += 1;
                    }
                }
                let m = load.iter().copied().max().unwrap_or(0);
                let r = per_session_rate(rate_bps, rho_bp, m);
                paths
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let (first, last) = (p[0], p[p.len() - 1]);
                        let path = (p.len() > 1).then_some(p);
                        cbr_line(first, last, path, r, len, false, base_idx + i)
                    })
                    .collect()
            }
        }
    }
}

/// A fully parsed scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    pub(crate) nodes: usize,
    pub(crate) link: LinkParams,
    pub(crate) discipline: DisciplineChoice,
    pub(crate) queue: QueueKind,
    pub(crate) backend: EventBackend,
    pub(crate) seed: u64,
    pub(crate) sessions: Vec<SessionLine>,
    /// Unexpanded `generate` stanzas, in file order. Round-trips through
    /// [`Scenario::to_text`]; [`Scenario::expanded`] resolves them.
    pub(crate) generators: Vec<GenSpec>,
    /// Eligibility-regulator backend (`regulator` directive).
    pub(crate) regulator: RegulatorBackend,
    pub(crate) horizon: Duration,
}

/// Parse a duration literal like `13.25ms`, `60s`, `100us`, `500ns`.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit) = s
        .find(|c: char| c.is_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| format!("duration '{s}' is missing a unit"))?;
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad duration value '{num}'"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("duration '{s}' out of range"));
    }
    let secs = match unit {
        "s" => v,
        "ms" => v / 1e3,
        "us" => v / 1e6,
        "ns" => v / 1e9,
        other => return Err(format!("unknown duration unit '{other}'")),
    };
    // lit-lint: allow(raw-time-arithmetic, "scenario files carry durations as decimal unit strings; one rounding at parse time, fail-loud on overflow")
    Ok(Duration::from_secs_f64(secs))
}

/// Render a duration as the shortest exact literal [`parse_duration`]
/// accepts: the coarsest unit the value is a whole multiple of, with a
/// fractional-nanosecond fallback for sub-ns precision.
fn fmt_duration(d: Duration) -> String {
    let ps = d.as_ps();
    if ps.is_multiple_of(1_000_000_000_000) {
        format!("{}s", ps / 1_000_000_000_000)
    } else if ps.is_multiple_of(1_000_000_000) {
        format!("{}ms", ps / 1_000_000_000)
    } else if ps.is_multiple_of(1_000_000) {
        format!("{}us", ps / 1_000_000)
    } else if ps.is_multiple_of(1_000) {
        format!("{}ns", ps / 1_000)
    } else {
        format!("{}.{:03}ns", ps / 1_000, ps % 1_000)
    }
}

/// Run-time overrides for [`Scenario::run_opts`], none of which are part
/// of the scenario text itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Replace the scenario's event-set backend.
    pub backend: Option<EventBackend>,
    /// Replace the default statistics sizing (e.g. to turn on the
    /// delivery log for packet-for-packet comparison).
    pub stats: Option<StatsConfig>,
    /// Conformance-oracle mode; armed only when the discipline is `lit`
    /// with an exact eligible queue.
    pub oracle: OracleMode,
    /// Enable batched arrival dispatch (see
    /// [`NetworkBuilder::batch_arrivals`]); observably identical, and
    /// ignored while a probe or the oracle is installed.
    pub batch: bool,
    /// Shard-worker override (see [`NetworkBuilder::shards`]); `None`
    /// follows the process-global `--shards` flag. Results are identical
    /// for every value; a probe or panic-mode oracle forces scalar.
    pub shards: Option<usize>,
    /// Regulator-backend override; `None` follows the process-global
    /// `--regulator` flag, then the scenario's `regulator` directive.
    pub regulator: Option<RegulatorBackend>,
}

/// Split `key=value` (value may be absent for flags).
fn keyval(tok: &str) -> (&str, Option<&str>) {
    match tok.split_once('=') {
        Some((k, v)) => (k, Some(v)),
        None => (tok, None),
    }
}

/// Parse the inside of `name(...)` into `(name, args)`.
fn call(tok: &str) -> Option<(&str, Vec<(&str, &str)>)> {
    let open = tok.find('(')?;
    let close = tok.rfind(')')?;
    if close < open {
        return None;
    }
    let name = &tok[..open];
    let args = tok[open + 1..close]
        .split(',')
        .filter(|a| !a.is_empty())
        .map(|a| a.split_once('=').unwrap_or((a, "")))
        .collect();
    Some((name, args))
}

/// Parse a discipline name as written after the `discipline` directive.
fn parse_discipline(name: &str) -> Result<DisciplineChoice, String> {
    Ok(match name {
        "lit" | "leave-in-time" => DisciplineChoice::Lit,
        "fcfs" => DisciplineChoice::Fcfs,
        "virtualclock" | "vc" => DisciplineChoice::VirtualClock,
        "wfq" => DisciplineChoice::Wfq,
        "scfq" => DisciplineChoice::Scfq,
        "delay-edd" => DisciplineChoice::DelayEdd,
        "jitter-edd" => DisciplineChoice::JitterEdd,
        other => {
            if let Some(frame) = other.strip_prefix("stop-and-go:frame=") {
                DisciplineChoice::StopAndGo(parse_duration(frame)?)
            } else if let Some(slots) = other.strip_prefix("hrr:slots=") {
                DisciplineChoice::Hrr(
                    slots
                        .parse()
                        .map_err(|_| "hrr: bad slot count".to_string())?,
                )
            } else {
                return Err(format!("unknown discipline '{other}'"));
            }
        }
    })
}

impl Scenario {
    /// Read and parse a scenario file, attaching the path (and line, for
    /// parse failures) to any error so callers can print it verbatim.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Scenario, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Scenario::parse(&text).map_err(|e| format!("{}:{}: {}", path.display(), e.line, e.message))
    }

    /// Parse a scenario from text.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let mut nodes = None;
        let mut link = LinkParams::paper_t1();
        let mut discipline = DisciplineChoice::Lit;
        let mut queue = QueueKind::Exact;
        let mut backend = EventBackend::Heap;
        let mut seed = 0u64;
        let mut sessions = Vec::new();
        let mut generators = Vec::new();
        let mut regulator = RegulatorBackend::PerSession;
        let mut horizon = None;

        let err = |line: usize, message: String| ParseError { line, message };

        // Join continuation lines ending in '\'.
        let mut logical: Vec<(usize, String)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some((_, prev)) = logical.last_mut() {
                if prev.ends_with('\\') {
                    prev.pop();
                    prev.push(' ');
                    prev.push_str(&line);
                    continue;
                }
            }
            logical.push((i + 1, line));
        }

        for (ln, line) in logical {
            let mut toks = line.split_whitespace();
            // Blank and comment-only lines were dropped above, but a
            // continuation backslash can still leave a whitespace-only
            // logical line; skip it rather than unwrap on it.
            let Some(head) = toks.next() else {
                continue;
            };
            match head {
                "nodes" => {
                    let count: usize = toks
                        .next()
                        .ok_or_else(|| err(ln, "nodes: missing count".into()))?
                        .parse()
                        .map_err(|_| err(ln, "nodes: bad count".into()))?;
                    for tok in toks {
                        match keyval(tok) {
                            ("rate", Some(v)) => {
                                link.rate_bps =
                                    v.parse().map_err(|_| err(ln, "nodes: bad rate".into()))?
                            }
                            ("prop", Some(v)) => {
                                link.propagation = parse_duration(v).map_err(|e| err(ln, e))?
                            }
                            ("lmax", Some(v)) => {
                                link.lmax_bits =
                                    v.parse().map_err(|_| err(ln, "nodes: bad lmax".into()))?
                            }
                            (k, _) => return Err(err(ln, format!("nodes: unknown option '{k}'"))),
                        }
                    }
                    nodes = Some(count);
                }
                "discipline" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| err(ln, "discipline: missing name".into()))?;
                    discipline = parse_discipline(name).map_err(|e| err(ln, e))?;
                }
                "backend" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| err(ln, "backend: missing name".into()))?;
                    backend = match name {
                        "heap" => EventBackend::Heap,
                        "calendar" => EventBackend::Calendar,
                        "wheel" => EventBackend::Wheel,
                        other => return Err(err(ln, format!("unknown backend '{other}'"))),
                    };
                }
                "queue" => {
                    let kind = toks
                        .next()
                        .ok_or_else(|| err(ln, "queue: missing kind".into()))?;
                    queue = match keyval(kind) {
                        ("exact", None) => QueueKind::Exact,
                        ("bucket", Some(v)) => QueueKind::Bucketed {
                            bucket: parse_duration(v).map_err(|e| err(ln, e))?,
                        },
                        _ => return Err(err(ln, format!("unknown queue kind '{kind}'"))),
                    };
                }
                "regulator" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| err(ln, "regulator: missing backend".into()))?;
                    regulator = name.parse().map_err(|e: String| err(ln, e))?;
                }
                "generate" => {
                    let spec = toks
                        .next()
                        .ok_or_else(|| err(ln, "generate: missing family".into()))?;
                    generators.push(GenSpec::parse_stanza(spec).map_err(|e| err(ln, e))?);
                }
                "seed" => {
                    seed = toks
                        .next()
                        .ok_or_else(|| err(ln, "seed: missing value".into()))?
                        .parse()
                        .map_err(|_| err(ln, "seed: bad value".into()))?;
                }
                "session" => {
                    let mut first = None;
                    let mut path: Option<Vec<usize>> = None;
                    let mut rate = None;
                    let mut jc = false;
                    let mut d = None;
                    let mut shape = None;
                    let mut source = None;
                    for tok in toks {
                        match keyval(tok) {
                            ("path", Some(v)) => {
                                let p = v
                                    .split(',')
                                    .map(|t| {
                                        t.parse::<usize>()
                                            .map_err(|_| err(ln, "path: bad node list".into()))
                                    })
                                    .collect::<Result<Vec<_>, _>>()?;
                                if p.is_empty() {
                                    return Err(err(ln, "path: empty".into()));
                                }
                                for (i, a) in p.iter().enumerate() {
                                    if p[..i].contains(a) {
                                        return Err(err(ln, "path: repeated node".into()));
                                    }
                                }
                                path = Some(p);
                            }
                            ("route", Some(v)) => {
                                let (a, b) = v
                                    .split_once("..")
                                    .ok_or_else(|| err(ln, "route: want A..B".into()))?;
                                let a: usize =
                                    a.parse().map_err(|_| err(ln, "route: bad start".into()))?;
                                let b: usize =
                                    b.parse().map_err(|_| err(ln, "route: bad end".into()))?;
                                if b < a {
                                    return Err(err(ln, "route: end before start".into()));
                                }
                                first = Some((a, b));
                            }
                            ("rate", Some(v)) => {
                                rate = Some(v.parse().map_err(|_| err(ln, "bad rate".into()))?)
                            }
                            ("jc", None) => jc = true,
                            ("d", Some(v)) => d = Some(parse_duration(v).map_err(|e| err(ln, e))?),
                            ("shape", Some(v)) => {
                                let (r, depth) = v
                                    .split_once(':')
                                    .ok_or_else(|| err(ln, "shape: want rate:bits".into()))?;
                                shape = Some((
                                    r.parse().map_err(|_| err(ln, "shape: bad rate".into()))?,
                                    depth
                                        .parse()
                                        .map_err(|_| err(ln, "shape: bad depth".into()))?,
                                ));
                            }
                            ("source", Some(v)) => {
                                source = Some(Self::parse_source(v).map_err(|e| err(ln, e))?)
                            }
                            (k, _) => {
                                return Err(err(ln, format!("session: unknown option '{k}'")))
                            }
                        }
                    }
                    let (a, b) = match (&path, first) {
                        (Some(_), Some(_)) => {
                            return Err(err(ln, "session: give route or path, not both".into()))
                        }
                        (Some(p), None) => (p[0], p[p.len() - 1]),
                        (None, Some(ab)) => ab,
                        (None, None) => return Err(err(ln, "session: missing route".into())),
                    };
                    sessions.push(SessionLine {
                        first: a,
                        last: b,
                        rate: rate.ok_or_else(|| err(ln, "session: missing rate".into()))?,
                        jc,
                        d,
                        shape,
                        source: source.ok_or_else(|| err(ln, "session: missing source".into()))?,
                        path,
                    });
                }
                "run" => {
                    let v = toks
                        .next()
                        .ok_or_else(|| err(ln, "run: missing duration".into()))?;
                    horizon = Some(parse_duration(v).map_err(|e| err(ln, e))?);
                }
                other => return Err(err(ln, format!("unknown directive '{other}'"))),
            }
        }

        // A `generate` stanza implies its own node count; the `nodes`
        // directive is then optional and only raises the floor.
        let gen_nodes = generators.iter().map(GenSpec::num_nodes).max().unwrap_or(0);
        let nodes = match nodes {
            Some(n) => n.max(gen_nodes),
            None if gen_nodes > 0 => gen_nodes,
            None => return Err(err(0, "missing 'nodes' directive".into())),
        };
        let horizon = horizon.ok_or_else(|| err(0, "missing 'run' directive".into()))?;
        for s in &sessions {
            let hi = s.route_nodes().into_iter().max().unwrap_or(0);
            if hi >= nodes {
                return Err(err(0, format!("route ends at node {hi} of {nodes}")));
            }
        }
        if sessions.is_empty() && generators.is_empty() {
            return Err(err(0, "no sessions defined".into()));
        }
        Ok(Scenario {
            nodes,
            link,
            discipline,
            queue,
            backend,
            seed,
            sessions,
            generators,
            regulator,
            horizon,
        })
    }

    fn parse_source(v: &str) -> Result<SourceSpec, String> {
        let (name, args) = call(v).ok_or_else(|| format!("bad source syntax '{v}'"))?;
        let get = |key: &str| -> Result<&str, String> {
            args.iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("source {name}: missing '{key}'"))
        };
        let len = |key: &str| -> Result<u32, String> {
            get(key)?
                .parse()
                .map_err(|_| format!("source {name}: bad '{key}'"))
        };
        match name {
            "onoff" => Ok(SourceSpec::OnOff {
                on: parse_duration(get("on")?)?,
                off: parse_duration(get("off")?)?,
                t: parse_duration(get("t")?)?,
                len: len("len")?,
            }),
            "poisson" => Ok(SourceSpec::Poisson {
                gap: parse_duration(get("gap")?)?,
                len: len("len")?,
            }),
            "cbr" => Ok(SourceSpec::Cbr {
                gap: parse_duration(get("gap")?)?,
                len: len("len")?,
                offset: args
                    .iter()
                    .find(|(k, _)| *k == "offset")
                    .map(|(_, v)| parse_duration(v))
                    .transpose()?
                    .unwrap_or(Duration::ZERO),
            }),
            "burst" => Ok(SourceSpec::Burst {
                period: parse_duration(get("period")?)?,
                count: len("count")?,
                len: len("len")?,
            }),
            other => Err(format!("unknown source kind '{other}'")),
        }
    }

    /// Build and run the scenario; returns the finished network and the
    /// session ids in definition order. The conformance oracle follows the
    /// process-global mode (the CLI's `--oracle` flag).
    pub fn run(&self) -> (Network, Vec<SessionId>) {
        self.run_opts(&RunOptions {
            oracle: lit_net::oracle::global_mode(),
            ..RunOptions::default()
        })
    }

    /// [`Scenario::run`] with explicit overrides — the differential
    /// fuzzer's entry point. Attaches the process-global observability
    /// probe when `lit_obs::hub` collection is on (the CLI's `--metrics`
    /// / `--trace` flags).
    pub fn run_opts(&self, opts: &RunOptions) -> (Network, Vec<SessionId>) {
        self.run_probed(opts, lit_obs::hub::global_probe())
    }

    /// [`Scenario::run_opts`] with an explicit probe (or none) — tests
    /// install a local [`lit_net::ObsProbe`] here and read it back with
    /// `Network::take_probe`, without touching process-global state.
    pub fn run_probed(
        &self,
        opts: &RunOptions,
        probe: Option<Box<dyn lit_net::Probe>>,
    ) -> (Network, Vec<SessionId>) {
        if !self.generators.is_empty() {
            return self.expanded().run_probed(opts, probe);
        }
        let regulator = opts
            .regulator
            .or_else(lit_net::global_regulator)
            .unwrap_or(self.regulator);
        let mut b = NetworkBuilder::new()
            .seed(self.seed)
            .queue_kind(self.queue)
            .event_backend(opts.backend.unwrap_or(self.backend))
            .batch_arrivals(opts.batch)
            .regulator(regulator)
            .shards(opts.shards.unwrap_or_else(lit_net::shard::global_shards));
        // The oracle's invariants are Leave-in-Time's, checked against an
        // exact deadline queue; other disciplines and the bucketed
        // ablation queue run unchecked.
        let oracle = if self.discipline == DisciplineChoice::Lit && self.queue == QueueKind::Exact {
            opts.oracle
        } else {
            OracleMode::Off
        };
        b = b.oracle(OracleConfig::new(oracle));
        if let Some(p) = probe {
            b = b.probe(p);
        }
        if let Some(stats) = opts.stats {
            b = b.stats(stats);
        }
        let nodes = b.tandem(self.nodes, self.link);
        let mut ids = Vec::new();
        for s in &self.sessions {
            let mut spec = SessionSpec::atm(SessionId(0), s.rate);
            spec.jitter_control = s.jc;
            // The spec's packet-length range must cover what the source
            // emits: L_max enters d_max (eq. 9's holding-time stamp) and
            // β; L_min enters the jitter bound.
            let len = match s.source {
                SourceSpec::OnOff { len, .. }
                | SourceSpec::Poisson { len, .. }
                | SourceSpec::Cbr { len, .. }
                | SourceSpec::Burst { len, .. } => len,
            };
            spec.max_len_bits = len;
            spec.min_len_bits = len;
            if let Some(d) = s.d {
                spec.delay = DelayAssignment::Fixed(d);
            }
            let source: Box<dyn Source> = {
                let inner: Box<dyn Source> = match s.source {
                    SourceSpec::OnOff { on, off, t, len } => {
                        Box::new(OnOffSource::new(OnOffConfig {
                            mean_on: on,
                            mean_off: off,
                            spacing: t,
                            len_bits: len,
                            initial_offset: Duration::ZERO,
                        }))
                    }
                    SourceSpec::Poisson { gap, len } => Box::new(PoissonSource::new(gap, len)),
                    SourceSpec::Cbr { gap, len, offset } => {
                        Box::new(DeterministicSource::new(gap, len).with_offset(offset))
                    }
                    SourceSpec::Burst { period, count, len } => {
                        Box::new(BurstSource::new(period, count, len))
                    }
                };
                match s.shape {
                    Some((rate, depth)) => {
                        Box::new(ShapedSource::new(BoxedSource(inner), rate, depth))
                    }
                    None => inner,
                }
            };
            let route: Vec<_> = s.route_nodes().into_iter().map(|n| nodes[n]).collect();
            ids.push(b.add_session(spec, &route, source));
        }
        type Factory = Box<dyn Fn(&LinkParams) -> Box<dyn lit_net::Discipline>>;
        let factory: Factory = match &self.discipline {
            DisciplineChoice::Lit => Box::new(|l: &LinkParams| {
                Box::new(LitDiscipline::new(*l)) as Box<dyn lit_net::Discipline>
            }),
            DisciplineChoice::Fcfs => Box::new(FcfsDiscipline::factory()),
            DisciplineChoice::VirtualClock => Box::new(VirtualClockDiscipline::factory()),
            DisciplineChoice::Wfq => Box::new(WfqDiscipline::factory()),
            DisciplineChoice::Scfq => Box::new(ScfqDiscipline::factory()),
            DisciplineChoice::StopAndGo(frame) => Box::new(StopAndGoDiscipline::factory(*frame)),
            DisciplineChoice::Hrr(slots) => Box::new(HrrDiscipline::factory(*slots)),
            DisciplineChoice::DelayEdd => Box::new(EddDiscipline::factory(false)),
            DisciplineChoice::JitterEdd => Box::new(EddDiscipline::factory(true)),
        };
        let mut net = b.build(&*factory);
        // The per-session delay/jitter bounds are a *dedicated-regulator*
        // result (ineq. 12/17); under the shared interleaved FIFO they do
        // not apply session-by-session, so only the regime-independent
        // invariants stay armed there.
        if oracle != OracleMode::Off && regulator == RegulatorBackend::PerSession {
            install_oracle_bounds(&mut net);
        }
        net.run_until(Time::ZERO + self.horizon);
        (net, ids)
    }

    /// Vet every session line through per-node procedure-3 admission
    /// (the CLI's `--ac3 exact|fast` flag), one [`Ac3Service`] per node
    /// at the scenario's link rate. Returns one verdict per session in
    /// definition order; a session admits only if every node on its
    /// route accepts it (a mid-route rejection rolls back the hops
    /// already granted, mirroring [`lit_core::ConnectionManager`]).
    ///
    /// The per-hop delay submitted is the session's `d=` option when
    /// present, else the `L/r` default the run itself would use. A
    /// scenario with `generate` stanzas is expanded first, so the
    /// verdicts cover (and index) the *expanded* session list.
    pub fn ac3_vet(&self, backend: Ac3Backend) -> Vec<Result<(), String>> {
        if !self.generators.is_empty() {
            return self.expanded().ac3_vet(backend);
        }
        let mut nodes: Vec<Ac3Service> = (0..self.nodes)
            .map(|_| Ac3Service::new(backend, self.link.rate_bps))
            .collect();
        self.sessions
            .iter()
            .map(|s| {
                let len = match s.source {
                    SourceSpec::OnOff { len, .. }
                    | SourceSpec::Poisson { len, .. }
                    | SourceSpec::Cbr { len, .. }
                    | SourceSpec::Burst { len, .. } => len,
                };
                let d =
                    s.d.unwrap_or_else(|| Duration::from_bits_at_rate(len as u64, s.rate));
                let mut granted: Vec<(usize, Ac3ServiceHandle)> = Vec::new();
                for n in s.route_nodes() {
                    match nodes[n].try_admit(s.rate, len, d) {
                        Ok((h, _)) => granted.push((n, h)),
                        Err(e) => {
                            for (m, h) in granted.drain(..) {
                                nodes[m].release(h);
                            }
                            return Err(format!("node {n}: {e}"));
                        }
                    }
                }
                Ok(())
            })
            .collect()
    }

    /// The same scenario keeping only sessions whose `keep` entry is
    /// true (missing entries keep the session) — used to drop
    /// AC3-rejected sessions before a run.
    pub fn retain_sessions(&self, keep: &[bool]) -> Scenario {
        Scenario {
            sessions: self
                .sessions
                .iter()
                .enumerate()
                .filter(|(i, _)| keep.get(*i).copied().unwrap_or(true))
                .map(|(_, s)| s.clone())
                .collect(),
            ..self.clone()
        }
    }

    /// The same scenario under another discipline (for differential runs).
    pub fn with_discipline(&self, name: &str) -> Result<Scenario, String> {
        Ok(Scenario {
            discipline: parse_discipline(name)?,
            ..self.clone()
        })
    }

    /// The same scenario with a different run horizon (snapshot tests
    /// shorten the committed scenarios to keep golden runs fast).
    pub fn with_horizon(&self, horizon: Duration) -> Scenario {
        Scenario {
            horizon,
            ..self.clone()
        }
    }

    /// Resolve every `generate` stanza into concrete session lines,
    /// appended in stanza order after any hand-written sessions. The
    /// result has no generators and is otherwise identical; expanding a
    /// generator-free scenario is a clone. Phase offsets continue across
    /// the combined list, so no two sources tick in phase.
    pub fn expanded(&self) -> Scenario {
        let mut sc = self.clone();
        for g in &self.generators {
            let base = sc.sessions.len();
            sc.sessions.extend(g.expand(base, self.link.rate_bps));
        }
        sc.generators.clear();
        sc
    }

    /// The same scenario with every generator stanza's offered load
    /// replaced by `rho_bp` basis points (9_500 = ρ 0.95) — the
    /// load-ladder sweep's rung constructor. Hand-written session lines
    /// are untouched.
    pub fn with_rho(&self, rho_bp: u32) -> Scenario {
        let mut sc = self.clone();
        for g in &mut sc.generators {
            let (GenSpec::Tandem { rho_bp: r, .. }
            | GenSpec::FatTree { rho_bp: r, .. }
            | GenSpec::Wan { rho_bp: r, .. }) = g;
            *r = rho_bp;
        }
        sc
    }

    /// Serialize back to scenario text. `parse(to_text(sc)) == sc` for
    /// every scenario whose durations are whole nanoseconds (all of the
    /// fuzzer's, and every file under `scenarios/`).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "nodes {} rate={} prop={} lmax={}",
            self.nodes,
            self.link.rate_bps,
            fmt_duration(self.link.propagation),
            self.link.lmax_bits,
        );
        let disc = match &self.discipline {
            DisciplineChoice::Lit => "lit".to_string(),
            DisciplineChoice::Fcfs => "fcfs".to_string(),
            DisciplineChoice::VirtualClock => "virtualclock".to_string(),
            DisciplineChoice::Wfq => "wfq".to_string(),
            DisciplineChoice::Scfq => "scfq".to_string(),
            DisciplineChoice::StopAndGo(f) => format!("stop-and-go:frame={}", fmt_duration(*f)),
            DisciplineChoice::Hrr(slots) => format!("hrr:slots={slots}"),
            DisciplineChoice::DelayEdd => "delay-edd".to_string(),
            DisciplineChoice::JitterEdd => "jitter-edd".to_string(),
        };
        let _ = writeln!(out, "discipline {disc}");
        if let QueueKind::Bucketed { bucket } = self.queue {
            let _ = writeln!(out, "queue bucket={}", fmt_duration(bucket));
        }
        if self.backend == EventBackend::Calendar {
            let _ = writeln!(out, "backend calendar");
        } else if self.backend == EventBackend::Wheel {
            let _ = writeln!(out, "backend wheel");
        }
        if self.regulator == RegulatorBackend::Interleaved {
            let _ = writeln!(out, "regulator interleaved");
        }
        let _ = writeln!(out, "seed {}", self.seed);
        for g in &self.generators {
            let _ = writeln!(out, "generate {}", g.to_text());
        }
        for s in &self.sessions {
            match &s.path {
                Some(p) => {
                    let list = p
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(",");
                    let _ = write!(out, "session path={list} rate={}", s.rate);
                }
                None => {
                    let _ = write!(out, "session route={}..{} rate={}", s.first, s.last, s.rate);
                }
            }
            if s.jc {
                let _ = write!(out, " jc");
            }
            if let Some(d) = s.d {
                let _ = write!(out, " d={}", fmt_duration(d));
            }
            if let Some((rate, depth)) = s.shape {
                let _ = write!(out, " shape={rate}:{depth}");
            }
            let src = match &s.source {
                SourceSpec::OnOff { on, off, t, len } => format!(
                    "onoff(on={},off={},t={},len={len})",
                    fmt_duration(*on),
                    fmt_duration(*off),
                    fmt_duration(*t),
                ),
                SourceSpec::Poisson { gap, len } => {
                    format!("poisson(gap={},len={len})", fmt_duration(*gap))
                }
                SourceSpec::Cbr { gap, len, offset } => {
                    if *offset == Duration::ZERO {
                        format!("cbr(gap={},len={len})", fmt_duration(*gap))
                    } else {
                        format!(
                            "cbr(gap={},len={len},offset={})",
                            fmt_duration(*gap),
                            fmt_duration(*offset),
                        )
                    }
                }
                SourceSpec::Burst { period, count, len } => {
                    format!(
                        "burst(period={},count={count},len={len})",
                        fmt_duration(*period)
                    )
                }
            };
            let _ = writeln!(out, " source={src}");
        }
        let _ = writeln!(out, "run {}", fmt_duration(self.horizon));
        out
    }

    /// Run and render per-session results. The last column is the
    /// Leave-in-Time delay bound *assuming a one-cell token bucket* — it
    /// only applies to sessions whose traffic actually conforms (shaped
    /// or CBR/ON-OFF at the reserved rate), and is omitted for other
    /// disciplines.
    pub fn run_report(&self) -> Table {
        let sc = self.expanded();
        let (net, ids) = sc.run();
        let bounded = matches!(
            sc.discipline,
            DisciplineChoice::Lit | DisciplineChoice::VirtualClock
        );
        let mut t = Table::new(
            format!("scenario — {} nodes, horizon {}", sc.nodes, sc.horizon),
            &[
                "session",
                "route",
                "delivered",
                "max_delay_ms",
                "mean_delay_ms",
                "jitter_ms",
                "bound_if_1cell_tb_ms",
            ],
        );
        for (i, id) in ids.iter().enumerate() {
            let st = net.session_stats(*id);
            let bound = if bounded {
                let (pb, dref) = {
                    let pb = PathBounds::for_session(&net, *id);
                    let dref = Duration::from_bits_at_rate(
                        net.session_spec(*id).max_len_bits as u64,
                        net.session_spec(*id).rate_bps,
                    );
                    (pb, dref)
                };
                ms(pb.delay_bound(dref))
            } else {
                "-".to_string()
            };
            t.push(vec![
                i.to_string(),
                sc.sessions[i].route_desc(),
                st.delivered.to_string(),
                st.max_delay().map(ms).unwrap_or_else(|| "-".into()),
                st.mean_delay().map(ms).unwrap_or_else(|| "-".into()),
                st.jitter().map(ms).unwrap_or_else(|| "-".into()),
                bound,
            ]);
        }
        t
    }
}

/// Adapter: a boxed source as a `Source` (for shaping a dynamic inner).
struct BoxedSource(Box<dyn Source>);

impl Source for BoxedSource {
    fn next_emission(&mut self, rng: &mut lit_sim::SimRng) -> Option<lit_traffic::Emission> {
        self.0.next_emission(rng)
    }
    fn mean_rate_bps(&self) -> Option<f64> {
        self.0.mean_rate_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG8ISH: &str = r#"
# miniature figure 8
nodes 5 rate=1536000 prop=1ms lmax=424
discipline lit
seed 7
session route=0..4 rate=32000 source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..4 rate=32000 jc source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..0 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=1..1 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=2..2 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=3..3 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=4..4 rate=1472000 source=poisson(gap=0.28804ms,len=424)
run 10s
"#;

    #[test]
    fn parses_and_runs_fig8ish() {
        let sc = Scenario::parse(FIG8ISH).unwrap();
        assert_eq!(sc.nodes, 5);
        assert_eq!(sc.sessions.len(), 7);
        let (net, ids) = sc.run();
        assert!(net.session_stats(ids[0]).delivered > 100);
        // The jc session's jitter is smaller.
        let j0 = net.session_stats(ids[0]).jitter().unwrap();
        let j1 = net.session_stats(ids[1]).jitter().unwrap();
        assert!(j1 < j0, "jc {j1} !< plain {j0}");
        let report = sc.run_report();
        assert_eq!(report.len(), 7);
    }

    #[test]
    fn duration_literals() {
        assert_eq!(
            parse_duration("13.25ms").unwrap(),
            Duration::from_us(13_250)
        );
        assert_eq!(parse_duration("60s").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("100us").unwrap(), Duration::from_us(100));
        assert_eq!(parse_duration("500ns").unwrap(), Duration::from_ns(500));
        assert!(parse_duration("5").is_err());
        assert!(parse_duration("5parsecs").is_err());
        assert!(parse_duration("-1ms").is_err());
    }

    #[test]
    fn continuation_lines() {
        let text =
            "nodes 2\nsession route=0..1 rate=1000 \\\n  source=poisson(gap=1ms,len=424)\nrun 1s\n";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.sessions.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = Scenario::parse("nodes 2\nbogus directive\nrun 1s").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn route_validation() {
        let e = Scenario::parse(
            "nodes 2\nsession route=0..5 rate=1 source=poisson(gap=1ms,len=1)\nrun 1s",
        )
        .unwrap_err();
        assert!(e.message.contains("route ends"));
        let e = Scenario::parse(
            "nodes 2\nsession route=1..0 rate=1 source=poisson(gap=1ms,len=1)\nrun 1s",
        )
        .unwrap_err();
        assert!(e.message.contains("end before start"));
    }

    #[test]
    fn missing_directives() {
        assert!(Scenario::parse("run 1s").is_err());
        assert!(Scenario::parse("nodes 1").is_err());
        let e = Scenario::parse("nodes 1\nrun 1s").unwrap_err();
        assert!(e.message.contains("no sessions"));
    }

    #[test]
    fn disciplines_and_queue_parse() {
        for d in [
            "lit",
            "fcfs",
            "virtualclock",
            "wfq",
            "scfq",
            "delay-edd",
            "jitter-edd",
            "stop-and-go:frame=10ms",
            "hrr:slots=48",
        ] {
            let text = format!(
                "nodes 1\ndiscipline {d}\nqueue bucket=1ms\nsession route=0..0 rate=1000 source=cbr(gap=10ms,len=424)\nrun 1s"
            );
            let sc = Scenario::parse(&text).unwrap_or_else(|e| panic!("{d}: {e}"));
            let (net, ids) = sc.run();
            assert!(net.session_stats(ids[0]).delivered > 0, "{d}");
        }
    }

    #[test]
    fn shaped_and_burst_sources() {
        let text = "nodes 1\nsession route=0..0 rate=32000 shape=32000:848 \
                    source=burst(period=100ms,count=5,len=424)\nrun 5s";
        let sc = Scenario::parse(text).unwrap();
        let (net, ids) = sc.run();
        assert!(net.session_stats(ids[0]).delivered >= 200);
    }

    #[test]
    fn to_text_round_trips_every_feature() {
        // One scenario exercising every serializable field: non-default
        // link, bucketed queue, calendar backend, jc, fixed d, shaping,
        // all four source kinds, fractional-unit durations.
        let text = "nodes 3 rate=3072000 prop=0.5ms lmax=848\n\
                    discipline lit\n\
                    queue bucket=1ms\n\
                    backend calendar\n\
                    seed 99\n\
                    session route=0..2 rate=32000 jc d=13.25ms source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)\n\
                    session route=1..1 rate=64000 shape=64000:1696 source=poisson(gap=0.28804ms,len=848)\n\
                    session route=0..1 rate=32000 source=cbr(gap=13.25ms,len=424,offset=1.5ms)\n\
                    session route=2..2 rate=32000 source=burst(period=50ms,count=100,len=424)\n\
                    run 2.5s\n";
        let sc = Scenario::parse(text).unwrap();
        let serialized = sc.to_text();
        let back = Scenario::parse(&serialized).unwrap_or_else(|e| panic!("{e}\n{serialized}"));
        assert_eq!(back, sc, "serialized:\n{serialized}");
        // Serialization is a fixpoint: text → Scenario → text → Scenario
        // converges after one round.
        assert_eq!(back.to_text(), serialized);
    }

    #[test]
    fn duration_formatting_picks_shortest_exact_unit() {
        assert_eq!(fmt_duration(Duration::from_secs(60)), "60s");
        assert_eq!(fmt_duration(Duration::from_ms(13)), "13ms");
        assert_eq!(fmt_duration(Duration::from_us(13_250)), "13250us");
        assert_eq!(fmt_duration(Duration::from_ns(500)), "500ns");
        assert_eq!(fmt_duration(Duration::from_ps(1_500)), "1.500ns");
        for d in [
            Duration::from_us(13_250),
            Duration::from_ps(287_999_999),
            Duration::from_ns(1),
        ] {
            assert_eq!(parse_duration(&fmt_duration(d)).unwrap(), d, "{d}");
        }
    }

    #[test]
    fn malformed_inputs_error_with_context() {
        // (input, expected substring of the message)
        for (text, want) in [
            ("nodes 2 bogus=1\nrun 1s", "unknown option 'bogus'"),
            ("nodes x\nrun 1s", "bad count"),
            ("nodes 2\ndiscipline tardis\nrun 1s", "unknown discipline"),
            ("nodes 2\ndiscipline hrr:slots=zero\nrun 1s", "bad slot count"),
            ("nodes 2\nqueue fifo\nrun 1s", "unknown queue kind"),
            ("nodes 2\nbackend abacus\nrun 1s", "unknown backend"),
            ("nodes 2\nseed minus-one\nrun 1s", "bad value"),
            ("nodes 2\nrun 1parsec", "unknown duration unit"),
            ("nodes 2\nrun -1s", "out of range"),
            (
                "nodes 2\nsession rate=1 source=poisson(gap=1ms,len=1)\nrun 1s",
                "missing route",
            ),
            (
                "nodes 2\nsession route=0..1 source=poisson(gap=1ms,len=1)\nrun 1s",
                "missing rate",
            ),
            ("nodes 2\nsession route=0..1 rate=1\nrun 1s", "missing source"),
            (
                "nodes 2\nsession route=0..1 rate=1 source=chaos(x=1)\nrun 1s",
                "unknown source kind",
            ),
            (
                "nodes 2\nsession route=0..1 rate=1 source=poisson(len=1)\nrun 1s",
                "missing 'gap'",
            ),
            (
                "nodes 2\nsession route=0..1 rate=1 source=poisson\nrun 1s",
                "bad source syntax",
            ),
            (
                "nodes 2\nsession route=0..1 rate=1 shape=32000 source=poisson(gap=1ms,len=1)\nrun 1s",
                "want rate:bits",
            ),
        ] {
            let e = Scenario::parse(text).unwrap_err();
            assert!(
                e.message.contains(want),
                "for {text:?}: got {:?}, want substring {want:?}",
                e.message
            );
        }
    }

    const FIG8_CROSS_SCN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/fig8_cross.scn"
    ));
    const MISBEHAVER_SCN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/misbehaver.scn"
    ));

    #[test]
    fn golden_fig8_cross_scenario() {
        let sc = Scenario::parse(FIG8_CROSS_SCN).unwrap();
        assert_eq!(sc.nodes, 5);
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.discipline, DisciplineChoice::Lit);
        assert_eq!(sc.horizon, Duration::from_secs(60));
        assert_eq!(sc.sessions.len(), 7);
        assert!(sc.sessions[1].jc && !sc.sessions[0].jc);
        assert_eq!((sc.sessions[0].first, sc.sessions[0].last), (0, 4));
        match sc.sessions[2].source {
            SourceSpec::Poisson { gap, len } => {
                assert_eq!(gap, Duration::from_ns(288_040));
                assert_eq!(len, 424);
            }
            ref other => panic!("session 2: want poisson, got {other:?}"),
        }
        // Round-trips exactly (whole-ns durations throughout).
        assert_eq!(Scenario::parse(&sc.to_text()).unwrap(), sc);
    }

    const GEN_TANDEM_SCN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/gen_tandem_ladder.scn"
    ));
    const GEN_FATTREE_SCN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/gen_fattree.scn"
    ));
    const GEN_WAN_SCN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/gen_wan.scn"
    ));
    const OVERLOAD_SCN: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/overload_rho120.scn"
    ));

    #[test]
    fn golden_generator_scenarios_round_trip() {
        // Every committed generator fixture must survive text → Scenario
        // → text → Scenario unchanged, keep its stanza unexpanded, and
        // expand to the documented population.
        let tandem = Scenario::parse(GEN_TANDEM_SCN).unwrap();
        assert_eq!(tandem.nodes, 8);
        assert_eq!(tandem.generators.len(), 1);
        assert_eq!(tandem.regulator, RegulatorBackend::PerSession);
        assert_eq!(Scenario::parse(&tandem.to_text()).unwrap(), tandem);
        assert_eq!(tandem.expanded().sessions.len(), 4 + 8 * 4);

        let fattree = Scenario::parse(GEN_FATTREE_SCN).unwrap();
        assert_eq!(fattree.nodes, 12); // implied by the stanza
        assert_eq!(fattree.regulator, RegulatorBackend::Interleaved);
        assert_eq!(Scenario::parse(&fattree.to_text()).unwrap(), fattree);
        assert_eq!(fattree.expanded().sessions.len(), 9);

        let wan = Scenario::parse(GEN_WAN_SCN).unwrap();
        assert_eq!(wan.nodes, 12);
        assert_eq!(Scenario::parse(&wan.to_text()).unwrap(), wan);
        assert_eq!(wan.expanded().sessions.len(), 32);

        let overload = Scenario::parse(OVERLOAD_SCN).unwrap();
        assert_eq!(Scenario::parse(&overload.to_text()).unwrap(), overload);
        match overload.generators[0] {
            GenSpec::Tandem { rho_bp, .. } => assert_eq!(rho_bp, 12_000),
            ref other => panic!("want tandem, got {other:?}"),
        }
    }

    #[test]
    fn golden_overload_fixture_trips_the_oracle() {
        // Acceptance fixture: rho > 1 must demonstrably violate the
        // bounds. A shortened horizon keeps the test quick; overload
        // shows up within the first second.
        let sc = Scenario::parse(OVERLOAD_SCN)
            .unwrap()
            .with_horizon(Duration::from_secs(2));
        let (mut net, _ids) = sc.run_opts(&RunOptions {
            oracle: OracleMode::Count,
            ..RunOptions::default()
        });
        net.oracle_drain_check();
        assert!(
            net.oracle_violations() > 0,
            "rho=1.2 stayed clean: {:?}",
            net.oracle_totals()
        );
    }

    #[test]
    fn golden_misbehaver_scenario() {
        let sc = Scenario::parse(MISBEHAVER_SCN).unwrap();
        assert_eq!(sc.nodes, 1);
        assert_eq!(sc.seed, 3);
        assert_eq!(sc.horizon, Duration::from_secs(30));
        assert_eq!(sc.sessions.len(), 2);
        match sc.sessions[1].source {
            SourceSpec::Burst { period, count, len } => {
                assert_eq!(period, Duration::from_ms(50));
                assert_eq!(count, 100);
                assert_eq!(len, 424);
            }
            ref other => panic!("session 1: want burst, got {other:?}"),
        }
        assert_eq!(Scenario::parse(&sc.to_text()).unwrap(), sc);
    }

    #[test]
    fn ac3_vet_admits_feasible_and_drops_overload() {
        // Two modest sessions fit node 0 of a T1; the third asks for a
        // per-hop d below its L/C floor and must be rejected by ineq. 19
        // — identically under both backends.
        let text = "nodes 2 rate=1536000 prop=1ms lmax=424\n\
                    session route=0..1 rate=32000 d=13.25ms source=cbr(gap=13.25ms,len=424)\n\
                    session route=0..1 rate=32000 d=13.25ms source=cbr(gap=13.25ms,len=424)\n\
                    session route=0..0 rate=64000 d=0.1ms source=cbr(gap=6.625ms,len=424)\n\
                    run 1s";
        let sc = Scenario::parse(text).unwrap();
        for backend in [Ac3Backend::Exact, Ac3Backend::Fast] {
            let verdicts = sc.ac3_vet(backend);
            assert_eq!(verdicts.len(), 3);
            assert!(verdicts[0].is_ok() && verdicts[1].is_ok(), "{backend:?}");
            let err = verdicts[2].as_ref().unwrap_err();
            assert!(err.starts_with("node 0:"), "{backend:?}: {err}");
        }
        // Dropping the rejected line leaves a runnable scenario.
        let kept = sc.retain_sessions(&[true, true, false]);
        assert_eq!(kept.sessions.len(), 2);
        let (net, ids) = kept.run();
        assert!(net.session_stats(ids[0]).delivered > 0);
    }

    #[test]
    fn ac3_vet_rolls_back_mid_route_rejection() {
        // Session 0 loads node 1 only; session 1 (route 0..1) clears
        // node 0 but is refused at node 1, and its node-0 grant must be
        // released so session 2 can still take node 0's full rate.
        let text = "nodes 2 rate=1536000 prop=1ms lmax=424\n\
                    session route=1..1 rate=1300000 d=1ms source=cbr(gap=1ms,len=424)\n\
                    session route=0..1 rate=400000 d=1ms source=cbr(gap=1ms,len=424)\n\
                    session route=0..0 rate=1536000 d=1ms source=cbr(gap=1ms,len=424)\n\
                    run 1s";
        let sc = Scenario::parse(text).unwrap();
        for backend in [Ac3Backend::Exact, Ac3Backend::Fast] {
            let verdicts = sc.ac3_vet(backend);
            assert!(verdicts[0].is_ok(), "{backend:?}");
            let err = verdicts[1].as_ref().unwrap_err();
            assert!(err.starts_with("node 1:"), "{backend:?}: {err}");
            assert!(
                verdicts[2].is_ok(),
                "{backend:?}: node 0 leaked the rolled-back grant: {:?}",
                verdicts[2]
            );
        }
    }

    #[test]
    fn generator_stanzas_round_trip_and_expand() {
        let text = "nodes 8 rate=1536000 prop=1ms lmax=424\n\
                    regulator interleaved\n\
                    generate tandem(n=8,rho=0.95,through=4,cross=4,len=424)\n\
                    run 5s";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.regulator, RegulatorBackend::Interleaved);
        assert_eq!(sc.generators.len(), 1);
        assert!(sc.sessions.is_empty());
        let serialized = sc.to_text();
        let back = Scenario::parse(&serialized).unwrap_or_else(|e| panic!("{e}\n{serialized}"));
        assert_eq!(back, sc, "serialized:\n{serialized}");
        assert_eq!(back.to_text(), serialized);
        let ex = sc.expanded();
        assert!(ex.generators.is_empty());
        assert_eq!(ex.sessions.len(), 4 + 8 * 4);
        // Through sessions span the line under jitter control; every
        // reservation is ρ·C split over the link's through+cross share.
        assert!(ex.sessions[0].jc);
        assert_eq!((ex.sessions[0].first, ex.sessions[0].last), (0, 7));
        assert_eq!(ex.sessions[0].rate, 1_536_000 * 9_500 / (10_000 * 8));
        // CBR gap rounds up: emitted rate never exceeds the reservation.
        for s in &ex.sessions {
            match s.source {
                SourceSpec::Cbr { gap, len, .. } => {
                    assert!(gap.as_ps() as u128 * s.rate as u128 >= len as u128 * 1_000_000_000_000)
                }
                ref other => panic!("want cbr, got {other:?}"),
            }
        }
        // Phase offsets are pairwise distinct.
        let mut offsets: Vec<_> = ex
            .sessions
            .iter()
            .map(|s| match s.source {
                SourceSpec::Cbr { offset, .. } => offset,
                ref other => panic!("want cbr, got {other:?}"),
            })
            .collect();
        offsets.sort();
        offsets.dedup();
        assert_eq!(offsets.len(), ex.sessions.len());
    }

    #[test]
    fn fattree_generator_implies_nodes_and_routes_leafward() {
        // No `nodes` directive: the stanza implies 3 + 9 = 12 uplinks.
        let text = "generate fattree(depth=2,fanout=3,rho=0.9)\nrun 1s";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.nodes, 12);
        assert_eq!(Scenario::parse(&sc.to_text()).unwrap(), sc);
        let ex = sc.expanded();
        assert_eq!(ex.sessions.len(), 9); // one flow per leaf
        for s in &ex.sessions {
            // Each flow descends from its leaf uplink to a level-1 uplink.
            let p = s.path.as_ref().unwrap();
            assert_eq!(p.len(), 2);
            assert!(p[0] >= 3 && p[1] < 3, "{p:?}");
            // The level-1 bottleneck carries fanout^(depth-1) = 3 flows.
            assert_eq!(s.rate, 1_536_000 * 9_000 / (10_000 * 3));
        }
    }

    #[test]
    fn wan_generator_is_deterministic_and_normalized() {
        let text = "generate wan(nodes=10,flows=16,rho=0.8)\nrun 1s";
        let a = Scenario::parse(text).unwrap().expanded();
        let b = Scenario::parse(text).unwrap().expanded();
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.sessions.len(), 16);
        let mut load = [0u64; 10];
        for s in &a.sessions {
            let p = s.route_nodes();
            // Strictly increasing node ids — forward, acyclic paths.
            assert!(p.windows(2).all(|w| w[0] < w[1]), "{p:?}");
            assert!(*p.iter().max().unwrap() < 10);
            for n in p {
                load[n] += s.rate;
            }
        }
        // The most-loaded link's reservations total at most ρ·C.
        assert!(*load.iter().max().unwrap() <= 1_536_000 * 8_000 / 10_000);
    }

    #[test]
    fn path_sessions_parse_run_and_round_trip() {
        let text = "nodes 4\nsession path=0,2,3 rate=32000 source=cbr(gap=13.25ms,len=424)\nrun 1s";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.sessions[0].route_nodes(), vec![0, 2, 3]);
        assert_eq!(sc.sessions[0].route_desc(), "0-2-3");
        let (net, ids) = sc.run();
        assert!(net.session_stats(ids[0]).delivered > 0);
        assert_eq!(Scenario::parse(&sc.to_text()).unwrap(), sc);
        for (bad, want) in [
            (
                "nodes 4\nsession route=0..1 path=0,1 rate=1 source=cbr(gap=1ms,len=1)\nrun 1s",
                "route or path, not both",
            ),
            (
                "nodes 4\nsession path=0,1,0 rate=1 source=cbr(gap=1ms,len=1)\nrun 1s",
                "repeated node",
            ),
            (
                "nodes 2\nsession path=0,5 rate=1 source=cbr(gap=1ms,len=1)\nrun 1s",
                "route ends",
            ),
        ] {
            let e = Scenario::parse(bad).unwrap_err();
            assert!(e.message.contains(want), "{bad:?}: {}", e.message);
        }
    }

    #[test]
    fn regulator_directive_selects_backend_and_runs_clean() {
        let text = "nodes 3\nregulator interleaved\n\
                    session route=0..2 rate=32000 jc source=cbr(gap=13.25ms,len=424)\n\
                    session route=1..1 rate=64000 source=cbr(gap=6.625ms,len=424)\n\
                    run 2s";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.regulator, RegulatorBackend::Interleaved);
        assert_eq!(Scenario::parse(&sc.to_text()).unwrap(), sc);
        let (mut net, ids) = sc.run_opts(&RunOptions {
            oracle: OracleMode::Count,
            ..RunOptions::default()
        });
        net.oracle_drain_check();
        assert!(net.session_stats(ids[0]).delivered > 100);
        assert_eq!(net.oracle_violations(), 0, "{:?}", net.oracle_totals());
        assert!(Scenario::parse("nodes 1\nregulator sometimes\nrun 1s").is_err());
    }

    #[test]
    fn generator_stanzas_reject_malformed_input() {
        for (text, want) in [
            ("generate tandem(rho=0.9)\nrun 1s", "missing 'n'"),
            ("generate tandem(n=3)\nrun 1s", "missing 'rho'"),
            ("generate tandem(n=3,rho=7)\nrun 1s", "out of range"),
            ("generate tandem(n=0,rho=0.9)\nrun 1s", "n out of range"),
            (
                "generate tandem(n=3,rho=0.9,depth=2)\nrun 1s",
                "unknown option",
            ),
            (
                "generate fattree(depth=9,fanout=2,rho=0.9)\nrun 1s",
                "depth in [1, 6]",
            ),
            (
                "generate wan(nodes=0,flows=4,rho=0.9)\nrun 1s",
                "out of range",
            ),
            (
                "generate mesh(n=3,rho=0.9)\nrun 1s",
                "unknown generator family",
            ),
            ("generate tandem\nrun 1s", "bad generator syntax"),
        ] {
            let e = Scenario::parse(text).unwrap_err();
            assert!(
                e.message.contains(want),
                "for {text:?}: got {:?}, want substring {want:?}",
                e.message
            );
        }
    }

    #[test]
    fn with_rho_rewrites_every_stanza() {
        let sc = Scenario::parse(
            "generate tandem(n=4,rho=0.5)\ngenerate wan(nodes=6,flows=4,rho=0.5)\nrun 1s",
        )
        .unwrap();
        let hot = sc.with_rho(12_000);
        for g in &hot.generators {
            let (GenSpec::Tandem { rho_bp, .. }
            | GenSpec::FatTree { rho_bp, .. }
            | GenSpec::Wan { rho_bp, .. }) = g;
            assert_eq!(*rho_bp, 12_000);
        }
        // Overload over-reserves: per-session rates exceed the fair C/m
        // share, so the bottleneck's reservations total 1.2·C.
        let ex = hot.expanded();
        let fair = ex.sessions[0].rate;
        assert!(fair > sc.expanded().sessions[0].rate);
    }

    #[test]
    fn rho_literals_round_trip() {
        for (s, bp) in [
            ("0.95", 9_500),
            ("1", 10_000),
            ("1.2", 12_000),
            ("0.5", 5_000),
        ] {
            assert_eq!(parse_rho(s).unwrap(), bp);
            assert_eq!(parse_rho(&fmt_rho(bp)).unwrap(), bp);
        }
        assert!(parse_rho("0").is_err());
        assert!(parse_rho("2.5").is_err());
        assert!(parse_rho("nan").is_err());
    }

    #[test]
    fn with_discipline_swaps_only_the_discipline() {
        let sc = Scenario::parse(MISBEHAVER_SCN).unwrap();
        let vc = sc.with_discipline("virtualclock").unwrap();
        assert_eq!(vc.discipline, DisciplineChoice::VirtualClock);
        assert_eq!(vc.sessions, sc.sessions);
        assert!(sc.with_discipline("tardis").is_err());
    }
}
