//! A small text format for describing and running experiments without
//! recompiling — `lit-repro scenario <file>`.
//!
//! ```text
//! # comment                      (blank lines and #-comments ignored)
//! nodes 5 rate=1536000 prop=1ms lmax=424
//! discipline lit                 # lit | fcfs | virtualclock | wfq |
//!                                # scfq | stop-and-go:frame=10ms |
//!                                # hrr:slots=48 | delay-edd | jitter-edd
//! queue bucket=1ms               # exact (default) | bucket=<duration>
//! seed 42
//! session route=0..4 rate=32000 jc d=2.77ms \
//!         source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
//! session route=1..1 rate=1472000 source=poisson(gap=0.28804ms,len=424)
//! session route=0..2 rate=64000 shape=64000:1696 \
//!         source=burst(period=50ms,count=10,len=424)
//! run 60s
//! ```
//!
//! Durations accept `s`, `ms`, `us`, `ns` suffixes with decimals.
//! Session options: `jc` (delay-jitter control), `d=<duration>` (fixed
//! per-hop delay; default is `L/r`), `shape=<rate>:<bits>` (pass the
//! source through a token-bucket shaper). Sources: `onoff`, `poisson`,
//! `cbr(gap,len[,offset])`, `burst(period,count,len)`.

use crate::report::{ms, Table};
use lit_baselines::{
    EddDiscipline, FcfsDiscipline, HrrDiscipline, ScfqDiscipline, StopAndGoDiscipline,
    VirtualClockDiscipline, WfqDiscipline,
};
use lit_core::{LitDiscipline, PathBounds};
use lit_net::{
    DelayAssignment, LinkParams, Network, NetworkBuilder, QueueKind, SessionId, SessionSpec,
};
use lit_sim::{Duration, Time};
use lit_traffic::{
    BurstSource, DeterministicSource, OnOffConfig, OnOffSource, PoissonSource, ShapedSource, Source,
};

/// A parse failure, with the offending 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Which discipline the scenario runs under.
#[derive(Clone, Debug, PartialEq)]
enum DisciplineChoice {
    Lit,
    Fcfs,
    VirtualClock,
    Wfq,
    Scfq,
    StopAndGo(Duration),
    Hrr(u32),
    DelayEdd,
    JitterEdd,
}

/// One session line.
#[derive(Clone, Debug)]
struct SessionLine {
    first: usize,
    last: usize,
    rate: u64,
    jc: bool,
    d: Option<Duration>,
    shape: Option<(u64, u64)>,
    source: SourceSpec,
}

/// A parsed source description.
#[derive(Clone, Debug)]
enum SourceSpec {
    OnOff {
        on: Duration,
        off: Duration,
        t: Duration,
        len: u32,
    },
    Poisson {
        gap: Duration,
        len: u32,
    },
    Cbr {
        gap: Duration,
        len: u32,
        offset: Duration,
    },
    Burst {
        period: Duration,
        count: u32,
        len: u32,
    },
}

/// A fully parsed scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    nodes: usize,
    link: LinkParams,
    discipline: DisciplineChoice,
    queue: QueueKind,
    seed: u64,
    sessions: Vec<SessionLine>,
    horizon: Duration,
}

/// Parse a duration literal like `13.25ms`, `60s`, `100us`, `500ns`.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit) = s
        .find(|c: char| c.is_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| format!("duration '{s}' is missing a unit"))?;
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad duration value '{num}'"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("duration '{s}' out of range"));
    }
    let secs = match unit {
        "s" => v,
        "ms" => v / 1e3,
        "us" => v / 1e6,
        "ns" => v / 1e9,
        other => return Err(format!("unknown duration unit '{other}'")),
    };
    Ok(Duration::from_secs_f64(secs))
}

/// Split `key=value` (value may be absent for flags).
fn keyval(tok: &str) -> (&str, Option<&str>) {
    match tok.split_once('=') {
        Some((k, v)) => (k, Some(v)),
        None => (tok, None),
    }
}

/// Parse the inside of `name(...)` into `(name, args)`.
fn call(tok: &str) -> Option<(&str, Vec<(&str, &str)>)> {
    let open = tok.find('(')?;
    let close = tok.rfind(')')?;
    if close < open {
        return None;
    }
    let name = &tok[..open];
    let args = tok[open + 1..close]
        .split(',')
        .filter(|a| !a.is_empty())
        .map(|a| a.split_once('=').unwrap_or((a, "")))
        .collect();
    Some((name, args))
}

impl Scenario {
    /// Parse a scenario from text.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let mut nodes = None;
        let mut link = LinkParams::paper_t1();
        let mut discipline = DisciplineChoice::Lit;
        let mut queue = QueueKind::Exact;
        let mut seed = 0u64;
        let mut sessions = Vec::new();
        let mut horizon = None;

        let err = |line: usize, message: String| ParseError { line, message };

        // Join continuation lines ending in '\'.
        let mut logical: Vec<(usize, String)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some((_, prev)) = logical.last_mut() {
                if prev.ends_with('\\') {
                    prev.pop();
                    prev.push(' ');
                    prev.push_str(&line);
                    continue;
                }
            }
            logical.push((i + 1, line));
        }

        for (ln, line) in logical {
            let mut toks = line.split_whitespace();
            let head = toks.next().unwrap();
            match head {
                "nodes" => {
                    let count: usize = toks
                        .next()
                        .ok_or_else(|| err(ln, "nodes: missing count".into()))?
                        .parse()
                        .map_err(|_| err(ln, "nodes: bad count".into()))?;
                    for tok in toks {
                        match keyval(tok) {
                            ("rate", Some(v)) => {
                                link.rate_bps =
                                    v.parse().map_err(|_| err(ln, "nodes: bad rate".into()))?
                            }
                            ("prop", Some(v)) => {
                                link.propagation = parse_duration(v).map_err(|e| err(ln, e))?
                            }
                            ("lmax", Some(v)) => {
                                link.lmax_bits =
                                    v.parse().map_err(|_| err(ln, "nodes: bad lmax".into()))?
                            }
                            (k, _) => return Err(err(ln, format!("nodes: unknown option '{k}'"))),
                        }
                    }
                    nodes = Some(count);
                }
                "discipline" => {
                    let name = toks
                        .next()
                        .ok_or_else(|| err(ln, "discipline: missing name".into()))?;
                    discipline = match name {
                        "lit" | "leave-in-time" => DisciplineChoice::Lit,
                        "fcfs" => DisciplineChoice::Fcfs,
                        "virtualclock" | "vc" => DisciplineChoice::VirtualClock,
                        "wfq" => DisciplineChoice::Wfq,
                        "scfq" => DisciplineChoice::Scfq,
                        "delay-edd" => DisciplineChoice::DelayEdd,
                        "jitter-edd" => DisciplineChoice::JitterEdd,
                        other => {
                            if let Some(frame) = other.strip_prefix("stop-and-go:frame=") {
                                DisciplineChoice::StopAndGo(
                                    parse_duration(frame).map_err(|e| err(ln, e))?,
                                )
                            } else if let Some(slots) = other.strip_prefix("hrr:slots=") {
                                DisciplineChoice::Hrr(
                                    slots
                                        .parse()
                                        .map_err(|_| err(ln, "hrr: bad slot count".into()))?,
                                )
                            } else {
                                return Err(err(ln, format!("unknown discipline '{other}'")));
                            }
                        }
                    };
                }
                "queue" => {
                    let kind = toks
                        .next()
                        .ok_or_else(|| err(ln, "queue: missing kind".into()))?;
                    queue = match keyval(kind) {
                        ("exact", None) => QueueKind::Exact,
                        ("bucket", Some(v)) => QueueKind::Bucketed {
                            bucket: parse_duration(v).map_err(|e| err(ln, e))?,
                        },
                        _ => return Err(err(ln, format!("unknown queue kind '{kind}'"))),
                    };
                }
                "seed" => {
                    seed = toks
                        .next()
                        .ok_or_else(|| err(ln, "seed: missing value".into()))?
                        .parse()
                        .map_err(|_| err(ln, "seed: bad value".into()))?;
                }
                "session" => {
                    let mut first = None;
                    let mut rate = None;
                    let mut jc = false;
                    let mut d = None;
                    let mut shape = None;
                    let mut source = None;
                    for tok in toks {
                        match keyval(tok) {
                            ("route", Some(v)) => {
                                let (a, b) = v
                                    .split_once("..")
                                    .ok_or_else(|| err(ln, "route: want A..B".into()))?;
                                let a: usize =
                                    a.parse().map_err(|_| err(ln, "route: bad start".into()))?;
                                let b: usize =
                                    b.parse().map_err(|_| err(ln, "route: bad end".into()))?;
                                if b < a {
                                    return Err(err(ln, "route: end before start".into()));
                                }
                                first = Some((a, b));
                            }
                            ("rate", Some(v)) => {
                                rate = Some(v.parse().map_err(|_| err(ln, "bad rate".into()))?)
                            }
                            ("jc", None) => jc = true,
                            ("d", Some(v)) => d = Some(parse_duration(v).map_err(|e| err(ln, e))?),
                            ("shape", Some(v)) => {
                                let (r, depth) = v
                                    .split_once(':')
                                    .ok_or_else(|| err(ln, "shape: want rate:bits".into()))?;
                                shape = Some((
                                    r.parse().map_err(|_| err(ln, "shape: bad rate".into()))?,
                                    depth
                                        .parse()
                                        .map_err(|_| err(ln, "shape: bad depth".into()))?,
                                ));
                            }
                            ("source", Some(v)) => {
                                source = Some(Self::parse_source(v).map_err(|e| err(ln, e))?)
                            }
                            (k, _) => {
                                return Err(err(ln, format!("session: unknown option '{k}'")))
                            }
                        }
                    }
                    let (a, b) = first.ok_or_else(|| err(ln, "session: missing route".into()))?;
                    sessions.push(SessionLine {
                        first: a,
                        last: b,
                        rate: rate.ok_or_else(|| err(ln, "session: missing rate".into()))?,
                        jc,
                        d,
                        shape,
                        source: source.ok_or_else(|| err(ln, "session: missing source".into()))?,
                    });
                }
                "run" => {
                    let v = toks
                        .next()
                        .ok_or_else(|| err(ln, "run: missing duration".into()))?;
                    horizon = Some(parse_duration(v).map_err(|e| err(ln, e))?);
                }
                other => return Err(err(ln, format!("unknown directive '{other}'"))),
            }
        }

        let nodes = nodes.ok_or_else(|| err(0, "missing 'nodes' directive".into()))?;
        let horizon = horizon.ok_or_else(|| err(0, "missing 'run' directive".into()))?;
        for s in &sessions {
            if s.last >= nodes {
                return Err(err(0, format!("route ends at node {} of {nodes}", s.last)));
            }
        }
        if sessions.is_empty() {
            return Err(err(0, "no sessions defined".into()));
        }
        Ok(Scenario {
            nodes,
            link,
            discipline,
            queue,
            seed,
            sessions,
            horizon,
        })
    }

    fn parse_source(v: &str) -> Result<SourceSpec, String> {
        let (name, args) = call(v).ok_or_else(|| format!("bad source syntax '{v}'"))?;
        let get = |key: &str| -> Result<&str, String> {
            args.iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("source {name}: missing '{key}'"))
        };
        let len = |key: &str| -> Result<u32, String> {
            get(key)?
                .parse()
                .map_err(|_| format!("source {name}: bad '{key}'"))
        };
        match name {
            "onoff" => Ok(SourceSpec::OnOff {
                on: parse_duration(get("on")?)?,
                off: parse_duration(get("off")?)?,
                t: parse_duration(get("t")?)?,
                len: len("len")?,
            }),
            "poisson" => Ok(SourceSpec::Poisson {
                gap: parse_duration(get("gap")?)?,
                len: len("len")?,
            }),
            "cbr" => Ok(SourceSpec::Cbr {
                gap: parse_duration(get("gap")?)?,
                len: len("len")?,
                offset: args
                    .iter()
                    .find(|(k, _)| *k == "offset")
                    .map(|(_, v)| parse_duration(v))
                    .transpose()?
                    .unwrap_or(Duration::ZERO),
            }),
            "burst" => Ok(SourceSpec::Burst {
                period: parse_duration(get("period")?)?,
                count: len("count")?,
                len: len("len")?,
            }),
            other => Err(format!("unknown source kind '{other}'")),
        }
    }

    /// Build and run the scenario; returns the finished network and the
    /// session ids in definition order.
    pub fn run(&self) -> (Network, Vec<SessionId>) {
        let mut b = NetworkBuilder::new().seed(self.seed).queue_kind(self.queue);
        let nodes = b.tandem(self.nodes, self.link);
        let mut ids = Vec::new();
        for s in &self.sessions {
            let mut spec = SessionSpec::atm(SessionId(0), s.rate);
            spec.jitter_control = s.jc;
            if let Some(d) = s.d {
                spec.delay = DelayAssignment::Fixed(d);
            }
            let source: Box<dyn Source> = {
                let inner: Box<dyn Source> = match s.source {
                    SourceSpec::OnOff { on, off, t, len } => {
                        Box::new(OnOffSource::new(OnOffConfig {
                            mean_on: on,
                            mean_off: off,
                            spacing: t,
                            len_bits: len,
                            initial_offset: Duration::ZERO,
                        }))
                    }
                    SourceSpec::Poisson { gap, len } => Box::new(PoissonSource::new(gap, len)),
                    SourceSpec::Cbr { gap, len, offset } => {
                        Box::new(DeterministicSource::new(gap, len).with_offset(offset))
                    }
                    SourceSpec::Burst { period, count, len } => {
                        Box::new(BurstSource::new(period, count, len))
                    }
                };
                match s.shape {
                    Some((rate, depth)) => {
                        Box::new(ShapedSource::new(BoxedSource(inner), rate, depth))
                    }
                    None => inner,
                }
            };
            let route: Vec<_> = (s.first..=s.last).map(|n| nodes[n]).collect();
            ids.push(b.add_session(spec, &route, source));
        }
        type Factory = Box<dyn Fn(&LinkParams) -> Box<dyn lit_net::Discipline>>;
        let factory: Factory = match &self.discipline {
            DisciplineChoice::Lit => Box::new(|l: &LinkParams| {
                Box::new(LitDiscipline::new(*l)) as Box<dyn lit_net::Discipline>
            }),
            DisciplineChoice::Fcfs => Box::new(FcfsDiscipline::factory()),
            DisciplineChoice::VirtualClock => Box::new(VirtualClockDiscipline::factory()),
            DisciplineChoice::Wfq => Box::new(WfqDiscipline::factory()),
            DisciplineChoice::Scfq => Box::new(ScfqDiscipline::factory()),
            DisciplineChoice::StopAndGo(frame) => Box::new(StopAndGoDiscipline::factory(*frame)),
            DisciplineChoice::Hrr(slots) => Box::new(HrrDiscipline::factory(*slots)),
            DisciplineChoice::DelayEdd => Box::new(EddDiscipline::factory(false)),
            DisciplineChoice::JitterEdd => Box::new(EddDiscipline::factory(true)),
        };
        let mut net = b.build(&*factory);
        net.run_until(Time::ZERO + self.horizon);
        (net, ids)
    }

    /// Run and render per-session results. The last column is the
    /// Leave-in-Time delay bound *assuming a one-cell token bucket* — it
    /// only applies to sessions whose traffic actually conforms (shaped
    /// or CBR/ON-OFF at the reserved rate), and is omitted for other
    /// disciplines.
    pub fn run_report(&self) -> Table {
        let (net, ids) = self.run();
        let bounded = matches!(
            self.discipline,
            DisciplineChoice::Lit | DisciplineChoice::VirtualClock
        );
        let mut t = Table::new(
            format!("scenario — {} nodes, horizon {}", self.nodes, self.horizon),
            &[
                "session",
                "route",
                "delivered",
                "max_delay_ms",
                "mean_delay_ms",
                "jitter_ms",
                "bound_if_1cell_tb_ms",
            ],
        );
        for (i, id) in ids.iter().enumerate() {
            let st = net.session_stats(*id);
            let bound = if bounded {
                let (pb, dref) = {
                    let pb = PathBounds::for_session(&net, *id);
                    let dref = Duration::from_bits_at_rate(
                        net.session_spec(*id).max_len_bits as u64,
                        net.session_spec(*id).rate_bps,
                    );
                    (pb, dref)
                };
                ms(pb.delay_bound(dref))
            } else {
                "-".to_string()
            };
            t.push(vec![
                i.to_string(),
                format!("{}..{}", self.sessions[i].first, self.sessions[i].last),
                st.delivered.to_string(),
                st.max_delay().map(ms).unwrap_or_else(|| "-".into()),
                st.mean_delay().map(ms).unwrap_or_else(|| "-".into()),
                st.jitter().map(ms).unwrap_or_else(|| "-".into()),
                bound,
            ]);
        }
        t
    }
}

/// Adapter: a boxed source as a `Source` (for shaping a dynamic inner).
struct BoxedSource(Box<dyn Source>);

impl Source for BoxedSource {
    fn next_emission(&mut self, rng: &mut lit_sim::SimRng) -> Option<lit_traffic::Emission> {
        self.0.next_emission(rng)
    }
    fn mean_rate_bps(&self) -> Option<f64> {
        self.0.mean_rate_bps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG8ISH: &str = r#"
# miniature figure 8
nodes 5 rate=1536000 prop=1ms lmax=424
discipline lit
seed 7
session route=0..4 rate=32000 source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..4 rate=32000 jc source=onoff(on=352ms,off=650ms,t=13.25ms,len=424)
session route=0..0 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=1..1 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=2..2 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=3..3 rate=1472000 source=poisson(gap=0.28804ms,len=424)
session route=4..4 rate=1472000 source=poisson(gap=0.28804ms,len=424)
run 10s
"#;

    #[test]
    fn parses_and_runs_fig8ish() {
        let sc = Scenario::parse(FIG8ISH).unwrap();
        assert_eq!(sc.nodes, 5);
        assert_eq!(sc.sessions.len(), 7);
        let (net, ids) = sc.run();
        assert!(net.session_stats(ids[0]).delivered > 100);
        // The jc session's jitter is smaller.
        let j0 = net.session_stats(ids[0]).jitter().unwrap();
        let j1 = net.session_stats(ids[1]).jitter().unwrap();
        assert!(j1 < j0, "jc {j1} !< plain {j0}");
        let report = sc.run_report();
        assert_eq!(report.len(), 7);
    }

    #[test]
    fn duration_literals() {
        assert_eq!(
            parse_duration("13.25ms").unwrap(),
            Duration::from_us(13_250)
        );
        assert_eq!(parse_duration("60s").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("100us").unwrap(), Duration::from_us(100));
        assert_eq!(parse_duration("500ns").unwrap(), Duration::from_ns(500));
        assert!(parse_duration("5").is_err());
        assert!(parse_duration("5parsecs").is_err());
        assert!(parse_duration("-1ms").is_err());
    }

    #[test]
    fn continuation_lines() {
        let text =
            "nodes 2\nsession route=0..1 rate=1000 \\\n  source=poisson(gap=1ms,len=424)\nrun 1s\n";
        let sc = Scenario::parse(text).unwrap();
        assert_eq!(sc.sessions.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = Scenario::parse("nodes 2\nbogus directive\nrun 1s").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn route_validation() {
        let e = Scenario::parse(
            "nodes 2\nsession route=0..5 rate=1 source=poisson(gap=1ms,len=1)\nrun 1s",
        )
        .unwrap_err();
        assert!(e.message.contains("route ends"));
        let e = Scenario::parse(
            "nodes 2\nsession route=1..0 rate=1 source=poisson(gap=1ms,len=1)\nrun 1s",
        )
        .unwrap_err();
        assert!(e.message.contains("end before start"));
    }

    #[test]
    fn missing_directives() {
        assert!(Scenario::parse("run 1s").is_err());
        assert!(Scenario::parse("nodes 1").is_err());
        let e = Scenario::parse("nodes 1\nrun 1s").unwrap_err();
        assert!(e.message.contains("no sessions"));
    }

    #[test]
    fn disciplines_and_queue_parse() {
        for d in [
            "lit",
            "fcfs",
            "virtualclock",
            "wfq",
            "scfq",
            "delay-edd",
            "jitter-edd",
            "stop-and-go:frame=10ms",
            "hrr:slots=48",
        ] {
            let text = format!(
                "nodes 1\ndiscipline {d}\nqueue bucket=1ms\nsession route=0..0 rate=1000 source=cbr(gap=10ms,len=424)\nrun 1s"
            );
            let sc = Scenario::parse(&text).unwrap_or_else(|e| panic!("{d}: {e}"));
            let (net, ids) = sc.run();
            assert!(net.session_stats(ids[0]).delivered > 0, "{d}");
        }
    }

    #[test]
    fn shaped_and_burst_sources() {
        let text = "nodes 1\nsession route=0..0 rate=32000 shape=32000:848 \
                    source=burst(period=100ms,count=5,len=424)\nrun 5s";
        let sc = Scenario::parse(text).unwrap();
        let (net, ids) = sc.run();
        assert!(net.session_stats(ids[0]).delivered >= 200);
    }
}
