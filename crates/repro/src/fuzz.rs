//! Differential fuzzing of the simulator and the discipline.
//!
//! Each case is a random admission-valid [`Scenario`] restricted to the
//! regime where the paper proves Leave-in-Time degenerates exactly: one
//! admission class, `d = L/r`, no jitter control — there LiT **is**
//! VirtualClock, packet for packet. Every case runs four ways:
//!
//! 1. `lit` on the heap event backend, conformance oracle counting —
//!    zero violations expected (the oracle's per-hop and pathwise
//!    end-to-end checks, plus the drain-time CCDF check);
//! 2. `lit` on the calendar backend — the delivery log must be
//!    bit-identical to run 1 (same `(seq, created, delivered,
//!    ref_delay)` for every packet of every session);
//! 3. `lit` on the timer-wheel backend with batched arrival dispatch —
//!    also bit-identical to run 1 (one run exercising both hot-path
//!    optimizations at once);
//! 4. `virtualclock` on the heap backend — also bit-identical to run 1.
//!
//! Plus one sharded-executor pair: `lit` on 2 shards vs 7 shards (oracle
//! counting on both) — delivery logs and violation counts must match
//! *each other* exactly. The sharded engine orders same-instant events
//! canonically rather than in heap-FIFO order, so it is compared against
//! itself across shard counts (its own determinism contract) instead of
//! against run 1, whose tie order random scenarios are allowed to
//! differ in.
//!
//! Failures shrink greedily (drop sessions, halve the horizon) and are
//! written as replayable `.scn` files via [`Scenario::to_text`], so
//! `lit-repro scenario <file>` reproduces them directly.

use crate::scenario::{RunOptions, Scenario, SessionLine, SourceSpec};
use lit_net::{
    DeliveryRecord, EventBackend, LinkParams, Network, ObsProbe, OracleMode, SessionId, StatsConfig,
};
use lit_obs::TraceEvent;
use lit_sim::{Duration, SimRng};
use std::path::{Path, PathBuf};

/// How many trailing lifecycle events each arm contributes to a
/// divergence bundle.
const BUNDLE_TAIL: usize = 50;

/// Reserved rates stay below this fraction of link capacity in every
/// generated case, so each node is admission-valid (`Σ r ≤ C`) with slack
/// and the oracle's lateness invariant is in force.
const MAX_RATE_BPS: u64 = 200_000; // 6 × 200 kbit/s < 0.8 × 1536 kbit/s

/// Statistics sizing for fuzz runs: coarse histograms (the comparison is
/// the delivery log, not the distributions) and a log deep enough to hold
/// every delivery of a one-second case.
fn fuzz_stats() -> StatsConfig {
    StatsConfig {
        delay_bin: Duration::from_ms(1),
        delay_bins: 4_000,
        buffer_bin_bits: 424,
        buffer_bins: 64,
        delivery_log_cap: 1 << 16,
    }
}

/// SplitMix64 output function — derives independent case seeds from
/// `(campaign seed, case index)`.
fn case_seed(master: u64, case: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(case.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate the random scenario of `seed`. Deterministic, whole-ns
/// durations throughout (so [`Scenario::to_text`] round-trips exactly).
pub fn generate(seed: u64) -> Scenario {
    let mut rng = SimRng::seed_from(seed);
    let nodes = 1 + rng.below(4) as usize;
    let nsessions = 1 + rng.below(6) as usize;
    let mut link = LinkParams::paper_t1();
    let mut sessions = Vec::new();
    for _ in 0..nsessions {
        let first = rng.below(nodes as u64) as usize;
        let last = first + rng.below((nodes - first) as u64) as usize;
        let rate = 10_000 + rng.below((MAX_RATE_BPS - 10_000) / 1_000 + 1) * 1_000;
        let len = (64 + rng.below(961)) as u32;
        link.lmax_bits = link.lmax_bits.max(len);
        let gap = Duration::from_ns(100_000) + Duration::from_ns(rng.below(19_900_001));
        let source = match rng.below(4) {
            0 => SourceSpec::Poisson { gap, len },
            1 => SourceSpec::Cbr {
                gap,
                len,
                offset: Duration::from_ns(rng.below(1_000_001)),
            },
            2 => SourceSpec::Burst {
                period: Duration::from_ns(10_000_000) + Duration::from_ns(rng.below(90_000_001)),
                count: (1 + rng.below(32)) as u32,
                len,
            },
            _ => SourceSpec::OnOff {
                on: Duration::from_ns(1_000_000) + Duration::from_ns(rng.below(200_000_000)),
                off: Duration::from_ns(1_000_000) + Duration::from_ns(rng.below(650_000_000)),
                t: gap,
                len,
            },
        };
        // Occasionally shape to the reserved rate — conforming traffic
        // exercises the tight side of the oracle's bounds.
        let shape = if rng.below(4) == 0 {
            Some((rate, 2 * len as u64))
        } else {
            None
        };
        sessions.push(SessionLine {
            first,
            last,
            rate,
            jc: false, // jitter control would break the ≡ VirtualClock premise
            d: None,   // default d = L/r, ditto
            shape,
            source,
            path: None,
        });
    }
    Scenario {
        nodes,
        link,
        discipline: crate::scenario::DisciplineChoice::Lit,
        queue: lit_net::QueueKind::Exact,
        backend: EventBackend::Heap,
        seed: rng.next_u64(),
        sessions,
        generators: Vec::new(),
        regulator: lit_net::RegulatorBackend::PerSession,
        horizon: Duration::from_ms(200) + Duration::from_ms(rng.below(801)),
    }
}

/// One session's full delivery evidence: total count plus the logged
/// `(seq, created, delivered, ref_delay)` records.
fn snapshot(net: &Network, ids: &[SessionId]) -> Vec<(u64, Vec<DeliveryRecord>)> {
    ids.iter()
        .map(|id| {
            let st = net.session_stats(*id);
            (st.delivered, st.deliveries.iter().cloned().collect())
        })
        .collect()
}

/// Run one scenario all three ways; `Err` describes the first divergence
/// or oracle violation.
pub fn check(sc: &Scenario) -> Result<(), String> {
    let stats = Some(fuzz_stats());
    let (mut lit_heap, ids) = sc.run_opts(&RunOptions {
        backend: Some(EventBackend::Heap),
        stats,
        oracle: OracleMode::Count,
        batch: false,
        shards: None,
        regulator: None,
    });
    lit_heap.oracle_drain_check();
    let violations = lit_heap.oracle_violations();
    if violations > 0 {
        return Err(format!(
            "oracle: {violations} violation(s): {:?}",
            lit_heap.oracle_totals()
        ));
    }
    let base = snapshot(&lit_heap, &ids);
    let (calendar, cal_ids) = sc.run_opts(&RunOptions {
        backend: Some(EventBackend::Calendar),
        stats,
        oracle: OracleMode::Off,
        batch: false,
        shards: None,
        regulator: None,
    });
    if snapshot(&calendar, &cal_ids) != base {
        return Err("calendar event backend diverges from heap".into());
    }
    let (wheel, wheel_ids) = sc.run_opts(&RunOptions {
        backend: Some(EventBackend::Wheel),
        stats,
        oracle: OracleMode::Off,
        batch: true,
        shards: None,
        regulator: None,
    });
    if snapshot(&wheel, &wheel_ids) != base {
        return Err("wheel backend with batched arrivals diverges from heap".into());
    }
    let vc = sc.with_discipline("virtualclock")?;
    let (vc_net, vc_ids) = vc.run_opts(&RunOptions {
        backend: Some(EventBackend::Heap),
        stats,
        oracle: OracleMode::Off,
        batch: false,
        shards: None,
        regulator: None,
    });
    if snapshot(&vc_net, &vc_ids) != base {
        return Err("virtualclock diverges from leave-in-time with d = L/r".into());
    }
    // Sharded-executor determinism: different shard counts must agree
    // with each other packet for packet and violation for violation
    // (falls back to scalar — still a valid identity — when the
    // scenario's links have zero propagation).
    let (mut sh2, sh2_ids) = sc.run_opts(&RunOptions {
        backend: Some(EventBackend::Heap),
        stats,
        oracle: OracleMode::Count,
        batch: false,
        shards: Some(2),
        regulator: None,
    });
    let (mut sh7, sh7_ids) = sc.run_opts(&RunOptions {
        backend: Some(EventBackend::Heap),
        stats,
        oracle: OracleMode::Count,
        batch: false,
        shards: Some(7),
        regulator: None,
    });
    sh2.oracle_drain_check();
    sh7.oracle_drain_check();
    if snapshot(&sh2, &sh2_ids) != snapshot(&sh7, &sh7_ids) {
        return Err("sharded executor diverges between 2 and 7 shards".into());
    }
    if sh2.oracle_violations() != sh7.oracle_violations() {
        return Err(format!(
            "sharded oracle totals diverge: 2 shards {:?} vs 7 shards {:?}",
            sh2.oracle_totals(),
            sh7.oracle_totals()
        ));
    }
    Ok(())
}

/// Greedily minimize a failing scenario: drop sessions one at a time,
/// then halve the horizon (never below 50 ms), keeping the failure alive
/// at every step.
pub fn shrink(mut sc: Scenario) -> Scenario {
    loop {
        let mut progressed = false;
        for i in 0..sc.sessions.len() {
            if sc.sessions.len() == 1 {
                break;
            }
            let mut cand = sc.clone();
            cand.sessions.remove(i);
            if check(&cand).is_err() {
                sc = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    loop {
        let half_ms = u64::try_from(sc.horizon.as_ps() as u128 / 2_000_000_000)
            .expect("halved horizon fits u64 ms");
        if half_ms < 50 {
            break;
        }
        let mut cand = sc.clone();
        cand.horizon = Duration::from_ms(half_ms);
        if check(&cand).is_err() {
            sc = cand;
        } else {
            break;
        }
    }
    sc
}

/// Write a minimized failure as a replayable scenario file; returns the
/// path (best-effort: I/O errors are reported on stderr, not fatal).
pub fn write_failure(dir: &Path, seed: u64, why: &str, sc: &Scenario) -> PathBuf {
    let path = dir.join(format!("case_{seed:016x}.scn"));
    let text = format!("# fuzz_diff failure, seed {seed}: {why}\n{}", sc.to_text());
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, text)) {
        eprintln!("fuzz: cannot write {}: {e}", path.display());
    }
    path
}

/// Re-run the three differential arms of `sc` with a local tracing probe
/// and return each arm's trailing `BUNDLE_TAIL` (50) lifecycle events. Used
/// only on failures, so the extra runs cost nothing on the hot path.
pub fn trace_arms(sc: &Scenario) -> Vec<(String, Vec<TraceEvent>)> {
    let stats = Some(fuzz_stats());
    let mut arms: Vec<(String, Scenario, EventBackend)> = vec![
        ("lit-heap".into(), sc.clone(), EventBackend::Heap),
        ("lit-calendar".into(), sc.clone(), EventBackend::Calendar),
        ("lit-wheel".into(), sc.clone(), EventBackend::Wheel),
    ];
    if let Ok(vc) = sc.with_discipline("virtualclock") {
        arms.push(("vc-heap".into(), vc, EventBackend::Heap));
    }
    arms.into_iter()
        .map(|(label, arm, backend)| {
            let (mut net, _) = arm.run_probed(
                &RunOptions {
                    backend: Some(backend),
                    stats,
                    oracle: OracleMode::Off,
                    batch: false,
                    shards: None,
                    regulator: None,
                },
                Some(Box::new(ObsProbe::new(BUNDLE_TAIL))),
            );
            let tail = net
                .take_probe()
                .and_then(|p| {
                    p.as_any()
                        .and_then(|a| a.downcast_ref::<ObsProbe>())
                        .map(|o| o.trace.last_n(BUNDLE_TAIL))
                })
                .unwrap_or_default();
            (label, tail)
        })
        .collect()
}

/// Write the per-arm trace tails of a divergence next to its `.scn` file
/// as JSONL, one event per line with a leading `"arm"` field. Returns the
/// path (best-effort, like [`write_failure`]).
pub fn write_trace_bundle(dir: &Path, seed: u64, arms: &[(String, Vec<TraceEvent>)]) -> PathBuf {
    let path = dir.join(format!("case_{seed:016x}.trace.jsonl"));
    let mut body = String::new();
    for (label, events) in arms {
        for e in events {
            body.push_str(&lit_obs::trace::jsonl_line_tagged(label, e));
            body.push('\n');
        }
    }
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)) {
        eprintln!("fuzz: cannot write {}: {e}", path.display());
    }
    path
}

/// A campaign's outcome.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases actually run (may stop early on `wall_budget`).
    pub cases: u64,
    /// `(case seed, first divergence, minimized .scn path)` per failure.
    pub failures: Vec<(u64, String, PathBuf)>,
}

/// Run `cases` generated cases starting from `master` (stopping early if
/// `wall_budget` elapses), minimizing and recording every failure under
/// `out_dir`.
pub fn campaign(
    master: u64,
    cases: u64,
    wall_budget: Option<std::time::Duration>,
    out_dir: &Path,
) -> FuzzReport {
    let start = std::time::Instant::now();
    let mut failures = Vec::new();
    let mut ran = 0;
    for case in 0..cases {
        if let Some(budget) = wall_budget {
            if start.elapsed() >= budget {
                eprintln!("fuzz: wall budget reached after {ran} case(s)");
                break;
            }
        }
        let seed = case_seed(master, case);
        let sc = generate(seed);
        if let Err(why) = check(&sc) {
            eprintln!("fuzz: case {case} (seed {seed:#018x}) FAILED: {why}");
            let min = shrink(sc);
            let path = write_failure(out_dir, seed, &why, &min);
            write_trace_bundle(out_dir, seed, &trace_arms(&min));
            failures.push((seed, why.clone(), path));
        }
        ran += 1;
        if ran % 100 == 0 {
            eprintln!(
                "fuzz: {ran}/{cases} cases, {} failure(s), {:.1}s",
                failures.len(),
                start.elapsed().as_secs_f64()
            );
        }
    }
    FuzzReport {
        cases: ran,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scenarios_round_trip_and_stay_admissible() {
        for case in 0..32 {
            let sc = generate(case_seed(0xF00D, case));
            let text = sc.to_text();
            let back =
                Scenario::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(back, sc, "case {case} round-trip\n{text}");
            // Admission validity: reserved rates fit every node's link.
            for node in 0..sc.nodes {
                let sum: u64 = sc
                    .sessions
                    .iter()
                    .filter(|s| s.first <= node && node <= s.last)
                    .map(|s| s.rate)
                    .sum();
                assert!(sum * 10 <= sc.link.rate_bps * 8, "node {node} over-booked");
            }
        }
    }

    #[test]
    fn one_case_runs_clean() {
        let sc = generate(case_seed(1, 0));
        check(&sc).unwrap();
    }

    #[test]
    fn forced_divergence_writes_trace_bundle() {
        // Jitter control breaks the LiT ≡ VirtualClock premise: with two
        // hops, LiT holds ahead-of-schedule packets at the second node
        // while VirtualClock forwards them immediately.
        let sc = Scenario {
            nodes: 2,
            link: LinkParams::paper_t1(),
            discipline: crate::scenario::DisciplineChoice::Lit,
            queue: lit_net::QueueKind::Exact,
            backend: EventBackend::Heap,
            seed: 7,
            sessions: vec![SessionLine {
                first: 0,
                last: 1,
                rate: 64_000,
                jc: true,
                d: None,
                shape: None,
                source: SourceSpec::Cbr {
                    gap: Duration::from_ms(10),
                    len: 424,
                    offset: Duration::from_ns(0),
                },
                path: None,
            }],
            generators: Vec::new(),
            regulator: lit_net::RegulatorBackend::PerSession,
            horizon: Duration::from_ms(200),
        };
        let why = check(&sc).expect_err("jc session must diverge from VirtualClock");
        assert!(why.contains("virtualclock"), "unexpected failure: {why}");
        let arms = trace_arms(&sc);
        assert_eq!(arms.len(), 4, "all four arms traced");
        assert!(arms.iter().all(|(_, evs)| !evs.is_empty()));
        let dir = std::env::temp_dir().join(format!("lit_fuzz_bundle_{}", std::process::id()));
        let path = write_trace_bundle(&dir, 0xDEAD, &arms);
        let body = std::fs::read_to_string(&path).expect("bundle written");
        let mut arms_seen = std::collections::BTreeSet::new();
        for line in body.lines() {
            let v = lit_obs::json::Value::parse(line)
                .unwrap_or_else(|e| panic!("bundle line does not parse ({e}): {line}"));
            let arm = v.get("arm").and_then(|a| a.as_str()).expect("arm tag");
            arms_seen.insert(arm.to_string());
            assert!(v.get("k").is_some(), "event kind present: {line}");
            assert!(v.get("t_ps").is_some(), "timestamp present: {line}");
        }
        assert_eq!(arms_seen.len(), 4, "every arm contributes events");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn comparison_is_not_vacuous() {
        // The differential check is only meaningful if cases actually
        // deliver packets and the delivery log captures them.
        let mut logged = 0usize;
        for case in 0..16 {
            let sc = generate(case_seed(3, case));
            let (net, ids) = sc.run_opts(&RunOptions {
                backend: None,
                stats: Some(fuzz_stats()),
                oracle: OracleMode::Off,
                batch: false,
                shards: None,
                regulator: None,
            });
            for id in &ids {
                let st = net.session_stats(*id);
                assert_eq!(st.deliveries.len() as u64, st.delivered.min(1 << 16));
                logged += st.deliveries.len();
            }
        }
        assert!(logged > 1_000, "only {logged} deliveries over 16 cases");
    }
}
