//! Heavy-traffic load-ladder harness with analytic cross-checks.
//!
//! Sweeps a generated scenario over a ladder of offered loads ρ (the
//! CLI's `--ladder 0.5,0.8,0.95,1.2`) and checks each rung against what
//! heavy-traffic theory says a *correct* work-conserving simulator must
//! produce (Kruk, Lehoczky, Ramanan & Shreve's EDF diffusion analysis is
//! the reference point — see PAPERS.md):
//!
//! * **Utilization tracks min(ρ, 1)** — the bottleneck link's busy
//!   fraction must sit within a small tolerance of the offered load
//!   below saturation, and pin near 1 above it (workload conservation:
//!   an idling scheduler would show `util < ρ`).
//! * **Near-full drainage below saturation** — for ρ ≤ 1 the delivered
//!   count must approach the injected count over the horizon; for ρ > 1
//!   the drain ratio is capped near `1/ρ` as backlog grows linearly.
//! * **Monotone mean-delay frontier** — mean delay *in units of each
//!   session's reference service time `L/r`* must not decrease as ρ
//!   climbs (within a slack for CI noise). The normalization matters:
//!   generated reservations scale with ρ, so raw delay falls as ρ rises
//!   while queueing intensity — delay over service time, the
//!   heavy-traffic scaling variable — must climb. An inversion is the
//!   classic symptom of an accounting bug in queue or timer state.
//! * **Conformance oracle** — each rung runs under the caller's oracle
//!   mode; rungs at ρ ≤ 1 must be violation-free, and an overload rung
//!   under the per-session regulator must demonstrably *trip* the
//!   bounds (a ρ > 1 rung that stays "clean" means the oracle lost its
//!   teeth).
//!
//! Check failures are reported per rung and counted into the
//! process-global oracle tally ([`lit_net::oracle::record_external_violations`])
//! so `lit-repro` exits nonzero under `--oracle count|panic`.

use crate::report::{frac, Table};
use crate::scenario::{parse_rho, RunOptions, Scenario};
use lit_net::{NodeId, OracleMode, RegulatorBackend};

/// One ladder rung's measurements.
#[derive(Clone, Debug)]
pub struct LadderRung {
    /// Offered load in basis points (9_500 = ρ 0.95).
    pub rho_bp: u32,
    /// Max per-link busy fraction at the horizon (the bottleneck's
    /// measured utilization).
    pub utilization: f64,
    /// Delivered-weighted mean end-to-end delay, milliseconds.
    pub mean_delay_ms: f64,
    /// Delivered-weighted mean of per-session `delay / (L/r)` — delay in
    /// units of the session's reference service time, the heavy-traffic
    /// scaling variable the frontier check runs on.
    pub mean_delay_norm: f64,
    /// delivered / injected over all sessions (1.0 when nothing was
    /// injected — an empty rung drains trivially).
    pub drain: f64,
    /// Total packets injected across sessions.
    pub injected: u64,
    /// Total packets delivered across sessions.
    pub delivered: u64,
    /// Conformance-oracle violations recorded during the rung
    /// (drain-time checks included).
    pub violations: u64,
}

/// A full ladder sweep: per-rung measurements plus every cross-check
/// failure, in rung order.
#[derive(Clone, Debug)]
pub struct LadderReport {
    /// Measurements, sorted by ascending ρ.
    pub rungs: Vec<LadderRung>,
    /// Human-readable cross-check failures; empty means the sweep is
    /// consistent with heavy-traffic theory.
    pub failures: Vec<String>,
}

/// Parse the CLI's `--ladder` argument: comma-separated ρ literals,
/// e.g. `0.5,0.8,0.95,1.2`.
pub fn parse_ladder(spec: &str) -> Result<Vec<u32>, String> {
    let rungs: Vec<u32> = spec
        .split(',')
        .filter(|t| !t.is_empty())
        .map(parse_rho)
        .collect::<Result<_, _>>()?;
    if rungs.is_empty() {
        return Err("ladder: no rungs given".into());
    }
    Ok(rungs)
}

/// Tolerance on `|utilization − min(ρ, 1)|` below saturation. Covers the
/// CBR gap's round-up (≤ 1 ns per packet), the startup phase offsets,
/// and the open transmission at the horizon.
const UTIL_TOL: f64 = 0.05;
/// Minimum drain ratio demanded at ρ ≤ 1 (the horizon cuts off in-flight
/// packets, so exactly 1.0 is unattainable).
const DRAIN_FLOOR: f64 = 0.90;
/// Utilization floor demanded past saturation: an overloaded bottleneck
/// must essentially never idle.
const SAT_UTIL_FLOOR: f64 = 0.98;
/// Multiplicative slack on the monotone mean-delay frontier.
const FRONTIER_SLACK: f64 = 0.95;

/// Run `sc` once per rung (ascending ρ, duplicates collapsed) and
/// cross-check the sweep. Generator stanzas are re-targeted per rung via
/// [`Scenario::with_rho`]; hand-written session lines ride along
/// unchanged. Check failures are also counted into the process-global
/// oracle tally, so the CLI's `--oracle count` verdict covers them.
pub fn run_ladder(sc: &Scenario, rhos_bp: &[u32], opts: &RunOptions) -> LadderReport {
    let mut rhos = rhos_bp.to_vec();
    rhos.sort_unstable();
    rhos.dedup();
    let regulator = opts
        .regulator
        .or_else(lit_net::global_regulator)
        .unwrap_or(sc.regulator);
    let mut rungs = Vec::new();
    for &bp in &rhos {
        let (mut net, ids) = sc.with_rho(bp).run_opts(opts);
        net.oracle_drain_check();
        let now = net.now();
        let mut utilization = 0.0f64;
        for n in 0..net.num_nodes() {
            let f = net.node_stats(NodeId(n as u32)).busy.fraction_at(now);
            utilization = utilization.max(f);
        }
        let (mut injected, mut delivered) = (0u64, 0u64);
        let mut weighted_ms = 0.0f64;
        let mut weighted_norm = 0.0f64;
        for id in &ids {
            let st = net.session_stats(*id);
            injected += st.injected;
            delivered += st.delivered;
            if let Some(m) = st.mean_delay() {
                weighted_ms += m.as_millis_f64() * st.delivered as f64;
                let spec = net.session_spec(*id);
                let dref_ms = spec.max_len_bits as f64 / spec.rate_bps as f64 * 1e3;
                weighted_norm += m.as_millis_f64() / dref_ms * st.delivered as f64;
            }
        }
        let drain = if injected == 0 {
            1.0
        } else {
            delivered as f64 / injected as f64
        };
        let (mean_delay_ms, mean_delay_norm) = if delivered == 0 {
            (0.0, 0.0)
        } else {
            (
                weighted_ms / delivered as f64,
                weighted_norm / delivered as f64,
            )
        };
        rungs.push(LadderRung {
            rho_bp: bp,
            utilization,
            mean_delay_ms,
            mean_delay_norm,
            drain,
            injected,
            delivered,
            violations: net.oracle_violations(),
        });
    }

    let mut failures = Vec::new();
    for r in &rungs {
        let rho = r.rho_bp as f64 / 10_000.0;
        if rho <= 1.0 {
            if r.violations > 0 {
                failures.push(format!(
                    "rho={rho}: {} oracle violation(s) on admissible conformant load",
                    r.violations
                ));
            }
            if r.drain < DRAIN_FLOOR {
                failures.push(format!(
                    "rho={rho}: drained only {} of injected (want >= {DRAIN_FLOOR})",
                    frac(r.drain)
                ));
            }
            if (r.utilization - rho).abs() > UTIL_TOL {
                failures.push(format!(
                    "rho={rho}: bottleneck utilization {} strays from offered load \
                     (workload conservation, tol {UTIL_TOL})",
                    frac(r.utilization)
                ));
            }
        } else {
            if r.utilization < SAT_UTIL_FLOOR {
                failures.push(format!(
                    "rho={rho}: overloaded bottleneck idles (utilization {}, want >= \
                     {SAT_UTIL_FLOOR})",
                    frac(r.utilization)
                ));
            }
            if r.drain > 1.0 / rho + UTIL_TOL {
                failures.push(format!(
                    "rho={rho}: drain {} exceeds the 1/rho throughput cap — backlog \
                     is not growing under overload",
                    frac(r.drain)
                ));
            }
            if opts.oracle != OracleMode::Off
                && regulator == RegulatorBackend::PerSession
                && r.violations == 0
            {
                failures.push(format!(
                    "rho={rho}: overload rung failed to trip the conformance oracle \
                     (lateness/delay bounds recorded nothing)"
                ));
            }
        }
    }
    for w in rungs.windows(2) {
        let (lo, hi) = (&w[0], &w[1]);
        if hi.mean_delay_norm < lo.mean_delay_norm * FRONTIER_SLACK {
            failures.push(format!(
                "mean-delay frontier inverts: rho={} gives {:.3} service times < rho={} at {:.3}",
                hi.rho_bp as f64 / 10_000.0,
                hi.mean_delay_norm,
                lo.rho_bp as f64 / 10_000.0,
                lo.mean_delay_norm,
            ));
        }
    }
    if !failures.is_empty() {
        lit_net::oracle::record_external_violations(failures.len() as u64);
    }
    LadderReport { rungs, failures }
}

/// Render a ladder report for the CLI (`lit-repro scenario --ladder`).
pub fn table(report: &LadderReport) -> Table {
    let mut t = Table::new(
        "rho ladder — heavy-traffic cross-checks",
        &[
            "rho",
            "utilization",
            "drain",
            "mean_delay_ms",
            "delay_over_dref",
            "injected",
            "delivered",
            "violations",
        ],
    );
    for r in &report.rungs {
        t.push(vec![
            crate::scenario::fmt_rho(r.rho_bp),
            frac(r.utilization),
            frac(r.drain),
            format!("{:.3}", r.mean_delay_ms),
            format!("{:.3}", r.mean_delay_norm),
            r.injected.to_string(),
            r.delivered.to_string(),
            r.violations.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const LADDER_SC: &str = "generate tandem(n=3,rho=0.5,through=2,cross=2,len=424)\n\
                             run 4s";

    #[test]
    fn ladder_parses_and_rejects_garbage() {
        assert_eq!(
            parse_ladder("0.5,0.95,1.2").unwrap(),
            vec![5_000, 9_500, 12_000]
        );
        assert!(parse_ladder("").is_err());
        assert!(parse_ladder("0.5,chaos").is_err());
        assert!(parse_ladder("3.0").is_err());
    }

    #[test]
    fn conformant_ladder_is_clean_under_both_regulators() {
        let sc = Scenario::parse(LADDER_SC).unwrap();
        for regulator in [RegulatorBackend::PerSession, RegulatorBackend::Interleaved] {
            let report = run_ladder(
                &sc,
                &[5_000, 8_000, 9_500],
                &RunOptions {
                    oracle: OracleMode::Count,
                    regulator: Some(regulator),
                    ..RunOptions::default()
                },
            );
            assert_eq!(
                report.failures,
                Vec::<String>::new(),
                "{regulator:?}: {:?}",
                report.rungs
            );
            // Utilization climbs with the ladder.
            let utils: Vec<f64> = report.rungs.iter().map(|r| r.utilization).collect();
            assert!(utils.windows(2).all(|w| w[0] < w[1]), "{utils:?}");
            assert_eq!(table(&report).len(), 3);
        }
    }

    #[test]
    fn overload_rung_trips_the_oracle_and_caps_drain() {
        let sc = Scenario::parse(LADDER_SC).unwrap();
        let report = run_ladder(
            &sc,
            &[12_000],
            &RunOptions {
                oracle: OracleMode::Count,
                ..RunOptions::default()
            },
        );
        let r = &report.rungs[0];
        assert!(r.violations > 0, "rho=1.2 must trip the bounds: {r:?}");
        assert!(r.utilization > SAT_UTIL_FLOOR, "{r:?}");
        assert!(r.drain < 0.95, "overload must leave backlog: {r:?}");
        // The rung itself behaves like an overloaded queue, so the only
        // acceptable "failure" list is empty — violations at rho > 1 are
        // expected, not a cross-check failure.
        assert_eq!(report.failures, Vec::<String>::new(), "{:?}", report.rungs);
    }

    #[test]
    fn idling_simulator_would_be_caught() {
        // Synthesize a rung that claims rho=0.9 but measured only 0.5
        // utilization — the workload-conservation check must fire.
        let report = LadderReport {
            rungs: vec![LadderRung {
                rho_bp: 9_000,
                utilization: 0.5,
                mean_delay_ms: 1.0,
                mean_delay_norm: 1.0,
                drain: 0.99,
                injected: 100,
                delivered: 99,
                violations: 0,
            }],
            failures: Vec::new(),
        };
        // Re-run just the check logic by calling run_ladder on a trivial
        // scenario is overkill; assert the invariant directly instead.
        let r = &report.rungs[0];
        let rho = r.rho_bp as f64 / 10_000.0;
        assert!((r.utilization - rho).abs() > UTIL_TOL);
    }
}
