//! Plain-text tables and CSV output for the reproduction harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, c) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                let _ = write!(out, "{c:>w$}", w = *w);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (header + rows), RFC-4180-style quoting for cells
    /// containing commas or quotes.
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV form to `dir/<name>.csv`, creating `dir` if needed.
    pub fn write_csv(&self, dir: &Path, name: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Format a millisecond value with three decimals.
pub fn ms(d: lit_sim::Duration) -> String {
    format!("{:.3}", d.as_millis_f64())
}

/// Format a probability/fraction with six decimals.
pub fn frac(x: f64) -> String {
    format!("{x:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.push(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long-header"));
        assert!(r.lines().count() >= 4);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["v"]);
        t.push(vec!["a,b\"c".into()]);
        assert_eq!(t.to_csv(), "v\n\"a,b\"\"c\"\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["1".into()]);
    }
}
