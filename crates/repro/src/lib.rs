//! # lit-repro — the reproduction harness
//!
//! Everything needed to regenerate the paper's evaluation section:
//! the Figure 6 topology ([`topology`]), one experiment module per
//! figure/table ([`experiments`]), and plain-text/CSV reporting
//! ([`report`]). The `lit-repro` binary dispatches one sub-command per
//! artifact; integration tests and benches reuse the same experiment
//! functions with shorter horizons.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod fuzz;
pub mod heavy;
pub mod report;
pub mod scenario;
pub mod topology;
