//! The lightweight syntax tree the precise rules run on.
//!
//! Nodes carry **token spans** (`lo..hi` indices into the file's token
//! stream), never copies of the tokens, so the tree composes with the
//! token-level helpers that the original rules were built on: a rule can
//! walk structure (blocks, loops, match arms, closures) and still do
//! adjacency scans inside any node's span. The span discipline is strict —
//! [`coverage`] checks that every child nests inside its parent, children
//! are ordered and disjoint, and statements tile their block — which is
//! what makes the lex → parse → span-reassembly round-trip property in
//! `crates/lint/tests` meaningful.
//!
//! This is deliberately **not** full Rust: expressions without control
//! flow stay flat [`ExprKind::Leaf`] spans (with nested control-flow /
//! closure / macro nodes collected in `subs`), patterns and types stay
//! spans, and precedence is never computed. The rules need item
//! structure, intra-function control-flow regions, and declared-type
//! spans — nothing more — and the build container is offline, so `syn`
//! is not an option.

use crate::lexer::Tok;

/// A half-open range of token indices (`lo..hi`) into a file's stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First token index.
    pub lo: usize,
    /// One past the last token index.
    pub hi: usize,
}

impl Span {
    /// The empty span at `at`.
    pub fn empty(at: usize) -> Span {
        Span { lo: at, hi: at }
    }

    /// Whether the span contains token index `i`.
    pub fn contains(&self, i: usize) -> bool {
        self.lo <= i && i < self.hi
    }

    /// Whether the span holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// A parsed source file: its top-level items plus side tables the rules
/// consume directly.
#[derive(Debug, Default)]
pub struct Tree {
    /// Top-level items in source order (attributes included in spans).
    pub items: Vec<Item>,
    /// Every attribute span in the file (`#[...]` and `#![...]`),
    /// in source order — rules skip tokens inside these.
    pub attrs: Vec<Span>,
}

/// One item (fn, struct, impl, …). `span` covers the item's leading
/// attributes through its final token (`}` or `;`).
#[derive(Debug)]
pub struct Item {
    /// Full token span, attributes included.
    pub span: Span,
    /// Item name when it has one (`fn name`, `struct Name`, …).
    pub name: Option<String>,
    /// What the item is.
    pub kind: ItemKind,
}

/// Item classification — only the shapes the rules care about get
/// structure; everything else is an opaque [`ItemKind::Other`] span.
#[derive(Debug)]
pub enum ItemKind {
    /// `fn` with signature details and an optional body.
    Fn(Func),
    /// `impl … { items }` / `trait … { items }` / `mod name { items }`.
    Items(Vec<Item>),
    /// `struct Name { fields }` (braced form only; tuple and unit
    /// structs are `Other`).
    Struct(Vec<Field>),
    /// `const NAME: Ty = value;` / `static NAME: Ty = value;` with the
    /// value span kept for const-index resolution.
    Const {
        /// Span of the initializer expression tokens.
        value: Span,
    },
    /// Anything else (use, type, enum, macro invocation, …).
    Other,
}

/// A named struct field with its declared-type span.
#[derive(Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Declared type tokens.
    pub ty: Span,
}

/// A function: parameters with type spans, and a body unless it is a
/// trait-method signature.
#[derive(Debug)]
pub struct Func {
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body block, absent for bodiless signatures.
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding name when the pattern is a plain (possibly `mut`)
    /// identifier; `None` for destructuring patterns and `self`.
    pub name: Option<String>,
    /// Declared type tokens (empty for bare `self`).
    pub ty: Span,
}

/// `{ … }`: span includes both braces; statements tile the interior.
#[derive(Debug)]
pub struct Block {
    /// Token span including the braces.
    pub span: Span,
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub struct Stmt {
    /// Full token span (through the trailing `;` when present).
    pub span: Span,
    /// Statement classification.
    pub kind: StmtKind,
}

/// Statement classification.
#[derive(Debug)]
pub enum StmtKind {
    /// `let pat(: ty)? (= init)? (else { … })?;`
    Let {
        /// Pattern tokens.
        pat: Span,
        /// Declared-type tokens when annotated.
        ty: Option<Span>,
        /// Initializer expression.
        init: Option<Expr>,
        /// `let … else` diverging block.
        els: Option<Block>,
    },
    /// A nested item (fn, const, use, … inside a block).
    Item(Item),
    /// An expression statement (with or without trailing `;`).
    Expr(Expr),
}

/// An expression node. `span` covers the whole expression.
#[derive(Debug)]
pub struct Expr {
    /// Token span of the expression.
    pub span: Span,
    /// Expression classification.
    pub kind: ExprKind,
}

/// Expression classification: control flow gets structure, the rest
/// stays a flat [`ExprKind::Leaf`] with nested structured nodes in
/// `subs`.
#[derive(Debug)]
pub enum ExprKind {
    /// `if cond { … } (else …)?` — `els` is a Block expr or another If.
    If {
        /// Condition (scanned to the `{` at depth 0).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Else branch (block or chained if).
        els: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee expression.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
    },
    /// `loop { … }` (label recorded when present).
    Loop {
        /// Loop label without the quote, e.g. `outer`.
        label: Option<String>,
        /// Body.
        body: Block,
    },
    /// `while cond { … }` (including `while let`).
    While {
        /// Loop label.
        label: Option<String>,
        /// Condition.
        cond: Box<Expr>,
        /// Body.
        body: Block,
    },
    /// `for pat in iter { … }`.
    For {
        /// Loop label.
        label: Option<String>,
        /// Binding pattern tokens.
        pat: Span,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
    },
    /// A bare / labeled / `unsafe` block in expression position.
    Block(Block),
    /// `(move)? |params| body`.
    Closure {
        /// Parameter tokens between the pipes.
        params: Span,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `name!(…)` / `name![…]` / `name!{…}` with nested structure
    /// scanned out of the arguments.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Argument tokens inside the delimiters.
        args: Span,
        /// Structured nodes found inside the arguments.
        subs: Vec<Expr>,
    },
    /// `return (expr)?`.
    Return(Option<Box<Expr>>),
    /// `break ('label)? (expr)?`.
    Break(Option<Box<Expr>>),
    /// `continue ('label)?`.
    Continue,
    /// Anything else: a flat span with any structured nodes found
    /// inside delimiter groups collected in order.
    Leaf {
        /// Structured nodes nested inside the leaf (in groups, struct
        /// literals, macro args, or mid-expression control flow).
        subs: Vec<Expr>,
    },
}

impl Expr {
    /// Visit this expression and every structured descendant,
    /// pre-order. Blocks recurse through their statements.
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::If { cond, then, els } => {
                cond.walk(f);
                walk_block(then, f);
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                scrutinee.walk(f);
                for a in arms {
                    if let Some(g) = &a.guard {
                        g.walk(f);
                    }
                    a.body.walk(f);
                }
            }
            ExprKind::Loop { body, .. } | ExprKind::Block(body) => walk_block(body, f),
            ExprKind::While { cond, body, .. } => {
                cond.walk(f);
                walk_block(body, f);
            }
            ExprKind::For { iter, body, .. } => {
                iter.walk(f);
                walk_block(body, f);
            }
            ExprKind::Closure { body, .. } => body.walk(f),
            ExprKind::Macro { subs, .. } | ExprKind::Leaf { subs } => {
                for s in subs {
                    s.walk(f);
                }
            }
            ExprKind::Return(e) | ExprKind::Break(e) => {
                if let Some(e) = e {
                    e.walk(f);
                }
            }
            ExprKind::Continue => {}
        }
    }
}

/// Walk every expression in a block, pre-order.
pub fn walk_block<'a>(b: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Let { init, els, .. } => {
                if let Some(e) = init {
                    e.walk(f);
                }
                if let Some(e) = els {
                    walk_block(e, f);
                }
            }
            StmtKind::Expr(e) => e.walk(f),
            StmtKind::Item(it) => walk_item(it, f),
        }
    }
}

/// Walk every expression under an item, pre-order.
pub fn walk_item<'a>(it: &'a Item, f: &mut dyn FnMut(&'a Expr)) {
    match &it.kind {
        ItemKind::Fn(func) => {
            if let Some(b) = &func.body {
                walk_block(b, f);
            }
        }
        ItemKind::Items(items) => {
            for i in items {
                walk_item(i, f);
            }
        }
        _ => {}
    }
}

/// Walk every expression in the tree, pre-order.
pub fn walk_tree<'a>(t: &'a Tree, f: &mut dyn FnMut(&'a Expr)) {
    for it in &t.items {
        walk_item(it, f);
    }
}

/// Visit every statement in the tree, including statements of blocks
/// nested inside expressions (loop bodies, match arms, closures, …).
pub fn walk_stmts<'a>(t: &'a Tree, f: &mut dyn FnMut(&'a Stmt)) {
    for it in &t.items {
        stmts_in_item(it, f);
    }
}

fn stmts_in_item<'a>(it: &'a Item, f: &mut dyn FnMut(&'a Stmt)) {
    match &it.kind {
        ItemKind::Fn(func) => {
            if let Some(b) = &func.body {
                stmts_in_block(b, f);
            }
        }
        ItemKind::Items(items) => {
            for i in items {
                stmts_in_item(i, f);
            }
        }
        _ => {}
    }
}

/// Visit every statement in a block and in all blocks nested below it.
pub fn stmts_in_block<'a>(b: &'a Block, f: &mut dyn FnMut(&'a Stmt)) {
    for s in &b.stmts {
        f(s);
        match &s.kind {
            StmtKind::Let { init, els, .. } => {
                if let Some(e) = init {
                    stmts_in_expr(e, f);
                }
                if let Some(e) = els {
                    stmts_in_block(e, f);
                }
            }
            StmtKind::Expr(e) => stmts_in_expr(e, f),
            StmtKind::Item(it) => stmts_in_item(it, f),
        }
    }
}

fn stmts_in_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Stmt)) {
    match &e.kind {
        ExprKind::If { cond, then, els } => {
            stmts_in_expr(cond, f);
            stmts_in_block(then, f);
            if let Some(x) = els {
                stmts_in_expr(x, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            stmts_in_expr(scrutinee, f);
            for a in arms {
                if let Some(g) = &a.guard {
                    stmts_in_expr(g, f);
                }
                stmts_in_expr(&a.body, f);
            }
        }
        ExprKind::Loop { body, .. } | ExprKind::Block(body) => stmts_in_block(body, f),
        ExprKind::While { cond, body, .. } => {
            stmts_in_expr(cond, f);
            stmts_in_block(body, f);
        }
        ExprKind::For { iter, body, .. } => {
            stmts_in_expr(iter, f);
            stmts_in_block(body, f);
        }
        ExprKind::Closure { body, .. } => stmts_in_expr(body, f),
        ExprKind::Macro { subs, .. } | ExprKind::Leaf { subs } => {
            for s in subs {
                stmts_in_expr(s, f);
            }
        }
        ExprKind::Return(x) | ExprKind::Break(x) => {
            if let Some(x) = x {
                stmts_in_expr(x, f);
            }
        }
        ExprKind::Continue => {}
    }
}

/// One `match` arm: `pat (if guard)? => body`.
#[derive(Debug)]
pub struct Arm {
    /// Full arm span (attributes through the trailing `,` when present).
    pub span: Span,
    /// Pattern tokens (up to the guard's `if` or the `=>`).
    pub pat: Span,
    /// Guard expression when present.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// Render the tree as an indented outline — the golden-tree format used
/// by `crates/lint/tests/parser_golden.rs`. Leaf token text is elided to
/// keep goldens stable under formatting-only edits inside leaves.
pub fn dump(tree: &Tree, toks: &[Tok]) -> String {
    let mut s = String::new();
    for it in &tree.items {
        dump_item(it, toks, 0, &mut s);
    }
    s
}

fn pad(depth: usize, s: &mut String) {
    for _ in 0..depth {
        s.push_str("  ");
    }
}

fn dump_item(it: &Item, toks: &[Tok], depth: usize, s: &mut String) {
    pad(depth, s);
    let name = it.name.as_deref().unwrap_or("_");
    match &it.kind {
        ItemKind::Fn(f) => {
            s.push_str(&format!("fn {name}("));
            for (i, p) in f.params.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(p.name.as_deref().unwrap_or("_"));
            }
            s.push_str(")\n");
            if let Some(b) = &f.body {
                dump_block(b, toks, depth + 1, s);
            }
        }
        ItemKind::Items(items) => {
            s.push_str(&format!("items {name}\n"));
            for i in items {
                dump_item(i, toks, depth + 1, s);
            }
        }
        ItemKind::Struct(fields) => {
            s.push_str(&format!("struct {name}\n"));
            for f in fields {
                pad(depth + 1, s);
                s.push_str(&format!("field {}: {}\n", f.name, span_text(f.ty, toks)));
            }
        }
        ItemKind::Const { .. } => s.push_str(&format!("const {name}\n")),
        ItemKind::Other => s.push_str(&format!("other {name}\n")),
    }
}

fn dump_block(b: &Block, toks: &[Tok], depth: usize, s: &mut String) {
    pad(depth, s);
    s.push_str("block\n");
    for st in &b.stmts {
        match &st.kind {
            StmtKind::Let { pat, ty, init, els } => {
                pad(depth + 1, s);
                s.push_str(&format!("let {}", span_text(*pat, toks)));
                if let Some(t) = ty {
                    s.push_str(&format!(": {}", span_text(*t, toks)));
                }
                s.push('\n');
                if let Some(e) = init {
                    dump_expr(e, toks, depth + 2, s);
                }
                if let Some(e) = els {
                    pad(depth + 2, s);
                    s.push_str("else\n");
                    dump_block(e, toks, depth + 3, s);
                }
            }
            StmtKind::Item(it) => dump_item(it, toks, depth + 1, s),
            StmtKind::Expr(e) => dump_expr(e, toks, depth + 1, s),
        }
    }
}

fn dump_expr(e: &Expr, toks: &[Tok], depth: usize, s: &mut String) {
    pad(depth, s);
    match &e.kind {
        ExprKind::If { cond, then, els } => {
            s.push_str("if\n");
            dump_expr(cond, toks, depth + 1, s);
            dump_block(then, toks, depth + 1, s);
            if let Some(e) = els {
                pad(depth, s);
                s.push_str("else\n");
                dump_expr(e, toks, depth + 1, s);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            s.push_str("match\n");
            dump_expr(scrutinee, toks, depth + 1, s);
            for a in arms {
                pad(depth + 1, s);
                s.push_str(&format!("arm {}\n", span_text(a.pat, toks)));
                if let Some(g) = &a.guard {
                    pad(depth + 2, s);
                    s.push_str("guard\n");
                    dump_expr(g, toks, depth + 3, s);
                }
                dump_expr(&a.body, toks, depth + 2, s);
            }
        }
        ExprKind::Loop { label, body } => {
            s.push_str("loop");
            if let Some(l) = label {
                s.push_str(&format!(" '{l}"));
            }
            s.push('\n');
            dump_block(body, toks, depth + 1, s);
        }
        ExprKind::While { label, cond, body } => {
            s.push_str("while");
            if let Some(l) = label {
                s.push_str(&format!(" '{l}"));
            }
            s.push('\n');
            dump_expr(cond, toks, depth + 1, s);
            dump_block(body, toks, depth + 1, s);
        }
        ExprKind::For {
            label,
            pat,
            iter,
            body,
        } => {
            s.push_str(&format!("for {}", span_text(*pat, toks)));
            if let Some(l) = label {
                s.push_str(&format!(" '{l}"));
            }
            s.push('\n');
            dump_expr(iter, toks, depth + 1, s);
            dump_block(body, toks, depth + 1, s);
        }
        ExprKind::Block(b) => dump_block_inline(b, toks, depth, s),
        ExprKind::Closure { params, body } => {
            s.push_str(&format!("closure |{}|\n", span_text(*params, toks)));
            dump_expr(body, toks, depth + 1, s);
        }
        ExprKind::Macro { name, subs, .. } => {
            s.push_str(&format!("macro {name}!\n"));
            for e in subs {
                dump_expr(e, toks, depth + 1, s);
            }
        }
        ExprKind::Return(inner) => {
            s.push_str("return\n");
            if let Some(e) = inner {
                dump_expr(e, toks, depth + 1, s);
            }
        }
        ExprKind::Break(inner) => {
            s.push_str(&format!("break {}\n", break_label(e, toks)));
            if let Some(e) = inner {
                dump_expr(e, toks, depth + 1, s);
            }
        }
        ExprKind::Continue => s.push_str("continue\n"),
        ExprKind::Leaf { subs } => {
            s.push_str("leaf\n");
            for e in subs {
                dump_expr(e, toks, depth + 1, s);
            }
        }
    }
}

/// The label token of a `break`, when one follows the keyword.
fn break_label(e: &Expr, toks: &[Tok]) -> String {
    toks.get(e.span.lo + 1)
        .filter(|t| t.kind == crate::lexer::TokKind::Lifetime)
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

// dump_block as an expression (no extra header line confusion).
fn dump_block_inline(b: &Block, toks: &[Tok], depth: usize, s: &mut String) {
    s.push_str("block-expr\n");
    for st in &b.stmts {
        match &st.kind {
            StmtKind::Let { pat, .. } => {
                pad(depth + 1, s);
                s.push_str(&format!("let {}\n", span_text(*pat, toks)));
            }
            StmtKind::Item(it) => dump_item(it, toks, depth + 1, s),
            StmtKind::Expr(e) => dump_expr(e, toks, depth + 1, s),
        }
    }
}

/// Join a span's token texts with single spaces (golden-dump helper).
pub fn span_text(sp: Span, toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks.iter().take(sp.hi.min(toks.len())).skip(sp.lo) {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s
}

/// Structural check behind the round-trip property: every child span
/// must nest in its parent, siblings must be ordered and disjoint, and
/// top-level items must tile the whole token stream. Returns the first
/// violation as `Err`.
pub fn coverage(tree: &Tree, n_toks: usize) -> Result<(), String> {
    let mut at = 0usize;
    for it in &tree.items {
        if it.span.lo != at {
            return Err(format!(
                "item gap: expected item at token {at}, item starts at {}",
                it.span.lo
            ));
        }
        item_cov(it)?;
        at = it.span.hi;
    }
    if at != n_toks {
        return Err(format!(
            "trailing tokens: items end at {at}, file has {n_toks}"
        ));
    }
    Ok(())
}

fn nested(outer: Span, inner: Span, what: &str) -> Result<(), String> {
    if inner.lo < outer.lo || inner.hi > outer.hi {
        return Err(format!(
            "{what} span {}..{} escapes parent {}..{}",
            inner.lo, inner.hi, outer.lo, outer.hi
        ));
    }
    Ok(())
}

fn item_cov(it: &Item) -> Result<(), String> {
    match &it.kind {
        ItemKind::Fn(f) => {
            if let Some(b) = &f.body {
                nested(it.span, b.span, "fn body")?;
                block_cov(b)?;
            }
            Ok(())
        }
        ItemKind::Items(items) => {
            let mut at = it.span.lo;
            for sub in items {
                if sub.span.lo < at {
                    return Err(format!("overlapping nested items at token {}", sub.span.lo));
                }
                nested(it.span, sub.span, "nested item")?;
                item_cov(sub)?;
                at = sub.span.hi;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn block_cov(b: &Block) -> Result<(), String> {
    // The parser's "no body found" fallback (e.g. an `if` guard inside
    // `matches!` args, which has no block): empty span, no statements.
    if b.span.is_empty() {
        return if b.stmts.is_empty() {
            Ok(())
        } else {
            Err("empty-span block with statements".to_string())
        };
    }
    // Statements tile the interior between the braces.
    let mut at = b.span.lo + 1;
    for s in &b.stmts {
        if s.span.lo != at {
            return Err(format!(
                "stmt gap in block {}..{}: expected stmt at {at}, got {}",
                b.span.lo, b.span.hi, s.span.lo
            ));
        }
        stmt_cov(s)?;
        at = s.span.hi;
    }
    if at != b.span.hi.saturating_sub(1) {
        return Err(format!(
            "block {}..{} interior ends at {at}, want {}",
            b.span.lo,
            b.span.hi,
            b.span.hi.saturating_sub(1)
        ));
    }
    Ok(())
}

fn stmt_cov(s: &Stmt) -> Result<(), String> {
    match &s.kind {
        StmtKind::Let { init, els, .. } => {
            if let Some(e) = init {
                nested(s.span, e.span, "let init")?;
                expr_cov(e)?;
            }
            if let Some(b) = els {
                nested(s.span, b.span, "let-else block")?;
                block_cov(b)?;
            }
            Ok(())
        }
        StmtKind::Item(it) => item_cov(it),
        StmtKind::Expr(e) => {
            nested(s.span, e.span, "stmt expr")?;
            expr_cov(e)
        }
    }
}

fn expr_cov(e: &Expr) -> Result<(), String> {
    let check_subs = |subs: &[Expr]| -> Result<(), String> {
        let mut at = e.span.lo;
        for sub in subs {
            if sub.span.lo < at {
                return Err(format!("overlapping subexprs at token {}", sub.span.lo));
            }
            nested(e.span, sub.span, "subexpr")?;
            expr_cov(sub)?;
            at = sub.span.hi;
        }
        Ok(())
    };
    match &e.kind {
        ExprKind::If { cond, then, els } => {
            nested(e.span, cond.span, "if cond")?;
            expr_cov(cond)?;
            nested(e.span, then.span, "then block")?;
            block_cov(then)?;
            if let Some(x) = els {
                nested(e.span, x.span, "else")?;
                expr_cov(x)?;
            }
            Ok(())
        }
        ExprKind::Match { scrutinee, arms } => {
            nested(e.span, scrutinee.span, "scrutinee")?;
            expr_cov(scrutinee)?;
            for a in arms {
                nested(e.span, a.span, "arm")?;
                if let Some(g) = &a.guard {
                    nested(a.span, g.span, "guard")?;
                    expr_cov(g)?;
                }
                nested(a.span, a.body.span, "arm body")?;
                expr_cov(&a.body)?;
            }
            Ok(())
        }
        ExprKind::Loop { body, .. } | ExprKind::Block(body) => {
            nested(e.span, body.span, "loop body")?;
            block_cov(body)
        }
        ExprKind::While { cond, body, .. } => {
            nested(e.span, cond.span, "while cond")?;
            expr_cov(cond)?;
            nested(e.span, body.span, "while body")?;
            block_cov(body)
        }
        ExprKind::For { iter, body, .. } => {
            nested(e.span, iter.span, "for iter")?;
            expr_cov(iter)?;
            nested(e.span, body.span, "for body")?;
            block_cov(body)
        }
        ExprKind::Closure { body, .. } => {
            nested(e.span, body.span, "closure body")?;
            expr_cov(body)
        }
        ExprKind::Return(x) | ExprKind::Break(x) => {
            if let Some(x) = x {
                nested(e.span, x.span, "return/break value")?;
                expr_cov(x)?;
            }
            Ok(())
        }
        ExprKind::Continue => Ok(()),
        ExprKind::Macro { subs, .. } | ExprKind::Leaf { subs } => check_subs(subs),
    }
}
