//! Findings, allow annotations, and the machine-readable JSON report.

use crate::lexer::LineComment;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One diagnostic produced by a rule (or by the annotation machinery
/// itself, for malformed or unused annotations).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (`raw-time-arithmetic`, …).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Justification from a matching allow annotation, when one suppressed
    /// this finding.
    pub justification: Option<String>,
}

impl Finding {
    /// Whether an allow annotation suppressed this finding.
    pub fn allowed(&self) -> bool {
        self.justification.is_some()
    }
}

/// A parsed `// lit-lint: allow(<rule>, "<justification>")` annotation.
///
/// Grammar (one annotation per line comment):
///
/// ```text
/// // lit-lint: allow(<rule-name>, "<non-empty justification>")
/// ```
///
/// A trailing annotation (code before it on the same line) applies to its
/// own line; an annotation alone on a line applies to the next line that
/// carries code. Annotations stack: consecutive annotation-only lines each
/// apply to the same following code line.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule this annotation suppresses.
    pub rule: String,
    /// The mandatory justification string.
    pub justification: String,
    /// Line the annotation itself is on.
    pub line: u32,
    /// Line the annotation applies to.
    pub target: u32,
}

/// Scan line comments for allow annotations. `code_lines` must hold, in
/// ascending order, every line number that carries at least one token.
/// Malformed annotations come back as error findings — a typo in an
/// annotation must fail the build, not silently stop suppressing.
pub fn parse_allows(
    file: &str,
    comments: &[LineComment],
    lines: &[String],
    code_lines: &[u32],
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        // Annotations are plain `//` comments only: doc comments (`///`,
        // `//!`) routinely *quote* the grammar and must not parse.
        if c.text.starts_with("///") || c.text.starts_with("//!") {
            continue;
        }
        let Some(at) = c.text.find("lit-lint:") else {
            continue;
        };
        let body = c.text[at + "lit-lint:".len()..].trim();
        let snippet = lines
            .get(c.line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        match parse_allow_body(body) {
            Ok((rule, justification)) => {
                // Comments are not tokens, so tokens on the annotation's
                // line mean it trails code → same line; otherwise it
                // applies to the next line that has code.
                let has_code_before = code_lines.binary_search(&c.line).is_ok();
                let target = if has_code_before {
                    c.line
                } else {
                    code_lines
                        .iter()
                        .copied()
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                };
                allows.push(Allow {
                    rule,
                    justification,
                    line: c.line,
                    target,
                });
            }
            Err(why) => errors.push(Finding {
                rule: "bad-allow",
                file: file.to_string(),
                line: c.line,
                col: c.col,
                message: format!(
                    "malformed lit-lint annotation ({why}); expected \
                     `// lit-lint: allow(<rule>, \"<justification>\")`"
                ),
                snippet,
                justification: None,
            }),
        }
    }
    (allows, errors)
}

fn parse_allow_body(body: &str) -> Result<(String, String), &'static str> {
    let rest = body.strip_prefix("allow").ok_or("expected `allow`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or("expected `(`")?;
    let rest = rest.strip_suffix(')').ok_or("expected closing `)`")?;
    let (rule, just) = rest.split_once(',').ok_or("expected `,`")?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err("bad rule name");
    }
    let just = just.trim();
    let just = just
        .strip_prefix('"')
        .and_then(|j| j.strip_suffix('"'))
        .ok_or("justification must be quoted")?;
    if just.trim().is_empty() {
        return Err("justification must be non-empty");
    }
    Ok((rule.to_string(), just.to_string()))
}

/// The complete result of a `check` run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed ones included (`justification` set).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Total allow annotations across the scanned files — the burndown
    /// number `--max-allows` gates on. Stale ones are violations, so
    /// this can only shrink.
    pub allows_total: usize,
}

impl Report {
    /// Findings not suppressed by an annotation.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.allowed())
    }

    /// Count of unsuppressed findings.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    /// Per-rule violation counts.
    pub fn counts_by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in self.violations() {
            *m.entry(f.rule).or_insert(0) += 1;
        }
        m
    }

    /// Serialize to the `lit-lint-v1` JSON schema.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"lit-lint-v1\",\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            s,
            "  \"counts\": {{ \"total\": {}, \"allowed\": {}, \"violations\": {}, \
             \"allow_annotations\": {} }},",
            self.findings.len(),
            self.findings.iter().filter(|f| f.allowed()).count(),
            self.violation_count(),
            self.allows_total
        );
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \
                 \"message\": {}, \"snippet\": {}, \"allowed\": {}, \"justification\": {} }}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message),
                json_str(&f.snippet),
                f.allowed(),
                match &f.justification {
                    Some(j) => json_str(j),
                    None => "null".to_string(),
                }
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (the workspace is dependency-free).
/// Shared with the SARIF serializer.
pub(crate) fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn allow_grammar_round_trip() {
        assert_eq!(
            parse_allow_body("allow(no-panic-hot-path, \"sized at build\")"),
            Ok(("no-panic-hot-path".into(), "sized at build".into()))
        );
        assert!(parse_allow_body("allow(rule)").is_err());
        assert!(parse_allow_body("allow(rule, \"\")").is_err());
        assert!(parse_allow_body("allow(rule, unquoted)").is_err());
        assert!(parse_allow_body("deny(rule, \"x\")").is_err());
    }

    #[test]
    fn trailing_vs_standalone_targets() {
        let src = "let x = 1; // lit-lint: allow(r1, \"same line\")\n\
                   // lit-lint: allow(r2, \"next line\")\n\
                   let y = 2;\n";
        let out = lex(src);
        let lines: Vec<String> = src.lines().map(String::from).collect();
        let mut code_lines: Vec<u32> = out.toks.iter().map(|t| t.line).collect();
        code_lines.dedup();
        let (allows, errs) = parse_allows("f.rs", &out.comments, &lines, &code_lines);
        assert!(errs.is_empty());
        assert_eq!(allows.len(), 2);
        assert_eq!((allows[0].rule.as_str(), allows[0].target), ("r1", 1));
        assert_eq!((allows[1].rule.as_str(), allows[1].target), ("r2", 3));
    }

    #[test]
    fn malformed_annotation_is_a_finding() {
        let src = "// lit-lint: allow(oops\nlet x = 1;\n";
        let out = lex(src);
        let lines: Vec<String> = src.lines().map(String::from).collect();
        let (allows, errs) = parse_allows("f.rs", &out.comments, &lines, &[2]);
        assert!(allows.is_empty());
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rule, "bad-allow");
    }

    #[test]
    fn json_report_escapes() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "raw-time-arithmetic",
            file: "a\\b.rs".into(),
            line: 3,
            col: 1,
            message: "say \"no\"".into(),
            snippet: "x\ty".into(),
            justification: None,
        });
        let j = r.to_json();
        assert!(j.contains("\"lit-lint-v1\""));
        assert!(j.contains("a\\\\b.rs"));
        assert!(j.contains("say \\\"no\\\""));
        assert!(j.contains("\"violations\": 1"));
    }
}
