//! Recursive-descent parser from the token stream to the [`crate::ast`]
//! tree.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never reject.** The parser runs over every `.rs`
//!    file in the workspace (and over lint fixtures that are themselves
//!    deliberately odd); on anything it does not understand it degrades
//!    to flat [`ExprKind::Leaf`] / [`ItemKind::Other`] spans and keeps
//!    going, advancing at least one token per step.
//! 2. **Spans tile.** Items tile the file, statements tile their block,
//!    sub-expressions nest in order — `ast::coverage` checks this and
//!    the round-trip property test leans on it. Error recovery is
//!    therefore span-preserving: an unparseable region becomes a leaf
//!    covering exactly the tokens it ate.
//! 3. **Single-char puncts.** The lexer emits `>` `>` for `>>` and
//!    `=` `>` for `=>`, so the parser works in terms of adjacency:
//!    turbofish depth counts individual `>`, arm arrows are an `=`
//!    immediately followed by `>`.
//!
//! Known approximations (deliberate, documented for rule authors):
//! struct literals in expression position are treated as part of the
//! containing leaf (their braces recursed as a group, with any control
//! flow inside still discovered); operator precedence is never
//! computed; patterns and types are spans, not trees.

use crate::ast::{
    Arm, Block, Expr, ExprKind, Field, Func, Item, ItemKind, Param, Span, Stmt, StmtKind, Tree,
};
use crate::lexer::{Tok, TokKind};

/// Parse a full token stream into a [`Tree`].
pub fn parse(toks: &[Tok]) -> Tree {
    let mut p = Parser {
        toks,
        attrs: Vec::new(),
    };
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let it = p.item(i);
        debug_assert!(it.span.hi > i, "parser must advance");
        i = it.span.hi.max(i + 1);
        items.push(it);
    }
    let mut attrs = p.attrs;
    attrs.sort_by_key(|s| s.lo);
    Tree { items, attrs }
}

struct Parser<'a> {
    toks: &'a [Tok],
    /// Attribute spans recorded as a side effect of parsing.
    attrs: Vec<Span>,
}

/// Keywords that begin an item in statement/module position.
fn is_item_keyword(t: &Tok) -> bool {
    t.kind == TokKind::Ident
        && matches!(
            t.text.as_str(),
            "fn" | "struct"
                | "enum"
                | "union"
                | "impl"
                | "trait"
                | "mod"
                | "use"
                | "const"
                | "static"
                | "type"
                | "extern"
                | "macro_rules"
        )
}

/// Visibility / item-qualifier idents that may precede the item keyword.
fn is_item_qualifier(t: &Tok) -> bool {
    t.kind == TokKind::Ident && matches!(t.text.as_str(), "pub" | "unsafe" | "async" | "default")
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Tok> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_ident(s))
    }

    /// `=>`: an `=` token immediately followed by `>` (the lexer splits
    /// multi-char operators).
    fn is_fat_arrow(&self, i: usize) -> bool {
        self.is_punct(i, '=')
            && self.is_punct(i + 1, '>')
            && self.tok(i).map(|t| t.hi) == self.tok(i + 1).map(|t| t.lo)
    }

    /// `->` likewise.
    fn is_thin_arrow(&self, i: usize) -> bool {
        self.is_punct(i, '-')
            && self.is_punct(i + 1, '>')
            && self.tok(i).map(|t| t.hi) == self.tok(i + 1).map(|t| t.lo)
    }

    /// `::` likewise.
    fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':')
            && self.is_punct(i + 1, ':')
            && self.tok(i).map(|t| t.hi) == self.tok(i + 1).map(|t| t.lo)
    }

    /// Index just past the matching close delimiter for the open
    /// delimiter at `i` (which must be `(`, `[` or `{`). Clamped to end
    /// of stream on imbalance.
    fn matching_close(&self, i: usize) -> usize {
        let mut depth = 0isize;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Skip one `#[…]` or `#![…]` starting at `i`; records the span.
    /// Returns the index past it, or `i` if no attribute starts here.
    fn skip_attr(&mut self, i: usize) -> usize {
        if !self.is_punct(i, '#') {
            return i;
        }
        let mut j = i + 1;
        if self.is_punct(j, '!') {
            j += 1;
        }
        if !self.is_punct(j, '[') {
            return i;
        }
        let end = self.matching_close(j);
        self.attrs.push(Span { lo: i, hi: end });
        end
    }

    /// Skip a run of attributes (outer or inner), recording each.
    fn skip_attrs(&mut self, mut i: usize) -> usize {
        loop {
            let j = self.skip_attr(i);
            if j == i {
                return i;
            }
            i = j;
        }
    }

    /// Skip generic parameters `<…>` at `i`, counting single `>` tokens
    /// (so `Vec<Vec<T>>`'s two adjacent `>` each close one level).
    /// Returns the index past the closing `>`, or `i` if not at `<`.
    fn skip_generics(&self, i: usize) -> usize {
        if !self.is_punct(i, '<') {
            return i;
        }
        let mut depth = 0isize;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            match t.text.as_str() {
                "<" => depth += 1,
                ">"
                    // `->` in an Fn(…) -> R generic default is a thin
                    // arrow, not a close.
                    if !(j > 0 && self.is_thin_arrow(j - 1)) => {
                        depth -= 1;
                        if depth <= 0 {
                            return j + 1;
                        }
                    }
                "(" | "[" | "{" => {
                    j = self.matching_close(j);
                    continue;
                }
                ";" => return j, // safety valve: generics never span a `;`
                _ => {}
            }
            j += 1;
        }
        self.toks.len()
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    /// Parse one item starting at `i`. Always returns an item whose span
    /// starts at `i` and ends strictly after it.
    fn item(&mut self, i: usize) -> Item {
        let start = i;
        let mut j = self.skip_attrs(i);
        // Qualifiers: `pub`, `pub(crate)`, `unsafe`, `async`, `default`
        // — and `const` when it qualifies a `const fn` rather than
        // starting a const item.
        while let Some(t) = self.tok(j) {
            if is_item_qualifier(t)
                || (t.is_ident("const")
                    && self.tok(j + 1).is_some_and(|n| {
                        n.is_ident("fn")
                            || n.is_ident("unsafe")
                            || n.is_ident("async")
                            || n.is_ident("extern")
                    }))
            {
                j += 1;
                if self.is_punct(j, '(') {
                    j = self.matching_close(j);
                }
            } else {
                break;
            }
        }
        let Some(kw) = self.tok(j).filter(|t| is_item_keyword(t)) else {
            // Not an item: eat through the next `;` or balanced `{…}`
            // at depth 0 so module-level stray tokens stay tiled.
            return self.other_item(start, j);
        };
        match kw.text.as_str() {
            "fn" => self.fn_item(start, j + 1),
            "struct" => self.struct_item(start, j + 1),
            "impl" | "trait" | "mod" => self.items_container(start, j, kw.text.as_str()),
            "const" | "static" => self.const_item(start, j + 1),
            _ => self.other_item(start, j),
        }
    }

    /// Fallback item: consume to the end of the construct (`;`, or a
    /// top-level `{…}` body, whichever comes first at depth 0).
    fn other_item(&mut self, start: usize, mut j: usize) -> Item {
        let name = self
            .tok(j + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        while let Some(t) = self.tok(j) {
            if t.is_punct(';') {
                j += 1;
                break;
            }
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                j = self.matching_close(j);
                if self.toks.get(j - 1).is_some_and(|t| t.is_punct('}')) {
                    // `macro_rules! m { … }` / enum bodies end here;
                    // `fn`-less parenthesized forms keep scanning for `;`.
                    if self.tok(j).is_some_and(|t| t.is_punct(';')) {
                        j += 1;
                    }
                    break;
                }
                continue;
            }
            j += 1;
        }
        Item {
            span: Span {
                lo: start,
                hi: j.max(start + 1),
            },
            name,
            kind: ItemKind::Other,
        }
    }

    /// `fn name<…>(params) -> Ret (where …)? { body }` or `;`.
    fn fn_item(&mut self, start: usize, mut j: usize) -> Item {
        let name = self
            .tok(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        if name.is_some() {
            j += 1;
        }
        j = self.skip_generics(j);
        let mut params = Vec::new();
        if self.is_punct(j, '(') {
            let close = self.matching_close(j);
            params = self.parse_params(j + 1, close.saturating_sub(1));
            j = close;
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        while let Some(t) = self.tok(j) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                j = self.matching_close(j);
                continue;
            }
            if t.is_punct('<') {
                j = self.skip_generics(j).max(j + 1);
                continue;
            }
            j += 1;
        }
        let body = if self.is_punct(j, '{') {
            let b = self.block(j);
            j = b.span.hi;
            Some(b)
        } else {
            if self.is_punct(j, ';') {
                j += 1;
            }
            None
        };
        Item {
            span: Span {
                lo: start,
                hi: j.max(start + 1),
            },
            name,
            kind: ItemKind::Fn(Func { params, body }),
        }
    }

    /// Parameters between `(`+1 and `)`: split on top-level commas, each
    /// `pat: ty`.
    fn parse_params(&mut self, lo: usize, hi: usize) -> Vec<Param> {
        let mut out = Vec::new();
        let mut j = lo;
        while j < hi {
            let pstart = self.skip_attrs(j);
            // Find this parameter's end (top-level comma) and its `:`.
            let mut k = pstart;
            let mut colon = None;
            while k < hi {
                let Some(t) = self.tok(k) else { break };
                if t.is_punct(',') {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    k = self.matching_close(k);
                    continue;
                }
                if t.is_punct('<') {
                    k = self.skip_generics(k).max(k + 1);
                    continue;
                }
                if t.is_punct(':') && colon.is_none() && !self.is_path_sep(k) {
                    colon = Some(k);
                }
                k += 1;
            }
            if k > pstart {
                let (name, ty) = match colon {
                    Some(c) => {
                        // Plain (possibly `mut`/`ref`) ident pattern?
                        let mut n = pstart;
                        while self.is_ident(n, "mut") || self.is_ident(n, "ref") {
                            n += 1;
                        }
                        let name = if n + 1 == c {
                            self.tok(n)
                                .filter(|t| t.kind == TokKind::Ident)
                                .map(|t| t.text.clone())
                        } else {
                            None
                        };
                        (name, Span { lo: c + 1, hi: k })
                    }
                    // `self` / `&mut self` — no declared type.
                    None => (None, Span::empty(k)),
                };
                out.push(Param { name, ty });
            }
            j = k + 1;
        }
        out
    }

    /// `struct Name<…> { fields }` (tuple/unit structs fall back to Other).
    fn struct_item(&mut self, start: usize, mut j: usize) -> Item {
        let name = self
            .tok(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        if name.is_some() {
            j += 1;
        }
        j = self.skip_generics(j);
        // Skip a where clause.
        while let Some(t) = self.tok(j) {
            if t.is_punct('{') || t.is_punct(';') || t.is_punct('(') {
                break;
            }
            if t.is_punct('<') {
                j = self.skip_generics(j).max(j + 1);
                continue;
            }
            j += 1;
        }
        if !self.is_punct(j, '{') {
            // Tuple or unit struct.
            return self.other_item(start, j);
        }
        let close = self.matching_close(j);
        let fields = self.parse_fields(j + 1, close.saturating_sub(1));
        Item {
            span: Span {
                lo: start,
                hi: close.max(start + 1),
            },
            name,
            kind: ItemKind::Struct(fields),
        }
    }

    /// Braced-struct fields: `(attrs)? (pub)? name: ty,` …
    fn parse_fields(&mut self, lo: usize, hi: usize) -> Vec<Field> {
        let mut out = Vec::new();
        let mut j = lo;
        while j < hi {
            j = self.skip_attrs(j);
            while self.is_ident(j, "pub") {
                j += 1;
                if self.is_punct(j, '(') {
                    j = self.matching_close(j);
                }
            }
            let name = self
                .tok(j)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            // `name :` then type to top-level comma.
            if let Some(name) = name {
                if self.is_punct(j + 1, ':') && !self.is_path_sep(j + 1) {
                    let ty_lo = j + 2;
                    let mut k = ty_lo;
                    while k < hi {
                        let Some(t) = self.tok(k) else { break };
                        if t.is_punct(',') {
                            break;
                        }
                        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                            k = self.matching_close(k);
                            continue;
                        }
                        if t.is_punct('<') {
                            k = self.skip_generics(k).max(k + 1);
                            continue;
                        }
                        k += 1;
                    }
                    out.push(Field {
                        name,
                        ty: Span { lo: ty_lo, hi: k },
                    });
                    j = k + 1;
                    continue;
                }
            }
            // Recovery: skip to next top-level comma.
            let mut k = j;
            while k < hi {
                let Some(t) = self.tok(k) else { break };
                if t.is_punct(',') {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    k = self.matching_close(k);
                    continue;
                }
                k += 1;
            }
            j = k + 1;
        }
        out
    }

    /// `impl … { items }` / `trait … { items }` / `mod name { items }`.
    fn items_container(&mut self, start: usize, kw_at: usize, kw: &str) -> Item {
        let mut j = kw_at + 1;
        let name = if kw == "mod" || kw == "trait" {
            let n = self
                .tok(j)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            if n.is_some() {
                j += 1;
            }
            n
        } else {
            // impl: name the implemented type by its last path segment
            // before the `{` (best effort; None is fine).
            None
        };
        // Scan to the body `{` (or `;` for `mod name;`), skipping
        // generics so `impl<T: Ord> Foo<T> { … }` finds the right brace.
        while let Some(t) = self.tok(j) {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                return Item {
                    span: Span {
                        lo: start,
                        hi: j + 1,
                    },
                    name,
                    kind: ItemKind::Other,
                };
            }
            if t.is_punct('<') {
                j = self.skip_generics(j).max(j + 1);
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                j = self.matching_close(j);
                continue;
            }
            j += 1;
        }
        if !self.is_punct(j, '{') {
            return self.other_item(start, j);
        }
        let close = self.matching_close(j);
        let mut items = Vec::new();
        let mut k = self.skip_attrs(j + 1); // inner attrs (`#![…]`)
        let body_end = close.saturating_sub(1);
        while k < body_end {
            let it = self.item(k);
            let next = it.span.hi.min(body_end).max(k + 1);
            items.push(it);
            k = next;
        }
        Item {
            span: Span {
                lo: start,
                hi: close.max(start + 1),
            },
            name,
            kind: ItemKind::Items(items),
        }
    }

    /// `const NAME: Ty = value;` / `static NAME: Ty = value;`
    fn const_item(&mut self, start: usize, mut j: usize) -> Item {
        while self.is_ident(j, "mut") {
            j += 1;
        }
        let name = self
            .tok(j)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        // Scan to the `=` at depth 0, then the value runs to the `;`.
        let mut k = j;
        let mut eq = None;
        while let Some(t) = self.tok(k) {
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('=') && eq.is_none() && !self.is_fat_arrow(k) {
                eq = Some(k);
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                k = self.matching_close(k);
                continue;
            }
            if t.is_punct('<') {
                k = self.skip_generics(k).max(k + 1);
                continue;
            }
            k += 1;
        }
        let end = if self.is_punct(k, ';') {
            k + 1
        } else {
            k.max(start + 1)
        };
        let value = match eq {
            Some(e) => Span { lo: e + 1, hi: k },
            None => Span::empty(k),
        };
        Item {
            span: Span { lo: start, hi: end },
            name,
            kind: ItemKind::Const { value },
        }
    }

    // ------------------------------------------------------------------
    // Blocks and statements
    // ------------------------------------------------------------------

    /// Parse the block whose `{` is at `i`.
    fn block(&mut self, i: usize) -> Block {
        debug_assert!(self.is_punct(i, '{'));
        let close = self.matching_close(i);
        let interior_end = close.saturating_sub(1);
        let mut stmts = Vec::new();
        let mut j = i + 1;
        while j < interior_end {
            let s = self.stmt(j, interior_end);
            debug_assert!(s.span.hi > j);
            j = s.span.hi.min(interior_end).max(j + 1);
            stmts.push(s);
        }
        // Tiling guarantee: clamp the final stmt to the interior.
        if let Some(last) = stmts.last_mut() {
            if last.span.hi > interior_end {
                last.span.hi = interior_end;
            }
        }
        Block {
            span: Span { lo: i, hi: close },
            stmts,
        }
    }

    /// Parse one statement starting at `i`, not scanning past `limit`.
    fn stmt(&mut self, i: usize, limit: usize) -> Stmt {
        let start = i;
        let j = self.skip_attrs(i);
        // Stray semicolon.
        if self.is_punct(j, ';') {
            return Stmt {
                span: Span {
                    lo: start,
                    hi: j + 1,
                },
                kind: StmtKind::Expr(Expr {
                    span: Span {
                        lo: start,
                        hi: j + 1,
                    },
                    kind: ExprKind::Leaf { subs: Vec::new() },
                }),
            };
        }
        if self.is_ident(j, "let") {
            return self.let_stmt(start, j + 1, limit);
        }
        // Nested items. `unsafe {` / `async {` are block expressions,
        // not items, so require the item keyword after qualifiers.
        if self.tok(j).is_some_and(is_item_keyword)
            || (self.tok(j).is_some_and(is_item_qualifier) && {
                let mut k = j;
                while self.tok(k).is_some_and(is_item_qualifier) {
                    k += 1;
                    if self.is_punct(k, '(') {
                        k = self.matching_close(k);
                    }
                }
                self.tok(k).is_some_and(is_item_keyword)
            })
        {
            let mut it = self.item(start);
            if it.span.hi > limit {
                it.span.hi = limit;
            }
            let span = it.span;
            return Stmt {
                span,
                kind: StmtKind::Item(it),
            };
        }
        // Expression statement.
        let e = self.expr(j, limit);
        let mut hi = e.span.hi;
        if self.is_punct(hi, ';') && hi < limit {
            hi += 1;
        }
        Stmt {
            span: Span {
                lo: start,
                hi: hi.max(start + 1),
            },
            kind: StmtKind::Expr(e),
        }
    }

    /// `let pat(: ty)? (= init)? (else { … })? ;`
    fn let_stmt(&mut self, start: usize, mut j: usize, limit: usize) -> Stmt {
        let pat_lo = j;
        // Pattern runs to `:` (type), `=` (init), or `;` at depth 0.
        let mut colon = None;
        let mut eq = None;
        while j < limit {
            let Some(t) = self.tok(j) else { break };
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('=') && !self.is_fat_arrow(j) {
                // `==`, `<=`, `>=`, `!=` cannot appear at pattern/type
                // depth 0 before the init `=`; but `=` preceded by
                // `<`/`>`/`!`/`=` would be part of an operator — the
                // pattern position makes this unambiguous enough.
                eq = Some(j);
                break;
            }
            if t.is_punct(':') && colon.is_none() && !self.is_path_sep(j) {
                // `::` in a path pattern is two colons; skip both.
                colon = Some(j);
            }
            if self.is_path_sep(j) {
                j += 2;
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                j = self.matching_close(j);
                continue;
            }
            if t.is_punct('<') && colon.is_some() {
                j = self.skip_generics(j).max(j + 1);
                continue;
            }
            j += 1;
        }
        let pat = Span {
            lo: pat_lo,
            hi: colon.unwrap_or(eq.unwrap_or(j)),
        };
        let ty = colon.map(|c| Span {
            lo: c + 1,
            hi: eq.unwrap_or(j),
        });
        let (init, els, mut hi) = match eq {
            Some(e) => {
                let init = self.expr(e + 1, limit);
                let mut hi = init.span.hi;
                // let … else { … }
                let els = if self.is_ident(hi, "else") && self.is_punct(hi + 1, '{') {
                    let b = self.block(hi + 1);
                    hi = b.span.hi;
                    Some(b)
                } else {
                    None
                };
                (Some(init), els, hi)
            }
            None => (None, None, j),
        };
        if self.is_punct(hi, ';') && hi < limit {
            hi += 1;
        }
        Stmt {
            span: Span {
                lo: start,
                hi: hi.max(start + 1),
            },
            kind: StmtKind::Let { pat, ty, init, els },
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Parse one expression starting at `i`, not scanning past `limit`.
    /// Statement-position control flow gets structure; everything else
    /// becomes a leaf scanned to the statement boundary.
    fn expr(&mut self, i: usize, limit: usize) -> Expr {
        let i = self.skip_attrs(i);
        if i >= limit {
            return Expr {
                span: Span::empty(limit),
                kind: ExprKind::Leaf { subs: Vec::new() },
            };
        }
        // Labeled loops: 'label : loop/while/for/{
        if self.tok(i).is_some_and(|t| t.kind == TokKind::Lifetime) && self.is_punct(i + 1, ':') {
            let label = Some(self.toks[i].text.trim_start_matches('\'').to_string());
            let mut e = self.control(i + 2, limit, label);
            e.span.lo = i;
            return e;
        }
        self.control(i, limit, None)
    }

    /// Dispatch on the leading token; falls back to [`Self::leaf`].
    fn control(&mut self, i: usize, limit: usize, label: Option<String>) -> Expr {
        let Some(t) = self.tok(i) else {
            return Expr {
                span: Span::empty(limit),
                kind: ExprKind::Leaf { subs: Vec::new() },
            };
        };
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "if" => return self.if_expr(i, limit),
                "match" => return self.match_expr(i, limit),
                "loop" if self.is_punct(i + 1, '{') => {
                    let body = self.block(i + 1);
                    let hi = body.span.hi;
                    return Expr {
                        span: Span { lo: i, hi },
                        kind: ExprKind::Loop { label, body },
                    };
                }
                "while" => return self.while_expr(i, limit, label),
                "for" => return self.for_expr(i, limit, label),
                "return" => {
                    let inner = self.opt_value(i + 1, limit);
                    let hi = inner.as_ref().map_or(i + 1, |e| e.span.hi);
                    return Expr {
                        span: Span { lo: i, hi },
                        kind: ExprKind::Return(inner.map(Box::new)),
                    };
                }
                "break" => {
                    let mut j = i + 1;
                    if self.tok(j).is_some_and(|t| t.kind == TokKind::Lifetime) {
                        j += 1;
                    }
                    let inner = self.opt_value(j, limit);
                    let hi = inner.as_ref().map_or(j, |e| e.span.hi);
                    return Expr {
                        span: Span { lo: i, hi },
                        kind: ExprKind::Break(inner.map(Box::new)),
                    };
                }
                "continue" => {
                    let mut j = i + 1;
                    if self.tok(j).is_some_and(|t| t.kind == TokKind::Lifetime) {
                        j += 1;
                    }
                    return Expr {
                        span: Span { lo: i, hi: j },
                        kind: ExprKind::Continue,
                    };
                }
                "unsafe" | "async" if self.is_punct(i + 1, '{') => {
                    let body = self.block(i + 1);
                    let hi = body.span.hi;
                    return Expr {
                        span: Span { lo: i, hi },
                        kind: ExprKind::Block(body),
                    };
                }
                "move" if self.is_punct(i + 1, '|') => {
                    return self.closure(i, i + 1, limit);
                }
                _ => {}
            }
        }
        if t.is_punct('{') {
            let body = self.block(i);
            let hi = body.span.hi;
            return Expr {
                span: Span { lo: i, hi },
                kind: ExprKind::Block(body),
            };
        }
        if t.is_punct('|') {
            return self.closure(i, i, limit);
        }
        self.leaf(i, limit)
    }

    /// Optional value after `return` / `break`: absent when the next
    /// token terminates the expression.
    fn opt_value(&mut self, j: usize, limit: usize) -> Option<Expr> {
        let t = self.tok(j)?;
        if j >= limit
            || t.is_punct(';')
            || t.is_punct('}')
            || t.is_punct(')')
            || t.is_punct(']')
            || t.is_punct(',')
        {
            return None;
        }
        Some(self.expr(j, limit))
    }

    /// `if cond { then } (else if …| else { … })?` — `if let` included
    /// (the condition leaf simply starts at `let`).
    fn if_expr(&mut self, i: usize, limit: usize) -> Expr {
        let cond = self.cond(i + 1, limit);
        let mut hi = cond.span.hi;
        let then = if self.is_punct(hi, '{') {
            let b = self.block(hi);
            hi = b.span.hi;
            b
        } else {
            Block {
                span: Span::empty(hi),
                stmts: Vec::new(),
            }
        };
        let els = if self.is_ident(hi, "else") {
            let e = if self.is_ident(hi + 1, "if") {
                self.if_expr(hi + 1, limit)
            } else if self.is_punct(hi + 1, '{') {
                let b = self.block(hi + 1);
                let bh = b.span.hi;
                Expr {
                    span: Span { lo: hi + 1, hi: bh },
                    kind: ExprKind::Block(b),
                }
            } else {
                self.leaf(hi + 1, limit)
            };
            hi = e.span.hi;
            Some(Box::new(e))
        } else {
            None
        };
        Expr {
            span: Span { lo: i, hi },
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
        }
    }

    /// A condition / scrutinee / iterated expression: a leaf scanned to
    /// the first `{` at depth 0 (Rust bans bare struct literals here, so
    /// that `{` begins the body).
    fn cond(&mut self, i: usize, limit: usize) -> Expr {
        let mut j = i;
        let mut subs = Vec::new();
        while j < limit {
            let Some(t) = self.tok(j) else { break };
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                let close = self.matching_close(j);
                self.scan_group(j + 1, close.saturating_sub(1), &mut subs);
                j = close;
                continue;
            }
            if t.is_punct('|') && is_closure_position(self.toks, j) {
                let c = self.closure_in_leaf(j, limit);
                let ch = c.span.hi;
                subs.push(c);
                j = ch;
                continue;
            }
            j += 1;
        }
        Expr {
            span: Span { lo: i, hi: j },
            kind: ExprKind::Leaf { subs },
        }
    }

    /// `match scrutinee { arms }`.
    fn match_expr(&mut self, i: usize, limit: usize) -> Expr {
        let scrutinee = self.cond(i + 1, limit);
        let mut hi = scrutinee.span.hi;
        let mut arms = Vec::new();
        if self.is_punct(hi, '{') {
            let close = self.matching_close(hi);
            let interior_end = close.saturating_sub(1);
            let mut j = hi + 1;
            while j < interior_end {
                let arm = self.arm(j, interior_end);
                debug_assert!(arm.span.hi > j);
                j = arm.span.hi.min(interior_end).max(j + 1);
                arms.push(arm);
            }
            hi = close;
        }
        Expr {
            span: Span { lo: i, hi },
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
        }
    }

    /// One match arm: `(attrs)? pat (if guard)? => body ,?`
    fn arm(&mut self, i: usize, limit: usize) -> Arm {
        let start = i;
        let j = self.skip_attrs(i);
        // Pattern: scan to a guard `if` or the `=>`, both at depth 0.
        let mut k = j;
        let mut guard_if = None;
        while k < limit {
            let Some(t) = self.tok(k) else { break };
            if self.is_fat_arrow(k) {
                break;
            }
            if t.is_ident("if") && guard_if.is_none() {
                guard_if = Some(k);
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                k = self.matching_close(k);
                continue;
            }
            if t.is_punct('<') && k > j && self.is_path_sep(k.saturating_sub(2)) {
                // Turbofish in a path pattern (`Foo::<T>::Bar`).
                k = self.skip_generics(k).max(k + 1);
                continue;
            }
            k += 1;
        }
        let arrow = k; // at the `=` of `=>`, or limit
        let pat_hi = guard_if.unwrap_or(arrow);
        let pat = Span { lo: j, hi: pat_hi };
        let guard = guard_if.map(|g| {
            let mut e = self.leaf_until(g + 1, arrow);
            e.span.hi = arrow;
            e
        });
        // Body: after `=>` (two tokens), an expression; then optional `,`.
        let body_lo = (arrow + 2).min(limit);
        let body = if body_lo < limit {
            self.expr(body_lo, limit)
        } else {
            Expr {
                span: Span::empty(limit),
                kind: ExprKind::Leaf { subs: Vec::new() },
            }
        };
        let mut hi = body.span.hi.max(body_lo).max(start + 1);
        if self.is_punct(hi, ',') && hi < limit {
            hi += 1;
        }
        Arm {
            span: Span { lo: start, hi },
            pat,
            guard,
            body,
        }
    }

    /// `while cond { body }` (incl. `while let`).
    fn while_expr(&mut self, i: usize, limit: usize, label: Option<String>) -> Expr {
        let cond = self.cond(i + 1, limit);
        let mut hi = cond.span.hi;
        let body = if self.is_punct(hi, '{') {
            let b = self.block(hi);
            hi = b.span.hi;
            b
        } else {
            Block {
                span: Span::empty(hi),
                stmts: Vec::new(),
            }
        };
        Expr {
            span: Span { lo: i, hi },
            kind: ExprKind::While {
                label,
                cond: Box::new(cond),
                body,
            },
        }
    }

    /// `for pat in iter { body }`.
    fn for_expr(&mut self, i: usize, limit: usize, label: Option<String>) -> Expr {
        // Pattern: scan to the `in` ident at depth 0.
        let pat_lo = i + 1;
        let mut j = pat_lo;
        while j < limit {
            let Some(t) = self.tok(j) else { break };
            if t.is_ident("in") {
                break;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                j = self.matching_close(j);
                continue;
            }
            j += 1;
        }
        let pat = Span { lo: pat_lo, hi: j };
        let iter = self.cond(j + 1, limit);
        let mut hi = iter.span.hi;
        let body = if self.is_punct(hi, '{') {
            let b = self.block(hi);
            hi = b.span.hi;
            b
        } else {
            Block {
                span: Span::empty(hi),
                stmts: Vec::new(),
            }
        };
        Expr {
            span: Span { lo: i, hi },
            kind: ExprKind::For {
                label,
                pat,
                iter: Box::new(iter),
                body,
            },
        }
    }

    /// A closure in statement position: `(move)? |params| body`.
    /// `start` is the expression start (`move` or the pipe), `pipe_at`
    /// the opening `|`.
    fn closure(&mut self, start: usize, pipe_at: usize, limit: usize) -> Expr {
        let (params, body_lo) = self.closure_params(pipe_at);
        let body = self.expr(body_lo, limit);
        let hi = body.span.hi.max(body_lo);
        Expr {
            span: Span { lo: start, hi },
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        }
    }

    /// Parse `|…|` at `pipe_at`; returns (param span, body start).
    /// Handles the `||` empty-parameter case (two adjacent pipes).
    fn closure_params(&mut self, pipe_at: usize) -> (Span, usize) {
        debug_assert!(self.is_punct(pipe_at, '|'));
        if self.is_punct(pipe_at + 1, '|') {
            return (Span::empty(pipe_at + 1), pipe_at + 2);
        }
        let mut j = pipe_at + 1;
        while let Some(t) = self.tok(j) {
            if t.is_punct('|') {
                return (
                    Span {
                        lo: pipe_at + 1,
                        hi: j,
                    },
                    j + 1,
                );
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                j = self.matching_close(j);
                continue;
            }
            if t.is_punct('<') {
                j = self.skip_generics(j).max(j + 1);
                continue;
            }
            j += 1;
        }
        (
            Span {
                lo: pipe_at + 1,
                hi: self.toks.len(),
            },
            self.toks.len(),
        )
    }

    /// A closure in the middle of a leaf (e.g. an argument). The body is
    /// a leaf scanned with closure-argument terminators (`,`) honored.
    fn closure_in_leaf(&mut self, pipe_at: usize, limit: usize) -> Expr {
        let start = if pipe_at > 0 && self.is_ident(pipe_at - 1, "move") {
            pipe_at - 1
        } else {
            pipe_at
        };
        let (params, body_lo) = self.closure_params(pipe_at);
        // Block-bodied closure: exactly the block.
        if self.is_punct(body_lo, '{') {
            let b = self.block(body_lo);
            let bh = b.span.hi;
            let body = Expr {
                span: Span {
                    lo: body_lo,
                    hi: bh,
                },
                kind: ExprKind::Block(b),
            };
            return Expr {
                span: Span { lo: start, hi: bh },
                kind: ExprKind::Closure {
                    params,
                    body: Box::new(body),
                },
            };
        }
        // Expression-bodied: scan to `,` / close delimiter at depth 0.
        let body = self.leaf_until_comma(body_lo, limit);
        let hi = body.span.hi.max(body_lo);
        Expr {
            span: Span { lo: start, hi },
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        }
    }

    /// Leaf scanned to `,` or a closing delimiter at depth 0 (closure
    /// bodies inside argument lists).
    fn leaf_until_comma(&mut self, i: usize, limit: usize) -> Expr {
        let mut j = i;
        let mut subs = Vec::new();
        while j < limit {
            let Some(t) = self.tok(j) else { break };
            if t.is_punct(',')
                || t.is_punct(')')
                || t.is_punct(']')
                || t.is_punct('}')
                || t.is_punct(';')
            {
                break;
            }
            j = self.leaf_step(j, limit, &mut subs);
        }
        Expr {
            span: Span { lo: i, hi: j },
            kind: ExprKind::Leaf { subs },
        }
    }

    /// Leaf scanned to exactly `hi` (guards: the `=>` is a hard stop).
    fn leaf_until(&mut self, i: usize, hi: usize) -> Expr {
        let mut subs = Vec::new();
        let mut j = i;
        while j < hi {
            j = self.leaf_step(j, hi, &mut subs);
        }
        Expr {
            span: Span { lo: i, hi },
            kind: ExprKind::Leaf { subs },
        }
    }

    /// The general leaf: scan from `i` to the statement boundary (`;` at
    /// depth 0, an unmatched close, or a block-starting keyword that can
    /// only follow a complete expression). Collects structured
    /// sub-expressions (control flow, closures, macros, blocks inside
    /// groups) in `subs`.
    fn leaf(&mut self, i: usize, limit: usize) -> Expr {
        let mut j = i;
        let mut subs = Vec::new();
        while j < limit {
            let Some(t) = self.tok(j) else { break };
            if t.is_punct(';')
                || t.is_punct(')')
                || t.is_punct(']')
                || t.is_punct('}')
                || t.is_punct(',')
            {
                break;
            }
            // A bare `else` at leaf depth 0 can only be a `let … else`
            // divergence block — the statement parser owns it.
            if t.is_ident("else") {
                break;
            }
            // `.await`, `.into()` etc. keep the leaf going after a
            // group; a `{` here is a trailing block (struct literal in
            // leaf position, or the block of a method-chained match —
            // recurse it as a group either way).
            j = self.leaf_step(j, limit, &mut subs);
        }
        Expr {
            span: Span { lo: i, hi: j },
            kind: ExprKind::Leaf { subs },
        }
    }

    /// Advance one step inside a leaf, recursing into groups, macros,
    /// closures and mid-expression control flow. Returns the next index
    /// (always > `j`).
    fn leaf_step(&mut self, j: usize, limit: usize, subs: &mut Vec<Expr>) -> usize {
        let Some(t) = self.tok(j) else { return j + 1 };
        // Macro invocation: ident `!` delimiter.
        if t.kind == TokKind::Ident
            && self.is_punct(j + 1, '!')
            && self
                .tok(j + 2)
                .is_some_and(|d| d.is_punct('(') || d.is_punct('[') || d.is_punct('{'))
        {
            let name = t.text.clone();
            let close = self.matching_close(j + 2);
            let mut msubs = Vec::new();
            self.scan_group(j + 3, close.saturating_sub(1), &mut msubs);
            subs.push(Expr {
                span: Span { lo: j, hi: close },
                kind: ExprKind::Macro {
                    name,
                    args: Span {
                        lo: j + 3,
                        hi: close.saturating_sub(1),
                    },
                    subs: msubs,
                },
            });
            return close;
        }
        // Mid-leaf control flow (e.g. `let x = if c { a } else { b };`,
        // `(0..n).map(...)` chains containing match, etc.).
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "if" | "match" | "loop" | "while" | "for" | "unsafe"
            )
        {
            // Only treat as control flow if it actually introduces a
            // block (guards against `if` inside patterns handled
            // elsewhere, and `for<'a>` higher-ranked bounds).
            if !(t.is_ident("for") && self.is_punct(j + 1, '<')) {
                let e = self.control(j, limit, None);
                if e.span.hi > j && !matches!(e.kind, ExprKind::Leaf { .. }) {
                    let hi = e.span.hi;
                    subs.push(e);
                    return hi;
                }
            }
        }
        // Closures in argument position.
        if t.is_punct('|') && is_closure_position(self.toks, j) {
            let c = self.closure_in_leaf(j, limit);
            let hi = c.span.hi.max(j + 1);
            subs.push(c);
            return hi;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            let close = self.matching_close(j);
            self.scan_group(j + 1, close.saturating_sub(1), subs);
            return close;
        }
        // `<` after `::` (turbofish) — skip so its `>`s don't confuse
        // later comparisons. Plain `<` comparisons just step.
        if t.is_punct('<') && j >= 2 && self.is_path_sep(j - 2) {
            return self.skip_generics(j).max(j + 1);
        }
        j + 1
    }

    /// Scan a delimiter-group interior for structured sub-expressions
    /// (closures, macros, control flow, nested groups). Does not build
    /// leaf nodes for plain tokens — they stay covered by the enclosing
    /// leaf's span.
    fn scan_group(&mut self, lo: usize, hi: usize, subs: &mut Vec<Expr>) {
        let mut j = lo;
        while j < hi {
            let Some(t) = self.tok(j) else { break };
            if (t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "if" | "match" | "loop" | "while" | "for" | "unsafe"
                )
                && !(t.is_ident("for") && self.is_punct(j + 1, '<')))
                || (t.is_punct('|') && is_closure_position(self.toks, j))
                || (t.kind == TokKind::Ident
                    && self.is_punct(j + 1, '!')
                    && self
                        .tok(j + 2)
                        .is_some_and(|d| d.is_punct('(') || d.is_punct('[') || d.is_punct('{')))
            {
                j = self.leaf_step(j, hi, subs);
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                let close = self.matching_close(j);
                self.scan_group(j + 1, close.saturating_sub(1), subs);
                j = close;
                continue;
            }
            j += 1;
        }
    }
}

/// Is the `|` at `j` the start of a closure (vs. a binary or/bit-or)?
/// Heuristic: a closure's `|` follows an expression *opener* — start of
/// stream, `(`/`[`/`{`, `,`, `=`, `=>`/`->` (the `>` token), `;`, `:`,
/// `return`/`move`/`else`/`in`/`if`/`match` keywords — whereas binary
/// `|` follows a complete operand (ident, literal, `)`, `]`).
fn is_closure_position(toks: &[Tok], j: usize) -> bool {
    if j == 0 {
        return true;
    }
    let p = &toks[j - 1];
    match p.kind {
        TokKind::Punct => matches!(
            p.text.as_str(),
            "(" | "[" | "{" | "," | "=" | ">" | ";" | ":" | "?" | "&"
        ),
        TokKind::Ident => matches!(
            p.text.as_str(),
            "return" | "move" | "else" | "in" | "if" | "match" | "break" | "do" | "yield"
        ),
        _ => false,
    }
}
