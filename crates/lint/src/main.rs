//! `lit-lint` CLI.
//!
//! ```text
//! lit-lint check [--root DIR] [--json FILE] [--rule NAME]...
//! lit-lint rules
//! ```
//!
//! `check` exits 0 when the workspace is clean (suppressed findings are
//! reported but do not fail), 1 when any violation remains, 2 on usage or
//! I/O errors. `--json` additionally writes the `lit-lint-v1` report.

#![forbid(unsafe_code)]

use lit_lint::{rules, run_check, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: lit-lint <check [--root DIR] [--json FILE] [--rule NAME]... | rules>");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("rules") => {
            for r in rules::all() {
                println!("{:<26} {}", r.name, r.describe);
                println!("{:<26} protects: {}", "", r.protects);
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut cfg = Config::default();
            let mut root = PathBuf::from(".");
            let mut json: Option<PathBuf> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| usage())),
                    "--json" => json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
                    "--rule" => {
                        cfg.only_rules
                            .insert(args.next().unwrap_or_else(|| usage()));
                    }
                    _ => usage(),
                }
            }
            if !root.join("Cargo.toml").is_file() {
                eprintln!("lit-lint: {} is not a workspace root", root.display());
                return ExitCode::from(2);
            }
            let report = match run_check(&root, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("lit-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Some(path) = &json {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("lit-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            for f in report.violations() {
                eprintln!(
                    "{}:{}:{}: [{}] {}\n    {}",
                    f.file, f.line, f.col, f.rule, f.message, f.snippet
                );
            }
            let allowed = report.findings.iter().filter(|f| f.allowed()).count();
            let violations = report.violation_count();
            eprintln!(
                "lit-lint: {} file(s), {} finding(s): {} violation(s), {} allowed",
                report.files_scanned,
                report.findings.len(),
                violations,
                allowed
            );
            if violations > 0 {
                for (rule, n) in report.counts_by_rule() {
                    eprintln!("  {rule}: {n}");
                }
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
