//! `lit-lint` CLI.
//!
//! ```text
//! lit-lint check [--root DIR] [--json FILE] [--sarif FILE] [--rule NAME]...
//!                [--changed-since REV] [--max-allows N] [--budget-ms MS]
//! lit-lint allows [--root DIR]
//! lit-lint rules
//! ```
//!
//! `check` exits 0 when the workspace is clean (suppressed findings are
//! reported but do not fail), 1 when any violation remains — or when the
//! allow inventory exceeds `--max-allows`, or the scan overruns
//! `--budget-ms` — and 2 on usage or I/O errors. `--json` writes the
//! `lit-lint-v1` report, `--sarif` a SARIF v2.1.0 log, and
//! `--changed-since REV` restricts the scan to files touched since the
//! given git revision (committed, uncommitted, and untracked).
//!
//! `allows` prints the burndown inventory: every allow annotation in the
//! workspace, grouped rule × crate.

#![forbid(unsafe_code)]

use lit_lint::{changed_files, collect_allows, rules, run_check_filtered, sarif, Config};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: lit-lint <check [--root DIR] [--json FILE] [--sarif FILE] [--rule NAME]... \
         [--changed-since REV] [--max-allows N] [--budget-ms MS] | allows [--root DIR] | rules>"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("rules") => {
            for r in rules::all() {
                println!("{:<26} {}", r.name, r.describe);
                println!("{:<26} protects: {}", "", r.protects);
            }
            ExitCode::SUCCESS
        }
        Some("allows") => {
            let mut root = PathBuf::from(".");
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| usage())),
                    _ => usage(),
                }
            }
            let allows = match collect_allows(&root, &Config::default()) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("lit-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            // rule × crate burndown table.
            let mut by: BTreeMap<(String, String), usize> = BTreeMap::new();
            for (file, a) in &allows {
                let crate_name = file
                    .strip_prefix("crates/")
                    .and_then(|r| r.split('/').next())
                    .unwrap_or("(root)")
                    .to_string();
                *by.entry((a.rule.clone(), crate_name)).or_insert(0) += 1;
            }
            println!("{:<26} {:<10} {:>6}", "rule", "crate", "count");
            for ((rule, krate), n) in &by {
                println!("{rule:<26} {krate:<10} {n:>6}");
            }
            println!("total: {} allow annotation(s)", allows.len());
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut cfg = Config::default();
            let mut root = PathBuf::from(".");
            let mut json: Option<PathBuf> = None;
            let mut sarif_out: Option<PathBuf> = None;
            let mut since: Option<String> = None;
            let mut max_allows: Option<usize> = None;
            let mut budget_ms: Option<u128> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| usage())),
                    "--json" => json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
                    "--sarif" => {
                        sarif_out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
                    }
                    "--changed-since" => since = Some(args.next().unwrap_or_else(|| usage())),
                    "--max-allows" => {
                        max_allows = Some(
                            args.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--budget-ms" => {
                        budget_ms = Some(
                            args.next()
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    "--rule" => {
                        cfg.only_rules
                            .insert(args.next().unwrap_or_else(|| usage()));
                    }
                    _ => usage(),
                }
            }
            if !root.join("Cargo.toml").is_file() {
                eprintln!("lit-lint: {} is not a workspace root", root.display());
                return ExitCode::from(2);
            }
            let only = match &since {
                Some(rev) => match changed_files(&root, rev) {
                    Ok(set) => Some(set),
                    Err(e) => {
                        eprintln!("lit-lint: --changed-since {rev}: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => None,
            };
            let start = std::time::Instant::now();
            let report = match run_check_filtered(&root, &cfg, only.as_ref()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("lit-lint: {e}");
                    return ExitCode::from(2);
                }
            };
            let elapsed_ms = start.elapsed().as_millis();
            if let Some(path) = &json {
                if let Err(e) = write_output(path, &report.to_json()) {
                    eprintln!("lit-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if let Some(path) = &sarif_out {
                if let Err(e) = write_output(path, &sarif::to_sarif(&report)) {
                    eprintln!("lit-lint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            for f in report.violations() {
                eprintln!(
                    "{}:{}:{}: [{}] {}\n    {}",
                    f.file, f.line, f.col, f.rule, f.message, f.snippet
                );
            }
            let allowed = report.findings.iter().filter(|f| f.allowed()).count();
            let violations = report.violation_count();
            eprintln!(
                "lit-lint: {} file(s), {} finding(s): {} violation(s), {} allowed, \
                 {} allow annotation(s), {} ms{}",
                report.files_scanned,
                report.findings.len(),
                violations,
                allowed,
                report.allows_total,
                elapsed_ms,
                if since.is_some() {
                    " (diff-aware scan)"
                } else {
                    ""
                }
            );
            let mut failed = violations > 0;
            if violations > 0 {
                for (rule, n) in report.counts_by_rule() {
                    eprintln!("  {rule}: {n}");
                }
            }
            if let Some(max) = max_allows {
                if report.allows_total > max {
                    eprintln!(
                        "lit-lint: allow inventory {} exceeds --max-allows {max}; the allow \
                         list can only shrink — remove allows, don't add them",
                        report.allows_total
                    );
                    failed = true;
                }
            }
            if let Some(budget) = budget_ms {
                if elapsed_ms > budget {
                    eprintln!(
                        "lit-lint: scan took {elapsed_ms} ms, over the --budget-ms {budget} \
                         runtime budget"
                    );
                    failed = true;
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}

fn write_output(path: &std::path::Path, content: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, content)
}
