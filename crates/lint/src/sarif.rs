//! SARIF v2.1.0 output — the interchange format GitHub code scanning,
//! VS Code, and most CI dashboards ingest directly.
//!
//! One `run` per report: the tool component lists every registered rule
//! (so viewers can render rule metadata without a side channel), each
//! finding becomes a `result` with a physical location against
//! `SRCROOT` (the workspace root), and findings suppressed by a
//! `// lit-lint: allow(...)` annotation carry a `suppressions` entry of
//! kind `inSource` with the annotation's justification — suppressed, but
//! visible to auditors, which is the whole point of mandatory
//! justifications.
//!
//! Hand-rolled serialization like `diag::Report::to_json`: the workspace
//! is dependency-free by constraint (offline build container).

use crate::diag::{json_str, Report};
use crate::rules;
use std::fmt::Write as _;

/// Serialize a report as a SARIF v2.1.0 log.
pub fn to_sarif(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"lit-lint\",\n");
    let _ = writeln!(
        s,
        "          \"semanticVersion\": {},",
        json_str(env!("CARGO_PKG_VERSION"))
    );
    s.push_str("          \"rules\": [\n");
    let all = rules::all();
    for (i, r) in all.iter().enumerate() {
        let _ = write!(
            s,
            "            {{ \"id\": {}, \"shortDescription\": {{ \"text\": {} }}, \
             \"help\": {{ \"text\": {} }} }}",
            json_str(r.name),
            json_str(&oneline(r.describe)),
            json_str(&format!("protects: {}", oneline(r.protects))),
        );
        s.push_str(if i + 1 < all.len() { ",\n" } else { "\n" });
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"originalUriBaseIds\": { \"SRCROOT\": { \"description\": { \"text\": \"workspace root\" } } },\n");
    s.push_str("      \"results\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let level = if f.allowed() { "note" } else { "error" };
        let _ = write!(
            s,
            "        {{ \"ruleId\": {}, \"level\": \"{}\", \"message\": {{ \"text\": {} }}, \
             \"locations\": [ {{ \"physicalLocation\": {{ \
             \"artifactLocation\": {{ \"uri\": {}, \"uriBaseId\": \"SRCROOT\" }}, \
             \"region\": {{ \"startLine\": {}, \"startColumn\": {}, \
             \"snippet\": {{ \"text\": {} }} }} }} }} ]",
            json_str(f.rule),
            level,
            json_str(&f.message),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.snippet),
        );
        if let Some(j) = &f.justification {
            let _ = write!(
                s,
                ", \"suppressions\": [ {{ \"kind\": \"inSource\", \"justification\": {} }} ]",
                json_str(j)
            );
        }
        s.push_str(" }");
        s.push_str(if i + 1 < report.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// Collapse the multi-line continuation whitespace of the registry's
/// string literals into single spaces.
fn oneline(v: &str) -> String {
    v.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Finding;

    #[test]
    fn sarif_shape_and_suppressions() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "no-panic-hot-path",
            file: "crates/sim/src/queue.rs".into(),
            line: 7,
            col: 9,
            message: "panicking index".into(),
            snippet: "v[i]".into(),
            justification: None,
        });
        r.findings.push(Finding {
            rule: "checked-clock-ops",
            file: "crates/net/src/shard.rs".into(),
            line: 3,
            col: 1,
            message: "saturating on a clock".into(),
            snippet: "t.saturating_add(d)".into(),
            justification: Some("sentinel stays a sentinel".into()),
        });
        let s = to_sarif(&r);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"lit-lint\""));
        // Every registered rule is described in the driver.
        for rule in rules::all() {
            assert!(
                s.contains(&format!("\"id\": \"{}\"", rule.name)),
                "{}",
                rule.name
            );
        }
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"level\": \"note\""));
        assert!(s.contains("\"kind\": \"inSource\""));
        assert!(s.contains("sentinel stays a sentinel"));
        assert!(s.contains("\"uriBaseId\": \"SRCROOT\""));
        // Exactly one suppressions array: the error result has none.
        assert_eq!(s.matches("\"suppressions\"").count(), 1);
    }
}
