//! # lit-lint — workspace static analysis for clock and hot-path discipline
//!
//! A dependency-free, *syntax-aware* static-analysis pass over the whole
//! workspace, run as `cargo run -p lit-lint -- check`. Seven rules:
//!
//! * [`rules::RAW_TIME_ARITHMETIC`] — no raw `u64`/`f64` arithmetic,
//!   narrowing casts, or float literals flowing into `Time`/`Duration`;
//! * [`rules::NO_PANIC_HOT_PATH`] — `unwrap`/`expect`/`panic!`/panicking
//!   indexing banned in the scheduler hot paths; indexes the tree can
//!   prove in bounds (const array lengths, for-range loop variables) are
//!   exempt, as are assert-macro argument lists;
//! * [`rules::FORBID_UNSAFE`] — every crate root carries
//!   `#![forbid(unsafe_code)]`;
//! * [`rules::CHECKED_CLOCK_OPS`] — `wrapping_*`/`overflowing_*`/
//!   `saturating_*` in a statement touching clock-carrying values must
//!   be justified;
//! * [`rules::NONDETERMINISTIC_ITERATION`] — no `HashMap`/`HashSet`
//!   iteration or draining in the engine crates (net/core/sim), where
//!   iteration order would leak into the deterministic event path;
//! * [`rules::BARRIER_PROTOCOL`] — a per-loop state machine over the
//!   sharded executor's window protocol (publish → barrier A → send →
//!   barrier B → drain), pinning the PR-7 abort-race class;
//! * [`rules::STALE_ALLOW`] — an allow annotation that suppresses
//!   nothing is itself a violation, so the allow list can only shrink.
//!
//! Escape hatch: `// lit-lint: allow(<rule>, "<justification>")` on (or
//! directly above) the offending line. Justifications are mandatory and
//! non-empty; stale or malformed annotations are themselves violations.
//! Diagnostics are emitted as machine-readable JSON (`--json`, schema
//! `lit-lint-v1`) and SARIF v2.1.0 (`--sarif`), and `--changed-since`
//! restricts a scan to files touched since a git revision.
//!
//! The engine is a hand-rolled lexer ([`lexer`]), a recursive-descent
//! parser producing a lightweight item/statement/expression tree with
//! spans ([`parser`], [`ast`]), and intra-function control-flow regions
//! ([`cfg`]) — the build container is fully offline, so `syn` is not
//! available. The parser never rejects: anything it cannot shape
//! degrades to leaf spans, and a round-trip property test pins
//! lex → parse → span-reassembly ≡ source over every workspace file.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod cfg;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod source;

use diag::{Finding, Report};
use source::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// What to scan and how rules map onto the tree. Paths are
/// workspace-relative and `/`-separated.
pub struct Config {
    /// Files covered by `no-panic-hot-path`.
    pub hot_paths: Vec<String>,
    /// Path prefixes exempt from the clock rules (`raw-time-arithmetic`,
    /// `checked-clock-ops`): the definitions themselves and the
    /// float-by-design analysis crate.
    pub time_exempt: Vec<String>,
    /// Path prefixes never scanned at all (fixtures of known-bad code).
    pub skip: Vec<String>,
    /// Engine-crate source prefixes where iteration order must be
    /// deterministic (`nondeterministic-iteration`).
    pub engine_paths: Vec<String>,
    /// Files subject to the barrier-protocol window state machine.
    pub barrier_files: Vec<String>,
    /// When non-empty, only these rules run.
    pub only_rules: BTreeSet<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hot_paths: [
                "crates/net/src/network.rs",
                "crates/net/src/shard.rs",
                "crates/net/src/arena.rs",
                "crates/net/src/equeue.rs",
                "crates/net/src/table.rs",
                "crates/sim/src/queue.rs",
                "crates/sim/src/calendar.rs",
                "crates/sim/src/wheel.rs",
                "crates/core/src/discipline.rs",
                "crates/core/src/refserver.rs",
                "crates/core/src/admission/fast.rs",
                "crates/obs/src/probe.rs",
            ]
            .map(String::from)
            .to_vec(),
            time_exempt: ["crates/analysis/", "crates/sim/src/time.rs", "crates/lint/"]
                .map(String::from)
                .to_vec(),
            skip: ["crates/lint/tests/fixtures/"].map(String::from).to_vec(),
            engine_paths: ["crates/net/src/", "crates/core/src/", "crates/sim/src/"]
                .map(String::from)
                .to_vec(),
            barrier_files: ["crates/net/src/shard.rs"].map(String::from).to_vec(),
            only_rules: BTreeSet::new(),
        }
    }
}

impl Config {
    /// Is `rel` one of the configured hot-path files?
    pub fn is_hot_path(&self, rel: &str) -> bool {
        self.hot_paths.iter().any(|p| p == rel)
    }

    /// Is `rel` exempt from the clock rules?
    pub fn is_time_exempt(&self, rel: &str) -> bool {
        self.time_exempt.iter().any(|p| rel.starts_with(p))
    }

    /// Is `rel` engine-crate source (deterministic iteration required)?
    pub fn is_engine_path(&self, rel: &str) -> bool {
        self.engine_paths.iter().any(|p| rel.starts_with(p))
    }

    /// Is `rel` subject to the barrier-protocol state machine?
    pub fn is_barrier_file(&self, rel: &str) -> bool {
        self.barrier_files.iter().any(|p| p == rel)
    }

    /// Production source: anything under a `src/` directory (unit-test
    /// modules inside are masked separately). Integration tests, benches,
    /// and examples are exempt from the clock rules but still crate roots
    /// for `forbid-unsafe-everywhere`.
    pub fn is_production_src(&self, rel: &str) -> bool {
        rel.starts_with("src/") || rel.contains("/src/")
    }

    /// Crate roots: `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`, and the
    /// direct children of `tests/`, `benches/`, `examples/`.
    pub fn is_crate_root(&self, rel: &str) -> bool {
        let parts: Vec<&str> = rel.split('/').collect();
        let Some(&file) = parts.last() else {
            return false;
        };
        let dir = if parts.len() >= 2 {
            parts[parts.len() - 2]
        } else {
            ""
        };
        ((file == "lib.rs" || file == "main.rs") && dir == "src")
            || dir == "bin"
            || dir == "tests"
            || dir == "benches"
            || dir == "examples"
    }

    /// Should the rule run at all under `only_rules`?
    pub fn rule_enabled(&self, name: &str) -> bool {
        self.only_rules.is_empty() || self.only_rules.contains(name)
    }
}

/// Collect every `.rs` file under `root` that the pass should look at,
/// as sorted workspace-relative paths.
pub fn workspace_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let top = ["src", "crates", "tests", "examples", "benches"];
    for t in top {
        let dir = root.join(t);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    let mut rels: Vec<PathBuf> = out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .filter(|p| {
            let rel = rel_str(p);
            !cfg.skip.iter().any(|s| rel.starts_with(s))
        })
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A path as a `/`-separated string (stable across platforms for reports).
pub fn rel_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run every enabled rule over one in-memory file and resolve allow
/// annotations. Exposed for the fixture self-tests.
pub fn check_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    check_source_counted(rel, src, cfg).0
}

/// Like [`check_source`], also returning the number of allow annotations
/// the file carries (fed into [`diag::Report::allows_total`]).
pub fn check_source_counted(rel: &str, src: &str, cfg: &Config) -> (Vec<Finding>, usize) {
    let file = SourceFile::new(rel, src);
    let mut findings: Vec<Finding> = Vec::new();
    findings.extend(file.allow_errors.iter().cloned());
    for rule in rules::all() {
        if cfg.rule_enabled(rule.name) {
            findings.extend((rule.check)(&file, cfg));
        }
    }
    resolve_allows(&file, &mut findings, cfg);
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (findings, file.allows.len())
}

/// Match findings against the file's allow annotations: a finding on an
/// annotation's target line with the annotation's rule is suppressed (its
/// justification recorded); an annotation that suppresses nothing becomes
/// a `stale-allow` violation — the burndown signal of the precise engine.
///
/// Annotations for rules that are disabled under `--rule` filtering are
/// left alone (they may well suppress a finding when the full set runs),
/// and `stale-allow` findings are only emitted when that rule is itself
/// enabled.
fn resolve_allows(file: &SourceFile, findings: &mut Vec<Finding>, cfg: &Config) {
    let mut used = vec![false; file.allows.len()];
    for f in findings.iter_mut() {
        for (k, a) in file.allows.iter().enumerate() {
            if a.rule == f.rule && a.target == f.line {
                f.justification = Some(a.justification.clone());
                used[k] = true;
                break;
            }
        }
    }
    if !cfg.rule_enabled(rules::STALE_ALLOW) {
        return;
    }
    for (k, a) in file.allows.iter().enumerate() {
        if !used[k] && cfg.rule_enabled(&a.rule) {
            findings.push(Finding {
                rule: rules::STALE_ALLOW,
                file: file.rel.clone(),
                line: a.line,
                col: 1,
                message: format!(
                    "allow({}, …) suppresses nothing on line {}; remove it so the allow \
                     list only shrinks",
                    a.rule, a.target
                ),
                snippet: file.snippet(a.line),
                justification: None,
            });
        }
    }
}

/// Run the whole pass over the workspace rooted at `root`.
pub fn run_check(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    run_check_filtered(root, cfg, None)
}

/// [`run_check`] restricted to the files in `only` (workspace-relative,
/// `/`-separated) when given — the engine of `--changed-since`
/// diff-aware scans. Files outside the workspace file set are ignored
/// either way, so feeding raw `git diff` output is safe.
pub fn run_check_filtered(
    root: &Path,
    cfg: &Config,
    only: Option<&BTreeSet<String>>,
) -> std::io::Result<Report> {
    let mut report = Report::default();
    let files: Vec<PathBuf> = workspace_files(root, cfg)?
        .into_iter()
        .filter(|p| only.is_none_or(|set| set.contains(&rel_str(p))))
        .collect();
    report.files_scanned = files.len();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let (findings, n_allows) = check_source_counted(&rel_str(&rel), &src, cfg);
        report.findings.extend(findings);
        report.allows_total += n_allows;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Every allow annotation in the workspace, with the file carrying it —
/// the `lit-lint allows` burndown inventory.
pub fn collect_allows(root: &Path, cfg: &Config) -> std::io::Result<Vec<(String, diag::Allow)>> {
    let mut out = Vec::new();
    for rel in workspace_files(root, cfg)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let file = SourceFile::new(&rel_str(&rel), &src);
        for a in file.allows {
            out.push((file.rel.clone(), a));
        }
    }
    Ok(out)
}

/// Files changed since `rev`, as workspace-relative paths: committed
/// changes against the merge base (`git diff --name-only rev...HEAD`)
/// plus uncommitted and untracked files. Paths that no longer exist
/// (deletions) are filtered out by the scan itself.
pub fn changed_files(root: &Path, rev: &str) -> std::io::Result<BTreeSet<String>> {
    let run = |args: &[&str]| -> std::io::Result<String> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()?;
        if !out.status.success() {
            return Err(std::io::Error::other(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            )));
        }
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let mut set = BTreeSet::new();
    let range = format!("{rev}...HEAD");
    for l in run(&["diff", "--name-only", &range])?.lines() {
        if !l.is_empty() {
            set.insert(l.to_string());
        }
    }
    // Working tree on top: uncommitted modifications and untracked files.
    for l in run(&["status", "--porcelain"])?.lines() {
        // Format: `XY path` or `XY old -> new` for renames.
        let path = l.get(3..).unwrap_or("");
        let path = path.rsplit(" -> ").next().unwrap_or(path).trim();
        if !path.is_empty() {
            set.insert(path.to_string());
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        let cfg = Config::default();
        assert!(cfg.is_crate_root("crates/sim/src/lib.rs"));
        assert!(cfg.is_crate_root("crates/repro/src/main.rs"));
        assert!(cfg.is_crate_root("crates/bench/src/bin/fuzz_diff.rs"));
        assert!(cfg.is_crate_root("tests/stress.rs"));
        assert!(cfg.is_crate_root("examples/quickstart.rs"));
        assert!(cfg.is_crate_root("crates/bench/benches/sched_ops.rs"));
        assert!(!cfg.is_crate_root("crates/sim/src/time.rs"));
        assert!(!cfg.is_crate_root("crates/lint/tests/fixtures/clean.rs"));
    }

    #[test]
    fn allow_suppresses_and_unused_allow_fires() {
        let cfg = Config::default();
        let src = "#![forbid(unsafe_code)]\n\
                   fn f(t: Time) -> u64 {\n\
                       // lit-lint: allow(raw-time-arithmetic, \"documented widening\")\n\
                       t.as_ps() * 2\n\
                   }\n\
                   // lit-lint: allow(raw-time-arithmetic, \"nothing here\")\n\
                   fn g() {}\n";
        let fs = check_source("crates/net/src/spec.rs", src, &cfg);
        let raw: Vec<_> = fs
            .iter()
            .filter(|f| f.rule == rules::RAW_TIME_ARITHMETIC)
            .collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].allowed());
        assert_eq!(raw[0].justification.as_deref(), Some("documented widening"));
        assert_eq!(fs.iter().filter(|f| f.rule == "stale-allow").count(), 1);
    }

    #[test]
    fn widening_escapes_are_clean() {
        let cfg = Config::default();
        let src = "#![forbid(unsafe_code)]\n\
                   fn f(a: Time, b: Time) -> i128 {\n\
                       a.as_ps() as i128 - b.as_ps() as i128\n\
                   }\n\
                   fn g(d: Duration) -> f64 { d.as_ps() as f64 }\n";
        let fs = check_source("crates/core/src/bounds.rs", src, &cfg);
        assert!(
            fs.iter().all(|f| f.rule != rules::RAW_TIME_ARITHMETIC),
            "{fs:?}"
        );
    }

    #[test]
    fn test_code_is_exempt_from_clock_rules() {
        let cfg = Config::default();
        let src = "#![forbid(unsafe_code)]\n\
                   #[cfg(test)]\nmod tests {\n\
                       fn t(x: Duration) -> u64 { x.as_ps() * 3 }\n\
                   }\n";
        let fs = check_source("crates/net/src/spec.rs", src, &cfg);
        assert!(fs.is_empty(), "{fs:?}");
    }
}
