//! # lit-lint — workspace static analysis for clock and hot-path discipline
//!
//! A dependency-free, token-level static-analysis pass over the whole
//! workspace, run as `cargo run -p lit-lint -- check`. Four rules:
//!
//! * [`rules::RAW_TIME_ARITHMETIC`] — no raw `u64`/`f64` arithmetic,
//!   narrowing casts, or float literals flowing into `Time`/`Duration`;
//! * [`rules::NO_PANIC_HOT_PATH`] — `unwrap`/`expect`/`panic!`/panicking
//!   indexing banned in the scheduler hot paths;
//! * [`rules::FORBID_UNSAFE`] — every crate root carries
//!   `#![forbid(unsafe_code)]`;
//! * [`rules::CHECKED_CLOCK_OPS`] — `wrapping_*`/`overflowing_*`/
//!   `saturating_*` on clock-carrying values must be justified.
//!
//! Escape hatch: `// lit-lint: allow(<rule>, "<justification>")` on (or
//! directly above) the offending line. Justifications are mandatory and
//! non-empty; unused or malformed annotations are themselves violations,
//! so the allow list can only shrink. Diagnostics are also emitted as
//! machine-readable JSON (`--json`), schema `lit-lint-v1`.
//!
//! The pass is a hand-rolled lexer plus token-pattern rules — the build
//! container is fully offline, so `syn` is not available. That limits the
//! rules to what token adjacency can express, which is exactly what they
//! need (see each rule's module docs for the precise patterns).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use diag::{Finding, Report};
use source::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// What to scan and how rules map onto the tree. Paths are
/// workspace-relative and `/`-separated.
pub struct Config {
    /// Files covered by `no-panic-hot-path`.
    pub hot_paths: Vec<String>,
    /// Path prefixes exempt from the clock rules (`raw-time-arithmetic`,
    /// `checked-clock-ops`): the definitions themselves and the
    /// float-by-design analysis crate.
    pub time_exempt: Vec<String>,
    /// Path prefixes never scanned at all (fixtures of known-bad code).
    pub skip: Vec<String>,
    /// When non-empty, only these rules run.
    pub only_rules: BTreeSet<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hot_paths: [
                "crates/net/src/network.rs",
                "crates/net/src/shard.rs",
                "crates/net/src/arena.rs",
                "crates/net/src/equeue.rs",
                "crates/net/src/table.rs",
                "crates/sim/src/queue.rs",
                "crates/sim/src/calendar.rs",
                "crates/sim/src/wheel.rs",
                "crates/core/src/discipline.rs",
                "crates/core/src/refserver.rs",
                "crates/core/src/admission/fast.rs",
                "crates/obs/src/probe.rs",
            ]
            .map(String::from)
            .to_vec(),
            time_exempt: ["crates/analysis/", "crates/sim/src/time.rs", "crates/lint/"]
                .map(String::from)
                .to_vec(),
            skip: ["crates/lint/tests/fixtures/"].map(String::from).to_vec(),
            only_rules: BTreeSet::new(),
        }
    }
}

impl Config {
    /// Is `rel` one of the configured hot-path files?
    pub fn is_hot_path(&self, rel: &str) -> bool {
        self.hot_paths.iter().any(|p| p == rel)
    }

    /// Is `rel` exempt from the clock rules?
    pub fn is_time_exempt(&self, rel: &str) -> bool {
        self.time_exempt.iter().any(|p| rel.starts_with(p))
    }

    /// Production source: anything under a `src/` directory (unit-test
    /// modules inside are masked separately). Integration tests, benches,
    /// and examples are exempt from the clock rules but still crate roots
    /// for `forbid-unsafe-everywhere`.
    pub fn is_production_src(&self, rel: &str) -> bool {
        rel.starts_with("src/") || rel.contains("/src/")
    }

    /// Crate roots: `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`, and the
    /// direct children of `tests/`, `benches/`, `examples/`.
    pub fn is_crate_root(&self, rel: &str) -> bool {
        let parts: Vec<&str> = rel.split('/').collect();
        let Some(&file) = parts.last() else {
            return false;
        };
        let dir = if parts.len() >= 2 {
            parts[parts.len() - 2]
        } else {
            ""
        };
        ((file == "lib.rs" || file == "main.rs") && dir == "src")
            || dir == "bin"
            || dir == "tests"
            || dir == "benches"
            || dir == "examples"
    }

    /// Should the rule run at all under `only_rules`?
    pub fn rule_enabled(&self, name: &str) -> bool {
        self.only_rules.is_empty() || self.only_rules.contains(name)
    }
}

/// Collect every `.rs` file under `root` that the pass should look at,
/// as sorted workspace-relative paths.
pub fn workspace_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let top = ["src", "crates", "tests", "examples", "benches"];
    for t in top {
        let dir = root.join(t);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    let mut rels: Vec<PathBuf> = out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .filter(|p| {
            let rel = rel_str(p);
            !cfg.skip.iter().any(|s| rel.starts_with(s))
        })
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A path as a `/`-separated string (stable across platforms for reports).
pub fn rel_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run every enabled rule over one in-memory file and resolve allow
/// annotations. Exposed for the fixture self-tests.
pub fn check_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let file = SourceFile::new(rel, src);
    let mut findings: Vec<Finding> = Vec::new();
    findings.extend(file.allow_errors.iter().cloned());
    for rule in rules::all() {
        if cfg.rule_enabled(rule.name) {
            findings.extend((rule.check)(&file, cfg));
        }
    }
    resolve_allows(&file, &mut findings);
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// Match findings against the file's allow annotations: a finding on an
/// annotation's target line with the annotation's rule is suppressed (its
/// justification recorded); an annotation that suppresses nothing becomes
/// an `unused-allow` violation.
fn resolve_allows(file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut used = vec![false; file.allows.len()];
    for f in findings.iter_mut() {
        for (k, a) in file.allows.iter().enumerate() {
            if a.rule == f.rule && a.target == f.line {
                f.justification = Some(a.justification.clone());
                used[k] = true;
                break;
            }
        }
    }
    for (k, a) in file.allows.iter().enumerate() {
        if !used[k] {
            findings.push(Finding {
                rule: "unused-allow",
                file: file.rel.clone(),
                line: a.line,
                col: 1,
                message: format!(
                    "allow({}, …) suppresses nothing on line {}; remove it so the allow \
                     list only shrinks",
                    a.rule, a.target
                ),
                snippet: file.snippet(a.line),
                justification: None,
            });
        }
    }
}

/// Run the whole pass over the workspace rooted at `root`.
pub fn run_check(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    let files = workspace_files(root, cfg)?;
    report.files_scanned = files.len();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        report
            .findings
            .extend(check_source(&rel_str(&rel), &src, cfg));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        let cfg = Config::default();
        assert!(cfg.is_crate_root("crates/sim/src/lib.rs"));
        assert!(cfg.is_crate_root("crates/repro/src/main.rs"));
        assert!(cfg.is_crate_root("crates/bench/src/bin/fuzz_diff.rs"));
        assert!(cfg.is_crate_root("tests/stress.rs"));
        assert!(cfg.is_crate_root("examples/quickstart.rs"));
        assert!(cfg.is_crate_root("crates/bench/benches/sched_ops.rs"));
        assert!(!cfg.is_crate_root("crates/sim/src/time.rs"));
        assert!(!cfg.is_crate_root("crates/lint/tests/fixtures/clean.rs"));
    }

    #[test]
    fn allow_suppresses_and_unused_allow_fires() {
        let cfg = Config::default();
        let src = "#![forbid(unsafe_code)]\n\
                   fn f(t: Time) -> u64 {\n\
                       // lit-lint: allow(raw-time-arithmetic, \"documented widening\")\n\
                       t.as_ps() * 2\n\
                   }\n\
                   // lit-lint: allow(raw-time-arithmetic, \"nothing here\")\n\
                   fn g() {}\n";
        let fs = check_source("crates/net/src/spec.rs", src, &cfg);
        let raw: Vec<_> = fs
            .iter()
            .filter(|f| f.rule == rules::RAW_TIME_ARITHMETIC)
            .collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].allowed());
        assert_eq!(raw[0].justification.as_deref(), Some("documented widening"));
        assert_eq!(fs.iter().filter(|f| f.rule == "unused-allow").count(), 1);
    }

    #[test]
    fn widening_escapes_are_clean() {
        let cfg = Config::default();
        let src = "#![forbid(unsafe_code)]\n\
                   fn f(a: Time, b: Time) -> i128 {\n\
                       a.as_ps() as i128 - b.as_ps() as i128\n\
                   }\n\
                   fn g(d: Duration) -> f64 { d.as_ps() as f64 }\n";
        let fs = check_source("crates/core/src/bounds.rs", src, &cfg);
        assert!(
            fs.iter().all(|f| f.rule != rules::RAW_TIME_ARITHMETIC),
            "{fs:?}"
        );
    }

    #[test]
    fn test_code_is_exempt_from_clock_rules() {
        let cfg = Config::default();
        let src = "#![forbid(unsafe_code)]\n\
                   #[cfg(test)]\nmod tests {\n\
                       fn t(x: Duration) -> u64 { x.as_ps() * 3 }\n\
                   }\n";
        let fs = check_source("crates/net/src/spec.rs", src, &cfg);
        assert!(fs.is_empty(), "{fs:?}");
    }
}
