//! Per-file model the rules run against: tokens, the parsed syntax
//! tree, source lines, allow annotations, and per-token context masks
//! (test-only code, attributes, declared types, patterns).

use crate::ast::{self, Tree};
use crate::diag::{parse_allows, Allow, Finding};
use crate::lexer::{lex, Tok};
use crate::parser::parse;

/// A lexed and parsed source file ready for rule passes.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Raw source lines (for snippets).
    pub lines: Vec<String>,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Parsed item/expression tree over `toks`.
    pub tree: Tree,
    /// `test_mask[i]` is true when token `i` is inside `#[cfg(test)]` /
    /// `#[test]` code (rules that target production code skip those).
    pub test_mask: Vec<bool>,
    /// `attr_mask[i]`: token `i` is inside an attribute (`#[…]`), where
    /// idents are metadata (`#[derive(Hash)]`), not code.
    pub attr_mask: Vec<bool>,
    /// `type_mask[i]`: token `i` is inside a declared-type position
    /// (struct field type, `let` annotation, fn parameter type).
    pub type_mask: Vec<bool>,
    /// `pat_mask[i]`: token `i` is inside a binding pattern (`let` /
    /// `for` / match-arm patterns), where `[a, b]` is a slice pattern,
    /// not an index.
    pub pat_mask: Vec<bool>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Findings for malformed annotations.
    pub allow_errors: Vec<Finding>,
}

impl SourceFile {
    /// Lex, parse, and annotate `src` as file `rel`.
    pub fn new(rel: &str, src: &str) -> Self {
        let out = lex(src);
        let lines: Vec<String> = src.lines().map(String::from).collect();
        let mut code_lines: Vec<u32> = out.toks.iter().map(|t| t.line).collect();
        code_lines.dedup();
        let (allows, allow_errors) = parse_allows(rel, &out.comments, &lines, &code_lines);
        let test_mask = test_mask(&out.toks);
        let tree = parse(&out.toks);
        let (attr_mask, type_mask, pat_mask) = context_masks(&tree, out.toks.len());
        SourceFile {
            rel: rel.to_string(),
            lines,
            toks: out.toks,
            tree,
            test_mask,
            attr_mask,
            type_mask,
            pat_mask,
            allows,
            allow_errors,
        }
    }

    /// The trimmed source line a token sits on.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Build a finding for the token at index `i`.
    pub fn finding(&self, rule: &'static str, i: usize, message: String) -> Finding {
        let t = &self.toks[i];
        Finding {
            rule,
            file: self.rel.clone(),
            line: t.line,
            col: t.col,
            message,
            snippet: self.snippet(t.line),
            justification: None,
        }
    }
}

/// Compute the attribute / declared-type / pattern context masks from
/// the parsed tree. Tokens inside these positions are data the rules'
/// expression patterns must not match against (`#[derive(Hash)]` is not
/// a `HashMap` use; `let [a, b] = xs;` is not an index).
fn context_masks(tree: &Tree, n: usize) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
    let mut attr = vec![false; n];
    let mut ty = vec![false; n];
    let mut pat = vec![false; n];
    let mark = |mask: &mut Vec<bool>, sp: ast::Span| {
        for m in mask.iter_mut().take(sp.hi.min(n)).skip(sp.lo) {
            *m = true;
        }
    };
    for sp in &tree.attrs {
        mark(&mut attr, *sp);
    }
    for it in &tree.items {
        mark_item(it, &mut ty, &mut pat, n);
    }
    (attr, ty, pat)
}

fn mark_item(it: &ast::Item, ty: &mut Vec<bool>, pat: &mut Vec<bool>, n: usize) {
    let mark = |mask: &mut Vec<bool>, sp: ast::Span| {
        for m in mask.iter_mut().take(sp.hi.min(n)).skip(sp.lo) {
            *m = true;
        }
    };
    match &it.kind {
        ast::ItemKind::Fn(f) => {
            for p in &f.params {
                mark(ty, p.ty);
            }
            if let Some(b) = &f.body {
                mark_block(b, ty, pat, n);
            }
        }
        ast::ItemKind::Struct(fields) => {
            for f in fields {
                mark(ty, f.ty);
            }
        }
        ast::ItemKind::Items(items) => {
            for sub in items {
                mark_item(sub, ty, pat, n);
            }
        }
        _ => {}
    }
}

fn mark_block(b: &ast::Block, ty: &mut Vec<bool>, pat: &mut Vec<bool>, n: usize) {
    let mark = |mask: &mut Vec<bool>, sp: ast::Span| {
        for m in mask.iter_mut().take(sp.hi.min(n)).skip(sp.lo) {
            *m = true;
        }
    };
    for s in &b.stmts {
        match &s.kind {
            ast::StmtKind::Let {
                pat: p,
                ty: t,
                init,
                els,
            } => {
                mark(pat, *p);
                if let Some(t) = t {
                    mark(ty, *t);
                }
                if let Some(e) = init {
                    mark_expr(e, ty, pat, n);
                }
                if let Some(e) = els {
                    mark_block(e, ty, pat, n);
                }
            }
            ast::StmtKind::Item(it) => mark_item(it, ty, pat, n),
            ast::StmtKind::Expr(e) => mark_expr(e, ty, pat, n),
        }
    }
}

fn mark_expr(e: &ast::Expr, ty: &mut Vec<bool>, pat: &mut Vec<bool>, n: usize) {
    let mut mark_pat = |sp: ast::Span| {
        for m in pat.iter_mut().take(sp.hi.min(n)).skip(sp.lo) {
            *m = true;
        }
    };
    match &e.kind {
        ast::ExprKind::For { pat: p, .. } => mark_pat(*p),
        ast::ExprKind::Match { arms, .. } => {
            for a in arms {
                mark_pat(a.pat);
            }
        }
        _ => {}
    }
    // Recurse through nested blocks so `let` statements inside control
    // flow are covered too.
    match &e.kind {
        ast::ExprKind::If { cond, then, els } => {
            mark_expr(cond, ty, pat, n);
            mark_block(then, ty, pat, n);
            if let Some(x) = els {
                mark_expr(x, ty, pat, n);
            }
        }
        ast::ExprKind::Match { scrutinee, arms } => {
            mark_expr(scrutinee, ty, pat, n);
            for a in arms {
                if let Some(g) = &a.guard {
                    mark_expr(g, ty, pat, n);
                }
                mark_expr(&a.body, ty, pat, n);
            }
        }
        ast::ExprKind::Loop { body, .. } | ast::ExprKind::Block(body) => {
            mark_block(body, ty, pat, n)
        }
        ast::ExprKind::While { cond, body, .. } => {
            mark_expr(cond, ty, pat, n);
            mark_block(body, ty, pat, n);
        }
        ast::ExprKind::For { iter, body, .. } => {
            mark_expr(iter, ty, pat, n);
            mark_block(body, ty, pat, n);
        }
        ast::ExprKind::Closure { body, .. } => mark_expr(body, ty, pat, n),
        ast::ExprKind::Macro { subs, .. } | ast::ExprKind::Leaf { subs } => {
            for s in subs {
                mark_expr(s, ty, pat, n);
            }
        }
        ast::ExprKind::Return(x) | ast::ExprKind::Break(x) => {
            if let Some(x) = x {
                mark_expr(x, ty, pat, n);
            }
        }
        ast::ExprKind::Continue => {}
    }
}

/// Index of the token matching the opening delimiter at `open` (one of
/// `(`/`[`/`{`), or `None` when unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Mark every token inside test-only items.
///
/// An item is test-only when an attribute `#[test]`, or `#[cfg(...)]`
/// whose argument list mentions `test` without `not`, sits in front of it.
/// The marked range runs from the attribute through the item's closing
/// brace (or terminating `;` for brace-less items). This is a token-level
/// approximation of item structure — good enough because rustc has already
/// parsed the file, so attributes really are followed by items.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(close) = matching_close(toks, i + 1) else {
            i += 1;
            continue;
        };
        let attr = &toks[i + 2..close];
        let is_test_attr = match attr.first() {
            Some(t) if t.is_ident("test") && attr.len() == 1 => true,
            Some(t) if t.is_ident("cfg") => {
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"))
            }
            _ => false,
        };
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // Mark from the attribute to the end of the following item: skip
        // any further attributes, then scan to the first `{` at depth 0
        // (mark through its matching `}`) or a bare `;`.
        let mut j = close + 1;
        while j < toks.len()
            && toks[j].is_punct('#')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching_close(toks, j + 1) {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let mut end = toks.len().saturating_sub(1);
        let mut k = j;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct(';') {
                end = k;
                break;
            }
            if t.is_punct('{') {
                end = matching_close(toks, k).unwrap_or(toks.len() - 1);
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\n\
                   fn live2() {}\n";
        let f = SourceFile::new("x.rs", src);
        let unwraps: Vec<bool> = f
            .toks
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, [false, true]);
        // Code after the module is live again.
        let live2 = f
            .toks
            .iter()
            .position(|t| t.is_ident("live2"))
            .expect("live2");
        assert!(!f.test_mask[live2]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.test_mask.iter().all(|&m| !m));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_masked() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { x[0]; }\n";
        let f = SourceFile::new("x.rs", src);
        let idx = f.toks.iter().position(|t| t.is_punct('[') && t.line == 3);
        assert!(idx.is_some_and(|i| f.test_mask[i]));
    }
}
