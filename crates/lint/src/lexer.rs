//! A small Rust lexer: just enough token structure for the lint rules.
//!
//! This is deliberately *not* a parser. The rules in this crate are
//! token-pattern checks (adjacency, balanced-delimiter walks, per-segment
//! marker scans), so all the lexer must get right is the token
//! *boundaries*: comments (line, nested block), string/char literals
//! (including raw strings and byte strings), lifetimes vs. char literals,
//! and numeric literals with their float-ness. Everything else is an
//! identifier or a one-character punctuation token.
//!
//! The container this workspace builds in is fully offline with zero
//! external crates, so `syn`/`proc-macro2` are not options; a hand-rolled
//! lexer is the sound subset we can own outright.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `fn`, `unwrap`, …).
    Ident,
    /// Integer literal (`42`, `0xFF_u64`).
    Int,
    /// Float literal (`1.5`, `1e9`, `2f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation character (`+`, `[`, `.`); multi-character
    /// operators arrive as consecutive single-char tokens.
    Punct,
}

/// One token with its source position (1-based line and column) and its
/// byte span in the original source (`lo..hi`), so a parse tree built
/// over the token stream can be reassembled byte-for-byte.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
    /// Byte offset of the first byte of the token in the source.
    pub lo: usize,
    /// Byte offset one past the last byte of the token.
    pub hi: usize,
}

impl Tok {
    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A `//` line comment (doc comments included), with its position. Block
/// comments are skipped entirely: the allow-annotation grammar is
/// line-comment only, which keeps "where does this annotation point"
/// unambiguous.
#[derive(Clone, Debug)]
pub struct LineComment {
    /// Comment text including the leading `//`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based column of the first `/`.
    pub col: u32,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct LexOut {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All `//` comments in source order.
    pub comments: Vec<LineComment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    byte: usize,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        self.byte += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src`. The lexer never fails: malformed input (an unterminated
/// string, say) simply consumes to end of file, which is good enough for a
/// lint pass that only runs over code `rustc` already accepted.
pub fn lex(src: &str) -> LexOut {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        byte: 0,
    };
    let mut out = LexOut::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        let lo = cur.byte;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek_at(1) == Some('/') {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.comments.push(LineComment { text, line, col });
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // Raw / byte strings: r"…", r#"…"#, br"…", b"…".
        if (c == 'r' || c == 'b') && looks_like_string_prefix(&cur) {
            let mut tok = lex_prefixed_string(&mut cur, line, col);
            (tok.lo, tok.hi) = (lo, cur.byte);
            out.toks.push(tok);
            continue;
        }
        if c == 'b' && cur.peek_at(1) == Some('\'') {
            cur.bump(); // consume the b; the quote path below takes over.
            let mut tok = lex_quote(&mut cur, line, col);
            tok.text.insert(0, 'b');
            (tok.lo, tok.hi) = (lo, cur.byte);
            out.toks.push(tok);
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
                lo,
                hi: cur.byte,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut tok = lex_number(&mut cur, line, col);
            (tok.lo, tok.hi) = (lo, cur.byte);
            out.toks.push(tok);
            continue;
        }
        if c == '"' {
            let mut tok = lex_dquote(&mut cur, line, col);
            (tok.lo, tok.hi) = (lo, cur.byte);
            out.toks.push(tok);
            continue;
        }
        if c == '\'' {
            let mut tok = lex_quote(&mut cur, line, col);
            (tok.lo, tok.hi) = (lo, cur.byte);
            out.toks.push(tok);
            continue;
        }
        // Everything else: one punctuation character per token.
        cur.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
            lo,
            hi: cur.byte,
        });
    }
    out
}

/// At an `r` or `b`: does a raw/byte *string* start here (`r"`, `r#`,
/// `br"`, `br#`, `b"`)? `b'x'` is handled separately as a byte char.
fn looks_like_string_prefix(cur: &Cursor) -> bool {
    let c0 = cur.peek();
    let c1 = cur.peek_at(1);
    let c2 = cur.peek_at(2);
    match c0 {
        Some('r') => matches!(c1, Some('"') | Some('#')),
        Some('b') => match c1 {
            Some('"') => true,
            Some('r') => matches!(c2, Some('"') | Some('#')),
            _ => false,
        },
        _ => false,
    }
}

fn lex_prefixed_string(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    let mut raw = false;
    // Consume the prefix letters (`r`, `b`, or `br`).
    while let Some(c) = cur.peek() {
        if c == 'r' || c == 'b' {
            raw |= c == 'r';
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek() == Some('#') {
            hashes += 1;
            text.push('#');
            cur.bump();
        }
        if cur.peek() == Some('"') {
            text.push('"');
            cur.bump();
            // Scan to `"` followed by `hashes` hash marks.
            loop {
                match cur.peek() {
                    None => break,
                    Some('"') => {
                        let closes = (1..=hashes).all(|k| cur.peek_at(k) == Some('#'));
                        text.push('"');
                        cur.bump();
                        if closes {
                            for _ in 0..hashes {
                                text.push('#');
                                cur.bump();
                            }
                            break;
                        }
                    }
                    Some(c) => {
                        text.push(c);
                        cur.bump();
                    }
                }
            }
        }
        return Tok {
            kind: TokKind::Str,
            text,
            line,
            col,
            lo: 0,
            hi: 0,
        };
    }
    // Non-raw byte string: b"…" with escapes.
    let inner = lex_dquote(cur, line, col);
    text.push_str(&inner.text);
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
        lo: 0,
        hi: 0,
    }
}

fn lex_dquote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push('"');
    cur.bump();
    while let Some(c) = cur.peek() {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(e) = cur.bump() {
                text.push(e);
            }
            continue;
        }
        text.push(c);
        cur.bump();
        if c == '"' {
            break;
        }
    }
    Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
        lo: 0,
        hi: 0,
    }
}

/// At a `'`: either a char literal (`'a'`, `'\n'`) or a lifetime (`'a`).
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push('\'');
    cur.bump();
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            text.push('\\');
            cur.bump();
            while let Some(c) = cur.bump() {
                text.push(c);
                if c == '\'' {
                    break;
                }
            }
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
                lo: 0,
                hi: 0,
            }
        }
        Some(c) if cur.peek_at(1) == Some('\'') => {
            // 'x'
            text.push(c);
            cur.bump();
            text.push('\'');
            cur.bump();
            Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
                lo: 0,
                hi: 0,
            }
        }
        _ => {
            // Lifetime: consume identifier characters.
            while let Some(c) = cur.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
                lo: 0,
                hi: 0,
            }
        }
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    let mut float = false;
    let radix_prefixed = cur.peek() == Some('0')
        && matches!(
            cur.peek_at(1),
            Some('x') | Some('X') | Some('o') | Some('O') | Some('b') | Some('B')
        );
    if radix_prefixed {
        // 0x / 0o / 0b: digits, underscores and any suffix letters; no
        // float forms exist in these radices.
        while let Some(c) = cur.peek() {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Tok {
            kind: TokKind::Int,
            text,
            line,
            col,
            lo: 0,
            hi: 0,
        };
    }
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: `.` followed by a digit (so `x.0` tuple access and
    // `1.max(2)` method calls stay out).
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        text.push('.');
        cur.bump();
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    // Exponent: e / E with optional sign and at least one digit.
    if matches!(cur.peek(), Some('e') | Some('E')) {
        let sign = matches!(cur.peek_at(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek_at(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            text.push(cur.bump().unwrap_or('e'));
            if sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Suffix (u64, i128, f32, usize, …).
    let mut suffix = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            suffix.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    text.push_str(&suffix);
    Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text,
        line,
        col,
        lo: 0,
        hi: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = a.as_ps() + 2;");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "a", ".", "as_ps", "(", ")", "+", "2", ";"]
        );
        assert_eq!(toks[9].0, TokKind::Int);
    }

    #[test]
    fn float_vs_method_call_vs_tuple_index() {
        assert_eq!(kinds("1.5")[0].0, TokKind::Float);
        assert_eq!(kinds("1e9")[0].0, TokKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokKind::Float);
        assert_eq!(kinds("1.max(2)")[0].0, TokKind::Int);
        let toks = kinds("x.0");
        assert_eq!(toks[2], (TokKind::Int, "0".to_string()));
        assert_eq!(kinds("0xFF_u64")[0], (TokKind::Int, "0xFF_u64".into()));
    }

    #[test]
    fn strings_chars_lifetimes() {
        assert_eq!(kinds("\"a + b\"")[0].0, TokKind::Str);
        assert_eq!(kinds("r#\"raw \" here\"#")[0].0, TokKind::Str);
        assert_eq!(kinds("b\"bytes\"")[0].0, TokKind::Str);
        assert_eq!(kinds("'x'")[0].0, TokKind::Char);
        assert_eq!(kinds("'\\n'")[0].0, TokKind::Char);
        assert_eq!(kinds("b'z'")[0].0, TokKind::Char);
        assert_eq!(kinds("&'a str")[1].0, TokKind::Lifetime);
        assert_eq!(kinds("'static")[0].0, TokKind::Lifetime);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let out = lex("x // lit-lint: allow(r, \"j\")\n/* block + tokens */ y");
        let texts: Vec<&str> = out.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["x", "y"]);
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("lit-lint"));
        assert_eq!(out.comments[0].line, 1);
    }

    #[test]
    fn nested_block_comment() {
        let out = lex("a /* outer /* inner */ still comment */ b");
        let texts: Vec<&str> = out.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "b"]);
    }

    #[test]
    fn byte_spans_cover_exact_source_text() {
        let src = "let s = \"π → ∞\"; // comment\nfor i in 0..n { x[i] += 1.5e3; }\nlet r = r#\"raw\"#; let b = b'z';";
        let out = lex(src);
        let mut prev = 0usize;
        let mut rebuilt = String::new();
        for t in &out.toks {
            assert!(t.lo >= prev && t.hi >= t.lo, "spans out of order");
            assert_eq!(&src[t.lo..t.hi], t.text, "span disagrees with token text");
            rebuilt.push_str(&src[prev..t.lo]);
            rebuilt.push_str(&src[t.lo..t.hi]);
            prev = t.hi;
        }
        rebuilt.push_str(&src[prev..]);
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("ab\n  cd");
        assert_eq!((out.toks[0].line, out.toks[0].col), (1, 1));
        assert_eq!((out.toks[1].line, out.toks[1].col), (2, 3));
    }
}
