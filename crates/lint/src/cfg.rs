//! Intra-function control-flow regions derived from the [`crate::ast`]
//! tree.
//!
//! A *region* is a token span with a control-flow meaning: the function
//! body, a loop body, a match arm, a branch of an `if`, a closure body,
//! or a plain nested block. Regions form a tree (every region has a
//! parent except the function body), and rules query them instead of
//! re-walking the expression tree: "is this token inside a loop?",
//! "which statements of this loop are unconditional (not nested in a
//! branch region)?", "does an early `return`/`break` guard this span?".
//!
//! This is what the barrier-protocol rule runs its state machine over:
//! unconditional statements of a window loop execute in order every
//! iteration, while tokens in a nested branch region are conditional
//! and checked against the barrier count at the *branch point*.

use crate::ast::{Block, Expr, ExprKind, Func, Span};

/// What a region means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionKind {
    /// The function body itself.
    FnBody,
    /// Body of `loop` / `while` / `for`.
    Loop,
    /// Then- or else-branch of an `if` (the else side of an `else if`
    /// chain produces one region per branch).
    Branch,
    /// One `match` arm body (guard included in the span).
    Arm,
    /// A closure body.
    Closure,
    /// A plain block expression (incl. `unsafe { … }`, labeled blocks).
    Block,
}

/// One control-flow region.
#[derive(Clone, Copy, Debug)]
pub struct Region {
    /// Classification.
    pub kind: RegionKind,
    /// Token span of the region's code (for blocks, braces included).
    pub span: Span,
    /// Index of the parent region in the arena; `usize::MAX` for the
    /// function body.
    pub parent: usize,
}

/// All regions of a function, preorder (parents before children).
/// Empty when the function has no body.
pub fn regions(f: &Func) -> Vec<Region> {
    match &f.body {
        Some(b) => regions_of_block(b),
        None => Vec::new(),
    }
}

/// Build the region arena for a block (the root region is `FnBody`).
pub fn regions_of_block(b: &Block) -> Vec<Region> {
    let mut out = vec![Region {
        kind: RegionKind::FnBody,
        span: b.span,
        parent: usize::MAX,
    }];
    rec_block(b, 0, &mut out);
    out
}

fn rec_block(b: &Block, parent: usize, out: &mut Vec<Region>) {
    for s in &b.stmts {
        match &s.kind {
            crate::ast::StmtKind::Let { init, els, .. } => {
                if let Some(e) = init {
                    rec_expr(e, parent, out);
                }
                if let Some(els) = els {
                    let id = push(out, RegionKind::Branch, els.span, parent);
                    rec_block(els, id, out);
                }
            }
            crate::ast::StmtKind::Expr(e) => rec_expr(e, parent, out),
            crate::ast::StmtKind::Item(it) => {
                // Nested fns/closures in items get their own arenas when
                // the rule walks items; skip here.
                let _ = it;
            }
        }
    }
}

fn push(out: &mut Vec<Region>, kind: RegionKind, span: Span, parent: usize) -> usize {
    out.push(Region { kind, span, parent });
    out.len() - 1
}

fn rec_expr(e: &Expr, parent: usize, out: &mut Vec<Region>) {
    match &e.kind {
        ExprKind::If { cond, then, els } => {
            rec_expr(cond, parent, out);
            let t = push(out, RegionKind::Branch, then.span, parent);
            rec_block(then, t, out);
            if let Some(x) = els {
                match &x.kind {
                    ExprKind::Block(b) => {
                        let id = push(out, RegionKind::Branch, b.span, parent);
                        rec_block(b, id, out);
                    }
                    _ => {
                        let id = push(out, RegionKind::Branch, x.span, parent);
                        rec_expr(x, id, out);
                    }
                }
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            rec_expr(scrutinee, parent, out);
            for a in arms {
                let id = push(out, RegionKind::Arm, a.span, parent);
                if let Some(g) = &a.guard {
                    rec_expr(g, id, out);
                }
                rec_expr(&a.body, id, out);
            }
        }
        ExprKind::Loop { body, .. } => {
            let id = push(out, RegionKind::Loop, body.span, parent);
            rec_block(body, id, out);
        }
        ExprKind::While { cond, body, .. } => {
            let id = push(out, RegionKind::Loop, body.span, parent);
            rec_expr(cond, id, out);
            rec_block(body, id, out);
        }
        ExprKind::For { iter, body, .. } => {
            rec_expr(iter, parent, out);
            let id = push(out, RegionKind::Loop, body.span, parent);
            rec_block(body, id, out);
        }
        ExprKind::Block(b) => {
            let id = push(out, RegionKind::Block, b.span, parent);
            rec_block(b, id, out);
        }
        ExprKind::Closure { body, .. } => {
            let id = push(out, RegionKind::Closure, body.span, parent);
            rec_expr(body, id, out);
        }
        ExprKind::Macro { subs, .. } | ExprKind::Leaf { subs } => {
            for s in subs {
                rec_expr(s, parent, out);
            }
        }
        ExprKind::Return(x) | ExprKind::Break(x) => {
            if let Some(x) = x {
                rec_expr(x, parent, out);
            }
        }
        ExprKind::Continue => {}
    }
}

/// Index of the innermost region containing token `i`, if any.
pub fn innermost(regions: &[Region], i: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (idx, r) in regions.iter().enumerate() {
        if r.span.contains(i) {
            let better = match best {
                None => true,
                Some(b) => {
                    let bs = regions[b].span;
                    r.span.hi - r.span.lo <= bs.hi - bs.lo
                }
            };
            if better {
                best = Some(idx);
            }
        }
    }
    best
}

/// Whether token `i` is *conditional* relative to region `root`: some
/// region strictly between `i`'s innermost region and `root` is a
/// branch, arm, or closure (its execution is not guaranteed once per
/// entry into `root`). Loops and plain blocks do not make a token
/// conditional.
pub fn conditional_within(regions: &[Region], i: usize, root: usize) -> bool {
    let Some(mut r) = innermost(regions, i) else {
        return false;
    };
    while r != root && r != usize::MAX {
        match regions[r].kind {
            RegionKind::Branch | RegionKind::Arm | RegionKind::Closure => return true,
            _ => {}
        }
        r = regions[r].parent;
        if r == usize::MAX {
            break;
        }
    }
    false
}
