//! The rule set. Each rule is a pure function from a [`SourceFile`] (plus
//! the workspace [`Config`]) to findings; `lib.rs` matches findings
//! against allow annotations afterwards.

use crate::diag::Finding;
use crate::source::SourceFile;
use crate::Config;

mod barrier;
mod checked_clock;
mod forbid_unsafe;
mod no_panic;
mod nondet_iter;
mod raw_time;

pub use barrier::BARRIER_PROTOCOL;
pub use checked_clock::CHECKED_CLOCK_OPS;
pub use forbid_unsafe::FORBID_UNSAFE;
pub use no_panic::NO_PANIC_HOT_PATH;
pub use nondet_iter::NONDETERMINISTIC_ITERATION;
pub use raw_time::RAW_TIME_ARITHMETIC;

/// `stale-allow` is not a pass over source tokens: it fires from the
/// allow-resolution step in `lib.rs` when an annotation suppresses
/// nothing under the precise engine. It still registers here so
/// `lit-lint rules` lists it and `--rule stale-allow` can gate on it.
pub const STALE_ALLOW: &str = "stale-allow";

fn no_pass(_f: &SourceFile, _c: &Config) -> Vec<Finding> {
    Vec::new()
}

/// A lint rule: a stable name, a one-line description, and the pass.
pub struct Rule {
    /// Stable kebab-case name used in reports and allow annotations.
    pub name: &'static str,
    /// One-line description for `lit-lint rules`.
    pub describe: &'static str,
    /// The paper invariant the rule protects (documentation only).
    pub protects: &'static str,
    /// The pass itself.
    pub check: fn(&SourceFile, &Config) -> Vec<Finding>,
}

/// Every rule, in report order.
pub fn all() -> Vec<Rule> {
    vec![
        Rule {
            name: RAW_TIME_ARITHMETIC,
            describe: "no raw u64/f64 arithmetic, narrowing casts, or float literals \
                       flowing into Time/Duration values",
            protects: "exactness of the clock recurrences behind eq. 8-11 and ineq. 12/15/16",
            check: raw_time::check,
        },
        Rule {
            name: NO_PANIC_HOT_PATH,
            describe: "unwrap/expect/panic!/indexing-without-get banned in scheduler hot paths",
            protects: "a production scheduler must degrade, not abort, mid-schedule",
            check: no_panic::check,
        },
        Rule {
            name: FORBID_UNSAFE,
            describe: "every crate root must carry #![forbid(unsafe_code)]",
            protects: "memory safety of every bound computation, statically",
            check: forbid_unsafe::check,
        },
        Rule {
            name: CHECKED_CLOCK_OPS,
            describe: "wrapping_*/overflowing_*/saturating_* on clock-carrying values \
                       must be justified",
            protects: "the fail-loudly overflow contract of sim/src/time.rs",
            check: checked_clock::check,
        },
        Rule {
            name: NONDETERMINISTIC_ITERATION,
            describe: "no HashMap/HashSet iteration or order-dependent draining in the \
                       engine crates (net/core/sim)",
            protects: "byte-identical results across shard counts (DESIGN.md §12) — only \
                       as strong as every iteration order in the event path",
            check: nondet_iter::check,
        },
        Rule {
            name: BARRIER_PROTOCOL,
            describe: "window state machine over crates/net/src/shard.rs: publish → \
                       barrier A → sends → barrier B → abort check / drain",
            protects: "the abort-race deadlock class loom caught after the fact in PR 7",
            check: barrier::check,
        },
        Rule {
            name: STALE_ALLOW,
            describe: "an allow annotation whose finding no longer fires is itself a \
                       violation — the allow list can only shrink",
            protects: "the audit trail: every allow justifies a live finding",
            check: no_pass,
        },
    ]
}

/// Walk back from the token *before* a method-call `.name(...)` chain and
/// return the index of the token immediately preceding the whole receiver
/// expression (identifier chains, `::` paths, balanced `(..)`/`[..]`
/// groups). Used to ask "does an arithmetic operator feed this call?".
pub(crate) fn before_receiver(file: &SourceFile, dot: usize) -> Option<usize> {
    let toks = &file.toks;
    let mut i = dot; // index of the `.`
    loop {
        if i == 0 {
            return None;
        }
        let prev = i - 1;
        let t = &toks[prev];
        if t.is_punct(')') || t.is_punct(']') {
            // Skip the balanced group backwards.
            let close = prev;
            let (o, c) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0usize;
            let mut j = close;
            loop {
                let tj = &toks[j];
                if tj.is_punct(c) {
                    depth += 1;
                } else if tj.is_punct(o) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            i = j;
            continue;
        }
        if matches!(
            t.kind,
            crate::lexer::TokKind::Ident | crate::lexer::TokKind::Int
        ) {
            i = prev;
            continue;
        }
        if t.is_punct('.') || t.is_punct(':') {
            i = prev;
            continue;
        }
        return Some(prev);
    }
}

use crate::lexer::TokKind;

/// Is token `i` an arithmetic operator (`+ - * / %`) in expression
/// position? `-` and `*` are only counted when the *previous* token could
/// end an operand (so unary minus, deref, and `*const` stay out); `/` and
/// `%` and `+` are always binary in valid Rust expressions (`+` in trait
/// bounds is filtered by the same operand test).
pub(crate) fn is_binary_arith(file: &SourceFile, i: usize) -> bool {
    let t = &file.toks[i];
    if t.kind != TokKind::Punct {
        return false;
    }
    let c = match t.text.chars().next() {
        Some(c) if "+-*/%".contains(c) => c,
        _ => return false,
    };
    // `->`, `*=`-style compound assigns, `/=` etc.: compound assigns still
    // perform arithmetic, keep them; `->` is not arithmetic.
    if c == '-' && file.toks.get(i + 1).is_some_and(|n| n.is_punct('>')) {
        return false;
    }
    let Some(prev) = i.checked_sub(1).map(|p| &file.toks[p]) else {
        return false;
    };
    matches!(prev.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
        || prev.is_punct(')')
        || prev.is_punct(']')
}
