//! `barrier-protocol` — the sharded executor's window state machine,
//! checked statically over `crates/net/src/shard.rs`.
//!
//! DESIGN.md §12's window protocol is a three-phase cycle per loop
//! iteration:
//!
//! ```text
//! phase 0  publish next_event_ps          (next_ts[..].store)
//! ──────── barrier A ────────────────────
//! phase 1  snapshot tmin, process window  (sends: try_send /
//!          send_handoff / spill_push)
//! ──────── barrier B ────────────────────
//! phase 2  abort check, drain mailboxes   (abort.load, drain_inboxes,
//!          try_recv)
//! ```
//!
//! The PR-7 deadlock was exactly a phase violation: the worker loop read
//! `abort` in its break condition *between* barrier A and barrier B, so
//! one worker could leave while a peer was still blocked on B. The
//! committed fixture `tests/fixtures/barrier_protocol.rs` reconstructs
//! that pre-fix loop; this rule must flag it forever.
//!
//! Mechanics, per *window loop* (any `loop`/`while` in a
//! [`Config::barrier_files`] file whose body contains an unconditional
//! statement-level `barrier.wait()`):
//!
//! * exactly two unconditional `barrier.wait()` calls per iteration —
//!   a conditional wait is itself a violation (it desynchronizes the
//!   barrier count across workers);
//! * `…barrier.wait()` calls nested under a branch/arm/closure region
//!   ([`crate::cfg`]) are the conditional ones;
//! * every protocol event in the body is checked against the number of
//!   waits textually before it (with unconditional waits in a
//!   straight-line loop body, textual order *is* domination):
//!   `next_ts….store` → phase 0, sends → phase 1, `abort.load` /
//!   `drain_inboxes` / `try_recv` → phase 2.
//!
//! Functions without a barrier loop (e.g. `send_handoff`,
//! `drain_inboxes` themselves) are never entered: their sends/receives
//! are checked at the call sites inside window loops.

use crate::ast::{self, ExprKind};
use crate::cfg::{conditional_within, regions_of_block};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Config;

/// Rule name.
pub const BARRIER_PROTOCOL: &str = "barrier-protocol";

/// Protocol events and their required phase (waits seen this iteration).
const EVENTS: [(&str, usize, &str); 6] = [
    ("abort", 2, "abort flag must be read only after barrier B (phase 2); reading it between the barriers races a peer still blocked on B — the PR-7 deadlock"),
    ("drain_inboxes", 2, "mailbox drain must happen after barrier B (phase 2), once every send of the window is published"),
    ("try_recv", 2, "mailbox receive must happen after barrier B (phase 2), once every send of the window is published"),
    ("try_send", 1, "mailbox send must happen between barrier A and barrier B (phase 1), inside the processed window"),
    ("send_handoff", 1, "mailbox send must happen between barrier A and barrier B (phase 1), inside the processed window"),
    ("spill_push", 1, "spill-lane push must happen between barrier A and barrier B (phase 1), inside the processed window"),
];

/// Token index of each `barrier.wait()` whose `barrier` ident is at `i`.
fn is_barrier_wait(file: &SourceFile, i: usize) -> bool {
    let toks = &file.toks;
    toks[i].is_ident("barrier")
        && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("wait"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
}

/// The pass.
pub fn check(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if !cfg.is_barrier_file(&file.rel) {
        return out;
    }
    let mut loops: Vec<&ast::Block> = Vec::new();
    ast::walk_tree(&file.tree, &mut |e| match &e.kind {
        ExprKind::Loop { body, .. } | ExprKind::While { body, .. } => loops.push(body),
        _ => {}
    });
    // Inner loops are walked separately; skip events already judged in
    // an inner window loop by tracking claimed token ranges.
    let mut claimed: Vec<(usize, usize)> = Vec::new();
    // Judge innermost loops first so an outer loop never re-claims them.
    loops.sort_by_key(|b| b.span.hi - b.span.lo);
    for body in loops {
        if claimed
            .iter()
            .any(|&(lo, hi)| lo <= body.span.lo && body.span.hi <= hi)
        {
            continue;
        }
        let toks = &file.toks;
        let in_claimed = |i: usize| claimed.iter().any(|&(lo, hi)| lo <= i && i < hi);
        let wait_positions: Vec<usize> = (body.span.lo..body.span.hi)
            .filter(|&i| is_barrier_wait(file, i) && !in_claimed(i))
            .collect();
        if wait_positions.is_empty() {
            continue; // not a window loop
        }
        let regions = regions_of_block(body);
        let unconditional: Vec<usize> = wait_positions
            .iter()
            .copied()
            .filter(|&i| !conditional_within(&regions, i, 0))
            .collect();
        for &w in &wait_positions {
            if !unconditional.contains(&w) {
                out.push(
                    file.finding(
                        BARRIER_PROTOCOL,
                        w,
                        "conditional barrier.wait(): every worker must hit the same barriers \
                     every iteration, or the barrier counts desynchronize"
                            .to_string(),
                    ),
                );
            }
        }
        if unconditional.len() != 2 {
            out.push(file.finding(
                BARRIER_PROTOCOL,
                unconditional.first().copied().unwrap_or(body.span.lo),
                format!(
                    "window loop has {} unconditional barrier.wait() calls; the window \
                     protocol is exactly two per iteration (publish → A → process → B → drain)",
                    unconditional.len()
                ),
            ));
        }
        // Phase-check every event token in the loop body.
        for i in body.span.lo..body.span.hi.min(toks.len()) {
            if in_claimed(i) {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let phase = unconditional.iter().filter(|&&w| w < i).count();
            // next_ts publication: a `.store(` whose receiver chain
            // mentions next_ts.
            if t.is_ident("store")
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                let start = crate::rules::before_receiver(file, i - 1).map_or(0, |b| b + 1);
                let on_next_ts = toks[start..i - 1].iter().any(|t| t.is_ident("next_ts"));
                if on_next_ts && phase != 0 {
                    out.push(
                        file.finding(
                            BARRIER_PROTOCOL,
                            i,
                            "next_ts must be published before barrier A (phase 0) so every \
                         worker snapshots the same window minimum"
                                .to_string(),
                        ),
                    );
                }
                continue;
            }
            for (name, want, why) in EVENTS {
                if t.is_ident(name) && phase != want {
                    // `abort` only counts as an event when it is read:
                    // `abort.load(`; `abort.store` in the panic path is
                    // phase-1 by design.
                    if name == "abort"
                        && !(toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                            && toks.get(i + 2).is_some_and(|n| n.is_ident("load")))
                    {
                        continue;
                    }
                    out.push(file.finding(
                        BARRIER_PROTOCOL,
                        i,
                        format!("{why} (saw it in phase {phase})"),
                    ));
                }
            }
        }
        claimed.push((body.span.lo, body.span.hi));
    }
    out
}
