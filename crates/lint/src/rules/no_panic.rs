//! `no-panic-hot-path`: the scheduler's per-event code paths must not
//! contain `unwrap`/`expect`, panicking macros, or panicking indexing.
//!
//! The hot paths (configured in [`Config::hot_paths`], by default the
//! executor, the eligible queues, the event set, the LiT discipline, the
//! reference server, and the probe hooks) run once or more per simulated
//! packet per hop. A panic there aborts a multi-minute run — or, in the
//! production-scheduler future the ROADMAP names, drops live traffic.
//! Every surviving call must either become a typed error or carry an
//! allow annotation whose justification states the invariant that makes
//! it unreachable.
//!
//! Flagged: `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`, and index expressions `recv[...]` (use `.get()` /
//! `.get_mut()` or justify). `assert!`/`debug_assert!` are deliberate
//! precondition checks and stay legal — including panic sources inside
//! their argument lists. Test code is exempt.
//!
//! Syntax-aware precision (the v2 engine):
//!
//! * tokens inside attributes, declared types, and binding patterns are
//!   never code (`let [a, b] = xs;` is a slice pattern, not an index);
//! * an index the tree can *prove in bounds* is not a panic source and
//!   is not flagged, removing the allow it used to need:
//!   - `arr[K]` where `K` is an integer literal or a file-local `const`
//!     and `arr` is declared `[T; N]` with `N` resolvable, `K < N`;
//!   - `arr[i]` where `i` is the loop variable of an enclosing
//!     `for i in 0..M` (or `0..arr.len()`) and `M ≤ N`.
//!
//! The proofs are deliberately closed-world (single file, literal or
//! const lengths): anything the tree cannot resolve stays flagged.

use crate::ast::{self, Span};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::{matching_close, SourceFile};
use crate::Config;
use std::collections::BTreeMap;

/// Stable rule name.
pub const NO_PANIC_HOT_PATH: &str = "no-panic-hot-path";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: [&str; 6] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Parse an integer literal token (`11`, `0x10`, `4usize`, `1_000`).
fn int_value(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let t = t
        .trim_end_matches("usize")
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("u16")
        .trim_end_matches("u8");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = t.strip_prefix("0o") {
        return u64::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = t.strip_prefix("0b") {
        return u64::from_str_radix(bin, 2).ok();
    }
    t.parse().ok()
}

/// File-local `const NAME: … = <int literal>;` table, plus one level of
/// `const A: … = B;` aliasing and `1 << K` shifts of resolved values.
fn const_table(file: &SourceFile) -> BTreeMap<String, u64> {
    let mut direct: Vec<(String, Span)> = Vec::new();
    collect_consts(&file.tree.items, &mut direct);
    let mut table = BTreeMap::new();
    // Two passes so aliases of later consts resolve too.
    for _ in 0..2 {
        for (name, value) in &direct {
            if table.contains_key(name) {
                continue;
            }
            if let Some(v) = eval_const_expr(file, *value, &table) {
                table.insert(name.clone(), v);
            }
        }
    }
    table
}

fn collect_consts(items: &[ast::Item], out: &mut Vec<(String, Span)>) {
    for it in items {
        match &it.kind {
            ast::ItemKind::Const { value } => {
                if let Some(n) = &it.name {
                    out.push((n.clone(), *value));
                }
            }
            ast::ItemKind::Items(sub) => collect_consts(sub, out),
            _ => {}
        }
    }
}

/// Evaluate a tiny const-expression grammar: `<int>`, `<const>`, or
/// `<a> << <b>` over those. Anything else is unknown.
fn eval_const_expr(file: &SourceFile, sp: Span, known: &BTreeMap<String, u64>) -> Option<u64> {
    let toks = &file.toks[sp.lo..sp.hi.min(file.toks.len())];
    let atom = |t: &crate::lexer::Tok| -> Option<u64> {
        match t.kind {
            TokKind::Int => int_value(&t.text),
            TokKind::Ident => known.get(&t.text).copied(),
            _ => None,
        }
    };
    match toks {
        [a] => atom(a),
        [a, s1, s2, b] if s1.is_punct('<') && s2.is_punct('<') => {
            let base = atom(a)?;
            let sh = atom(b)?;
            base.checked_shl(u32::try_from(sh).ok()?)
        }
        _ => None,
    }
}

/// A fixed-length array binding: name → length, valid over `scope`
/// (a function body for params and lets, the whole file for struct
/// fields). Scoping matters: a parameter `occ: &[u64; 4]` in one
/// function must not claim a length for a field `occ: [u64; LEVELS]`
/// used in another.
struct ArrayLen {
    name: String,
    len: u64,
    scope: Option<Span>,
}

/// Fixed-length array bindings in this file. Sources: struct fields
/// (file-wide), fn parameters and `let` annotations (scoped to the
/// function body) whose declared type is `[T; LEN]` with `LEN` an int
/// literal or known const.
fn array_lens(file: &SourceFile, consts: &BTreeMap<String, u64>) -> Vec<ArrayLen> {
    let mut tys: Vec<(String, Span, Option<Span>)> = Vec::new();
    collect_typed_bindings(&file.tree.items, file, &mut tys);
    tys.into_iter()
        .filter_map(|(name, ty, scope)| {
            array_len_of_type(file, ty, consts).map(|len| ArrayLen { name, len, scope })
        })
        .collect()
}

fn collect_typed_bindings(
    items: &[ast::Item],
    file: &SourceFile,
    out: &mut Vec<(String, Span, Option<Span>)>,
) {
    for it in items {
        match &it.kind {
            ast::ItemKind::Struct(fields) => {
                for f in fields {
                    out.push((f.name.clone(), f.ty, None));
                }
            }
            ast::ItemKind::Fn(f) => {
                let Some(body) = &f.body else { continue };
                for p in &f.params {
                    if let Some(n) = &p.name {
                        out.push((n.clone(), p.ty, Some(body.span)));
                    }
                }
                // `let name: [T; N] = …;` anywhere in the body.
                ast::stmts_in_block(body, &mut |s| {
                    if let ast::StmtKind::Let {
                        pat, ty: Some(ty), ..
                    } = &s.kind
                    {
                        let pat_toks = &file.toks[pat.lo..pat.hi.min(file.toks.len())];
                        let name = match pat_toks {
                            [t] if t.kind == TokKind::Ident => Some(t.text.clone()),
                            [m, t] if m.is_ident("mut") && t.kind == TokKind::Ident => {
                                Some(t.text.clone())
                            }
                            _ => None,
                        };
                        if let Some(n) = name {
                            out.push((n, *ty, Some(body.span)));
                        }
                    }
                });
            }
            ast::ItemKind::Items(sub) => collect_typed_bindings(sub, file, out),
            _ => {}
        }
    }
}

/// The length in force for `name` at token `i`: the innermost in-scope
/// binding wins; a file-wide struct field is the fallback.
fn len_at(lens: &[ArrayLen], name: &str, i: usize) -> Option<u64> {
    lens.iter()
        .filter(|l| l.name == name && l.scope.is_none_or(|s| s.contains(i)))
        .min_by_key(|l| l.scope.map_or(u64::MAX, |s| (s.hi - s.lo) as u64))
        .map(|l| l.len)
}

/// `[T; LEN]` (with optional leading `&`/`&mut`) → LEN.
fn array_len_of_type(file: &SourceFile, ty: Span, consts: &BTreeMap<String, u64>) -> Option<u64> {
    let hi = ty.hi.min(file.toks.len());
    let mut lo = ty.lo;
    while lo < hi && (file.toks[lo].is_punct('&') || file.toks[lo].is_ident("mut")) {
        lo += 1;
    }
    if lo >= hi || !file.toks[lo].is_punct('[') || !file.toks[hi - 1].is_punct(']') {
        return None;
    }
    // Find the `;` at depth 1.
    let mut depth = 0isize;
    let mut semi = None;
    for i in lo..hi {
        let t = &file.toks[i];
        if t.is_punct('[') || t.is_punct('(') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 1 {
            semi = Some(i);
        }
    }
    let semi = semi?;
    eval_const_expr(
        file,
        Span {
            lo: semi + 1,
            hi: hi - 1,
        },
        consts,
    )
}

/// Enclosing `for <ident> in 0..<bound>` contexts: (loop variable,
/// exclusive upper bound, body span). `0..name.len()` records the bound
/// as the iterated binding's own length when known.
struct ForRange {
    var: String,
    bound: u64,
    body: Span,
}

fn for_ranges(
    file: &SourceFile,
    consts: &BTreeMap<String, u64>,
    lens: &[ArrayLen],
) -> Vec<ForRange> {
    let mut out = Vec::new();
    ast::walk_tree(&file.tree, &mut |e| {
        if let ast::ExprKind::For {
            pat, iter, body, ..
        } = &e.kind
        {
            let pat_toks = &file.toks[pat.lo..pat.hi.min(file.toks.len())];
            let var = match pat_toks {
                [t] if t.kind == TokKind::Ident => t.text.clone(),
                _ => return,
            };
            let it = &file.toks[iter.span.lo..iter.span.hi.min(file.toks.len())];
            // Strip `0 . .` (the lexer splits `..`), then an optional
            // `self .` on the bound.
            let bound = match it {
                [z, d1, d2, rest @ ..] if z.text == "0" && d1.is_punct('.') && d2.is_punct('.') => {
                    let rest = match rest {
                        [s, dot, tail @ ..] if s.is_ident("self") && dot.is_punct('.') => tail,
                        _ => rest,
                    };
                    match rest {
                        // `0..BOUND` with a literal or known-const bound.
                        [b] => match b.kind {
                            TokKind::Int => int_value(&b.text),
                            TokKind::Ident => consts.get(&b.text).copied(),
                            _ => None,
                        },
                        // `0..name.len()` where `name` has a known length.
                        [n, dot, l, po, pc]
                            if n.kind == TokKind::Ident
                                && dot.is_punct('.')
                                && l.is_ident("len")
                                && po.is_punct('(')
                                && pc.is_punct(')') =>
                        {
                            len_at(lens, &n.text, iter.span.lo)
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(bound) = bound {
                out.push(ForRange {
                    var,
                    bound,
                    body: body.span,
                });
            }
        }
    });
    out
}

/// Token spans of assert-macro argument lists (deliberate precondition
/// checks; panic sources inside them are by design).
fn assert_arg_spans(file: &SourceFile) -> Vec<Span> {
    let mut out = Vec::new();
    ast::walk_tree(&file.tree, &mut |e| {
        if let ast::ExprKind::Macro { name, args, .. } = &e.kind {
            if ASSERT_MACROS.contains(&name.as_str()) {
                out.push(*args);
            }
        }
    });
    out
}

/// Is the index at `open`..`close` (exclusive of brackets) provably in
/// bounds for receiver `recv`?
fn index_proven(
    file: &SourceFile,
    recv: &str,
    open: usize,
    close: usize,
    consts: &BTreeMap<String, u64>,
    lens: &[ArrayLen],
    fors: &[ForRange],
) -> bool {
    let Some(len) = len_at(lens, recv, open) else {
        return false;
    };
    let idx = &file.toks[open + 1..close.min(file.toks.len())];
    let [ix] = idx else { return false };
    match ix.kind {
        TokKind::Int => int_value(&ix.text).is_some_and(|v| v < len),
        TokKind::Ident => {
            if let Some(&v) = consts.get(&ix.text) {
                return v < len;
            }
            // Loop-variable proof: innermost enclosing for-range binding
            // this ident (later `for` shadows earlier).
            fors.iter()
                .filter(|f| f.var == ix.text && f.body.contains(open))
                .min_by_key(|f| f.body.hi - f.body.lo)
                .is_some_and(|f| f.bound <= len)
        }
        _ => false,
    }
}

pub(super) fn check(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if !cfg.is_hot_path(&file.rel) {
        return out;
    }
    let consts = const_table(file);
    let lens = array_lens(file, &consts);
    let fors = for_ranges(file, &consts, &lens);
    let asserts = assert_arg_spans(file);
    let in_assert = |i: usize| asserts.iter().any(|s| s.contains(i));

    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.test_mask[i] || file.attr_mask[i] || file.type_mask[i] || file.pat_mask[i] {
            continue;
        }
        if in_assert(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let followed_by_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if (t.text == "unwrap" || t.text == "expect")
                && i >= 1
                && toks[i - 1].is_punct('.')
                && followed_by_call
            {
                out.push(file.finding(
                    NO_PANIC_HOT_PATH,
                    i,
                    format!(
                        "`.{}(…)` on a hot path: return a typed error, restructure so the \
                         value is proven present, or justify the invariant with an allow \
                         annotation",
                        t.text
                    ),
                ));
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(file.finding(
                    NO_PANIC_HOT_PATH,
                    i,
                    format!(
                        "`{}!` on a hot path: degrade or return an error instead",
                        t.text
                    ),
                ));
            }
        }
        // Index expression: `[` directly after an identifier, `)`, or `]`
        // is indexing (types, attributes, macro brackets and slice
        // patterns are excluded by the context masks above).
        if t.is_punct('[') && i >= 1 {
            let p = &toks[i - 1];
            let indexing = p.kind == TokKind::Ident && !is_keyword_before_bracket(&p.text)
                || p.is_punct(')')
                || p.is_punct(']');
            if indexing {
                // In-bounds proof for simple `name[idx]` shapes.
                if p.kind == TokKind::Ident {
                    if let Some(close) = matching_close(toks, i) {
                        if index_proven(file, &p.text, i, close, &consts, &lens, &fors) {
                            continue;
                        }
                    }
                }
                out.push(
                    file.finding(
                        NO_PANIC_HOT_PATH,
                        i,
                        "panicking index on a hot path: use `.get()`/`.get_mut()` or justify the \
                     bound with an allow annotation"
                            .to_string(),
                    ),
                );
            }
        }
    }
    out
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, …).
fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "mut" | "dyn" | "as" | "if" | "else" | "match" | "impl"
    )
}
