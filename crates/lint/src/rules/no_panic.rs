//! `no-panic-hot-path`: the scheduler's per-event code paths must not
//! contain `unwrap`/`expect`, panicking macros, or panicking indexing.
//!
//! The hot paths (configured in [`Config::hot_paths`], by default the
//! executor, the eligible queues, the event set, the LiT discipline, the
//! reference server, and the probe hooks) run once or more per simulated
//! packet per hop. A panic there aborts a multi-minute run — or, in the
//! production-scheduler future the ROADMAP names, drops live traffic.
//! Every surviving call must either become a typed error or carry an
//! allow annotation whose justification states the invariant that makes
//! it unreachable.
//!
//! Flagged: `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`, and index expressions `recv[...]` (use `.get()` /
//! `.get_mut()` or justify). `assert!`/`debug_assert!` are deliberate
//! precondition checks and stay legal. Test code is exempt.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Config;

/// Stable rule name.
pub const NO_PANIC_HOT_PATH: &str = "no-panic-hot-path";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub(super) fn check(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if !cfg.is_hot_path(&file.rel) {
        return out;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let followed_by_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if (t.text == "unwrap" || t.text == "expect")
                && i >= 1
                && toks[i - 1].is_punct('.')
                && followed_by_call
            {
                out.push(file.finding(
                    NO_PANIC_HOT_PATH,
                    i,
                    format!(
                        "`.{}(…)` on a hot path: return a typed error, restructure so the \
                         value is proven present, or justify the invariant with an allow \
                         annotation",
                        t.text
                    ),
                ));
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(file.finding(
                    NO_PANIC_HOT_PATH,
                    i,
                    format!(
                        "`{}!` on a hot path: degrade or return an error instead",
                        t.text
                    ),
                ));
            }
        }
        // Index expression: `[` directly after an identifier, `)`, or `]`
        // is indexing (types `[u64; 4]`, attributes `#[...]`, macro
        // brackets `vec![...]`, and slice patterns all follow other
        // tokens).
        if t.is_punct('[') && i >= 1 {
            let p = &toks[i - 1];
            let indexing = p.kind == TokKind::Ident && !is_keyword_before_bracket(&p.text)
                || p.is_punct(')')
                || p.is_punct(']');
            if indexing {
                out.push(
                    file.finding(
                        NO_PANIC_HOT_PATH,
                        i,
                        "panicking index on a hot path: use `.get()`/`.get_mut()` or justify the \
                     bound with an allow annotation"
                            .to_string(),
                    ),
                );
            }
        }
    }
    out
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, …).
fn is_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "mut" | "dyn" | "as" | "if" | "else" | "match" | "impl"
    )
}
