//! `raw-time-arithmetic`: raw `u64`/`f64` arithmetic, narrowing casts, and
//! float literals must not flow into `Time`/`Duration` values.
//!
//! Every bound the paper proves (eq. 8-11, ineq. 12/15/16) is computed in
//! the fixed-point picosecond newtypes of `sim/src/time.rs`; one wrapped
//! multiplication or float-rounded conversion silently corrupts deadline
//! order. This rule pushes clock math through the newtypes' checked
//! operators (which fail loudly) or through explicit `u128`/`i128`
//! widening (which cannot wrap).
//!
//! What fires, at token level:
//!
//! 1. `x.as_ps() <op>` / `<op> x.as_ps()` where `<op>` is `+ - * / %` and
//!    the escaping value is *not* immediately widened with `as u128` /
//!    `as i128` (or deliberately exported with `as f64` for reporting):
//!    bare `u64` clock arithmetic, exactly what overflows.
//! 2. `Time::from_ps(..)` / `Duration::from_{ps,ns,us,ms,secs}(..)` whose
//!    argument contains arithmetic operators, an `as` cast, or a float
//!    literal: a clock value built from math that bypassed the newtypes.
//! 3. `from_secs_f64(..)` / `from_millis_f64(..)` anywhere outside the
//!    exempt files: a float-to-clock conversion that must be justified.
//!
//! `crates/analysis` (measurement/reporting, float by design) and
//! `crates/sim/src/time.rs` (the definitions themselves) are exempt, as is
//! test code. The v2 engine also skips tokens inside attributes,
//! declared types, and binding patterns — `from_ps` naming a field type
//! or a pattern arm is not a call.

use super::{before_receiver, is_binary_arith};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::{matching_close, SourceFile};
use crate::Config;

/// Stable rule name.
pub const RAW_TIME_ARITHMETIC: &str = "raw-time-arithmetic";

const CLOCK_CONSTRUCTORS: [&str; 5] = ["from_ps", "from_ns", "from_us", "from_ms", "from_secs"];
const FLOAT_CONSTRUCTORS: [&str; 2] = ["from_secs_f64", "from_millis_f64"];
/// Widening casts that cannot lose clock precision.
const WIDENING: [&str; 3] = ["u128", "i128", "f64"];

pub(super) fn check(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.is_time_exempt(&file.rel) || !cfg.is_production_src(&file.rel) {
        return out;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        if file.test_mask[i]
            || file.attr_mask[i]
            || file.type_mask[i]
            || file.pat_mask[i]
            || toks[i].kind != TokKind::Ident
        {
            continue;
        }
        let name = toks[i].text.as_str();

        // (1) raw u64 arithmetic around `.as_ps()`.
        if name == "as_ps"
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
        {
            let after = i + 3;
            let widened = toks.get(after).is_some_and(|t| t.is_ident("as"))
                && toks
                    .get(after + 1)
                    .is_some_and(|t| WIDENING.contains(&t.text.as_str()));
            if !widened {
                if after < toks.len() && is_binary_arith(file, after) {
                    out.push(file.finding(
                        RAW_TIME_ARITHMETIC,
                        i,
                        format!(
                            "raw u64 arithmetic on `as_ps()` (`{} {}`): widen with `as u128`/`as \
                             i128` first, or stay in Time/Duration ops",
                            file.toks[i].text, file.toks[after].text
                        ),
                    ));
                } else if let Some(prev) = before_receiver(file, i - 1) {
                    if is_binary_arith(file, prev) {
                        out.push(file.finding(
                            RAW_TIME_ARITHMETIC,
                            i,
                            "raw u64 arithmetic feeding `.as_ps()` as right operand: widen the \
                             operands or stay in Time/Duration ops"
                                .to_string(),
                        ));
                    }
                }
            }
        }

        // (2) clock constructed from computed raw values.
        if CLOCK_CONSTRUCTORS.contains(&name)
            && is_clock_type_path(file, i)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            if let Some(close) = matching_close(toks, i + 1) {
                if close > i + 2 {
                    if let Some(why) = computed_arg(file, i + 2, close) {
                        out.push(file.finding(
                            RAW_TIME_ARITHMETIC,
                            i,
                            format!(
                                "`{}({})` built from {why}: do the math in Duration's checked \
                                 ops (or justify with an allow annotation)",
                                name,
                                arg_preview(file, i + 2, close),
                            ),
                        ));
                    }
                }
            }
        }

        // (3) float-to-clock conversion.
        if FLOAT_CONSTRUCTORS.contains(&name) && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            out.push(file.finding(
                RAW_TIME_ARITHMETIC,
                i,
                format!(
                    "`{name}` converts f64 into a clock value outside lit-analysis; rounding \
                     must be justified with an allow annotation"
                ),
            ));
        }
    }
    out
}

/// Whether the constructor ident at `i` is written as `Time::ctor` /
/// `Duration::ctor`; the explicit type name cuts false positives from
/// other types' `from_*` associated functions.
fn is_clock_type_path(file: &SourceFile, i: usize) -> bool {
    i >= 3
        && file.toks[i - 1].is_punct(':')
        && file.toks[i - 2].is_punct(':')
        && matches!(file.toks[i - 3].text.as_str(), "Time" | "Duration")
}

/// Why the argument tokens in `(start..close)` count as computed raw
/// math, if they do.
fn computed_arg(file: &SourceFile, start: usize, close: usize) -> Option<&'static str> {
    for j in start..close {
        let t = &file.toks[j];
        if t.kind == TokKind::Float {
            return Some("a float literal");
        }
        if t.is_ident("as") {
            return Some("an `as` cast");
        }
        if is_binary_arith(file, j) {
            return Some("raw integer arithmetic");
        }
    }
    None
}

fn arg_preview(file: &SourceFile, start: usize, close: usize) -> String {
    let mut s = String::new();
    for t in &file.toks[start..close.min(start + 8)] {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    if close > start + 8 {
        s.push('…');
    }
    s
}
