//! `checked-clock-ops`: `wrapping_*` / `overflowing_*` / `saturating_*`
//! on clock-carrying values must be individually justified.
//!
//! `sim/src/time.rs` documents a fail-loudly contract: clock arithmetic
//! that could wrap either returns `Option` (`checked_*`) or panics in
//! both debug and release. Wrapping/overflowing/saturating operators on
//! values that carry picoseconds erode that contract silently — a clock
//! that saturates at the wrong place reorders deadlines without a trace
//! (the PR-2 oracle can only notice *afterwards*). Each use must carry an
//! allow annotation saying why clamping/wrapping is correct there.
//!
//! Detection is per *segment* (tokens between `;`, `,`, `{`, `}`): a
//! `.wrapping_*() / .overflowing_*() / .saturating_*()` call is flagged
//! when its segment also mentions a clock marker — `Time`, `Duration`,
//! `as_ps`, `from_ps`, or any identifier ending in `_ps`. The
//! `Time`-specific `saturating_since` is always flagged. RNG mixers,
//! usize bookkeeping, and other non-clock saturating math stay silent.

use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Config;

/// Stable rule name.
pub const CHECKED_CLOCK_OPS: &str = "checked-clock-ops";

fn is_flagged_method(name: &str) -> bool {
    name.starts_with("wrapping_")
        || name.starts_with("overflowing_")
        || name.starts_with("saturating_")
}

fn is_clock_marker(name: &str) -> bool {
    name == "Time" || name == "Duration" || name == "as_ps" || name == "from_ps" || {
        name.ends_with("_ps") && name != "as_ps" && name != "from_ps"
    }
}

pub(super) fn check(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.is_time_exempt(&file.rel) || !cfg.is_production_src(&file.rel) {
        return out;
    }
    let toks = &file.toks;
    // Segment boundaries: statement-ish separators.
    let mut seg_start = 0usize;
    let mut i = 0usize;
    while i <= toks.len() {
        let at_boundary = i == toks.len()
            || toks[i].is_punct(';')
            || toks[i].is_punct(',')
            || toks[i].is_punct('{')
            || toks[i].is_punct('}');
        if at_boundary {
            scan_segment(file, seg_start, i, &mut out);
            seg_start = i + 1;
        }
        i += 1;
    }
    out
}

fn scan_segment(file: &SourceFile, start: usize, end: usize, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let seg = &toks[start..end.min(toks.len())];
    let has_marker = seg
        .iter()
        .any(|t| t.kind == TokKind::Ident && is_clock_marker(&t.text));
    for (off, t) in seg.iter().enumerate() {
        let i = start + off;
        if file.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let method_call =
            i >= 1 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !method_call {
            continue;
        }
        if t.text == "saturating_since" {
            out.push(
                file.finding(
                    CHECKED_CLOCK_OPS,
                    i,
                    "`saturating_since` clamps a clock difference to zero; prefer \
                 `checked_since` and handle `None`, or justify the clamp"
                        .to_string(),
                ),
            );
        } else if is_flagged_method(&t.text) && has_marker {
            out.push(file.finding(
                CHECKED_CLOCK_OPS,
                i,
                format!(
                    "`{}` on a clock-carrying value erodes the fail-loudly contract of \
                     sim/src/time.rs; use checked ops or justify",
                    t.text
                ),
            ));
        }
    }
}
