//! `checked-clock-ops`: `wrapping_*` / `overflowing_*` / `saturating_*`
//! on clock-carrying values must be individually justified.
//!
//! `sim/src/time.rs` documents a fail-loudly contract: clock arithmetic
//! that could wrap either returns `Option` (`checked_*`) or panics in
//! both debug and release. Wrapping/overflowing/saturating operators on
//! values that carry picoseconds erode that contract silently — a clock
//! that saturates at the wrong place reorders deadlines without a trace
//! (the PR-2 oracle can only notice *afterwards*). Each use must carry an
//! allow annotation saying why clamping/wrapping is correct there.
//!
//! Scoping is the innermost *statement* from the syntax tree: a
//! `.wrapping_*() / .overflowing_*() / .saturating_*()` call is flagged
//! when the statement containing it also mentions a clock marker —
//! `Time`, `Duration`, `as_ps`, `from_ps`, or any identifier ending in
//! `_ps`. (The v1 engine split at `;,{}`, so a marker and a call
//! separated by an argument comma — `f(t.as_ps(), x.saturating_add(1))`
//! — never met; statements are the association boundary the contract
//! actually means.) The `Time`-specific `saturating_since` is always
//! flagged. RNG mixers, usize bookkeeping, and other non-clock
//! saturating math stay silent.

use crate::ast::{self, Span};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Config;

/// Stable rule name.
pub const CHECKED_CLOCK_OPS: &str = "checked-clock-ops";

fn is_flagged_method(name: &str) -> bool {
    name.starts_with("wrapping_")
        || name.starts_with("overflowing_")
        || name.starts_with("saturating_")
}

fn is_clock_marker(name: &str) -> bool {
    name == "Time" || name == "Duration" || name == "as_ps" || name == "from_ps" || {
        name.ends_with("_ps") && name != "as_ps" && name != "from_ps"
    }
}

/// Innermost statement span containing token `i`, if any. Statement
/// spans nest (an `if` statement contains the statements of its body),
/// so smallest-containing is innermost.
fn innermost_stmt(stmts: &[Span], i: usize) -> Option<Span> {
    stmts
        .iter()
        .copied()
        .filter(|s| s.contains(i))
        .min_by_key(|s| s.hi - s.lo)
}

pub(super) fn check(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.is_time_exempt(&file.rel) || !cfg.is_production_src(&file.rel) {
        return out;
    }
    let toks = &file.toks;
    let mut stmts: Vec<Span> = Vec::new();
    ast::walk_stmts(&file.tree, &mut |s| stmts.push(s.span));

    let marker_in = |sp: Span| -> bool {
        file.toks[sp.lo..sp.hi.min(toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && is_clock_marker(&t.text))
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if file.test_mask[i] || file.attr_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let method_call =
            i >= 1 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !method_call {
            continue;
        }
        if t.text == "saturating_since" {
            out.push(
                file.finding(
                    CHECKED_CLOCK_OPS,
                    i,
                    "`saturating_since` clamps a clock difference to zero; prefer \
                 `checked_since` and handle `None`, or justify the clamp"
                        .to_string(),
                ),
            );
            continue;
        }
        if !is_flagged_method(&t.text) {
            continue;
        }
        // Scope: the innermost statement containing the call; tokens
        // outside any statement (const values, struct-field defaults)
        // fall back to the nearest `;{}` boundaries.
        let scope = innermost_stmt(&stmts, i).unwrap_or_else(|| {
            let lo = (0..i)
                .rev()
                .find(|&j| toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}'))
                .map_or(0, |j| j + 1);
            let hi = (i..toks.len())
                .find(|&j| toks[j].is_punct(';') || toks[j].is_punct('{') || toks[j].is_punct('}'))
                .unwrap_or(toks.len());
            Span { lo, hi }
        });
        if marker_in(scope) {
            out.push(file.finding(
                CHECKED_CLOCK_OPS,
                i,
                format!(
                    "`{}` on a clock-carrying value erodes the fail-loudly contract of \
                     sim/src/time.rs; use checked ops or justify",
                    t.text
                ),
            ));
        }
    }
    out
}
