//! `nondeterministic-iteration` — no `HashMap`/`HashSet` iteration or
//! order-dependent draining in the engine crates.
//!
//! The repo's central determinism claim (byte-identical results across
//! shard counts, DESIGN.md §12) is only as strong as every iteration
//! order in the event path. `HashMap`/`HashSet` iteration order is
//! randomized per process, so a single `.iter()` over a hash container
//! in `net`/`core`/`sim` can silently break byte-identity while every
//! dynamic pin still passes on the machine that grew it.
//!
//! What fires, inside [`Config::engine_paths`] production code:
//!
//! * an iteration/draining method (`iter`, `iter_mut`, `keys`,
//!   `values`, `values_mut`, `into_iter`, `into_keys`, `into_values`,
//!   `drain`, `retain`) whose receiver chain names a hash-typed
//!   binding or the `HashMap`/`HashSet` type itself;
//! * a `for` loop whose iterated expression mentions a hash-typed
//!   binding;
//! * `.extend(…)`/`collect::<…>(…)` *into* hash types are fine — only
//!   reads of the randomized order are flagged.
//!
//! Hash-typed bindings are collected per file from declared types the
//! parser exposes: struct fields, `let` annotations, fn parameters, and
//! `let` initializers rooted at `HashMap::`/`HashSet::`. This is a
//! per-file approximation (a map escaping through an untyped getter is
//! missed), but engine crates are expected to carry **zero** hash
//! containers at all — the satellite swap of `admission.rs` to
//! `BTreeMap` makes the workspace pass with no allows.

use crate::ast::{self, Span};
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Config;
use std::collections::BTreeSet;

/// Rule name.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Does the token span mention a hash container type?
fn span_mentions_hash(file: &SourceFile, sp: Span) -> bool {
    file.toks[sp.lo..sp.hi.min(file.toks.len())]
        .iter()
        .any(|t| HASH_TYPES.iter().any(|h| t.is_ident(h)))
}

/// Collect the names of hash-typed bindings in this file: struct
/// fields, fn params, and `let`s (by annotation or `HashMap::…` init).
fn hash_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for it in &file.tree.items {
        collect_item(file, it, &mut names);
    }
    names
}

fn collect_item(file: &SourceFile, it: &ast::Item, names: &mut BTreeSet<String>) {
    match &it.kind {
        ast::ItemKind::Struct(fields) => {
            for f in fields {
                if span_mentions_hash(file, f.ty) {
                    names.insert(f.name.clone());
                }
            }
        }
        ast::ItemKind::Fn(f) => {
            for p in &f.params {
                if span_mentions_hash(file, p.ty) {
                    if let Some(n) = &p.name {
                        names.insert(n.clone());
                    }
                }
            }
            if let Some(b) = &f.body {
                collect_block(file, b, names);
            }
        }
        ast::ItemKind::Items(items) => {
            for sub in items {
                collect_item(file, sub, names);
            }
        }
        _ => {}
    }
}

fn collect_block(file: &SourceFile, b: &ast::Block, names: &mut BTreeSet<String>) {
    for s in &b.stmts {
        if let ast::StmtKind::Let { pat, ty, init, .. } = &s.kind {
            let hashy = ty.is_some_and(|t| span_mentions_hash(file, t))
                || init
                    .as_ref()
                    .is_some_and(|e| init_rooted_at_hash(file, e.span));
            if hashy {
                // Bind every plain ident in the pattern (covers `let m`,
                // `let mut m`, and conservatively tuple patterns).
                for t in &file.toks[pat.lo..pat.hi.min(file.toks.len())] {
                    if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref") {
                        names.insert(t.text.clone());
                    }
                }
            }
        }
        match &s.kind {
            ast::StmtKind::Item(it) => collect_item(file, it, names),
            ast::StmtKind::Expr(e) => walk_blocks(file, e, names),
            ast::StmtKind::Let { init, els, .. } => {
                if let Some(e) = init {
                    walk_blocks(file, e, names);
                }
                if let Some(b) = els {
                    collect_block(file, b, names);
                }
            }
        }
    }
}

/// Recurse into every nested block of `e` so `let`s inside control flow
/// are collected too.
fn walk_blocks(file: &SourceFile, e: &ast::Expr, names: &mut BTreeSet<String>) {
    match &e.kind {
        ast::ExprKind::If { cond, then, els } => {
            walk_blocks(file, cond, names);
            collect_block(file, then, names);
            if let Some(x) = els {
                walk_blocks(file, x, names);
            }
        }
        ast::ExprKind::Match { scrutinee, arms } => {
            walk_blocks(file, scrutinee, names);
            for a in arms {
                if let Some(g) = &a.guard {
                    walk_blocks(file, g, names);
                }
                walk_blocks(file, &a.body, names);
            }
        }
        ast::ExprKind::Loop { body, .. } | ast::ExprKind::Block(body) => {
            collect_block(file, body, names)
        }
        ast::ExprKind::While { cond, body, .. } => {
            walk_blocks(file, cond, names);
            collect_block(file, body, names);
        }
        ast::ExprKind::For { iter, body, .. } => {
            walk_blocks(file, iter, names);
            collect_block(file, body, names);
        }
        ast::ExprKind::Closure { body, .. } => walk_blocks(file, body, names),
        ast::ExprKind::Macro { subs, .. } | ast::ExprKind::Leaf { subs } => {
            for s in subs {
                walk_blocks(file, s, names);
            }
        }
        ast::ExprKind::Return(x) | ast::ExprKind::Break(x) => {
            if let Some(x) = x {
                walk_blocks(file, x, names);
            }
        }
        ast::ExprKind::Continue => {}
    }
}

/// Is a `let` initializer rooted at `HashMap::…` / `HashSet::…`
/// (`HashMap::new()`, `HashSet::with_capacity(n)`, …)?
fn init_rooted_at_hash(file: &SourceFile, sp: Span) -> bool {
    // Look for `HashMap` / `HashSet` followed by `::` within the init.
    let hi = sp.hi.min(file.toks.len());
    for i in sp.lo..hi {
        let t = &file.toks[i];
        if HASH_TYPES.iter().any(|h| t.is_ident(h)) {
            return true;
        }
    }
    false
}

/// The token index just past the start of the receiver chain ending at
/// the `.` at `dot` (walks back over idents, `.`/`::`, closed groups).
fn receiver_start(file: &SourceFile, dot: usize) -> usize {
    match crate::rules::before_receiver(file, dot) {
        Some(before) => before + 1,
        None => 0,
    }
}

/// The pass.
pub fn check(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if !cfg.is_engine_path(&file.rel) {
        return out;
    }
    let names = hash_names(file);
    let toks = &file.toks;
    let skip = |i: usize| file.test_mask[i] || file.attr_mask[i] || file.type_mask[i];

    let chain_is_hashy = |lo: usize, hi: usize| {
        toks[lo..hi.min(toks.len())].iter().any(|t| {
            t.kind == TokKind::Ident
                && (HASH_TYPES.contains(&t.text.as_str()) || names.contains(&t.text))
        })
    };

    // Iteration/draining methods on hash receivers.
    for i in 0..toks.len() {
        if skip(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        // Must be a method call: `.name(`.
        if !(i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        let start = receiver_start(file, i - 1);
        if chain_is_hashy(start, i - 1) {
            out.push(file.finding(
                NONDETERMINISTIC_ITERATION,
                i,
                format!(
                    ".{}() iterates a HashMap/HashSet — order is randomized per process, \
                     which breaks byte-identical replay across shard counts; use BTreeMap/\
                     BTreeSet or sort before iterating",
                    t.text
                ),
            ));
        }
    }

    // `for … in <expr mentioning a hash binding>`.
    let mut for_findings: Vec<(usize, String)> = Vec::new();
    ast::walk_tree(&file.tree, &mut |e| {
        if let ast::ExprKind::For { iter, .. } = &e.kind {
            let sp = iter.span;
            if sp.lo < toks.len() && !skip(sp.lo) {
                let hashy = toks[sp.lo..sp.hi.min(toks.len())].iter().any(|t| {
                    t.kind == TokKind::Ident
                        && (HASH_TYPES.contains(&t.text.as_str()) || names.contains(&t.text))
                });
                if hashy {
                    for_findings.push((
                        sp.lo,
                        "for-loop over a HashMap/HashSet — order is randomized per process, \
                         which breaks byte-identical replay across shard counts; use BTreeMap/\
                         BTreeSet or sort before iterating"
                            .to_string(),
                    ));
                }
            }
        }
    });
    for (i, msg) in for_findings {
        // Avoid double-reporting a `for x in m.iter()` already caught above.
        let line = toks[i].line;
        if !out
            .iter()
            .any(|f| f.rule == NONDETERMINISTIC_ITERATION && f.line == line)
        {
            out.push(file.finding(NONDETERMINISTIC_ITERATION, i, msg));
        }
    }
    out
}
