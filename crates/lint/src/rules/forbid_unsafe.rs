//! `forbid-unsafe-everywhere`: every crate root must carry
//! `#![forbid(unsafe_code)]`.
//!
//! `forbid` (unlike `deny`) cannot be re-allowed further down the tree,
//! so one attribute per crate root is a static, workspace-wide proof that
//! no bound computation touches unsafe Rust. Crate roots are `lib.rs`,
//! `main.rs`, files under `src/bin/`, and the top-level files of
//! `tests/`, `benches/`, and `examples/` directories — each compiles as
//! its own crate, and each therefore needs its own attribute.

use crate::diag::Finding;
use crate::source::SourceFile;
use crate::Config;

/// Stable rule name.
pub const FORBID_UNSAFE: &str = "forbid-unsafe-everywhere";

pub(super) fn check(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    if !cfg.is_crate_root(&file.rel) {
        return Vec::new();
    }
    // The parser records every attribute span in `tree.attrs`, so the
    // attribute must be an *actual* attribute — the same token sequence
    // inside a string or a doc example no longer counts.
    let toks = &file.toks;
    let has = file.tree.attrs.iter().any(|a| {
        let w = &toks[a.lo..a.hi.min(toks.len())];
        w.len() >= 7
            && w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
    });
    if has {
        return Vec::new();
    }
    vec![Finding {
        rule: FORBID_UNSAFE,
        file: file.rel.clone(),
        line: 1,
        col: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        snippet: file.snippet(1),
        justification: None,
    }]
}
