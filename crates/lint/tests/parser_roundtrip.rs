//! Round-trip property for the lint parser (ISSUE 10 satellite):
//!
//! 1. **Lexer fidelity** — every token's byte span reproduces its exact
//!    source text, spans are ordered, and gaps + spans reassemble the
//!    file byte-for-byte.
//! 2. **Parse-tree coverage** — the tree's spans tile the token stream:
//!    items tile the file, statements tile their blocks, children nest
//!    in order ([`lit_lint::ast::coverage`]). Together with (1) this is
//!    the lex → parse → span-reassembly ≡ source property.
//!
//! Run over (a) every real `.rs` file in this workspace — the parser
//! must digest everything the rules will ever see — and (b) lit-prop
//! generated programs stressing the constructs the golden tests pin
//! (turbofish `>>`, closures, match guards, labeled breaks, let-else).
#![forbid(unsafe_code)]

use lit_lint::ast::coverage;
use lit_lint::lexer::lex;
use lit_lint::parser::parse;
use lit_lint::{rel_str, workspace_files, Config};
use lit_prop::Gen;

/// Lexer fidelity: reassemble the source from byte spans.
fn assert_lex_roundtrip(name: &str, src: &str) {
    let out = lex(src);
    let mut prev = 0usize;
    let mut rebuilt = String::new();
    for (k, t) in out.toks.iter().enumerate() {
        assert!(
            t.lo >= prev && t.hi >= t.lo,
            "{name}: token {k} span {}..{} overlaps previous end {prev}",
            t.lo,
            t.hi
        );
        assert_eq!(
            &src[t.lo..t.hi],
            t.text,
            "{name}: token {k} span text disagrees with lexeme"
        );
        rebuilt.push_str(&src[prev..t.lo]);
        rebuilt.push_str(&src[t.lo..t.hi]);
        prev = t.hi;
    }
    rebuilt.push_str(&src[prev..]);
    assert_eq!(rebuilt, src, "{name}: lexer span reassembly diverged");
}

/// Parse-tree coverage: spans tile and nest.
fn assert_parse_coverage(name: &str, src: &str) {
    let out = lex(src);
    let tree = parse(&out.toks);
    if let Err(e) = coverage(&tree, out.toks.len()) {
        panic!("{name}: parse-tree coverage violated: {e}");
    }
}

#[test]
fn roundtrip_every_workspace_file() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let mut cfg = Config::default();
    cfg.skip.clear(); // fixtures too: the parser must survive known-bad code
    let files = workspace_files(&root, &cfg).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks wrong: {}",
        files.len()
    );
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("read source");
        let name = rel_str(&rel);
        assert_lex_roundtrip(&name, &src);
        assert_parse_coverage(&name, &src);
    }
}

// ---------------------------------------------------------------------
// Generated programs: compose tricky constructs at random.
// ---------------------------------------------------------------------

fn gen_ty(g: &mut Gen, depth: usize) -> String {
    if depth == 0 || g.bool() {
        (*g.pick(&["u64", "usize", "T", "String"])).to_string()
    } else {
        let inner = gen_ty(g, depth - 1);
        match g.below(3) {
            0 => format!("Vec<{inner}>"),
            1 => format!("Option<Vec<{inner}>>"),
            _ => format!("BTreeMap<u64, {inner}>"),
        }
    }
}

fn gen_expr(g: &mut Gen, depth: usize) -> String {
    if depth == 0 {
        return match g.below(4) {
            0 => "x".to_string(),
            1 => format!("{}", g.below(100)),
            2 => "f(x, 1)".to_string(),
            _ => "xs.iter().map(|v| v + 1).sum::<u64>()".to_string(),
        };
    }
    let d = depth - 1;
    match g.below(8) {
        0 => format!(
            "if {} {{ {} }} else {{ {} }}",
            gen_expr(g, 0),
            gen_expr(g, d),
            gen_expr(g, d)
        ),
        1 => format!(
            "match {} {{ Some(v) if v > 2 => {}, Some(_) => 0, None => {} }}",
            gen_expr(g, 0),
            gen_expr(g, d),
            gen_expr(g, 0)
        ),
        2 => format!(
            "({}).checked_add({}).unwrap_or(0)",
            gen_expr(g, d),
            gen_expr(g, 0)
        ),
        3 => format!("xs.iter().filter(|v| **v > {}).count()", g.below(10)),
        4 => format!("{{ let t = {}; t + 1 }}", gen_expr(g, d)),
        5 => format!("v.get::<Vec<Vec<u64>>>({})", g.below(4)),
        6 => format!(
            "(|a: u64, b: u64| a.max(b))({}, {})",
            gen_expr(g, 0),
            gen_expr(g, 0)
        ),
        _ => format!("{} + {}", gen_expr(g, 0), gen_expr(g, 0)),
    }
}

fn gen_stmt(g: &mut Gen, depth: usize) -> String {
    let d = depth.saturating_sub(1);
    match g.below(7) {
        0 => format!("let x: {} = Default::default();", gen_ty(g, 2)),
        1 => format!("let mut acc = {};", gen_expr(g, d)),
        2 => format!(
            "'outer: for i in 0..{} {{ for j in 0..i {{ if j == 2 {{ break 'outer; }} let _ = {}; }} }}",
            g.below(10) + 1,
            gen_expr(g, d)
        ),
        3 => format!(
            "while let Some(v) = it.next() {{ if v > {} {{ continue; }} acc += v; }}",
            g.below(5)
        ),
        4 => format!("let Some(y) = opt else {{ return {}; }};", gen_expr(g, 0)),
        5 => format!("acc += {};", gen_expr(g, d)),
        _ => "loop { match st { 0 => st = 1, 1 if acc > 0 => break, _ => { st = 0; } } }".to_string(),
    }
}

fn gen_program(g: &mut Gen) -> String {
    let mut s = String::from("#![forbid(unsafe_code)]\n");
    s.push_str("struct S<T> { items: Vec<Vec<T>>, map: BTreeMap<u64, Vec<u64>> }\n");
    let nfns = g.size(1, 4);
    for f in 0..nfns {
        s.push_str(&format!(
            "fn f{f}(x: u64, xs: &[u64], opt: Option<u64>) -> u64 {{\n"
        ));
        let nstmts = g.size(1, 6);
        for _ in 0..nstmts {
            s.push_str("    ");
            s.push_str(&gen_stmt(g, 3));
            s.push('\n');
        }
        s.push_str("    x\n}\n");
    }
    if g.bool() {
        s.push_str("#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(f0(1, &[], None), 1); }\n}\n");
    }
    s
}

#[test]
fn roundtrip_generated_programs() {
    lit_prop::check("parser_roundtrip_generated", |g| {
        let src = gen_program(g);
        assert_lex_roundtrip("generated", &src);
        assert_parse_coverage("generated", &src);
    });
}
