//! Fixture self-tests: each rule must fire on its known-bad fixture (and
//! stay quiet on the known-good one), both through the library API and —
//! for one fixture — through a real `run_check` over an on-disk tree, the
//! same path the CLI takes. This is the negative test for the acceptance
//! criterion "non-zero exit on each bad fixture": the CLI exits non-zero
//! exactly when `Report::violation_count() > 0`.

#![forbid(unsafe_code)]

use lit_lint::rules::{
    BARRIER_PROTOCOL, CHECKED_CLOCK_OPS, FORBID_UNSAFE, NONDETERMINISTIC_ITERATION,
    NO_PANIC_HOT_PATH, RAW_TIME_ARITHMETIC,
};
use lit_lint::{check_source, run_check, Config};

const RAW_TIME: &str = include_str!("fixtures/raw_time_arithmetic.rs");
const NO_PANIC: &str = include_str!("fixtures/no_panic_hot_path.rs");
const NO_FORBID: &str = include_str!("fixtures/forbid_unsafe.rs");
const CHECKED: &str = include_str!("fixtures/checked_clock_ops.rs");
const NONDET: &str = include_str!("fixtures/nondet_iteration.rs");
const BARRIER: &str = include_str!("fixtures/barrier_protocol.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");

/// Unsuppressed findings of `rule` when `src` pretends to live at `rel`.
fn violations(rel: &str, src: &str, rule: &str) -> usize {
    check_source(rel, src, &Config::default())
        .iter()
        .filter(|f| !f.allowed() && f.rule == rule)
        .count()
}

#[test]
fn raw_time_fixture_fires() {
    // Five distinct patterns: bare `as_ps` math, right-operand math, a
    // narrowing cast in a constructor, arithmetic in a constructor, and a
    // float conversion. Presented as ordinary production source.
    let n = violations("crates/net/src/spec.rs", RAW_TIME, RAW_TIME_ARITHMETIC);
    assert!(n >= 5, "want >= 5 raw-time findings, got {n}");
}

#[test]
fn raw_time_fixture_is_silent_in_exempt_crates() {
    // The same file inside the float-by-design analysis crate is legal.
    assert_eq!(
        violations("crates/analysis/src/md1.rs", RAW_TIME, RAW_TIME_ARITHMETIC),
        0
    );
}

#[test]
fn no_panic_fixture_fires_on_hot_paths_only() {
    let cfg = Config::default();
    for hot in &cfg.hot_paths {
        let n = violations(hot, NO_PANIC, NO_PANIC_HOT_PATH);
        assert!(n >= 5, "want >= 5 no-panic findings in {hot}, got {n}");
    }
    // The same source off the hot paths is tolerated by this rule.
    assert_eq!(
        violations("crates/net/src/stats.rs", NO_PANIC, NO_PANIC_HOT_PATH),
        0
    );
}

#[test]
fn forbid_unsafe_fixture_fires_on_crate_roots_only() {
    let n = violations("crates/sim/src/lib.rs", NO_FORBID, FORBID_UNSAFE);
    assert_eq!(n, 1, "a bare crate root must yield exactly one finding");
    // A non-root module never needs the attribute.
    assert_eq!(
        violations("crates/sim/src/time.rs", NO_FORBID, FORBID_UNSAFE),
        0
    );
}

#[test]
fn checked_clock_fixture_fires() {
    let n = violations("crates/net/src/oracle.rs", CHECKED, CHECKED_CLOCK_OPS);
    assert!(n >= 3, "want >= 3 checked-clock findings, got {n}");
}

#[test]
fn nondet_iteration_fixture_fires_in_engine_crates_only() {
    // Six distinct shapes: field .iter(), .keys(), HashSet .drain() (and
    // its for-loop), .retain(), an init-inferred local, a hash-typed
    // parameter iterated by a for loop.
    let n = violations(
        "crates/core/src/registry.rs",
        NONDET,
        NONDETERMINISTIC_ITERATION,
    );
    assert!(n >= 6, "want >= 6 nondet-iteration findings, got {n}");
    // The same code outside the engine crates (analysis, tools) is legal:
    // determinism is an event-path contract, not a workspace-wide one.
    assert_eq!(
        violations(
            "crates/analysis/src/report.rs",
            NONDET,
            NONDETERMINISTIC_ITERATION
        ),
        0
    );
}

#[test]
fn barrier_fixture_reconstructs_the_pr7_deadlock() {
    // The fixture is the pre-fix PR-7 worker loop (plus two synthetic
    // phase violations). The headline finding is the abort.load in the
    // break condition between barrier A and barrier B — the exact race
    // loom caught after the fact.
    let cfg = Config::default();
    let fs = check_source("crates/net/src/shard.rs", BARRIER, &cfg);
    let barrier: Vec<_> = fs
        .iter()
        .filter(|f| !f.allowed() && f.rule == BARRIER_PROTOCOL)
        .collect();
    assert!(
        barrier.len() >= 3,
        "want >= 3 barrier findings (abort-in-phase-1, early drain, conditional wait), got {barrier:?}"
    );
    assert!(
        barrier.iter().any(|f| f.message.contains("PR-7")),
        "the abort-race finding must fire: {barrier:?}"
    );
    // The same file under any other path is out of the rule's scope.
    assert_eq!(
        violations("crates/net/src/mailbox.rs", BARRIER, BARRIER_PROTOCOL),
        0
    );
}

#[test]
fn the_real_shard_worker_loop_passes() {
    // The committed post-fix shard.rs must be protocol-clean: the rule
    // exists to keep it that way.
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../net/src/shard.rs"))
        .expect("read crates/net/src/shard.rs");
    assert_eq!(
        violations("crates/net/src/shard.rs", &src, BARRIER_PROTOCOL),
        0,
        "the fixed worker loop must satisfy the window protocol"
    );
}

#[test]
fn clean_fixture_is_clean_even_on_a_hot_path() {
    let fs = check_source("crates/sim/src/queue.rs", CLEAN, &Config::default());
    let bad: Vec<_> = fs.iter().filter(|f| !f.allowed()).collect();
    assert!(bad.is_empty(), "clean fixture produced {bad:?}");
}

/// End-to-end negative test over a real directory tree, one injection
/// per rule: drop each known-bad fixture into a scratch workspace at a
/// path where its rule applies, run the same `run_check` the CLI calls,
/// and require that rule among the violations (⇒ CLI exit 1). Removing
/// the injection must bring the tree back to zero.
#[test]
fn injected_violation_fails_a_workspace_scan() {
    let root = std::env::temp_dir().join(format!("lit-lint-selftest-{}", std::process::id()));
    let stale_allow_src = "#![forbid(unsafe_code)]\n\
         //! doc\n\
         // lit-lint: allow(no-panic-hot-path, \"nothing here panics — the allow is dead\")\n\
         pub fn fine() -> u64 { 7 }\n";
    // (relative injection path, fixture source, rule that must fire)
    let injections: [(&str, &str, &str); 7] = [
        ("crates/sim/src/bad_time.rs", RAW_TIME, RAW_TIME_ARITHMETIC),
        (
            // A configured hot path: the eligible queue.
            "crates/sim/src/queue.rs",
            NO_PANIC,
            NO_PANIC_HOT_PATH,
        ),
        ("crates/core/src/lib.rs", NO_FORBID, FORBID_UNSAFE),
        ("crates/sim/src/bad_clock.rs", CHECKED, CHECKED_CLOCK_OPS),
        (
            "crates/core/src/bad_iter.rs",
            NONDET,
            NONDETERMINISTIC_ITERATION,
        ),
        ("crates/net/src/shard.rs", BARRIER, BARRIER_PROTOCOL),
        (
            "crates/sim/src/dead_allow.rs",
            stale_allow_src,
            lit_lint::rules::STALE_ALLOW,
        ),
    ];

    for (rel, fixture, rule) in injections {
        std::fs::remove_dir_all(&root).ok();
        let src = root.join("crates/sim/src");
        std::fs::create_dir_all(&src).expect("mkdir scratch workspace");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
        std::fs::write(src.join("lib.rs"), "#![forbid(unsafe_code)]\n//! doc\n")
            .expect("write clean root");

        let bad = root.join(rel);
        std::fs::create_dir_all(bad.parent().expect("fixture path has a parent"))
            .expect("mkdir injection dir");
        std::fs::write(&bad, fixture).expect("inject bad fixture");

        let cfg = Config::default();
        let report = run_check(&root, &cfg).expect("scan scratch workspace");
        let hits = report
            .findings
            .iter()
            .filter(|f| !f.allowed() && f.rule == rule)
            .count();
        assert!(
            hits >= 1,
            "injected {rel} must trip `{rule}`; report had {} violation(s): {:?}",
            report.violation_count(),
            report
                .findings
                .iter()
                .filter(|f| !f.allowed())
                .collect::<Vec<_>>()
        );

        std::fs::remove_file(&bad).expect("remove injected fixture");
        let report = run_check(&root, &cfg).expect("re-scan scratch workspace");
        assert_eq!(
            report.violation_count(),
            0,
            "clean tree must pass after removing {rel}"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}
