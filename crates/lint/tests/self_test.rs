//! Fixture self-tests: each rule must fire on its known-bad fixture (and
//! stay quiet on the known-good one), both through the library API and —
//! for one fixture — through a real `run_check` over an on-disk tree, the
//! same path the CLI takes. This is the negative test for the acceptance
//! criterion "non-zero exit on each bad fixture": the CLI exits non-zero
//! exactly when `Report::violation_count() > 0`.

#![forbid(unsafe_code)]

use lit_lint::rules::{CHECKED_CLOCK_OPS, FORBID_UNSAFE, NO_PANIC_HOT_PATH, RAW_TIME_ARITHMETIC};
use lit_lint::{check_source, run_check, Config};

const RAW_TIME: &str = include_str!("fixtures/raw_time_arithmetic.rs");
const NO_PANIC: &str = include_str!("fixtures/no_panic_hot_path.rs");
const NO_FORBID: &str = include_str!("fixtures/forbid_unsafe.rs");
const CHECKED: &str = include_str!("fixtures/checked_clock_ops.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");

/// Unsuppressed findings of `rule` when `src` pretends to live at `rel`.
fn violations(rel: &str, src: &str, rule: &str) -> usize {
    check_source(rel, src, &Config::default())
        .iter()
        .filter(|f| !f.allowed() && f.rule == rule)
        .count()
}

#[test]
fn raw_time_fixture_fires() {
    // Five distinct patterns: bare `as_ps` math, right-operand math, a
    // narrowing cast in a constructor, arithmetic in a constructor, and a
    // float conversion. Presented as ordinary production source.
    let n = violations("crates/net/src/spec.rs", RAW_TIME, RAW_TIME_ARITHMETIC);
    assert!(n >= 5, "want >= 5 raw-time findings, got {n}");
}

#[test]
fn raw_time_fixture_is_silent_in_exempt_crates() {
    // The same file inside the float-by-design analysis crate is legal.
    assert_eq!(
        violations("crates/analysis/src/md1.rs", RAW_TIME, RAW_TIME_ARITHMETIC),
        0
    );
}

#[test]
fn no_panic_fixture_fires_on_hot_paths_only() {
    let cfg = Config::default();
    for hot in &cfg.hot_paths {
        let n = violations(hot, NO_PANIC, NO_PANIC_HOT_PATH);
        assert!(n >= 5, "want >= 5 no-panic findings in {hot}, got {n}");
    }
    // The same source off the hot paths is tolerated by this rule.
    assert_eq!(
        violations("crates/net/src/stats.rs", NO_PANIC, NO_PANIC_HOT_PATH),
        0
    );
}

#[test]
fn forbid_unsafe_fixture_fires_on_crate_roots_only() {
    let n = violations("crates/sim/src/lib.rs", NO_FORBID, FORBID_UNSAFE);
    assert_eq!(n, 1, "a bare crate root must yield exactly one finding");
    // A non-root module never needs the attribute.
    assert_eq!(
        violations("crates/sim/src/time.rs", NO_FORBID, FORBID_UNSAFE),
        0
    );
}

#[test]
fn checked_clock_fixture_fires() {
    let n = violations("crates/net/src/oracle.rs", CHECKED, CHECKED_CLOCK_OPS);
    assert!(n >= 3, "want >= 3 checked-clock findings, got {n}");
}

#[test]
fn clean_fixture_is_clean_even_on_a_hot_path() {
    let fs = check_source("crates/sim/src/queue.rs", CLEAN, &Config::default());
    let bad: Vec<_> = fs.iter().filter(|f| !f.allowed()).collect();
    assert!(bad.is_empty(), "clean fixture produced {bad:?}");
}

/// End-to-end negative test over a real directory tree: inject the
/// raw-time fixture as production source of a scratch workspace and run
/// the same `run_check` the CLI calls — the report must carry violations
/// (⇒ CLI exit 1), and removing the file must bring it back to zero.
#[test]
fn injected_violation_fails_a_workspace_scan() {
    let root = std::env::temp_dir().join(format!("lit-lint-selftest-{}", std::process::id()));
    let src = root.join("crates/sim/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(src.join("lib.rs"), "#![forbid(unsafe_code)]\n//! doc\n")
        .expect("write clean root");
    std::fs::write(src.join("bad.rs"), RAW_TIME).expect("inject bad fixture");

    let cfg = Config::default();
    let report = run_check(&root, &cfg).expect("scan scratch workspace");
    assert!(
        report.violation_count() >= 5,
        "injected fixture must fail the scan, got {} violations",
        report.violation_count()
    );

    std::fs::remove_file(src.join("bad.rs")).expect("remove injected fixture");
    let report = run_check(&root, &cfg).expect("re-scan scratch workspace");
    assert_eq!(report.violation_count(), 0, "clean tree must pass");
    std::fs::remove_dir_all(&root).ok();
}
