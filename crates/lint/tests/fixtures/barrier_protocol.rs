//! Known-bad fixture for `barrier-protocol`: a reconstruction of the
//! PR-7 sharded worker loop *before* the abort-race fix (commit
//! af60162), presented as if it lived at `crates/net/src/shard.rs`.
//!
//! The bug: `abort.load(..)` sits in the break condition **between**
//! barrier A and barrier B (phase 1). A worker that observes the flag
//! there leaves the loop without reaching barrier B, while a peer that
//! missed the flag this iteration is already blocked on B — the barrier
//! count never completes and the fleet deadlocks. The fixed protocol
//! reads `abort` only after barrier B (phase 2), where every worker is
//! guaranteed to reach the same decision point. The rule must flag this
//! loop forever. Never compiled.
#![forbid(unsafe_code)]

fn pre_fix_worker_loop(shard: &mut Shard) {
    let worker = |shard: &mut Shard| {
        loop {
            // lit-lint: allow(no-panic-hot-path, "next_ts has one published slot per shard")
            next_ts[shard.id].store(shard.next_event_ps(), Ordering::SeqCst);
            barrier.wait();
            let tmin = next_ts.iter().map(|a| a.load(Ordering::SeqCst)).min().unwrap_or(u64::MAX);
            if tmin == u64::MAX || tmin > until_ps || abort.load(Ordering::SeqCst) {
                break;
            }
            // lit-lint: allow(checked-clock-ops, "u64::MAX is the no-event sentinel; saturating keeps it a sentinel instead of wrapping")
            let horizon = tmin.saturating_add(lookahead_ps);
            let r = catch_unwind(AssertUnwindSafe(|| shard.process_window(horizon, until)));
            if let Err(payload) = r {
                let mut slot = match panic_slot.lock() { Ok(s) => s, Err(p) => p.into_inner() };
                slot.get_or_insert(payload);
                abort.store(true, Ordering::SeqCst);
            }
            barrier.wait(); // barrier B: every send of this window is done
            if abort.load(Ordering::SeqCst) { break; }
            shard.drain_inboxes();
        }
    };
    worker(shard);
}

/// A second phase violation in the same file: draining the mailboxes
/// between the barriers reads sends that peers have not published yet.
fn drain_between_barriers(shard: &mut Shard) {
    loop {
        next_ts[shard.id].store(shard.next_event_ps(), Ordering::SeqCst);
        barrier.wait();
        shard.drain_inboxes(); // phase 1: too early, peers still sending
        shard.process_window(0, 0);
        barrier.wait();
        if abort.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// A conditional barrier: workers that skip the wait desynchronize the
/// barrier count for everyone else.
fn conditional_wait(shard: &mut Shard) {
    loop {
        next_ts[shard.id].store(shard.next_event_ps(), Ordering::SeqCst);
        barrier.wait();
        shard.process_window(0, 0);
        if shard.has_new_work() {
            barrier.wait();
        }
        if abort.load(Ordering::SeqCst) {
            break;
        }
        shard.drain_inboxes();
    }
}
