//! Known-bad fixture for `no-panic-hot-path`. Must fire when presented
//! under one of the configured hot-path files. Never compiled.
#![forbid(unsafe_code)]

fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expects(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn panics(flag: bool) {
    if flag {
        panic!("boom");
    }
    unreachable!();
}

fn indexes(v: &[u64], i: usize) -> u64 {
    v[i] + v[0]
}
