//! Known-bad fixture for `checked-clock-ops`: wrapping/saturating/
//! overflowing arithmetic touching clock-carrying values. Never compiled.
#![forbid(unsafe_code)]

fn wraps(deadline_ps: u64, step: u64) -> u64 {
    deadline_ps.wrapping_add(step)
}

fn saturates(a: Time, b: Time) -> Duration {
    a.saturating_since(b)
}

fn overflows(d: Duration, k: u64) -> (u64, bool) {
    d.as_ps().overflowing_mul(k)
}
