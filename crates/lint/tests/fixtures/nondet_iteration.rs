//! Known-bad fixture for `nondeterministic-iteration`: HashMap/HashSet
//! iteration and draining inside an engine crate. Iteration order of the
//! std hash collections varies per process (RandomState), so any of
//! these leaking into the event path breaks the byte-identical
//! cross-shard determinism contract of DESIGN.md §12. Never compiled.
#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};

struct Registry {
    flows: HashMap<u64, Flow>,
    dirty: HashSet<u64>,
}

impl Registry {
    fn visit_all(&self) {
        for (id, flow) in self.flows.iter() {
            touch(*id, flow);
        }
    }

    fn keys_into_vec(&self) -> Vec<u64> {
        self.flows.keys().copied().collect()
    }

    fn drain_dirty(&mut self) {
        for id in self.dirty.drain() {
            retire(id);
        }
    }

    fn retain_order_dependent(&mut self) {
        self.flows.retain(|id, f| f.live(*id));
    }
}

fn local_binding_by_init() {
    let scratch = HashMap::new();
    for v in scratch.values() {
        push(v);
    }
}

fn for_loop_over_annotated(m: &HashMap<u64, u64>) {
    for (k, v) in m {
        push2(*k, *v);
    }
}
