//! Known-good fixture: none of the four rules may fire on this file even
//! when presented under a hot-path `src/` location. Never compiled.
#![forbid(unsafe_code)]

/// Clock math stays inside the newtypes or widens before leaving them.
fn widened(a: Time, b: Time) -> i128 {
    a.as_ps() as i128 - b.as_ps() as i128
}

/// Checked operations with handled `None` arms.
fn checked(t: Time, d: Duration) -> Time {
    t.checked_add(d).unwrap_or(Time::MAX)
}

/// Indexing through `get`, errors through `Option`.
fn graceful(v: &[u64], i: usize) -> u64 {
    v.get(i).copied().unwrap_or_default()
}

/// Constructors fed literals or plain bindings only.
fn built() -> Duration {
    Duration::from_ms(40)
}

#[cfg(test)]
mod tests {
    /// Test code may panic and index freely.
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1u64];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
