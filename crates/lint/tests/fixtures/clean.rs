//! Known-good fixture: none of the rules may fire on this file even
//! when presented under a hot-path `src/` location. Never compiled.
//!
//! The lower half exercises the v2 engine's *proofs* — indexing shapes
//! the token-pattern v1 could only allow-annotate, now proven in bounds
//! from the tree — plus context-mask cases (slice patterns, attributes,
//! types) that v1 misread as code.
#![forbid(unsafe_code)]

/// Clock math stays inside the newtypes or widens before leaving them.
fn widened(a: Time, b: Time) -> i128 {
    a.as_ps() as i128 - b.as_ps() as i128
}

/// Checked operations with handled `None` arms.
fn checked(t: Time, d: Duration) -> Time {
    t.checked_add(d).unwrap_or(Time::MAX)
}

/// Indexing through `get`, errors through `Option`.
fn graceful(v: &[u64], i: usize) -> u64 {
    v.get(i).copied().unwrap_or_default()
}

/// Constructors fed literals or plain bindings only.
fn built() -> Duration {
    Duration::from_ms(40)
}

const LEVELS: usize = 11;
const WIDE: usize = 1 << 6;

struct Wheelish {
    occ: [u64; LEVELS],
    slots: [u32; WIDE],
}

impl Wheelish {
    /// Literal and const indexes into fixed arrays are proven in bounds.
    fn proven_const_indexes(&self) -> u64 {
        self.occ[0] + self.occ[10] + u64::from(self.slots[0])
    }

    /// A for-range loop variable bounded by the array length is proven.
    fn proven_loop_indexes(&mut self) {
        for l in 0..LEVELS {
            self.occ[l] = 0;
        }
        for i in 0..self.occ.len() {
            self.occ[i] += 1;
        }
    }
}

/// Slice patterns are patterns, not index expressions.
fn slice_pattern(xs: &[u64]) -> u64 {
    let [a, b] = [1u64, 2] else { return 0 };
    match xs {
        [first, .., last] => first + last,
        _ => a + b,
    }
}

/// Panic sources inside assert-macro argument lists are deliberate
/// precondition checks, not hot-path aborts.
fn asserts_are_deliberate(occ: &[u64; 4]) {
    debug_assert!(occ[0] <= occ[3], "monotone {}", occ[0]);
    assert_eq!(occ[1], occ[2]);
}

/// `from_ps`/`Duration` in type or pattern position is not clock math.
struct Typed {
    window_ps: u64,
}

fn typed(t: Typed) -> u64 {
    let Typed { window_ps } = t;
    window_ps
}

#[cfg(test)]
mod tests {
    /// Test code may panic and index freely.
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1u64];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
