//! Known-bad fixture for `raw-time-arithmetic`. Every pattern here must
//! fire when presented under a production `src/` path. Never compiled.
#![forbid(unsafe_code)]

fn bare_u64_math(t: Time, d: Duration) -> u64 {
    t.as_ps() + d.as_ps()
}

fn right_operand(t: Time, d: Duration) -> u64 {
    t.as_ps() / 3 + 2 * d.as_ps()
}

fn computed_ctor(ps: u128) -> Duration {
    Duration::from_ps(ps as u64)
}

fn arith_ctor(k: u64) -> Duration {
    Duration::from_ms(k * 40 + 7)
}

fn float_ctor(x: f64) -> Duration {
    Duration::from_secs_f64(x)
}
