//! Known-bad fixture for `forbid-unsafe-everywhere`: a crate root with no
//! `#![forbid(unsafe_code)]` attribute. Never compiled.

/// Some documented item, so the file is otherwise unremarkable.
pub fn fine() {}
