//! Golden-tree tests for the lint parser (ISSUE 10 satellite): pin the
//! exact tree shape on the constructs most likely to regress under a
//! single-char-punct token stream — nested generics whose `>>` arrives
//! as two `>` tokens, closures (pipe disambiguation), match guards, and
//! labeled breaks out of nested loops.
#![forbid(unsafe_code)]

use lit_lint::ast::{dump, ExprKind, ItemKind, StmtKind};
use lit_lint::lexer::lex;
use lit_lint::parser::parse;

fn golden(src: &str) -> String {
    let out = lex(src);
    let tree = parse(&out.toks);
    lit_lint::ast::coverage(&tree, out.toks.len()).expect("coverage");
    dump(&tree, &out.toks)
}

#[test]
fn generics_with_shift_close() {
    let src = "\
struct Nest<T> {
    grid: Vec<Vec<T>>,
    by_key: BTreeMap<u64, Vec<Vec<u64>>>,
}
fn get(n: &Nest<u64>) -> Option<Vec<Vec<u64>>> {
    let v: Vec<Vec<u64>> = n.grid.iter().cloned().collect::<Vec<Vec<u64>>>();
    Some(v)
}
";
    let got = golden(src);
    let want = "\
struct Nest
  field grid: Vec < Vec < T > >
  field by_key: BTreeMap < u64 , Vec < Vec < u64 > > >
fn get(n)
  block
    let v: Vec < Vec < u64 > >
      leaf
    leaf
";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn closures_block_and_expr_bodied() {
    let src = "\
fn apply(xs: &[u64]) -> u64 {
    let f = |a: u64, b: u64| a + b;
    let g = move |x: u64| {
        let y = x + 1;
        y
    };
    xs.iter().map(|v| f(*v, 1)).fold(0, |acc, v| acc + g(v))
}
";
    let got = golden(src);
    let want = "\
fn apply(xs)
  block
    let f
      closure |a : u64 , b : u64|
        leaf
    let g
      closure |x : u64|
        block-expr
          let y
          leaf
    leaf
      closure |v|
        leaf
      closure |acc , v|
        leaf
";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn match_with_guards() {
    let src = "\
fn classify(x: Option<u64>, limit: u64) -> u64 {
    match x {
        Some(v) if v > limit => v - limit,
        Some(v) => v,
        None if limit == 0 => 1,
        None => 0,
    }
}
";
    let got = golden(src);
    let want = "\
fn classify(x, limit)
  block
    match
      leaf
      arm Some ( v )
        guard
          leaf
        leaf
      arm Some ( v )
        leaf
      arm None
        guard
          leaf
        leaf
      arm None
        leaf
";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn nested_loops_with_labeled_break() {
    let src = "\
fn scan(grid: &[Vec<u64>]) -> Option<(usize, usize)> {
    'rows: for (i, row) in grid.iter().enumerate() {
        let mut j = 0;
        while j < row.len() {
            if row[j] == 0 {
                break 'rows;
            }
            j += 1;
        }
        loop {
            break;
        }
    }
    None
}
";
    let got = golden(src);
    // Note: an unlabeled `break` dumps with a trailing space (empty
    // label slot), hence the concat form.
    let want = concat!(
        "fn scan(grid)\n",
        "  block\n",
        "    for ( i , row ) 'rows\n",
        "      leaf\n",
        "      block\n",
        "        let mut j\n",
        "          leaf\n",
        "        while\n",
        "          leaf\n",
        "          block\n",
        "            if\n",
        "              leaf\n",
        "              block\n",
        "                break 'rows\n",
        "            leaf\n",
        "        loop\n",
        "          block\n",
        "            break \n",
        "    leaf\n",
    );
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn if_let_chains_and_let_else() {
    let src = "\
fn pick(opt: Option<u64>) -> u64 {
    let Some(v) = opt else {
        return 0;
    };
    if let Some(w) = opt {
        w
    } else if v > 1 {
        v
    } else {
        1
    }
}
";
    let got = golden(src);
    let want = "\
fn pick(opt)
  block
    let Some ( v )
      leaf
      else
        block
          return
            leaf
    if
      leaf
      block
        leaf
    else
      if
        leaf
        block
          leaf
      else
        block-expr
          leaf
";
    assert_eq!(got, want, "got:\n{got}");
}

/// Structural (non-golden) spot checks: the typed tree is queryable the
/// way the rules use it.
#[test]
fn tree_shape_is_queryable() {
    let src = "\
impl Shard {
    fn run(&mut self) {
        loop {
            self.barrier.wait();
            match self.state {
                0 => self.step(),
                _ => break,
            }
        }
    }
}
";
    let out = lex(src);
    let tree = parse(&out.toks);
    let ItemKind::Items(items) = &tree.items[0].kind else {
        panic!("impl should parse as an item container");
    };
    let ItemKind::Fn(f) = &items[0].kind else {
        panic!("fn inside impl");
    };
    let body = f.body.as_ref().expect("fn body");
    let StmtKind::Expr(loop_expr) = &body.stmts[0].kind else {
        panic!("loop stmt");
    };
    let ExprKind::Loop {
        body: loop_body, ..
    } = &loop_expr.kind
    else {
        panic!("loop expr, got {:?}", loop_expr.kind);
    };
    assert_eq!(loop_body.stmts.len(), 2, "barrier call + match");
    let StmtKind::Expr(m) = &loop_body.stmts[1].kind else {
        panic!("match stmt");
    };
    let ExprKind::Match { arms, .. } = &m.kind else {
        panic!("match expr, got {:?}", m.kind);
    };
    assert_eq!(arms.len(), 2);
    assert!(matches!(arms[1].body.kind, ExprKind::Break(_)));
}
