//! The sharded executor: per-core event loops coupled through
//! conservative lookahead windows.
//!
//! # Partitioning
//!
//! Each server node owns exactly one outgoing link, so nodes are the unit
//! of parallelism: [`owner_of`] assigns node `n` of `N` to shard
//! `n·S/N` — contiguous blocks, so a tandem route stays on one shard
//! until it genuinely crosses a block boundary. A shard owns, besides its
//! nodes' disciplines/queues/links, the injectors of every session whose
//! *first* hop it owns, the statistics rows it touches, and a private
//! future-event set, packet arena and simulation clock.
//!
//! # The lookahead window (conservative PDES)
//!
//! Let `L` be the minimum propagation delay over every *cross-shard*
//! consecutive hop pair of any route (builder refuses to shard when that
//! minimum is zero). The run loop alternates compute and exchange:
//!
//! 1. every shard publishes the timestamp of its earliest local event;
//!    a barrier makes the global minimum `T_min` common knowledge;
//! 2. every shard processes its local events with `t < T_min + L`
//!    (the *window*, exclusive at the horizon), sending cross-shard
//!    packet handoffs as it goes;
//! 3. a second barrier ends the window; every shard drains its inboxes
//!    into its event set and the loop repeats.
//!
//! This is safe because a handoff sent at `τ ≥ T_min` arrives at
//! `τ + propagation ≥ T_min + L`: nothing received at a barrier can ever
//! be earlier than the horizon the receiver already processed up to.
//!
//! # Determinism
//!
//! Identical results for every shard count is a hard requirement, so
//! within one shard events are *not* processed in future-event-set FIFO
//! order (which would depend on cross-shard push interleavings). Instead
//! the shard drains the whole group of events sharing the current
//! instant and sorts it by a content-derived tie key — `(kind, session,
//! hop, seq)`, with kind ranked Inject < Arrive < Eligible < RegFire <
//! TxDone —
//! which is unique per event and independent of arrival order. Events a
//! shard *generates at the current instant* (zero-propagation forwards,
//! next-emission injects at the same tick) are appended to the group
//! tail in generation order, mirroring the FIFO tail-append of a
//! heap-based loop. By induction over instants, each shard's processing
//! sequence is the restriction of the one canonical global sequence to
//! the events it owns: same-instant causal chains never cross shards
//! (cross-shard hops have propagation ≥ L > 0), so node-local histories
//! — and therefore all statistics, delivery logs and oracle counts —
//! are byte-identical for every admissible shard count **≥ 2**.
//!
//! Versus the *scalar* engine the guarantee is conditional: scalar
//! dispatches same-instant ties in event-queue push order, a global
//! FIFO notion no shard can reconstruct, so two sessions' packets
//! hitting one idle link at the same picosecond may transmit in
//! different orders under the two engines (e.g. phase-aligned CBR
//! fan-in). Scalar ≡ sharded holds exactly when no two network events
//! share an instant — which staggered sources guarantee and
//! `tests/shard_determinism.rs` pins; the repro fuzzer compares shard
//! counts against each other on arbitrary traffic instead.
//!
//! One check is *defined* slightly differently than the scalar engine's:
//! the jitter oracle compares a session's running end-to-end spread
//! against the maximum **delivered** reference delay (tracked on the
//! delivery shard) where the scalar engine uses the maximum *injected*
//! reference delay (which lives on the injector's shard and may run a
//! few packets ahead). The sharded bound is never looser, and it is
//! identical across all shard counts.
//!
//! # Mailboxes
//!
//! Cross-shard handoffs travel by value ([`Packet`] is `Copy`) through a
//! fixed-capacity [`std::sync::mpsc::sync_channel`] per directed shard
//! pair that actually has a route edge. A full channel never blocks the
//! sender mid-window (that could deadlock the barrier): the sender flips
//! to a mutex-guarded spill vector for the rest of the window, and the
//! receiver drains channel-then-spill after the barrier, preserving
//! per-pair FIFO order. Senders and receivers never touch a mailbox
//! concurrently — sends happen strictly between the two barriers,
//! drains strictly after the second — the spill mutex is only ever
//! uncontended, and the channel is merely a bounded SPSC buffer.
//!
//! # Fallbacks
//!
//! [`crate::NetworkBuilder::build`] degrades to the scalar engine
//! whenever sharding cannot reproduce scalar observability: a probe is
//! installed (hooks fire in global dispatch order), the oracle is in
//! panic mode (must stop at the *first* violation globally), a
//! cross-shard hop has zero propagation (empty lookahead), or fewer
//! than two shards survive clamping to the node count. The degrade is
//! not silent: every occurrence bumps the process-global
//! [`shard_fallbacks`] counter, and the built engine is observable via
//! [`crate::Network::shard_count`].

use crate::arena::{PacketArena, PacketRef};
use crate::discipline::{
    Discipline, DisciplineFactory, RegFifo, RegulatorBackend, ScheduleDecision,
};
use crate::equeue::EligibleQueue;
use crate::network::NetworkBuilder;
use crate::oracle::{ccdf_shift_violation, OracleMode, OracleRt, OracleTotals, ViolationKind};
use crate::packet::{NodeId, Packet, SessionId};
use crate::spec::{DelayAssignment, LinkParams, SessionSpec};
use crate::stats::{DeliveryRecord, NodeStats, SessionStats, StatsConfig};
use lit_sim::{Duration, EventQueue, SeedSeq, SimRng, Time};
use lit_traffic::{Emission, Source};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Barrier, Mutex};

/// Which shard owns node `node` of `n_nodes` when running `shards`
/// shards: contiguous blocks of `⌈N/S⌉`-ish size, computed without
/// rounding drift as `node·S/N`.
pub fn owner_of(node: usize, n_nodes: usize, shards: usize) -> usize {
    debug_assert!(node < n_nodes && shards >= 1);
    node * shards / n_nodes
}

/// Process-global default shard count, applied by CLI layers that build
/// many networks from one `--shards` flag (mirrors the oracle's global
/// mode knob). `0` and `1` both mean "scalar".
static GLOBAL_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Set the process-global default shard count (see [`global_shards`]).
pub fn set_global_shards(n: usize) {
    GLOBAL_SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The process-global default shard count (1 unless a CLI set it).
pub fn global_shards() -> usize {
    GLOBAL_SHARDS.load(Ordering::Relaxed)
}

/// Process-global count of builds that requested ≥ 2 shards but degraded
/// to the scalar engine (probe installed, panic-mode oracle, a
/// zero-lookahead cross-shard edge, or fewer than two nodes). The
/// fallback keeps results valid, but it silently changes which engine a
/// run measures, so it is counted instead of hidden: harnesses can
/// assert the sharded engine actually ran (see also
/// [`crate::Network::shard_count`]), and `lit-repro` prints a notice
/// when a `--shards` request degraded.
static SHARD_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// How many builds so far degraded a ≥ 2 shard request to the scalar
/// engine (see [`crate::NetworkBuilder::shards`] for the fallback cases).
pub fn shard_fallbacks() -> u64 {
    SHARD_FALLBACKS.load(Ordering::Relaxed)
}

/// Record one degraded build (called by `NetworkBuilder::build`).
pub(crate) fn record_fallback() {
    SHARD_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Mailbox capacity per directed shard pair; overflow spills to a
/// mutex-guarded vector for the remainder of the window.
const MAILBOX_CAP: usize = 1024;

/// Events of one shard's executor — the scalar engine's events with
/// packets replaced by dense arena references so entries stay `Copy`.
#[derive(Clone, Copy)]
enum Ev {
    /// Inject the pending emission of session `sid` (arrival at hop 0).
    Inject { sid: u32 },
    /// A packet's last bit arrives at its current hop's node.
    Arrive { p: PacketRef },
    /// A regulated packet becomes eligible; `at` is the instant the
    /// regulator computed, re-checked by the oracle on release.
    Eligible { p: PacketRef, key: u128, at: Time },
    /// The head of `node`'s shared interleaved-regulator FIFO reaches its
    /// eligibility instant; `at` is re-checked by the oracle on firing.
    RegFire { node: u32, at: Time },
    /// The node finished transmitting its current packet.
    TxDone { node: u32 },
}

/// A cross-shard packet handoff: arrive at `at` on the receiving shard.
struct Handoff {
    at: Time,
    pkt: Packet,
}

/// The canonical same-instant ordering key: unique per event (a session
/// has one packet per `(hop, seq)` in flight, a node one transmission)
/// and derived from content only, never from queue arrival order.
fn tie_key(arena: &PacketArena, ev: &Ev) -> (u8, u32, u32, u64) {
    match *ev {
        Ev::Inject { sid } => (0, sid, 0, 0),
        Ev::Arrive { p } => arena.get(p).map_or((1, u32::MAX, u32::MAX, u64::MAX), |k| {
            (1, k.session.0, k.hop, k.seq)
        }),
        Ev::Eligible { p, .. } => arena.get(p).map_or((2, u32::MAX, u32::MAX, u64::MAX), |k| {
            (2, k.session.0, k.hop, k.seq)
        }),
        Ev::RegFire { node, .. } => (3, node, 0, 0),
        Ev::TxDone { node } => (4, node, 0, 0),
    }
}

/// Runtime state of one node owned by this shard.
struct NodeSt {
    link: LinkParams,
    discipline: Box<dyn Discipline>,
    queue: EligibleQueue<PacketRef>,
    current: Option<PacketRef>,
    /// Shared per-hop regulator FIFO, used only under
    /// [`RegulatorBackend::Interleaved`] (see the scalar engine's twin).
    fifo: RegFifo<PacketRef>,
}

/// The injector of one session, owned by the shard of its first hop.
struct InjectRt {
    rate_bps: u64,
    source: Box<dyn Source>,
    rng: SimRng,
    next_seq: u64,
    pending: Option<Emission>,
    /// Reference-server clock `W_{i-1,s}` (eq. 1); `None` before packet 1.
    ref_w: Option<Time>,
}

/// One shard: a self-contained executor over its block of nodes.
struct Shard {
    id: usize,
    nshards: usize,
    now: Time,
    events: EventQueue<Ev>,
    arena: PacketArena,
    /// Node runtime state, globally indexed; `Some` only for owned nodes.
    nodes: Vec<Option<NodeSt>>,
    node_stats: Vec<NodeStats>,
    /// Session injectors, globally indexed; `Some` iff hop 0 is owned.
    sessions: Vec<Option<InjectRt>>,
    /// Per-session statistics rows; `Some` iff any hop is owned. Rows are
    /// field-disjoint across shards (each field is written only by the
    /// shard owning the hop that produces it) and merged by
    /// [`SessionStats::absorb`] in shard order.
    stats: Vec<Option<SessionStats>>,
    /// Route table (node, assignment) per session, shared read-only.
    hops: Arc<Vec<Vec<(u32, DelayAssignment)>>>,
    /// Per-session jitter-control flags, shared read-only (the
    /// interleaved join rule needs them without owning the specs).
    jc: Arc<Vec<bool>>,
    /// Regulator backend selected at build, identical on every shard.
    regulator: RegulatorBackend,
    /// Node → owning shard, shared read-only.
    owner: Arc<Vec<u32>>,
    oracle: OracleRt,
    /// Max reference delay over *delivered* packets, per session — the
    /// sharded jitter oracle's `D^ref_max` (see module docs).
    ref_max_ps: Vec<i128>,
    /// Batched-arrival dispatch enabled (oracle off, no probe).
    batch: bool,
    /// Outgoing mailboxes, one per destination shard with a route edge.
    outboxes: Vec<Option<SyncSender<Handoff>>>,
    /// Incoming mailboxes, one per source shard with a route edge.
    inboxes: Vec<Option<Receiver<Handoff>>>,
    /// Spill lanes `[from][to]`, shared by all shards; the sender locks
    /// `[self.id][dest]`, the receiver drains `[src][self.id]`.
    spill: Arc<Vec<Vec<Mutex<Vec<Handoff>>>>>,
    /// Destinations whose channel filled this window (drain resets).
    spilling: Vec<bool>,
    /// Same-instant event group scratch (capacity persists).
    group: Vec<Ev>,
    /// Batched-arrival scratch buffers (capacity persists).
    batch_pkts: Vec<Packet>,
    batch_refs: Vec<PacketRef>,
    batch_out: Vec<ScheduleDecision>,
    /// Handoff drain scratch (capacity persists).
    handoff_buf: Vec<Handoff>,
    /// Same-instant events appended directly to the group tail instead of
    /// the event set; `pushed() + appended` is the scalar-equivalent
    /// event count.
    appended: u64,
}

impl Shard {
    /// Timestamp of the earliest local event, `u64::MAX` if none.
    fn next_event_ps(&self) -> u64 {
        self.events.peek_time().map_or(u64::MAX, |t| t.as_ps())
    }

    /// Process every local event strictly below `horizon_ps` and at or
    /// before `until`, draining and canonically ordering each
    /// same-instant group (see module docs on determinism).
    fn process_window(&mut self, horizon_ps: u64, until: Time) {
        while let Some(t) = self.events.peek_time() {
            if t.as_ps() >= horizon_ps || t > until {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            let mut group = std::mem::take(&mut self.group);
            debug_assert!(group.is_empty());
            while let Some((_, ev)) = self.events.pop_if(|at, _| at == t) {
                group.push(ev);
            }
            {
                let arena = &self.arena;
                group.sort_unstable_by_key(|ev| tie_key(arena, ev));
            }
            let mut i = 0;
            while i < group.len() {
                // lit-lint: allow(no-panic-hot-path, "cursor bounded by the length check above; the group only grows")
                let ev = group[i];
                i += 1;
                match ev {
                    Ev::Inject { sid } => self.inject(sid, &mut group),
                    Ev::Arrive { p } if self.batch => i = self.arrive_batched(p, i, &mut group),
                    Ev::Arrive { p } => self.arrive(p, &mut group),
                    Ev::Eligible { p, key, at } => self.eligible(p, key, at, &mut group),
                    Ev::RegFire { node, at } => self.reg_fire(node, at, &mut group),
                    Ev::TxDone { node } => self.tx_done(node, &mut group),
                }
            }
            group.clear();
            self.group = group;
        }
    }

    /// Schedule `ev` at `at`: same-instant events append to the current
    /// group's tail (FIFO, like a heap loop would pop them), future ones
    /// go to the event set.
    fn emit(&mut self, at: Time, ev: Ev, group: &mut Vec<Ev>) {
        debug_assert!(at >= self.now, "scheduled into the past");
        if at == self.now {
            group.push(ev);
            self.appended += 1;
        } else {
            self.events.push(at, ev);
        }
    }

    /// Materialize the pending emission of `sid` at hop 0 and
    /// pull/schedule the next one. Mirrors the scalar engine's `inject`.
    fn inject(&mut self, sid: u32, group: &mut Vec<Ev>) {
        let now = self.now;
        let (pkt, next_at) = {
            // lit-lint: allow(no-panic-hot-path, "executor invariant: Inject events carry indices minted by build over this same vec")
            let s = self.sessions[sid as usize]
                .as_mut()
                // lit-lint: allow(no-panic-hot-path, "build mints an injector for every first-hop session on this shard")
                .expect("Inject on a shard that owns no injector for this session");
            // lit-lint: allow(no-panic-hot-path, "executor invariant: an Inject event is only pushed when `pending` was just filled")
            let e = s.pending.take().expect("Inject without pending emission");
            debug_assert_eq!(e.at, now);
            let seq = s.next_seq;
            s.next_seq += 1;
            let mut pkt = Packet::new(SessionId(sid), seq, e.len_bits, e.at);

            // Reference-server co-simulation (eq. 1): W_i = max(t_i,
            // W_{i-1}) + L_i/r, with W_0 = t_1.
            let service = Duration::from_bits_at_rate(e.len_bits as u64, s.rate_bps);
            let w_prev = s.ref_w.unwrap_or(e.at);
            let w = e.at.max(w_prev) + service;
            s.ref_w = Some(w);

            s.pending = s.source.next_emission(&mut s.rng);
            if let Some(next) = s.pending {
                debug_assert!(next.at >= e.at, "source emitted into the past");
            }
            pkt.ref_delay = w - e.at;
            (pkt, s.pending.map(|n| n.at))
        };
        if let Some(at) = next_at {
            self.emit(at, Ev::Inject { sid }, group);
        }
        // lit-lint: allow(no-panic-hot-path, "stats rows exist for every session with an owned hop; the injector's shard owns hop 0")
        let st = self.stats[sid as usize]
            .as_mut()
            // lit-lint: allow(no-panic-hot-path, "stats row exists: this shard owns hop 0")
            .expect("injector shard missing its stats row");
        st.injected += 1;
        st.reference.record(pkt.ref_delay);
        let p = self.arena.alloc(pkt);
        self.arrive(p, group);
    }

    /// A packet's last bit arrives at its current hop. Mirrors the scalar
    /// engine's `arrive`, minus probe hooks (a probe forces scalar).
    fn arrive(&mut self, p: PacketRef, group: &mut Vec<Ev>) {
        let now = self.now;
        let (sid, hop, len_bits, seq) = {
            // lit-lint: allow(no-panic-hot-path, "executor invariant: Arrive events carry references minted by this shard's arena")
            let pkt = self.arena.get_mut(p).expect("Arrive with stale packet ref");
            pkt.arrived = now;
            (pkt.session.index(), pkt.hop as usize, pkt.len_bits, pkt.seq)
        };
        // lit-lint: allow(no-panic-hot-path, "executor invariant: packets carry the session id and hop index they were routed with at build")
        let node_idx = self.hops[sid][hop].0 as usize;
        // lit-lint: allow(no-panic-hot-path, "stats rows exist for every session with an owned hop")
        self.stats[sid]
            .as_mut()
            // lit-lint: allow(no-panic-hot-path, "stats row exists: this shard owns the arriving hop")
            .expect("arrival shard missing its stats row")
            .occupy(hop, len_bits as u64);

        let decision = {
            let (nodes, arena) = (&mut self.nodes, &mut self.arena);
            // lit-lint: allow(no-panic-hot-path, "executor invariant: a packet only arrives at nodes its owner shard holds")
            let node = nodes[node_idx].as_mut().expect("arrival at unowned node");
            // lit-lint: allow(no-panic-hot-path, "reference checked live at the top of this function")
            let pkt = arena.get_mut(p).expect("packet vanished mid-arrival");
            node.discipline.on_arrival(pkt, now)
        };
        debug_assert!(
            decision.eligible >= now,
            "discipline produced an eligibility time in the past"
        );
        if self.oracle.enabled() {
            // Regulator invariants (eq. 6–7): E is per-session monotone
            // at every hop, and never lies in the past.
            // lit-lint: allow(no-panic-hot-path, "oracle state is sized per session and hop at build, same shape as the route")
            let last = &mut self.oracle.last_eligible[sid][hop];
            if decision.eligible < *last {
                let prev = *last;
                self.oracle.violate(ViolationKind::EligibilityOrder, || {
                    format!(
                        "session {sid} hop {hop} seq {seq}: eligibility {} < previous {prev}",
                        decision.eligible
                    )
                });
            } else {
                *last = decision.eligible;
            }
            if decision.eligible < now {
                self.oracle.violate(ViolationKind::ReleaseTime, || {
                    format!(
                        "session {sid} hop {hop} seq {seq}: eligibility {} before arrival {now}",
                        decision.eligible
                    )
                });
            }
        }
        if self.regulator == RegulatorBackend::Interleaved {
            // Interleaved join rule, mirroring the scalar engine: a packet
            // enters the shared FIFO when it must be held (`E > now`) or
            // when it is jitter-controlled and the FIFO already holds
            // earlier packets (overtaking them would break the
            // regulator's FIFO contract). Immediately eligible non-jc
            // packets bypass the regulator, as unshaped traffic does in
            // TSN ATS.
            // lit-lint: allow(no-panic-hot-path, "jc table has one flag per session, installed at build")
            let jc = self.jc[sid];
            let was_empty = {
                // lit-lint: allow(no-panic-hot-path, "executor invariant: a packet only arrives at nodes its owner shard holds")
                let node = self.nodes[node_idx]
                    .as_mut()
                    // lit-lint: allow(no-panic-hot-path, "arriving packets only target owned nodes")
                    .expect("arrival at unowned node");
                if decision.eligible > now || (jc && !node.fifo.queue.is_empty()) {
                    let was_empty = node.fifo.queue.is_empty();
                    node.fifo.join(p, decision.key, decision.eligible, now);
                    Some(was_empty)
                } else {
                    None
                }
            };
            match was_empty {
                // Joining an empty FIFO implies `E > now`, so the head
                // timer is always armed strictly in the future.
                Some(true) => self.events.push(
                    decision.eligible,
                    Ev::RegFire {
                        node: node_idx as u32,
                        at: decision.eligible,
                    },
                ),
                Some(false) => {}
                None => self.enqueue_eligible(node_idx as u32, p, decision.key, group),
            }
        } else if decision.eligible > now {
            self.events.push(
                decision.eligible,
                Ev::Eligible {
                    p,
                    key: decision.key,
                    at: decision.eligible,
                },
            );
        } else {
            self.enqueue_eligible(node_idx as u32, p, decision.key, group);
        }
    }

    /// Batched arrival dispatch: `first` was just taken from the sorted
    /// group at cursor `i`; the rest of its run — consecutive arrivals of
    /// the same `(session, hop)`, adjacent by canonical order — is
    /// consumed here and pushed through `on_arrival_batch` exactly like
    /// the scalar engine's `arrive_batched`. Returns the new cursor.
    fn arrive_batched(&mut self, first: PacketRef, mut i: usize, group: &mut Vec<Ev>) -> usize {
        let now = self.now;
        let (sid, hop) = {
            // lit-lint: allow(no-panic-hot-path, "executor invariant: Arrive events carry references minted by this shard's arena")
            let pkt = self.arena.get(first).expect("Arrive with stale packet ref");
            (pkt.session, pkt.hop)
        };
        let mut refs = std::mem::take(&mut self.batch_refs);
        refs.clear();
        refs.push(first);
        while i < group.len() {
            // lit-lint: allow(no-panic-hot-path, "cursor bounded by the length check above")
            let Ev::Arrive { p } = group[i] else { break };
            let matches = self
                .arena
                .get(p)
                .is_some_and(|k| k.session == sid && k.hop == hop);
            if !matches {
                break;
            }
            refs.push(p);
            i += 1;
        }
        // Copy the run out of the arena ([`Packet`] is `Copy`), batch
        // through the discipline, write the mutated packets back.
        let mut batch = std::mem::take(&mut self.batch_pkts);
        batch.clear();
        for &r in &refs {
            // lit-lint: allow(no-panic-hot-path, "references collected two loops up; nothing freed them since")
            let pkt = self.arena.get_mut(r).expect("batched packet vanished");
            pkt.arrived = now;
            batch.push(*pkt);
        }
        let sidx = sid.index();
        let hopx = hop as usize;
        // lit-lint: allow(no-panic-hot-path, "executor invariant: packets carry the session id and hop index they were routed with at build")
        let node_idx = self.hops[sidx][hopx].0 as usize;
        let mut out = std::mem::take(&mut self.batch_out);
        out.clear();
        {
            // lit-lint: allow(no-panic-hot-path, "executor invariant: a packet only arrives at nodes its owner shard holds")
            let node = self.nodes[node_idx]
                .as_mut()
                // lit-lint: allow(no-panic-hot-path, "arriving packets only target owned nodes")
                .expect("arrival at unowned node");
            node.discipline.on_arrival_batch(&mut batch, now, &mut out);
        }
        debug_assert_eq!(out.len(), batch.len(), "one decision per packet");
        for ((&r, pkt), decision) in refs.iter().zip(batch.drain(..)).zip(out.drain(..)) {
            debug_assert!(
                decision.eligible >= now,
                "discipline produced an eligibility time in the past"
            );
            // lit-lint: allow(no-panic-hot-path, "reference checked when the batch was copied out")
            *self.arena.get_mut(r).expect("batched packet vanished") = pkt;
            // lit-lint: allow(no-panic-hot-path, "stats rows exist for every session with an owned hop")
            self.stats[sidx]
                .as_mut()
                // lit-lint: allow(no-panic-hot-path, "stats row exists: this shard owns the batched hop")
                .expect("arrival shard missing its stats row")
                .occupy(hopx, pkt.len_bits as u64);
            if decision.eligible > now {
                self.events.push(
                    decision.eligible,
                    Ev::Eligible {
                        p: r,
                        key: decision.key,
                        at: decision.eligible,
                    },
                );
            } else {
                self.enqueue_eligible(node_idx as u32, r, decision.key, group);
            }
        }
        self.batch_refs = refs;
        self.batch_pkts = batch;
        self.batch_out = out;
        i
    }

    /// A regulated packet's eligibility instant fired.
    fn eligible(&mut self, p: PacketRef, key: u128, at: Time, group: &mut Vec<Ev>) {
        let now = self.now;
        let (sid, hop) = {
            // lit-lint: allow(no-panic-hot-path, "executor invariant: Eligible events carry references minted by this shard's arena")
            let pkt = self.arena.get(p).expect("Eligible with stale packet ref");
            (pkt.session.index(), pkt.hop as usize)
        };
        // lit-lint: allow(no-panic-hot-path, "executor invariant: packets carry the session id and hop index they were routed with at build")
        let node_idx = self.hops[sid][hop].0;
        if self.oracle.enabled() && now != at {
            let seq = self.arena.get(p).map_or(0, |k| k.seq);
            self.oracle.violate(ViolationKind::ReleaseTime, || {
                format!("session {sid} seq {seq} released at {now}, eligibility was {at}")
            });
        }
        self.enqueue_eligible(node_idx, p, key, group);
    }

    /// The head of `node_idx`'s interleaved-regulator FIFO reached its
    /// eligibility instant: release the head and every successor whose own
    /// eligibility has also passed, then re-arm the timer at the new
    /// head's instant. Mirrors the scalar engine's `reg_fire` — same
    /// release-order and shaping-ceiling checks — minus probe hooks (a
    /// probe forces scalar).
    fn reg_fire(&mut self, node_idx: u32, at: Time, group: &mut Vec<Ev>) {
        if self.oracle.enabled() && self.now != at {
            let now = self.now;
            self.oracle.violate(ViolationKind::ReleaseTime, || {
                format!("node {node_idx}: regulator timer fired at {now}, was armed for {at}")
            });
        }
        loop {
            // lit-lint: allow(no-panic-hot-path, "executor invariant: RegFire events name nodes this shard owns")
            let node = self.nodes[node_idx as usize]
                .as_mut()
                // lit-lint: allow(no-panic-hot-path, "RegFire only targets owned nodes")
                .expect("RegFire at unowned node");
            let Some(head) = node.fifo.queue.front() else {
                break;
            };
            if head.eligible > self.now {
                let next = head.eligible;
                self.events.push(
                    next,
                    Ev::RegFire {
                        node: node_idx,
                        at: next,
                    },
                );
                break;
            }
            // lit-lint: allow(no-panic-hot-path, "front() above proved the queue non-empty")
            let entry = node.fifo.queue.pop_front().expect("non-empty fifo");
            let expected = node.fifo.last_release.max(entry.eligible);
            let ceiling_ps = node.fifo.max_hold_ps;
            node.fifo.last_release = self.now;
            let now = self.now;
            if self.oracle.enabled() {
                let (esid, eseq) = self
                    .arena
                    .get(entry.item)
                    .map_or((u32::MAX, u64::MAX), |k| (k.session.0, k.seq));
                if now != expected {
                    self.oracle.violate(ViolationKind::RegulatorFifo, || {
                        format!(
                            "node {node_idx} session {esid} seq {eseq}: released at {now}, \
                             interleaved regulator requires max(last release, E) = {expected}"
                        )
                    });
                }
                let shaping_ps = now.checked_since(entry.eligible).map_or(0, |d| d.as_ps());
                if shaping_ps > ceiling_ps {
                    self.oracle.violate(ViolationKind::ShapingBound, || {
                        format!(
                            "node {node_idx} session {esid} seq {eseq}: held {shaping_ps} ps \
                             past its eligibility, service-curve ceiling is {ceiling_ps} ps"
                        )
                    });
                }
            }
            self.enqueue_eligible(node_idx, entry.item, entry.key, group);
        }
    }

    /// Put an eligible packet in the node's transmission queue and start
    /// the link if idle.
    fn enqueue_eligible(&mut self, node_idx: u32, p: PacketRef, key: u128, group: &mut Vec<Ev>) {
        // lit-lint: allow(no-panic-hot-path, "executor invariant: a packet only becomes eligible at nodes its owner shard holds")
        let node = self.nodes[node_idx as usize]
            .as_mut()
            // lit-lint: allow(no-panic-hot-path, "eligible packets only reference owned nodes")
            .expect("eligible at unowned node");
        node.queue.push(key, p);
        if node.current.is_none() {
            self.start_tx(node_idx, group);
        }
    }

    /// Begin transmitting the highest-priority eligible packet.
    fn start_tx(&mut self, node_idx: u32, group: &mut Vec<Ev>) {
        let now = self.now;
        let tx = {
            let (nodes, arena) = (&mut self.nodes, &self.arena);
            // lit-lint: allow(no-panic-hot-path, "executor invariant: node ids come from the build-time topology of this shard")
            let node = nodes[node_idx as usize]
                .as_mut()
                // lit-lint: allow(no-panic-hot-path, "start_tx only runs on owned nodes")
                .expect("start_tx at unowned node");
            debug_assert!(node.current.is_none(), "link already busy");
            let Some(p) = node.queue.pop() else {
                return;
            };
            // lit-lint: allow(no-panic-hot-path, "queued references stay live until tx_done takes them")
            let pkt = arena.get(p).expect("queued packet vanished");
            let tx = node.link.tx_time(pkt.len_bits);
            node.discipline.on_service_start(pkt, now);
            node.current = Some(p);
            tx
        };
        // lit-lint: allow(no-panic-hot-path, "node_stats is built with one entry per node")
        self.node_stats[node_idx as usize].busy.set_busy(now);
        self.emit(now + tx, Ev::TxDone { node: node_idx }, group);
    }

    /// The node's current packet finished transmission: account for it,
    /// then forward it (same shard: arena in place; cross shard: by value
    /// through the mailbox) or deliver it.
    fn tx_done(&mut self, node_idx: u32, group: &mut Vec<Ev>) {
        let finish = self.now;
        let (p, propagation, lmax_ps) = {
            let (nodes, arena) = (&mut self.nodes, &mut self.arena);
            // lit-lint: allow(no-panic-hot-path, "executor invariant: TxDone events name nodes this shard owns")
            let node = nodes[node_idx as usize]
                .as_mut()
                // lit-lint: allow(no-panic-hot-path, "TxDone only targets owned nodes")
                .expect("TxDone at unowned node");
            // lit-lint: allow(no-panic-hot-path, "executor invariant: a TxDone event exists only while `current` is occupied")
            let p = node.current.take().expect("TxDone with idle link");
            // lit-lint: allow(no-panic-hot-path, "the current reference stays live for the whole transmission")
            let pkt = arena.get_mut(p).expect("transmitting packet vanished");
            node.discipline.on_departure(pkt, finish);
            (
                p,
                node.link.propagation,
                node.link.lmax_time().as_ps() as i128,
            )
        };
        let (sid, hop, len_bits, seq, deadline) = {
            // lit-lint: allow(no-panic-hot-path, "reference taken live three lines up")
            let pkt = self.arena.get(p).expect("transmitting packet vanished");
            (
                pkt.session.index(),
                pkt.hop as usize,
                pkt.len_bits,
                pkt.seq,
                pkt.deadline,
            )
        };

        // Node accounting.
        // lit-lint: allow(no-panic-hot-path, "node_stats is built with one entry per node")
        let nst = &mut self.node_stats[node_idx as usize];
        nst.transmitted += 1;
        nst.bits_transmitted += len_bits as u64;
        let lateness = finish.as_ps() as i128 - deadline.as_ps() as i128;
        nst.max_lateness_ps = nst.max_lateness_ps.max(lateness);
        // The non-saturation allowance is a *per-session-regulator*
        // lemma: under the interleaved backend a packet can legitimately
        // leave later (it may wait behind other sessions' holds in the
        // shared FIFO), so the check is suspended there and the regulator
        // invariants take over at release time.
        if self.oracle.enabled() && !self.oracle.interleaved && lateness >= lmax_ps {
            // Non-saturation lemma: F̂ < F + L_MAX/C.
            nst.oracle_violations += 1;
            self.oracle.violate(ViolationKind::Lateness, || {
                format!(
                    "node {node_idx} session {sid} seq {seq}: finish {finish} is \
                     {lateness} ps past deadline {deadline} (allowance {lmax_ps} ps)"
                )
            });
        }

        // Session accounting: the packet no longer occupies this node.
        // lit-lint: allow(no-panic-hot-path, "stats rows exist for every session with an owned hop")
        self.stats[sid]
            .as_mut()
            // lit-lint: allow(no-panic-hot-path, "stats row exists: this shard owns the departing hop")
            .expect("departure shard missing its stats row")
            .release(hop, len_bits as u64);

        // lit-lint: allow(no-panic-hot-path, "executor invariant: packets carry the session id they were routed with at build")
        let hops_len = self.hops[sid].len();
        if hop + 1 < hops_len {
            // lit-lint: allow(no-panic-hot-path, "hop+1 < hops_len bound-checks the route lookup")
            let next_node = self.hops[sid][hop + 1].0 as usize;
            // lit-lint: allow(no-panic-hot-path, "owner is built with one entry per node")
            let dest = self.owner[next_node] as usize;
            if dest == self.id {
                self.arena
                    .get_mut(p)
                    // lit-lint: allow(no-panic-hot-path, "reference taken live at the top of this function")
                    .expect("forwarding packet vanished")
                    .hop += 1;
                self.emit(finish + propagation, Ev::Arrive { p }, group);
            } else {
                // lit-lint: allow(no-panic-hot-path, "reference taken live at the top of this function")
                let mut pkt = self.arena.take(p).expect("forwarding packet vanished");
                pkt.hop += 1;
                self.send_handoff(
                    dest,
                    Handoff {
                        at: finish + propagation,
                        pkt,
                    },
                );
            }
        } else {
            // Delivered: end-to-end delay includes the last link's
            // propagation, matching β's Σ(L_MAX/Cₙ + Γₙ) over n = 1..N.
            // lit-lint: allow(no-panic-hot-path, "reference taken live at the top of this function")
            let pkt = self.arena.take(p).expect("delivered packet vanished");
            let delivery = finish + propagation;
            // lit-lint: allow(no-panic-hot-path, "stats rows exist for every session with an owned hop")
            let st = self.stats[sid]
                .as_mut()
                // lit-lint: allow(no-panic-hot-path, "stats row exists: this shard owns the delivery hop")
                .expect("delivery shard missing its stats row");
            st.delivered += 1;
            let delay = delivery - pkt.created;
            st.e2e.record(delay);
            st.delay_batches.record(delay.as_secs_f64());
            let excess = delay.as_ps() as i128 - pkt.ref_delay.as_ps() as i128;
            st.max_excess_ps = st.max_excess_ps.max(excess);
            st.log_delivery(DeliveryRecord {
                seq: pkt.seq,
                created: pkt.created,
                delivered: delivery,
                ref_delay: pkt.ref_delay,
            });
            // lit-lint: allow(no-panic-hot-path, "ref_max_ps is built with one entry per session")
            let rm = &mut self.ref_max_ps[sid];
            *rm = (*rm).max(pkt.ref_delay.as_ps() as i128);
            let dref_ps = *rm;
            if self.oracle.enabled() {
                // lit-lint: allow(no-panic-hot-path, "oracle bounds are sized to the session count at build")
                if let Some(b) = self.oracle.bounds[sid] {
                    // Ineq. 12, pathwise: D_i − D^ref_i < β + α.
                    if excess >= b.shift_ps {
                        st.oracle_violations += 1;
                        self.oracle.violate(ViolationKind::DelayBound, || {
                            format!(
                                "session {sid} seq {seq}: excess {excess} ps ≥ β+α = {} ps",
                                b.shift_ps
                            )
                        });
                    }
                    // Ineq. 17 family, against the delivered-side
                    // D^ref_max (see module docs on the deviation).
                    let jitter_ps = st.e2e.spread().map_or(0, |j| j.as_ps() as i128);
                    if jitter_ps >= dref_ps + b.jitter_spread_ps {
                        st.oracle_violations += 1;
                        self.oracle.violate(ViolationKind::JitterBound, || {
                            format!(
                                "session {sid} seq {seq}: jitter {jitter_ps} ps ≥ \
                                 D^ref_max {dref_ps} + spread {} ps",
                                b.jitter_spread_ps
                            )
                        });
                    }
                }
            }
        }

        // Keep the link busy if more eligible work is queued.
        // lit-lint: allow(no-panic-hot-path, "executor invariant: TxDone events name nodes this shard owns")
        let node = self.nodes[node_idx as usize]
            .as_mut()
            // lit-lint: allow(no-panic-hot-path, "TxDone only targets owned nodes")
            .expect("TxDone at unowned node");
        if node.queue.is_empty() {
            // lit-lint: allow(no-panic-hot-path, "node_stats is built with one entry per node")
            self.node_stats[node_idx as usize].busy.set_idle(finish);
        } else {
            self.start_tx(node_idx, group);
        }
    }

    /// Send a handoff to shard `dest`: through the bounded channel while
    /// it has room, then through the spill lane for the rest of the
    /// window (per-pair FIFO is preserved: the receiver drains the
    /// channel before the spill).
    fn send_handoff(&mut self, dest: usize, h: Handoff) {
        // lit-lint: allow(no-panic-hot-path, "spilling/outboxes are built with one entry per shard")
        if !self.spilling[dest] {
            // lit-lint: allow(no-panic-hot-path, "build creates an outbox for every shard pair with a route edge; tx_done only targets those")
            let tx = self.outboxes[dest]
                .as_ref()
                // lit-lint: allow(no-panic-hot-path, "build wired a mailbox for every cross-shard route edge")
                .expect("handoff to a shard pair without a mailbox");
            match tx.try_send(h) {
                Ok(()) => {}
                Err(TrySendError::Full(h)) => {
                    // lit-lint: allow(no-panic-hot-path, "spilling is built with one entry per shard")
                    self.spilling[dest] = true;
                    self.spill_push(dest, h);
                }
                Err(TrySendError::Disconnected(_)) => {
                    // Receivers live in `ShardedNet` for the network's
                    // whole lifetime; a closed channel means the engine
                    // is being torn down and the packet can only vanish.
                    debug_assert!(false, "handoff channel disconnected mid-run");
                }
            }
        } else {
            self.spill_push(dest, h);
        }
    }

    fn spill_push(&mut self, dest: usize, h: Handoff) {
        // lit-lint: allow(no-panic-hot-path, "spill is built as a full nshards×nshards matrix")
        let lane = &self.spill[self.id][dest];
        // The lane is uncontended by protocol (sends and drains are
        // separated by a barrier); a poisoned lock means another shard
        // panicked and the run is aborting anyway.
        // lit-lint: allow(no-panic-hot-path, "poisoned only if a sibling shard already panicked; propagating is correct")
        lane.lock().expect("spill lane poisoned").push(h);
    }

    /// Post-barrier: move every received handoff into the local event
    /// set (channel first, then spill, per source shard in id order) and
    /// re-arm the spill flags for the next window.
    fn drain_inboxes(&mut self) {
        for f in self.spilling.iter_mut() {
            *f = false;
        }
        let mut buf = std::mem::take(&mut self.handoff_buf);
        debug_assert!(buf.is_empty());
        for src in 0..self.nshards {
            // lit-lint: allow(no-panic-hot-path, "inboxes is built with one entry per shard")
            if let Some(rx) = self.inboxes[src].as_ref() {
                while let Ok(h) = rx.try_recv() {
                    buf.push(h);
                }
            }
            // lit-lint: allow(no-panic-hot-path, "spill is built as a full nshards×nshards matrix")
            let lane = &self.spill[src][self.id];
            // lit-lint: allow(no-panic-hot-path, "poisoned only if a sibling shard already panicked; propagating is correct")
            let mut lane = lane.lock().expect("spill lane poisoned");
            buf.append(&mut lane);
            drop(lane);
        }
        for h in buf.drain(..) {
            let p = self.arena.alloc(h.pkt);
            self.events.push(h.at, Ev::Arrive { p });
        }
        self.handoff_buf = buf;
    }
}

/// The sharded engine: `S` self-contained [`Shard`] executors plus the
/// merged, facade-visible view of their statistics.
pub(crate) struct ShardedNet {
    shards: Vec<Shard>,
    links: Vec<LinkParams>,
    specs: Vec<SessionSpec>,
    hops: Arc<Vec<Vec<(u32, DelayAssignment)>>>,
    /// Minimum cross-shard propagation delay (the lookahead `L`);
    /// `u64::MAX` when no route crosses shards (windows are unbounded and
    /// the shards run mutually independent).
    lookahead_ps: u64,
    stats_cfg: StatsConfig,
    now: Time,
    merged_sessions: Vec<SessionStats>,
    merged_nodes: Vec<NodeStats>,
    /// Facade-level oracle state: holds the installed bounds and runs the
    /// drain-time CCDF check over the *merged* histograms.
    oracle: OracleRt,
}

impl ShardedNet {
    /// Instantiate the sharded engine. `nshards ≥ 2` and admissibility
    /// were already established by `NetworkBuilder::effective_shards`.
    pub(crate) fn build(
        b: NetworkBuilder,
        factory: &DisciplineFactory<'_>,
        nshards: usize,
    ) -> Self {
        let n_nodes = b.links.len();
        let owner: Arc<Vec<u32>> = Arc::new(
            (0..n_nodes)
                .map(|n| owner_of(n, n_nodes, nshards) as u32)
                .collect(),
        );
        let session_hops: Vec<usize> = b.sessions.iter().map(|d| d.hops.len()).collect();

        // Lookahead: the minimum propagation over cross-shard consecutive
        // hop pairs, plus the directed shard-pair edge set for mailboxes.
        let mut lookahead_ps = u64::MAX;
        let mut edge = vec![vec![false; nshards]; nshards];
        for def in &b.sessions {
            for w in def.hops.windows(2) {
                // lit-lint: allow(no-panic-hot-path, "windows(2) yields exactly two elements")
                let (a, z) = (w[0].0 as usize, w[1].0 as usize);
                // lit-lint: allow(no-panic-hot-path, "owner table has one entry per node; routes validated at add_session")
                let (oa, oz) = (owner[a] as usize, owner[z] as usize);
                if oa != oz {
                    // lit-lint: allow(no-panic-hot-path, "route nodes index the builder's link table by construction")
                    lookahead_ps = lookahead_ps.min(b.links[a].propagation.as_ps());
                    // lit-lint: allow(no-panic-hot-path, "edge matrix is nshards x nshards; owners are < nshards")
                    edge[oa][oz] = true;
                }
            }
        }
        debug_assert!(lookahead_ps > 0, "zero lookahead should have forced scalar");

        // Mailboxes for every directed pair with an edge; spill lanes for
        // every pair (cheap, and keeps indexing uniform).
        let mut txs: Vec<Vec<Option<SyncSender<Handoff>>>> = (0..nshards)
            .map(|_| (0..nshards).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<Handoff>>>> = (0..nshards)
            .map(|_| (0..nshards).map(|_| None).collect())
            .collect();
        for (from, row) in edge.iter().enumerate() {
            for (to, &has) in row.iter().enumerate() {
                if has {
                    let (tx, rx) = std::sync::mpsc::sync_channel(MAILBOX_CAP);
                    // lit-lint: allow(no-panic-hot-path, "mailbox matrices are nshards x nshards by construction")
                    txs[from][to] = Some(tx);
                    // lit-lint: allow(no-panic-hot-path, "mailbox matrices are nshards x nshards by construction")
                    rxs[to][from] = Some(rx);
                }
            }
        }
        let spill: Arc<Vec<Vec<Mutex<Vec<Handoff>>>>> = Arc::new(
            (0..nshards)
                .map(|_| (0..nshards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
        );

        let batch = b.batch_arrivals
            && b.oracle.mode == OracleMode::Off
            && b.regulator == RegulatorBackend::PerSession;
        let interleaved = b.regulator == RegulatorBackend::Interleaved;
        let mut shards: Vec<Shard> = {
            let mut rx_iter = rxs.into_iter();
            let mut tx_iter = txs.into_iter();
            (0..nshards)
                .map(|id| Shard {
                    id,
                    nshards,
                    now: Time::ZERO,
                    events: EventQueue::with_backend(b.event_backend),
                    arena: PacketArena::new(),
                    nodes: b
                        .links
                        .iter()
                        .enumerate()
                        .map(|(n, link)| {
                            // lit-lint: allow(no-panic-hot-path, "owner table has one entry per node")
                            (owner[n] as usize == id).then(|| NodeSt {
                                link: *link,
                                discipline: factory(link),
                                queue: EligibleQueue::new(b.queue_kind),
                                current: None,
                                fifo: RegFifo::new(),
                            })
                        })
                        .collect(),
                    node_stats: (0..n_nodes).map(|_| NodeStats::new()).collect(),
                    sessions: (0..session_hops.len()).map(|_| None).collect(),
                    stats: (0..session_hops.len()).map(|_| None).collect(),
                    hops: Arc::new(Vec::new()), // installed below
                    jc: Arc::new(Vec::new()),   // installed below
                    regulator: b.regulator,
                    owner: Arc::clone(&owner),
                    oracle: {
                        let mut o = OracleRt::new(b.oracle, &session_hops);
                        o.interleaved = interleaved;
                        o
                    },
                    ref_max_ps: vec![i128::MIN; session_hops.len()],
                    batch,
                    outboxes: tx_iter.next().unwrap_or_default(),
                    inboxes: rx_iter.next().unwrap_or_default(),
                    spill: Arc::clone(&spill),
                    spilling: vec![false; nshards],
                    group: Vec::new(),
                    batch_pkts: Vec::new(),
                    batch_refs: Vec::new(),
                    batch_out: Vec::new(),
                    handoff_buf: Vec::new(),
                    appended: 0,
                })
                .collect()
        };

        // Register sessions: disciplines on each hop's owner shard, the
        // injector (with its RNG from the global per-session seed
        // sequence — identical streams for every shard count) on the
        // first hop's owner, a stats row on every touching shard.
        let mut seeds = SeedSeq::new(b.master_seed);
        let mut specs = Vec::with_capacity(b.sessions.len());
        let mut hops_tab = Vec::with_capacity(b.sessions.len());
        for (i, def) in b.sessions.into_iter().enumerate() {
            let rng = seeds.next_rng();
            for (n, delay) in &def.hops {
                // lit-lint: allow(no-panic-hot-path, "owner table has one entry per node")
                let sh = owner[*n as usize] as usize;
                // lit-lint: allow(no-panic-hot-path, "owners are < nshards; node ids are dense build indices")
                if let Some(node) = shards[sh].nodes[*n as usize].as_mut() {
                    node.discipline.register_session(&def.spec, delay);
                }
                // lit-lint: allow(no-panic-hot-path, "owners are < nshards; session ids are dense build indices")
                if shards[sh].stats[i].is_none() {
                    // lit-lint: allow(no-panic-hot-path, "owners are < nshards; session ids are dense build indices")
                    shards[sh].stats[i] = Some(SessionStats::new(&b.stats_cfg, def.hops.len()));
                }
            }
            // lit-lint: allow(no-panic-hot-path, "routes are non-empty (validated at add_session)")
            let first = owner[def.hops[0].0 as usize] as usize;
            let mut rt = InjectRt {
                rate_bps: def.spec.rate_bps,
                source: def.source,
                rng,
                next_seq: 1, // the paper numbers packets from 1
                pending: None,
                ref_w: None,
            };
            rt.pending = rt.source.next_emission(&mut rt.rng);
            if let Some(e) = rt.pending {
                // lit-lint: allow(no-panic-hot-path, "first-hop owner is < nshards")
                shards[first]
                    .events
                    .push(e.at, Ev::Inject { sid: i as u32 });
            }
            // lit-lint: allow(no-panic-hot-path, "first-hop owner is < nshards; session ids are dense build indices")
            shards[first].sessions[i] = Some(rt);
            specs.push(def.spec);
            hops_tab.push(def.hops);
        }
        let hops = Arc::new(hops_tab);
        let jc: Arc<Vec<bool>> = Arc::new(specs.iter().map(|s| s.jitter_control).collect());
        for sh in &mut shards {
            sh.hops = Arc::clone(&hops);
            sh.jc = Arc::clone(&jc);
        }

        let merged_sessions = specs
            .iter()
            .enumerate()
            // lit-lint: allow(no-panic-hot-path, "hops table has one row per session")
            .map(|(i, _)| SessionStats::new(&b.stats_cfg, hops[i].len()))
            .collect();
        ShardedNet {
            shards,
            links: b.links,
            specs,
            hops,
            lookahead_ps,
            stats_cfg: b.stats_cfg,
            now: Time::ZERO,
            merged_sessions,
            merged_nodes: (0..n_nodes).map(|_| NodeStats::new()).collect(),
            oracle: {
                let mut o = OracleRt::new(b.oracle, &session_hops);
                o.interleaved = interleaved;
                o
            },
        }
    }

    /// Advance every shard until no event at or before `until` remains,
    /// then refresh the merged statistics view.
    pub fn run_until(&mut self, until: Time) {
        let n = self.shards.len();
        let until_ps = until.as_ps();
        let lookahead_ps = self.lookahead_ps;
        let next_ts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let barrier = Barrier::new(n);
        let abort = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let worker = |shard: &mut Shard| {
            loop {
                // Window protocol. Publish my earliest timestamp; after
                // barrier A everyone computes the same global minimum
                // from the same published snapshot, so every shard takes
                // the same branch below — the barriers stay aligned.
                // The break condition must be a pure function of that
                // common snapshot: reading `abort` here could observe a
                // sibling's mid-window store while that sibling already
                // parks on barrier B, and breaking would strand it (and
                // everyone else) on a barrier no one completes. Abort is
                // therefore checked only after barrier B, where the
                // flagging store (sequenced before the flagger's own
                // barrier-B wait) is visible to every shard alike.
                // lit-lint: allow(no-panic-hot-path, "next_ts has one published slot per shard")
                next_ts[shard.id].store(shard.next_event_ps(), Ordering::SeqCst);
                barrier.wait();
                let tmin = next_ts
                    .iter()
                    .map(|a| a.load(Ordering::SeqCst))
                    .min()
                    .unwrap_or(u64::MAX);
                if tmin == u64::MAX || tmin > until_ps {
                    break;
                }
                // lit-lint: allow(checked-clock-ops, "u64::MAX is the no-event sentinel; saturating keeps it a sentinel instead of wrapping")
                let horizon = tmin.saturating_add(lookahead_ps);
                // A panicking shard must not leave siblings parked on a
                // barrier: trap the payload, flag the abort, and keep
                // the protocol moving to the next aligned exit.
                let r = catch_unwind(AssertUnwindSafe(|| shard.process_window(horizon, until)));
                if let Err(payload) = r {
                    let mut slot = match panic_slot.lock() {
                        Ok(s) => s,
                        Err(p) => p.into_inner(),
                    };
                    slot.get_or_insert(payload);
                    abort.store(true, Ordering::SeqCst);
                }
                barrier.wait(); // barrier B: every send of this window is done
                if abort.load(Ordering::SeqCst) {
                    break;
                }
                shard.drain_inboxes();
            }
        };

        if n == 1 {
            // Degenerate single-shard engine (not reachable through the
            // public builder, which routes 1 shard to the scalar engine;
            // kept for the shard-count induction's base case in tests).
            if let Some(shard) = self.shards.first_mut() {
                shard.process_window(u64::MAX, until);
                shard.now = shard.now.max(until);
            }
        } else {
            std::thread::scope(|s| {
                let mut iter = self.shards.iter_mut();
                let first = iter.next();
                for shard in iter {
                    s.spawn(|| worker(shard));
                }
                if let Some(shard) = first {
                    worker(shard); // shard 0 runs on the caller's thread
                }
            });
        }
        if let Some(payload) = panic_slot.into_inner().unwrap_or_else(|p| p.into_inner()) {
            resume_unwind(payload);
        }
        for shard in &mut self.shards {
            shard.now = shard.now.max(until);
        }
        self.now = self.now.max(until);
        self.merge();
    }

    /// Rebuild the merged statistics view from the shards' field-disjoint
    /// rows, in fixed shard order (commutative merges make the order a
    /// formality, but fixing it keeps float accumulations bit-stable).
    fn merge(&mut self) {
        for (i, merged) in self.merged_sessions.iter_mut().enumerate() {
            // lit-lint: allow(no-panic-hot-path, "hops table has one row per session")
            let mut fresh = SessionStats::new(&self.stats_cfg, self.hops[i].len());
            for shard in &self.shards {
                // lit-lint: allow(no-panic-hot-path, "session ids are dense build indices")
                if let Some(st) = shard.stats[i].as_ref() {
                    fresh.absorb(st);
                }
            }
            *merged = fresh;
        }
        for (node, merged) in self.merged_nodes.iter_mut().enumerate() {
            let sh = owner_of(node, self.links.len(), self.shards.len());
            if let Some(shard) = self.shards.get(sh) {
                // lit-lint: allow(no-panic-hot-path, "node_stats is sized to the full node table")
                *merged = shard.node_stats[node].clone();
            }
        }
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn session_stats(&self, id: SessionId) -> &SessionStats {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.merged_sessions[id.index()]
    }

    pub fn node_stats(&self, id: NodeId) -> &NodeStats {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.merged_nodes[id.index()]
    }

    pub fn session_spec(&self, id: SessionId) -> &SessionSpec {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.specs[id.index()]
    }

    pub fn num_sessions(&self) -> usize {
        self.specs.len()
    }

    pub fn num_nodes(&self) -> usize {
        self.links.len()
    }

    pub fn session_hops(&self, id: SessionId) -> &[(u32, DelayAssignment)] {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.hops[id.index()]
    }

    pub fn node_link(&self, id: NodeId) -> &LinkParams {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.links[id.index()]
    }

    pub fn set_session_bounds(&mut self, id: SessionId, bounds: crate::oracle::SessionBounds) {
        if self.oracle.enabled() {
            // lit-lint: allow(no-panic-hot-path, "public setter: panicking on an invalid id is the documented contract")
            self.oracle.bounds[id.index()] = Some(bounds);
            for shard in &mut self.shards {
                // lit-lint: allow(no-panic-hot-path, "oracle bounds table is sized to the session count")
                shard.oracle.bounds[id.index()] = Some(bounds);
            }
        }
    }

    /// Scalar-equivalent event count: heap pushes plus same-instant group
    /// appends, summed over shards — invariant across shard counts.
    pub fn event_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.events.pushed() + s.appended)
            .sum()
    }

    pub fn oracle_violations(&self) -> u64 {
        self.oracle_totals().total()
    }

    /// Violation counts by kind: per-shard counters plus the facade's
    /// drain-time CCDF counter, summed field by field.
    pub fn oracle_totals(&self) -> OracleTotals {
        let mut t = self.oracle.totals;
        for shard in &self.shards {
            let o = &shard.oracle.totals;
            t.eligibility_order += o.eligibility_order;
            t.release_time += o.release_time;
            t.lateness += o.lateness;
            t.delay_bound += o.delay_bound;
            t.jitter_bound += o.jitter_bound;
            t.ccdf_bound += o.ccdf_bound;
            t.shaping_bound += o.shaping_bound;
            t.regulator_fifo += o.regulator_fifo;
            t.work_conservation += o.work_conservation;
        }
        t
    }

    /// Drain-time checks over the *merged* view: ineq. 16 on the
    /// per-session histograms and workload conservation on the per-node
    /// busy clocks (both sides of each comparison are whole-run, so they
    /// must run post-merge). Violation marks land on the owning shard's
    /// row so they survive future re-merges.
    pub fn oracle_drain_check(&mut self) -> u64 {
        self.oracle.drained = true;
        if !self.oracle.enabled() {
            return 0;
        }
        let mut failed = 0;
        for sid in 0..self.merged_sessions.len() {
            // lit-lint: allow(no-panic-hot-path, "oracle bounds and merged_sessions are built to the same length")
            let Some(b) = self.oracle.bounds[sid] else {
                continue;
            };
            // lit-lint: allow(no-panic-hot-path, "sid enumerates this very vec")
            let st = &self.merged_sessions[sid];
            if st.delivered == 0 {
                continue;
            }
            if let Some((d_ps, lhs, rhs)) = ccdf_shift_violation(&st.e2e, &st.reference, b.shift_ps)
            {
                failed += 1;
                self.oracle.violate(ViolationKind::CcdfBound, || {
                    format!(
                        "session {sid}: {lhs} packets with D > {d_ps} ps, but only \
                         {rhs} with D^ref > {} ps (shift {} ps)",
                        d_ps - b.shift_ps,
                        b.shift_ps
                    )
                });
                // lit-lint: allow(no-panic-hot-path, "sid enumerates merged_sessions, same length as the shard rows")
                self.merged_sessions[sid].oracle_violations += 1;
                // Persist the mark on the delivery shard's row (hop-owner
                // of the last hop) so re-merging doesn't erase it.
                // lit-lint: allow(no-panic-hot-path, "hops table has one row per session")
                if let Some(&(last_node, _)) = self.hops[sid].last() {
                    let sh = owner_of(last_node as usize, self.links.len(), self.shards.len());
                    // lit-lint: allow(no-panic-hot-path, "session ids are dense build indices")
                    if let Some(row) = self.shards.get_mut(sh).and_then(|s| s.stats[sid].as_mut()) {
                        row.oracle_violations += 1;
                    }
                }
            }
        }
        // Workload conservation over [0, now], per node: busy time must
        // equal the service time of the transmitted bits. Slack: ±1 ps
        // per packet (each tx time rounds to the nearest picosecond, and
        // so does the recomputed total) plus one L_MAX/C upward for a
        // packet still on the wire at the horizon, whose open busy
        // interval is closed virtually while its bits are not yet
        // counted. Mirrors the scalar engine's check; marks persist on
        // the owning shard's row.
        let now = self.now;
        let n_nodes = self.links.len();
        let nshards = self.shards.len();
        for n in 0..n_nodes {
            let (busy_ps, service_ps, count, lmax_ps, transmitted) = {
                // lit-lint: allow(no-panic-hot-path, "merged_nodes and links are built to the same length; n enumerates both")
                let nst = &self.merged_nodes[n];
                // lit-lint: allow(no-panic-hot-path, "links has one entry per node")
                let link = &self.links[n];
                (
                    nst.busy.busy_at(now).as_ps() as i128,
                    Duration::from_bits_at_rate(nst.bits_transmitted, link.rate_bps).as_ps()
                        as i128,
                    nst.transmitted as i128,
                    link.lmax_time().as_ps() as i128,
                    nst.transmitted,
                )
            };
            if busy_ps < service_ps - count || busy_ps > service_ps + count + lmax_ps {
                failed += 1;
                self.oracle.violate(ViolationKind::WorkConservation, || {
                    format!(
                        "node {n}: busy {busy_ps} ps over [0, {now}] vs {service_ps} ps \
                         of transmitted service ({transmitted} packets, allowance ±{count} ps \
                         + {lmax_ps} ps in flight)"
                    )
                });
                // lit-lint: allow(no-panic-hot-path, "n enumerates merged_nodes")
                self.merged_nodes[n].oracle_violations += 1;
                let sh = owner_of(n, n_nodes, nshards);
                if let Some(shard) = self.shards.get_mut(sh) {
                    // lit-lint: allow(no-panic-hot-path, "node_stats is sized to the full node table")
                    shard.node_stats[n].oracle_violations += 1;
                }
            }
        }
        failed
    }

    /// Shard workers in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl Drop for ShardedNet {
    fn drop(&mut self) {
        // Mirror the scalar engine: run the drain-time check if the
        // caller didn't, forced to counting mode (panicking in drop would
        // abort; the global counter still surfaces the failure).
        if self.oracle.enabled() && !self.oracle.drained && !std::thread::panicking() {
            let mode = self.oracle.mode;
            self.oracle.mode = OracleMode::Count;
            self.oracle_drain_check();
            self.oracle.mode = mode;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_blocks_are_contiguous_and_balanced() {
        for n in 1..40usize {
            for s in 1..=8usize.min(n) {
                let owners: Vec<usize> = (0..n).map(|i| owner_of(i, n, s)).collect();
                // Monotone, starts at 0, ends at s-1, covers every shard.
                assert_eq!(owners[0], 0);
                assert_eq!(*owners.last().unwrap(), s - 1);
                assert!(owners.windows(2).all(|w| w[0] <= w[1]));
                for sh in 0..s {
                    let cnt = owners.iter().filter(|&&o| o == sh).count();
                    assert!(
                        cnt == n / s || cnt == n / s + 1 || cnt == n.div_ceil(s),
                        "shard {sh} owns {cnt} of {n} nodes across {s} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn global_shards_knob_roundtrips() {
        set_global_shards(4);
        assert_eq!(global_shards(), 4);
        set_global_shards(0); // clamps to scalar
        assert_eq!(global_shards(), 1);
        set_global_shards(1);
    }
}
