//! The service-discipline interface every scheduler implements.
//!
//! A [`Discipline`] instance is created *per node* and sees three moments
//! in each packet's life at that node:
//!
//! 1. **arrival** of the packet's last bit — the discipline decides when
//!    the packet becomes *eligible* (it may be held in a delay regulator
//!    until then) and with what *priority key* it will compete for the
//!    link once eligible;
//! 2. **departure** (last bit transmitted) — the discipline may stamp
//!    header fields consumed by the next hop (Leave-in-Time stamps the
//!    holding time `A`, eq. 9);
//! 3. **registration** at connection-establishment time, where it learns
//!    the session's reserved rate and service parameters.
//!
//! The node machinery (in [`crate::Network`]) owns the regulator timers and
//! the eligible queue; the discipline owns only per-session scheduling
//! state. Eligible packets are served in increasing key order, ties broken
//! FIFO — the paper's "ties are ordered arbitrarily" made deterministic.

use crate::packet::Packet;
use crate::spec::{DelayAssignment, LinkParams, SessionSpec};
use lit_sim::Time;

/// The discipline's verdict on an arriving packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleDecision {
    /// When the packet may join the transmission queue (`Eⁿ_{i,s}`).
    /// Must be `≥` the arrival time.
    pub eligible: Time,
    /// Priority key: eligible packets are served in increasing key order.
    /// Time-based disciplines use picoseconds; virtual-time disciplines
    /// use any monotone encoding of their virtual stamp.
    pub key: u128,
}

impl ScheduleDecision {
    /// A decision keyed directly by a deadline instant.
    pub fn at(eligible: Time, deadline: Time) -> Self {
        ScheduleDecision {
            eligible,
            key: deadline.as_ps() as u128,
        }
    }
}

/// A per-node packet scheduler.
pub trait Discipline {
    /// Human-readable name for reports and traces.
    fn name(&self) -> &'static str;

    /// Connection establishment: a session with the given spec will
    /// traverse this node, using `delay` as its per-hop delay assignment
    /// here. Called once per session before any of its packets arrive.
    fn register_session(&mut self, spec: &SessionSpec, delay: &DelayAssignment);

    /// A packet's last bit arrived at `now`. Returns eligibility and
    /// priority; may write `pkt.deadline` / `pkt.d` scratch fields.
    ///
    /// Packets of one session arrive in sequence order (links and the
    /// per-session regulator are FIFO), so per-session recursions like
    /// eq. (10)–(11) may be advanced here.
    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision;

    /// The packet began transmission at `now`. Optional hook; disciplines
    /// that define a virtual time by the packet in service (e.g. SCFQ)
    /// use it.
    fn on_service_start(&mut self, _pkt: &Packet, _now: Time) {}

    /// The packet's last bit left the node at `finish`. The discipline may
    /// stamp `pkt.hold` for the next hop.
    fn on_departure(&mut self, pkt: &mut Packet, finish: Time);
}

/// Creates one discipline instance per node.
///
/// The factory receives the node's outgoing-link parameters, which most
/// disciplines need (e.g. `L_MAX/Cₙ` in Leave-in-Time's holding times).
pub type DisciplineFactory<'a> = dyn Fn(&LinkParams) -> Box<dyn Discipline> + 'a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_key_encodes_deadline() {
        let d = ScheduleDecision::at(Time::from_ms(1), Time::from_ms(5));
        assert_eq!(d.eligible, Time::from_ms(1));
        assert_eq!(d.key, Time::from_ms(5).as_ps() as u128);
    }
}
