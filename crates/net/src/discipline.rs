//! The service-discipline interface every scheduler implements.
//!
//! A [`Discipline`] instance is created *per node* and sees three moments
//! in each packet's life at that node:
//!
//! 1. **arrival** of the packet's last bit — the discipline decides when
//!    the packet becomes *eligible* (it may be held in a delay regulator
//!    until then) and with what *priority key* it will compete for the
//!    link once eligible;
//! 2. **departure** (last bit transmitted) — the discipline may stamp
//!    header fields consumed by the next hop (Leave-in-Time stamps the
//!    holding time `A`, eq. 9);
//! 3. **registration** at connection-establishment time, where it learns
//!    the session's reserved rate and service parameters.
//!
//! The node machinery (in [`crate::Network`]) owns the regulator timers and
//! the eligible queue; the discipline owns only per-session scheduling
//! state. Eligible packets are served in increasing key order, ties broken
//! FIFO — the paper's "ties are ordered arbitrarily" made deterministic.

use crate::packet::{Packet, SessionId};
use crate::spec::{DelayAssignment, LinkParams, SessionSpec};
use lit_sim::Time;

/// The discipline's verdict on an arriving packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleDecision {
    /// When the packet may join the transmission queue (`Eⁿ_{i,s}`).
    /// Must be `≥` the arrival time.
    pub eligible: Time,
    /// Priority key: eligible packets are served in increasing key order.
    /// Time-based disciplines use picoseconds; virtual-time disciplines
    /// use any monotone encoding of their virtual stamp.
    pub key: u128,
}

impl ScheduleDecision {
    /// A decision keyed directly by a deadline instant.
    pub fn at(eligible: Time, deadline: Time) -> Self {
        ScheduleDecision {
            eligible,
            key: deadline.as_ps() as u128,
        }
    }
}

/// A per-node packet scheduler.
///
/// `Send` is a supertrait so the sharded executor can move each node's
/// discipline onto its owning shard's worker thread; disciplines hold
/// plain per-session scheduling state, never shared handles.
pub trait Discipline: Send {
    /// Human-readable name for reports and traces.
    fn name(&self) -> &'static str;

    /// Connection establishment: a session with the given spec will
    /// traverse this node, using `delay` as its per-hop delay assignment
    /// here. Called once per session before any of its packets arrive.
    fn register_session(&mut self, spec: &SessionSpec, delay: &DelayAssignment);

    /// A packet's last bit arrived at `now`. Returns eligibility and
    /// priority; may write `pkt.deadline` / `pkt.d` scratch fields.
    ///
    /// Packets of one session arrive in sequence order (links and the
    /// per-session regulator are FIFO), so per-session recursions like
    /// eq. (10)–(11) may be advanced here.
    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision;

    /// A batch of packets of **one session** all arrived at `now`, in
    /// sequence order. Pushes one decision per packet onto `out`, in
    /// order; must be observably identical to calling [`Self::on_arrival`]
    /// on each packet in turn (the default does exactly that).
    ///
    /// Struct-of-arrays disciplines override this to amortize dispatch
    /// and per-session state loads across the batch and run the eq. 8–11
    /// recursion over flat fixed-point arrays.
    fn on_arrival_batch(
        &mut self,
        pkts: &mut [Packet],
        now: Time,
        out: &mut Vec<ScheduleDecision>,
    ) {
        for pkt in pkts {
            let dec = self.on_arrival(pkt, now);
            out.push(dec);
        }
    }

    /// Connection teardown: the session's packets have all drained and its
    /// id may be reused by a future establishment (see `IdSlab`). The
    /// discipline drops per-session state so the reused slot starts fresh.
    /// Default: no-op, for stateless disciplines.
    fn unregister_session(&mut self, _id: SessionId) {}

    /// The packet began transmission at `now`. Optional hook; disciplines
    /// that define a virtual time by the packet in service (e.g. SCFQ)
    /// use it.
    fn on_service_start(&mut self, _pkt: &Packet, _now: Time) {}

    /// The packet's last bit left the node at `finish`. The discipline may
    /// stamp `pkt.hold` for the next hop.
    fn on_departure(&mut self, pkt: &mut Packet, finish: Time);
}

/// Creates one discipline instance per node.
///
/// The factory receives the node's outgoing-link parameters, which most
/// disciplines need (e.g. `L_MAX/Cₙ` in Leave-in-Time's holding times).
pub type DisciplineFactory<'a> = dyn Fn(&LinkParams) -> Box<dyn Discipline> + 'a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_key_encodes_deadline() {
        let d = ScheduleDecision::at(Time::from_ms(1), Time::from_ms(5));
        assert_eq!(d.eligible, Time::from_ms(1));
        assert_eq!(d.key, Time::from_ms(5).as_ps() as u128);
    }

    #[test]
    fn default_batch_is_scalar_loop() {
        // A discipline with per-packet state (a running counter): the
        // default batch implementation must advance it exactly like the
        // scalar calls, in order.
        struct Counting {
            seen: u64,
        }
        impl Discipline for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn register_session(&mut self, _: &SessionSpec, _: &DelayAssignment) {}
            fn on_arrival(&mut self, _pkt: &mut Packet, now: Time) -> ScheduleDecision {
                self.seen += 1;
                ScheduleDecision {
                    eligible: now,
                    key: self.seen as u128,
                }
            }
            fn on_departure(&mut self, _: &mut Packet, _: Time) {}
        }
        let mut d = Counting { seen: 0 };
        let mut pkts: Vec<Packet> = (0..4)
            .map(|i| Packet::new(SessionId(0), i, 424, Time::ZERO))
            .collect();
        let mut out = Vec::new();
        d.on_arrival_batch(&mut pkts, Time::from_ms(1), &mut out);
        let keys: Vec<u128> = out.iter().map(|d| d.key).collect();
        assert_eq!(keys, vec![1, 2, 3, 4]);
        assert!(out.iter().all(|d| d.eligible == Time::from_ms(1)));
        // unregister_session default is a no-op and must not panic.
        d.unregister_session(SessionId(0));
    }
}
