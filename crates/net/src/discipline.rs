//! The service-discipline interface every scheduler implements.
//!
//! A [`Discipline`] instance is created *per node* and sees three moments
//! in each packet's life at that node:
//!
//! 1. **arrival** of the packet's last bit — the discipline decides when
//!    the packet becomes *eligible* (it may be held in a delay regulator
//!    until then) and with what *priority key* it will compete for the
//!    link once eligible;
//! 2. **departure** (last bit transmitted) — the discipline may stamp
//!    header fields consumed by the next hop (Leave-in-Time stamps the
//!    holding time `A`, eq. 9);
//! 3. **registration** at connection-establishment time, where it learns
//!    the session's reserved rate and service parameters.
//!
//! The node machinery (in [`crate::Network`]) owns the regulator timers and
//! the eligible queue; the discipline owns only per-session scheduling
//! state. Eligible packets are served in increasing key order, ties broken
//! FIFO — the paper's "ties are ordered arbitrarily" made deterministic.

use crate::packet::{Packet, SessionId};
use crate::spec::{DelayAssignment, LinkParams, SessionSpec};
use lit_sim::Time;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};

/// How each node realizes the delay regulator that holds ahead-of-schedule
/// packets until their eligibility instant.
///
/// The paper's construction ([`RegulatorBackend::PerSession`]) gives every
/// session its own conceptual regulator: packets of different sessions are
/// released independently, each exactly at its own eligibility time `E`.
/// The TSN Asynchronous Traffic Shaping alternative
/// ([`RegulatorBackend::Interleaved`]) shares **one FIFO per node** among
/// all jitter-controlled sessions: only the head packet's eligibility gates
/// release, so a packet can additionally wait behind earlier-queued packets
/// of *other* sessions (the head-of-line coupling analyzed by Thomas & Le
/// Boudec, whose service-curve bound the oracle checks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RegulatorBackend {
    /// One regulator per session per hop (the paper's model; default).
    #[default]
    PerSession,
    /// One shared head-gated FIFO regulator per hop (TSN ATS style).
    Interleaved,
}

impl std::str::FromStr for RegulatorBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-session" => Ok(RegulatorBackend::PerSession),
            "interleaved" => Ok(RegulatorBackend::Interleaved),
            other => Err(format!(
                "unknown regulator backend '{other}' (per-session|interleaved)"
            )),
        }
    }
}

impl std::fmt::Display for RegulatorBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RegulatorBackend::PerSession => "per-session",
            RegulatorBackend::Interleaved => "interleaved",
        })
    }
}

/// Process-default regulator backend: 0 = unset, 1 = per-session,
/// 2 = interleaved. Harness-level (what `lit-repro --regulator` sets);
/// explicit builder calls always win.
static GLOBAL_REGULATOR: AtomicU8 = AtomicU8::new(0);

/// Set the process-default regulator backend.
pub fn set_global_regulator(backend: RegulatorBackend) {
    let v = match backend {
        RegulatorBackend::PerSession => 1,
        RegulatorBackend::Interleaved => 2,
    };
    GLOBAL_REGULATOR.store(v, Ordering::Relaxed);
}

/// Clear the process-default regulator backend (test isolation).
pub fn clear_global_regulator() {
    GLOBAL_REGULATOR.store(0, Ordering::Relaxed);
}

/// The process-default regulator backend, if one was set.
pub fn global_regulator() -> Option<RegulatorBackend> {
    match GLOBAL_REGULATOR.load(Ordering::Relaxed) {
        1 => Some(RegulatorBackend::PerSession),
        2 => Some(RegulatorBackend::Interleaved),
        _ => None,
    }
}

/// One queued entry of a node's shared interleaved regulator.
#[derive(Debug)]
pub(crate) struct RegEntry<P> {
    /// The held packet (a `Packet` on the scalar engine, a `PacketRef`
    /// on the sharded one).
    pub(crate) item: P,
    /// The priority key the discipline assigned on arrival, carried
    /// through the hold so release enqueues with the original key.
    pub(crate) key: u128,
    /// The packet's own eligibility instant `E` (eq. 6–7).
    pub(crate) eligible: Time,
}

/// A node's shared interleaved regulator: one FIFO for all
/// jitter-controlled arrivals, released head-first when the *head*'s
/// eligibility instant passes. Tracks the state the oracle's
/// Thomas–Le Boudec service-curve check needs: the last release instant
/// (releases must be non-decreasing and equal `max(last, head.E)`) and
/// the running maximum self-hold `E − a` over all packets that ever
/// joined (an in-model shaping-delay ceiling: FIFO + head gating cannot
/// hold a packet longer than the largest eligibility offset ahead of or
/// at it).
#[derive(Debug, Default)]
pub(crate) struct RegFifo<P> {
    /// Held packets in join order.
    pub(crate) queue: VecDeque<RegEntry<P>>,
    /// Instant of the most recent release (ZERO before any).
    pub(crate) last_release: Time,
    /// Running max of `E − a` (picoseconds) over every packet that joined.
    pub(crate) max_hold_ps: u64,
}

impl<P> RegFifo<P> {
    pub(crate) fn new() -> Self {
        RegFifo {
            queue: VecDeque::new(),
            last_release: Time::ZERO,
            max_hold_ps: 0,
        }
    }

    /// Join the FIFO at `now` with eligibility `eligible`, folding the
    /// packet's own hold `E − a` into the running shaping ceiling.
    pub(crate) fn join(&mut self, item: P, key: u128, eligible: Time, now: Time) {
        if let Some(hold) = eligible.checked_since(now) {
            self.max_hold_ps = self.max_hold_ps.max(hold.as_ps());
        }
        self.queue.push_back(RegEntry {
            item,
            key,
            eligible,
        });
    }
}

/// The discipline's verdict on an arriving packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleDecision {
    /// When the packet may join the transmission queue (`Eⁿ_{i,s}`).
    /// Must be `≥` the arrival time.
    pub eligible: Time,
    /// Priority key: eligible packets are served in increasing key order.
    /// Time-based disciplines use picoseconds; virtual-time disciplines
    /// use any monotone encoding of their virtual stamp.
    pub key: u128,
}

impl ScheduleDecision {
    /// A decision keyed directly by a deadline instant.
    pub fn at(eligible: Time, deadline: Time) -> Self {
        ScheduleDecision {
            eligible,
            key: deadline.as_ps() as u128,
        }
    }
}

/// A per-node packet scheduler.
///
/// `Send` is a supertrait so the sharded executor can move each node's
/// discipline onto its owning shard's worker thread; disciplines hold
/// plain per-session scheduling state, never shared handles.
pub trait Discipline: Send {
    /// Human-readable name for reports and traces.
    fn name(&self) -> &'static str;

    /// Connection establishment: a session with the given spec will
    /// traverse this node, using `delay` as its per-hop delay assignment
    /// here. Called once per session before any of its packets arrive.
    fn register_session(&mut self, spec: &SessionSpec, delay: &DelayAssignment);

    /// A packet's last bit arrived at `now`. Returns eligibility and
    /// priority; may write `pkt.deadline` / `pkt.d` scratch fields.
    ///
    /// Packets of one session arrive in sequence order (links and the
    /// per-session regulator are FIFO), so per-session recursions like
    /// eq. (10)–(11) may be advanced here.
    fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision;

    /// A batch of packets of **one session** all arrived at `now`, in
    /// sequence order. Pushes one decision per packet onto `out`, in
    /// order; must be observably identical to calling [`Self::on_arrival`]
    /// on each packet in turn (the default does exactly that).
    ///
    /// Struct-of-arrays disciplines override this to amortize dispatch
    /// and per-session state loads across the batch and run the eq. 8–11
    /// recursion over flat fixed-point arrays.
    fn on_arrival_batch(
        &mut self,
        pkts: &mut [Packet],
        now: Time,
        out: &mut Vec<ScheduleDecision>,
    ) {
        for pkt in pkts {
            let dec = self.on_arrival(pkt, now);
            out.push(dec);
        }
    }

    /// Connection teardown: the session's packets have all drained and its
    /// id may be reused by a future establishment (see `IdSlab`). The
    /// discipline drops per-session state so the reused slot starts fresh.
    /// Default: no-op, for stateless disciplines.
    fn unregister_session(&mut self, _id: SessionId) {}

    /// The packet began transmission at `now`. Optional hook; disciplines
    /// that define a virtual time by the packet in service (e.g. SCFQ)
    /// use it.
    fn on_service_start(&mut self, _pkt: &Packet, _now: Time) {}

    /// The packet's last bit left the node at `finish`. The discipline may
    /// stamp `pkt.hold` for the next hop.
    fn on_departure(&mut self, pkt: &mut Packet, finish: Time);
}

/// Creates one discipline instance per node.
///
/// The factory receives the node's outgoing-link parameters, which most
/// disciplines need (e.g. `L_MAX/Cₙ` in Leave-in-Time's holding times).
pub type DisciplineFactory<'a> = dyn Fn(&LinkParams) -> Box<dyn Discipline> + 'a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regulator_backend_parses_and_displays() {
        assert_eq!("per-session".parse(), Ok(RegulatorBackend::PerSession));
        assert_eq!("interleaved".parse(), Ok(RegulatorBackend::Interleaved));
        assert!("shared".parse::<RegulatorBackend>().is_err());
        assert_eq!(RegulatorBackend::PerSession.to_string(), "per-session");
        assert_eq!(RegulatorBackend::Interleaved.to_string(), "interleaved");
        assert_eq!(RegulatorBackend::default(), RegulatorBackend::PerSession);
    }

    #[test]
    fn global_regulator_roundtrip() {
        clear_global_regulator();
        assert_eq!(global_regulator(), None);
        set_global_regulator(RegulatorBackend::Interleaved);
        assert_eq!(global_regulator(), Some(RegulatorBackend::Interleaved));
        set_global_regulator(RegulatorBackend::PerSession);
        assert_eq!(global_regulator(), Some(RegulatorBackend::PerSession));
        clear_global_regulator();
        assert_eq!(global_regulator(), None);
    }

    #[test]
    fn reg_fifo_tracks_running_max_hold() {
        let mut f: RegFifo<u32> = RegFifo::new();
        assert_eq!(f.max_hold_ps, 0);
        f.join(1, 10, Time::from_ms(5), Time::from_ms(2)); // hold 3 ms
        f.join(2, 11, Time::from_ms(6), Time::from_ms(5)); // hold 1 ms
        f.join(3, 12, Time::from_ms(4), Time::from_ms(6)); // E in the past
        assert_eq!(f.max_hold_ps, lit_sim::Duration::from_ms(3).as_ps());
        assert_eq!(f.queue.len(), 3);
        assert_eq!(f.queue.front().map(|e| e.item), Some(1));
        assert_eq!(f.last_release, Time::ZERO);
    }

    #[test]
    fn decision_key_encodes_deadline() {
        let d = ScheduleDecision::at(Time::from_ms(1), Time::from_ms(5));
        assert_eq!(d.eligible, Time::from_ms(1));
        assert_eq!(d.key, Time::from_ms(5).as_ps() as u128);
    }

    #[test]
    fn default_batch_is_scalar_loop() {
        // A discipline with per-packet state (a running counter): the
        // default batch implementation must advance it exactly like the
        // scalar calls, in order.
        struct Counting {
            seen: u64,
        }
        impl Discipline for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn register_session(&mut self, _: &SessionSpec, _: &DelayAssignment) {}
            fn on_arrival(&mut self, _pkt: &mut Packet, now: Time) -> ScheduleDecision {
                self.seen += 1;
                ScheduleDecision {
                    eligible: now,
                    key: self.seen as u128,
                }
            }
            fn on_departure(&mut self, _: &mut Packet, _: Time) {}
        }
        let mut d = Counting { seen: 0 };
        let mut pkts: Vec<Packet> = (0..4)
            .map(|i| Packet::new(SessionId(0), i, 424, Time::ZERO))
            .collect();
        let mut out = Vec::new();
        d.on_arrival_batch(&mut pkts, Time::from_ms(1), &mut out);
        let keys: Vec<u128> = out.iter().map(|d| d.key).collect();
        assert_eq!(keys, vec![1, 2, 3, 4]);
        assert!(out.iter().all(|d| d.eligible == Time::from_ms(1)));
        // unregister_session default is a no-op and must not panic.
        d.unregister_session(SessionId(0));
    }
}
