//! # lit-net — packet-switching network substrate
//!
//! The simulated network the paper's evaluation runs on: server nodes with
//! one outgoing link each, fixed routes, connection-oriented sessions, and
//! a pluggable per-node [`Discipline`] (Leave-in-Time lives in `lit-core`;
//! FCFS, VirtualClock, WFQ, SCFQ and Stop-and-Go in `lit-baselines`).
//!
//! ```
//! use lit_net::{LinkParams, NetworkBuilder, SessionSpec, SessionId};
//! # use lit_net::{Discipline, DelayAssignment, Packet, ScheduleDecision};
//! # use lit_sim::Time;
//! # struct Fifo;
//! # impl Discipline for Fifo {
//! #     fn name(&self) -> &'static str { "fifo" }
//! #     fn register_session(&mut self, _: &SessionSpec, _: &DelayAssignment) {}
//! #     fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
//! #         pkt.deadline = now;
//! #         ScheduleDecision::at(now, now)
//! #     }
//! #     fn on_departure(&mut self, _: &mut Packet, _: Time) {}
//! # }
//! use lit_traffic::DeterministicSource;
//!
//! let mut b = NetworkBuilder::new().seed(1);
//! let nodes = b.tandem(5, LinkParams::paper_t1());
//! let sid = b.add_session(
//!     SessionSpec::atm(SessionId(0), 32_000),
//!     &nodes,
//!     Box::new(DeterministicSource::paper_cbr()),
//! );
//! let mut net = b.build(&|_link| Box::new(Fifo));
//! net.run_until(Time::from_secs(10));
//! assert!(net.session_stats(sid).delivered > 700);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arena;
mod discipline;
mod equeue;
mod network;
pub mod oracle;
mod packet;
pub mod shard;
mod spec;
mod stats;
mod table;

pub use arena::{PacketArena, PacketRef};
pub use discipline::{
    clear_global_regulator, global_regulator, set_global_regulator, Discipline, DisciplineFactory,
    RegulatorBackend, ScheduleDecision,
};
pub use equeue::QueueKind;
pub use lit_obs::{NoopProbe, ObsProbe, PacketView, Probe};
pub use lit_sim::EventBackend;
pub use network::{Network, NetworkBuilder};
pub use oracle::{OracleConfig, OracleMode, OracleTotals, SessionBounds, ViolationKind};
pub use packet::{NodeId, Packet, SessionId};
pub use spec::{DelayAssignment, DelayCoeffs, LinkParams, SessionSpec};
pub use stats::{DeliveryRecord, NodeStats, OccupancyHistogram, SessionStats, StatsConfig};
pub use table::{IdSlab, SessionTable};

#[cfg(test)]
mod tests {
    use super::*;
    use lit_sim::{Duration, Time};
    use lit_traffic::{BurstSource, DeterministicSource, PoissonSource, TraceSource};

    /// Plain FCFS used to exercise the executor machinery.
    struct Fifo {
        /// Optional fixed regulator hold, to exercise the eligibility path.
        hold: Duration,
        /// Deadline slack past eligibility. `fifo_factory` uses zero, which
        /// leaves every finish exactly at the lateness allowance; oracle
        /// tests pick nonzero slack to place packets on either side of it.
        slack: Duration,
    }

    impl Discipline for Fifo {
        fn name(&self) -> &'static str {
            "test-fifo"
        }
        fn register_session(&mut self, _: &SessionSpec, _: &DelayAssignment) {}
        fn on_arrival(&mut self, pkt: &mut Packet, now: Time) -> ScheduleDecision {
            let eligible = now + self.hold;
            pkt.deadline = eligible + self.slack;
            ScheduleDecision::at(eligible, eligible)
        }
        fn on_departure(&mut self, _: &mut Packet, _: Time) {}
    }

    fn fifo_factory(hold: Duration) -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        slack_fifo_factory(hold, Duration::ZERO)
    }

    fn slack_fifo_factory(
        hold: Duration,
        slack: Duration,
    ) -> impl Fn(&LinkParams) -> Box<dyn Discipline> {
        move |_: &LinkParams| Box::new(Fifo { hold, slack }) as Box<dyn Discipline>
    }

    #[test]
    fn lone_cbr_session_sees_pure_service_delay() {
        // One 32 kbit/s CBR session alone on 5 T1 hops: every packet finds
        // idle links, so its delay is exactly 5·(L/C + Γ).
        let mut b = NetworkBuilder::new();
        let nodes = b.tandem(5, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(DeterministicSource::paper_cbr()),
        );
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        net.run_until(Time::from_secs(30));

        let st = net.session_stats(sid);
        assert!(st.delivered > 2000, "delivered={}", st.delivered);
        let per_hop = LinkParams::paper_t1().lmax_time() + Duration::from_ms(1);
        let want = per_hop * 5;
        assert_eq!(st.max_delay(), Some(want));
        assert_eq!(st.e2e.min(), Some(want));
        assert_eq!(st.jitter(), Some(Duration::ZERO));
    }

    #[test]
    fn conservation_no_packet_lost_or_duplicated() {
        let mut b = NetworkBuilder::new().seed(7);
        let nodes = b.tandem(3, LinkParams::paper_t1());
        let mut sids = Vec::new();
        for _ in 0..10 {
            sids.push(b.add_session(
                SessionSpec::atm(SessionId(0), 100_000),
                &nodes,
                Box::new(PoissonSource::new(Duration::from_ms(8), 424)),
            ));
        }
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        net.run_until(Time::from_secs(20));
        for &sid in &sids {
            let st = net.session_stats(sid);
            assert!(st.injected > 0);
            assert!(st.delivered <= st.injected);
            // Light load: nearly everything injected should have drained.
            assert!(st.injected - st.delivered < 5);
        }
    }

    #[test]
    fn regulator_hold_shifts_delay() {
        let mk = |hold_ms: u64| {
            let mut b = NetworkBuilder::new();
            let nodes = b.tandem(1, LinkParams::paper_t1());
            let sid = b.add_session(
                SessionSpec::atm(SessionId(0), 32_000),
                &nodes,
                Box::new(DeterministicSource::paper_cbr()),
            );
            let mut net = b.build(&fifo_factory(Duration::from_ms(hold_ms)));
            net.run_until(Time::from_secs(5));
            net.session_stats(sid).max_delay().unwrap()
        };
        assert_eq!(mk(3) - mk(0), Duration::from_ms(3));
    }

    #[test]
    fn fifo_order_among_equal_keys() {
        // Two packets arriving at the same instant must depart in arrival
        // (push) order.
        let mut b = NetworkBuilder::new();
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let a = b.add_session(
            SessionSpec::atm(SessionId(0), 100_000),
            &nodes,
            Box::new(TraceSource::from_pairs([(Time::from_ms(1), 424)])),
        );
        let bsid = b.add_session(
            SessionSpec::atm(SessionId(0), 100_000),
            &nodes,
            Box::new(TraceSource::from_pairs([(Time::from_ms(1), 424)])),
        );
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        net.run_until(Time::from_secs(1));
        let tx = LinkParams::paper_t1().lmax_time();
        let prop = Duration::from_ms(1);
        // Session a (injected first at the same instant) transmits first.
        assert_eq!(net.session_stats(a).max_delay(), Some(tx + prop));
        assert_eq!(net.session_stats(bsid).max_delay(), Some(tx + tx + prop));
    }

    #[test]
    fn buffer_occupancy_counts_packet_in_transmission() {
        // Two same-instant packets of one session: the second sample sees
        // both packets (848 bits) queued, per the paper's counting rule.
        let mut b = NetworkBuilder::new();
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 100_000),
            &nodes,
            Box::new(TraceSource::from_pairs([
                (Time::from_ms(1), 424),
                (Time::from_ms(1), 424),
            ])),
        );
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        net.run_until(Time::from_secs(1));
        let st = net.session_stats(sid);
        assert_eq!(st.buffer[0].max_bits(), 848);
        assert_eq!(st.buffer[0].count(), 2);
    }

    #[test]
    fn reference_server_cosim_matches_eq1_by_hand() {
        // Arrivals at 0 ms and 1 ms, L = 424, r = 424 kbit/s ⇒ service
        // exactly 1 ms. W1 = 0+1 = 1 ms (delay 1 ms); W2 = max(1,1)+1 =
        // 2 ms (delay 1 ms).
        let mut b = NetworkBuilder::new();
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 424_000),
            &nodes,
            Box::new(TraceSource::from_pairs([
                (Time::ZERO, 424),
                (Time::from_ms(1), 424),
            ])),
        );
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        net.run_until(Time::from_secs(1));
        let st = net.session_stats(sid);
        assert_eq!(st.reference.max(), Some(Duration::from_ms(1)));
        assert_eq!(st.reference.min(), Some(Duration::from_ms(1)));
        assert_eq!(st.reference.count(), 2);
    }

    #[test]
    fn utilization_reflects_offered_load() {
        let mut b = NetworkBuilder::new().seed(3);
        let nodes = b.tandem(1, LinkParams::paper_t1());
        // 24 CBR sessions at 32 kbit/s = half a T1.
        for i in 0..24u64 {
            b.add_session(
                SessionSpec::atm(SessionId(0), 32_000),
                &nodes,
                Box::new(DeterministicSource::paper_cbr().with_offset(Duration::from_us(i * 137))),
            );
        }
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        let horizon = Time::from_secs(60);
        net.run_until(horizon);
        let u = net.node_stats(nodes[0]).utilization_at(horizon);
        assert!((u - 0.5).abs() < 0.01, "utilization={u}");
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed: u64| {
            let mut b = NetworkBuilder::new().seed(seed);
            let nodes = b.tandem(3, LinkParams::paper_t1());
            let mut sids = Vec::new();
            for _ in 0..8 {
                sids.push(b.add_session(
                    SessionSpec::atm(SessionId(0), 150_000),
                    &nodes,
                    Box::new(PoissonSource::new(Duration::from_ms(4), 424)),
                ));
            }
            let mut net = b.build(&fifo_factory(Duration::ZERO));
            net.run_until(Time::from_secs(10));
            sids.iter()
                .map(|&s| {
                    let st = net.session_stats(s);
                    (st.delivered, st.max_delay(), st.jitter())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn delivery_log_keeps_the_last_n_records() {
        let cfg = StatsConfig {
            delivery_log_cap: 3,
            ..Default::default()
        };
        let mut b = NetworkBuilder::new().stats(cfg);
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(DeterministicSource::paper_cbr()),
        );
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        net.run_until(Time::from_secs(1));
        let st = net.session_stats(sid);
        assert!(st.delivered > 60);
        assert_eq!(st.deliveries.len(), 3, "ring capped");
        // The records are the *last* three deliveries, in order.
        let seqs: Vec<u64> = st.deliveries.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![st.delivered - 2, st.delivered - 1, st.delivered]);
        for r in &st.deliveries {
            assert_eq!(r.delay(), st.max_delay().unwrap()); // lone CBR: constant delay
            assert!(r.excess_ps() < 0); // delay < ref delay here (fast link)
        }
        // Off by default: no records without opting in.
        let mut b = NetworkBuilder::new();
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(DeterministicSource::paper_cbr()),
        );
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        net.run_until(Time::from_secs(1));
        assert!(net.session_stats(sid).deliveries.is_empty());
    }

    #[test]
    fn incremental_horizons_equal_one_shot() {
        // run_until(10) then run_until(20) must equal run_until(20): the
        // executor's state carries over exactly.
        let build = || {
            let mut b = NetworkBuilder::new().seed(8);
            let nodes = b.tandem(3, LinkParams::paper_t1());
            let mut sids = Vec::new();
            for _ in 0..6 {
                sids.push(b.add_session(
                    SessionSpec::atm(SessionId(0), 200_000),
                    &nodes,
                    Box::new(PoissonSource::new(Duration::from_ms(3), 424)),
                ));
            }
            (b.build(&fifo_factory(Duration::ZERO)), sids)
        };
        let (mut a, sids) = build();
        a.run_until(Time::from_secs(10));
        a.run_until(Time::from_secs(20));
        let (mut b, _) = build();
        b.run_until(Time::from_secs(20));
        for &sid in &sids {
            let (x, y) = (a.session_stats(sid), b.session_stats(sid));
            assert_eq!(x.delivered, y.delivered);
            assert_eq!(x.max_delay(), y.max_delay());
            assert_eq!(x.jitter(), y.jitter());
        }
    }

    #[test]
    fn calendar_event_backend_matches_heap() {
        // The event-set engine is a pure performance knob: both backends
        // must pop the identical (time, seq) sequence, so a whole run —
        // regulator holds, contention, RNG draws and all — is bit-equal.
        let run = |backend: EventBackend| {
            let mut b = NetworkBuilder::new().seed(21).event_backend(backend);
            let nodes = b.tandem(3, LinkParams::paper_t1());
            let mut sids = Vec::new();
            for _ in 0..8 {
                sids.push(b.add_session(
                    SessionSpec::atm(SessionId(0), 150_000),
                    &nodes,
                    Box::new(PoissonSource::new(Duration::from_ms(4), 424)),
                ));
            }
            let mut net = b.build(&fifo_factory(Duration::from_us(30)));
            net.run_until(Time::from_secs(10));
            sids.iter()
                .map(|&s| {
                    let st = net.session_stats(s);
                    (st.delivered, st.max_delay(), st.jitter())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(EventBackend::Heap), run(EventBackend::Calendar));
    }

    #[test]
    fn wheel_event_backend_matches_heap() {
        // Same contract as the calendar test: the hierarchical timer wheel
        // must pop the identical (time, seq) sequence as the binary heap,
        // so whole runs are bit-equal.
        let run = |backend: EventBackend| {
            let mut b = NetworkBuilder::new().seed(34).event_backend(backend);
            let nodes = b.tandem(3, LinkParams::paper_t1());
            let mut sids = Vec::new();
            for _ in 0..8 {
                sids.push(b.add_session(
                    SessionSpec::atm(SessionId(0), 150_000),
                    &nodes,
                    Box::new(PoissonSource::new(Duration::from_ms(4), 424)),
                ));
            }
            let mut net = b.build(&fifo_factory(Duration::from_us(30)));
            net.run_until(Time::from_secs(10));
            sids.iter()
                .map(|&s| {
                    let st = net.session_stats(s);
                    (st.delivered, st.max_delay(), st.jitter())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(EventBackend::Heap), run(EventBackend::Wheel));
    }

    #[test]
    fn batched_arrivals_match_scalar() {
        // The batched-arrival executor drains same-instant same-(session,
        // hop) arrivals in one discipline call. Since the drained pops mint
        // no sequence numbers and pushes keep their order, a batched run
        // must be bit-identical to the scalar one — including the total
        // event-push count. Zero-length bursts make the check non-vacuous:
        // tx_time(0) = 0, so a whole burst lands at the next hop at one
        // instant and real multi-packet batches form (with nonzero lengths
        // the upstream link serializes arrivals and every batch has size 1).
        let run = |batch: bool| {
            let mut b = NetworkBuilder::new().seed(35).batch_arrivals(batch);
            let nodes = b.tandem(3, LinkParams::paper_t1());
            let mut sids = Vec::new();
            // Distinct prime periods: sessions bursting at the same instant
            // would interleave their arrivals (round-robin over same-time
            // Inject events) and break the same-(session, hop) runs that
            // pop_if drains.
            for period_ms in [5u64, 7, 11, 13] {
                sids.push(b.add_session(
                    SessionSpec::atm(SessionId(0), 150_000),
                    &nodes,
                    Box::new(BurstSource::new(Duration::from_ms(period_ms), 6, 0)),
                ));
            }
            for _ in 0..4 {
                sids.push(b.add_session(
                    SessionSpec::atm(SessionId(0), 150_000),
                    &nodes,
                    Box::new(PoissonSource::new(Duration::from_ms(4), 424)),
                ));
            }
            let mut net = b.build(&fifo_factory(Duration::from_us(30)));
            net.run_until(Time::from_secs(10));
            let stats = sids
                .iter()
                .map(|&s| {
                    let st = net.session_stats(s);
                    (st.delivered, st.max_delay(), st.jitter())
                })
                .collect::<Vec<_>>();
            (net.event_count(), stats)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn tiny_bucket_queue_equals_exact() {
        // A 1-ps bucket quantizes nothing: the bucketed queue must behave
        // identically to the exact heap (both are FIFO among equal keys).
        let run = |kind: QueueKind| {
            let mut b = NetworkBuilder::new().seed(13).queue_kind(kind);
            let nodes = b.tandem(2, LinkParams::paper_t1());
            let mut sids = Vec::new();
            for _ in 0..5 {
                sids.push(b.add_session(
                    SessionSpec::atm(SessionId(0), 280_000),
                    &nodes,
                    Box::new(PoissonSource::new(Duration::from_us(1_800), 424)),
                ));
            }
            let mut net = b.build(&fifo_factory(Duration::ZERO));
            net.run_until(Time::from_secs(20));
            sids.iter()
                .map(|&s| {
                    let st = net.session_stats(s);
                    (st.delivered, st.max_delay(), st.jitter())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(QueueKind::Exact),
            run(QueueKind::Bucketed {
                bucket: Duration::from_ps(1)
            })
        );
    }

    #[test]
    fn oracle_clean_on_lone_regulated_session() {
        // A lone CBR session with a fixed hold exercises the Eligible
        // path: release-time and eligibility-order checks must all pass.
        let mut b = NetworkBuilder::new().oracle(OracleConfig::new(OracleMode::Count));
        let nodes = b.tandem(2, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(DeterministicSource::paper_cbr()),
        );
        let mut net = b.build(&slack_fifo_factory(
            Duration::from_ms(2),
            Duration::from_ms(10),
        ));
        net.run_until(Time::from_secs(10));
        assert!(net.session_stats(sid).delivered > 500);
        assert_eq!(net.oracle_drain_check(), 0);
        assert_eq!(net.oracle_violations(), 0);
    }

    #[test]
    fn oracle_counts_lateness_under_fifo_contention() {
        // Three same-instant packets with 500 µs of deadline slack on a T1
        // (tx = 276 µs): packet k finishes (k+1)·tx after eligibility, so
        // only seq 2 exceeds slack + allowance. One violation, exactly.
        let mut b = NetworkBuilder::new().oracle(OracleConfig::new(OracleMode::Count));
        let nodes = b.tandem(1, LinkParams::paper_t1());
        for _ in 0..3 {
            b.add_session(
                SessionSpec::atm(SessionId(0), 100_000),
                &nodes,
                Box::new(TraceSource::from_pairs([(Time::from_ms(1), 424)])),
            );
        }
        let mut net = b.build(&slack_fifo_factory(Duration::ZERO, Duration::from_us(500)));
        net.run_until(Time::from_secs(1));
        assert_eq!(net.oracle_totals().lateness, 1);
        assert_eq!(net.node_stats(nodes[0]).oracle_violations, 1);
    }

    #[test]
    fn oracle_flags_installed_bounds_and_drain_check() {
        // An impossible bound (negative shift) must trip the pathwise
        // delay check on every delivery and the drain-time CCDF check.
        let mut b = NetworkBuilder::new().oracle(OracleConfig::new(OracleMode::Count));
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(DeterministicSource::paper_cbr()),
        );
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        net.set_session_bounds(
            sid,
            SessionBounds {
                shift_ps: -1_000_000_000_000,
                jitter_spread_ps: i128::MAX / 2, // jitter check stays quiet
            },
        );
        net.run_until(Time::from_secs(1));
        let delivered = net.session_stats(sid).delivered;
        assert!(delivered > 60);
        assert_eq!(net.oracle_totals().delay_bound, delivered);
        assert_eq!(net.oracle_drain_check(), 1);
        assert_eq!(net.oracle_totals().ccdf_bound, 1);
        assert_eq!(net.session_stats(sid).oracle_violations, delivered + 1);
    }

    #[test]
    #[should_panic(expected = "conformance oracle: delay-bound")]
    fn oracle_panic_mode_panics_with_kind() {
        let mut b = NetworkBuilder::new().oracle(OracleConfig::new(OracleMode::Panic));
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(DeterministicSource::paper_cbr()),
        );
        let mut net = b.build(&slack_fifo_factory(Duration::ZERO, Duration::from_ms(10)));
        net.set_session_bounds(
            sid,
            SessionBounds {
                shift_ps: i128::MIN / 2,
                jitter_spread_ps: i128::MAX / 2,
            },
        );
        net.run_until(Time::from_secs(1));
    }

    #[test]
    fn oracle_off_has_no_state_and_no_counts() {
        let mut b = NetworkBuilder::new();
        let nodes = b.tandem(1, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(DeterministicSource::paper_cbr()),
        );
        let mut net = b.build(&fifo_factory(Duration::ZERO));
        // Installing bounds with the oracle off is a documented no-op.
        net.set_session_bounds(sid, SessionBounds::default());
        net.run_until(Time::from_secs(1));
        assert_eq!(net.oracle_violations(), 0);
        assert_eq!(net.oracle_drain_check(), 0);
    }

    #[test]
    fn probe_observes_full_lifecycle_and_violations() {
        // A 2-hop regulated CBR session with an impossible delay bound:
        // the probe must see every arrival/dispatch/departure, one
        // holding sample per held packet, and the same violation count
        // the oracle records.
        let mut b = NetworkBuilder::new()
            .oracle(OracleConfig::new(OracleMode::Count))
            .probe(Box::new(ObsProbe::new(256)));
        let nodes = b.tandem(2, LinkParams::paper_t1());
        let sid = b.add_session(
            SessionSpec::atm(SessionId(0), 32_000),
            &nodes,
            Box::new(DeterministicSource::paper_cbr()),
        );
        let mut net = b.build(&slack_fifo_factory(
            Duration::from_ms(2),
            Duration::from_ms(10),
        ));
        net.set_session_bounds(sid, lit_net_bounds(-1_000_000_000_000, i128::MAX / 2));
        net.run_until(Time::from_secs(2));
        net.oracle_drain_check();
        let oracle_total = net.oracle_violations();
        let delivered = net.session_stats(sid).delivered;
        let transmitted: u64 = (0..2).map(|n| net.node_stats(NodeId(n)).transmitted).sum();

        let probe = net.take_probe().expect("probe installed");
        let obs = probe
            .as_any()
            .and_then(|a| a.downcast_ref::<ObsProbe>())
            .expect("ObsProbe downcasts");
        let s = &obs.shard;
        assert!(delivered > 100);
        assert_eq!(s.sessions[0].delivered, delivered);
        let node_departs: u64 = s.nodes.iter().map(|n| n.departures).sum();
        assert_eq!(node_departs, transmitted);
        let hop_dispatches: u64 = s.sessions[0].hops.iter().map(|h| h.dispatches).sum();
        assert_eq!(hop_dispatches, transmitted);
        // Every packet was held 2 ms at every hop it reached (a packet
        // still sitting in a regulator at the horizon has arrived but
        // not yet released, so held sits between dispatches and arrivals).
        let arrivals: u64 = s.nodes.iter().map(|n| n.arrivals).sum();
        let held: u64 = s.sessions[0].hops.iter().map(|h| h.held).sum();
        assert!(hop_dispatches <= held && held <= arrivals);
        assert_eq!(
            s.sessions[0].hops[0].holding_ps.max(),
            Duration::from_ms(2).as_ps()
        );
        assert_eq!(s.violation_total(), oracle_total);
        assert_eq!(
            s.violations.get(ViolationKind::DelayBound.label()).copied(),
            Some(delivered)
        );
        assert_eq!(
            s.violations.get(ViolationKind::CcdfBound.label()).copied(),
            Some(1)
        );
        // The trace saw exactly one event per recorded lifecycle stage.
        assert_eq!(
            obs.trace.total(),
            arrivals + held + hop_dispatches + node_departs + oracle_total
        );
    }

    fn lit_net_bounds(shift_ps: i128, jitter_spread_ps: i128) -> SessionBounds {
        SessionBounds {
            shift_ps,
            jitter_spread_ps,
        }
    }

    #[test]
    #[should_panic(expected = "route is empty")]
    fn empty_route_rejected() {
        let mut b = NetworkBuilder::new();
        b.add_session_with_hops(
            SessionSpec::atm(SessionId(0), 1000),
            vec![],
            Box::new(DeterministicSource::paper_cbr()),
        );
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_rejected() {
        let mut b = NetworkBuilder::new();
        b.add_session(
            SessionSpec::atm(SessionId(0), 1000),
            &[NodeId(5)],
            Box::new(DeterministicSource::paper_cbr()),
        );
    }
}
