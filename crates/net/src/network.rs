//! The network: nodes in a topology, sessions on routes, and the
//! discrete-event executor that moves packets through them.
//!
//! Model (paper §2–3): each server node owns one outgoing link of capacity
//! `Cₙ` and propagation delay `Γₙ`; a session follows a fixed route of
//! nodes established at connection time; a packet "arrives" at a node when
//! its **last bit** arrives; the node may hold it in a delay regulator
//! until its eligibility time, then serves eligible packets in increasing
//! priority-key order (non-preemptively, one at a time); the last bit
//! leaves at the finish time and reaches the next node one propagation
//! delay later. Delivery past the final node includes that link's
//! propagation delay, matching the `Σ (L_MAX/Cₙ + Γₙ)` structure of the
//! paper's β constant.

use crate::discipline::{
    Discipline, DisciplineFactory, RegFifo, RegulatorBackend, ScheduleDecision,
};
use crate::equeue::{EligibleQueue, QueueKind};
use crate::oracle::{
    ccdf_shift_violation, OracleConfig, OracleMode, OracleRt, OracleTotals, SessionBounds,
    ViolationKind,
};
use crate::packet::{NodeId, Packet, SessionId};
use crate::spec::{DelayAssignment, LinkParams, SessionSpec};
use crate::stats::{DeliveryRecord, NodeStats, SessionStats, StatsConfig};
use lit_obs::{PacketView, Probe};
use lit_sim::{Duration, EventBackend, EventQueue, SeedSeq, SimRng, Time};
use lit_traffic::{Emission, Source};

/// The probe's view of a packet (identity + timing, no scheduler state).
fn pview(pkt: &Packet) -> PacketView {
    PacketView {
        session: pkt.session.0,
        seq: pkt.seq,
        hop: pkt.hop,
        len_bits: pkt.len_bits,
        created: pkt.created,
        arrived: pkt.arrived,
    }
}

/// Runtime state of one server node.
struct NodeRt {
    link: LinkParams,
    discipline: Box<dyn Discipline>,
    queue: EligibleQueue<Packet>,
    /// The packet currently being transmitted, if any.
    current: Option<Packet>,
    /// The shared head-gated regulator FIFO of this node. Only populated
    /// under [`RegulatorBackend::Interleaved`]; stays empty (and costs
    /// nothing) under the per-session backend.
    fifo: RegFifo<Packet>,
}

/// Runtime state of one session.
struct SessionRt {
    spec: SessionSpec,
    /// `(node index, delay assignment at that node)` along the route.
    hops: Vec<(u32, DelayAssignment)>,
    source: Box<dyn Source>,
    rng: SimRng,
    next_seq: u64,
    /// Next emission already pulled from the source, awaiting injection.
    pending: Option<Emission>,
    /// Reference-server clock `W_{i-1,s}` (eq. 1); `None` before packet 1.
    ref_w: Option<Time>,
}

/// Events of the executor.
enum Event {
    /// Inject the pending emission of session `sid` (arrival at hop 0).
    Inject { sid: u32 },
    /// A packet's last bit arrives at its current hop's node.
    Arrive { pkt: Packet },
    /// A regulated packet becomes eligible at its node. `at` is the
    /// eligibility instant the regulator computed; the oracle verifies
    /// the executor releases the packet exactly then.
    Eligible { pkt: Packet, key: u128, at: Time },
    /// The head of `node`'s shared interleaved-regulator FIFO reaches its
    /// eligibility instant `at`: release every leading entry whose own
    /// eligibility has passed, then re-arm at the new head's instant.
    RegFire { node: u32, at: Time },
    /// The node finished transmitting its current packet.
    TxDone { node: u32 },
}

/// A session definition awaiting `build`.
pub(crate) struct SessionDef {
    pub(crate) spec: SessionSpec,
    pub(crate) hops: Vec<(u32, DelayAssignment)>,
    pub(crate) source: Box<dyn Source>,
}

/// Builds a [`Network`]: add nodes, add sessions on routes, then `build`
/// with a discipline factory.
pub struct NetworkBuilder {
    pub(crate) links: Vec<LinkParams>,
    pub(crate) sessions: Vec<SessionDef>,
    pub(crate) stats_cfg: StatsConfig,
    pub(crate) master_seed: u64,
    pub(crate) queue_kind: QueueKind,
    pub(crate) event_backend: EventBackend,
    pub(crate) oracle: OracleConfig,
    pub(crate) probe: Option<Box<dyn Probe>>,
    pub(crate) batch_arrivals: bool,
    pub(crate) shards: usize,
    pub(crate) regulator: RegulatorBackend,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkBuilder {
    /// An empty network with seed 0 and default statistics sizing.
    pub fn new() -> Self {
        NetworkBuilder {
            links: Vec::new(),
            sessions: Vec::new(),
            stats_cfg: StatsConfig::default(),
            master_seed: 0,
            queue_kind: QueueKind::Exact,
            event_backend: EventBackend::default(),
            oracle: OracleConfig::off(),
            probe: None,
            batch_arrivals: false,
            shards: 1,
            regulator: RegulatorBackend::PerSession,
        }
    }

    /// Select how each node realizes its delay regulator (default: the
    /// paper's per-session regulators). Under
    /// [`RegulatorBackend::Interleaved`] every node holds its
    /// ahead-of-schedule packets in **one shared FIFO** gated by the head's
    /// eligibility instant (TSN ATS style): a packet may additionally wait
    /// behind earlier-queued packets of other sessions, so the paper's
    /// per-session lateness allowance no longer applies and the oracle
    /// swaps that check for the interleaved-regulator release-order and
    /// shaping-delay invariants. Batched arrival dispatch is ignored under
    /// the interleaved backend (holds couple sessions, so arrivals cannot
    /// be drained per session).
    pub fn regulator(mut self, backend: RegulatorBackend) -> Self {
        self.regulator = backend;
        self
    }

    /// Partition the nodes across `n` shard workers, each running its own
    /// event loop inside conservative lookahead windows (default: 1, the
    /// scalar executor). Results are byte-identical across every sharded
    /// count (`n ≥ 2`); they also match the scalar engine whenever no
    /// two network events share an instant (staggered sources). With
    /// same-instant ties the engines may order concurrent packets of
    /// *different* sessions at one node differently — scalar breaks ties
    /// in queue-push order, sharded in canonical content order — and the
    /// sharded jitter oracle checks against the delivered-side reference
    /// maximum where scalar reads it injection-side (never looser, and
    /// itself shard-count-invariant); see [`crate::shard`] for both
    /// deviations. Falls back to the scalar executor when a probe is
    /// installed, the oracle is in panic mode, or a cross-shard link has
    /// zero propagation delay (no lookahead); the degrade bumps
    /// [`crate::shard::shard_fallbacks`] and shows in
    /// [`Network::shard_count`].
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Drain same-instant arrivals of one session at one node as a batch
    /// through [`Discipline::on_arrival_batch`] (default: off). Observably
    /// identical to scalar dispatch — the batch is exactly the run of
    /// consecutive `Arrive` events the scalar loop would pop anyway, and
    /// every push happens in the same order with the same sequence
    /// numbers. Ignored (scalar dispatch) while a probe or the oracle is
    /// installed, so per-packet hook and check ordering stays untouched.
    pub fn batch_arrivals(mut self, on: bool) -> Self {
        self.batch_arrivals = on;
        self
    }

    /// Install an observability probe (default: none). With no probe the
    /// executor pays one always-false branch per hook site and never
    /// materializes a [`PacketView`] — the zero-cost-when-off contract.
    pub fn probe(mut self, probe: Box<dyn Probe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Enable the online conformance oracle (default: off). See
    /// [`crate::oracle`] for what is checked; per-session bound constants
    /// are installed after `build` via `lit_core::install_oracle_bounds`.
    pub fn oracle(mut self, cfg: OracleConfig) -> Self {
        self.oracle = cfg;
        self
    }

    /// Select the eligible-queue implementation used by every node
    /// (default: exact deadline order). See [`QueueKind`].
    pub fn queue_kind(mut self, kind: QueueKind) -> Self {
        self.queue_kind = kind;
        self
    }

    /// Select the engine of the future-event set (default:
    /// [`EventBackend::Heap`]). Both backends pop the identical event
    /// sequence, so this is purely a performance knob; the calendar pays
    /// off on large event populations.
    pub fn event_backend(mut self, backend: EventBackend) -> Self {
        self.event_backend = backend;
        self
    }

    /// Set the master seed from which every session's RNG stream derives.
    pub fn seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Override statistics sizing.
    pub fn stats(mut self, cfg: StatsConfig) -> Self {
        self.stats_cfg = cfg;
        self
    }

    /// Add a server node with the given outgoing link; returns its id.
    pub fn add_node(&mut self, link: LinkParams) -> NodeId {
        let id = NodeId(self.links.len() as u32);
        self.links.push(link);
        id
    }

    /// Add `n` nodes in tandem with identical links (the paper's Figure 6
    /// topology is `tandem(5, LinkParams::paper_t1())`).
    pub fn tandem(&mut self, n: usize, link: LinkParams) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node(link)).collect()
    }

    /// Add a session traversing `route`, fed by `source`, using the
    /// spec's default delay assignment at every hop. Returns the assigned
    /// session id (the spec's `id` field is overwritten).
    pub fn add_session(
        &mut self,
        spec: SessionSpec,
        route: &[NodeId],
        source: Box<dyn Source>,
    ) -> SessionId {
        let hops = route.iter().map(|n| (n.0, spec.delay)).collect();
        self.add_session_with_hops(spec, hops, source)
    }

    /// Add a session with an explicit per-hop delay assignment (delay
    /// shifting can differ node by node).
    ///
    /// # Panics
    /// Panics on an empty route or an unknown node id.
    pub fn add_session_with_hops(
        &mut self,
        mut spec: SessionSpec,
        hops: Vec<(u32, DelayAssignment)>,
        source: Box<dyn Source>,
    ) -> SessionId {
        assert!(!hops.is_empty(), "session route is empty");
        for &(n, _) in &hops {
            assert!(
                (n as usize) < self.links.len(),
                "route references unknown node {n}"
            );
        }
        let id = SessionId(self.sessions.len() as u32);
        spec.id = id;
        self.sessions.push(SessionDef { spec, hops, source });
        id
    }

    /// Instantiate the network, creating one discipline per node and
    /// registering every session at every node it traverses. The engine
    /// is scalar unless [`NetworkBuilder::shards`] asked for more than
    /// one shard *and* sharding is admissible (see [`Self::shards`]).
    pub fn build(self, factory: &DisciplineFactory<'_>) -> Network {
        let shards = self.effective_shards();
        if shards <= 1 && self.shards > 1 {
            crate::shard::record_fallback();
        }
        if shards > 1 {
            Network {
                inner: Engine::Sharded(Box::new(crate::shard::ShardedNet::build(
                    self, factory, shards,
                ))),
            }
        } else {
            Network {
                inner: Engine::Scalar(Box::new(self.build_scalar(factory))),
            }
        }
    }

    /// The shard count `build` will actually use: the requested count,
    /// clamped to the node count, degraded to 1 (scalar) whenever the
    /// sharded engine cannot reproduce scalar observability — a probe
    /// hooks every dispatch in global order, panic-mode oracling must
    /// stop at the *first* violation globally — or whenever a
    /// cross-shard hop has zero propagation delay, which would make the
    /// conservative lookahead window empty.
    pub(crate) fn effective_shards(&self) -> usize {
        let s = self.shards.min(self.links.len()).max(1);
        if s <= 1 || self.probe.is_some() || self.oracle.mode == OracleMode::Panic {
            return 1;
        }
        let owner = |node: usize| crate::shard::owner_of(node, self.links.len(), s);
        for def in &self.sessions {
            for w in def.hops.windows(2) {
                // lit-lint: allow(no-panic-hot-path, "windows(2) yields exactly two elements")
                let (a, b) = (w[0].0 as usize, w[1].0 as usize);
                // lit-lint: allow(no-panic-hot-path, "route nodes index the builder's link table by construction")
                if owner(a) != owner(b) && self.links[a].propagation == lit_sim::Duration::ZERO {
                    return 1;
                }
            }
        }
        s
    }

    /// Instantiate the scalar (single-threaded) engine.
    pub(crate) fn build_scalar(self, factory: &DisciplineFactory<'_>) -> ScalarNet {
        let mut nodes: Vec<NodeRt> = self
            .links
            .iter()
            .map(|link| NodeRt {
                link: *link,
                discipline: factory(link),
                queue: EligibleQueue::new(self.queue_kind),
                current: None,
                fifo: RegFifo::new(),
            })
            .collect();

        let mut seeds = SeedSeq::new(self.master_seed);
        let mut events = EventQueue::with_backend(self.event_backend);
        let mut session_stats = Vec::with_capacity(self.sessions.len());
        let mut sessions: Vec<SessionRt> = Vec::with_capacity(self.sessions.len());
        let session_hops: Vec<usize> = self.sessions.iter().map(|d| d.hops.len()).collect();

        for (i, def) in self.sessions.into_iter().enumerate() {
            for (n, delay) in &def.hops {
                // lit-lint: allow(no-panic-hot-path, "build-time loop; every route id was range-checked by add_session_with_hops")
                nodes[*n as usize]
                    .discipline
                    .register_session(&def.spec, delay);
            }
            session_stats.push(SessionStats::new(&self.stats_cfg, def.hops.len()));
            let mut rt = SessionRt {
                spec: def.spec,
                hops: def.hops,
                source: def.source,
                rng: seeds.next_rng(),
                next_seq: 1, // the paper numbers packets from 1
                pending: None,
                ref_w: None,
            };
            rt.pending = rt.source.next_emission(&mut rt.rng);
            if let Some(e) = rt.pending {
                events.push(e.at, Event::Inject { sid: i as u32 });
            }
            sessions.push(rt);
        }

        let mut probe = self.probe;
        if let Some(p) = probe.as_deref_mut() {
            p.on_build(self.master_seed, self.links.len(), &session_hops);
        }

        // Batching is observably identical only when nothing watches the
        // per-packet dispatch order: probes and the oracle both hook each
        // arrival individually, so they force the scalar path. The
        // interleaved regulator couples sessions through the shared FIFO,
        // so its arrivals cannot be drained per session either.
        let batch_arrivals = self.batch_arrivals
            && probe.is_none()
            && self.oracle.mode == OracleMode::Off
            && self.regulator == RegulatorBackend::PerSession;

        let mut oracle = OracleRt::new(self.oracle, &session_hops);
        oracle.interleaved = self.regulator == RegulatorBackend::Interleaved;

        ScalarNet {
            nodes,
            sessions,
            events,
            now: Time::ZERO,
            node_stats: (0..self.links.len()).map(|_| NodeStats::new()).collect(),
            session_stats,
            oracle,
            probe,
            batch_arrivals,
            batch_pkts: Vec::new(),
            batch_out: Vec::new(),
            regulator: self.regulator,
        }
    }
}

/// The scalar (single-threaded) engine: topology + sessions +
/// future-event set + accumulated statistics. Public API lives on the
/// [`Network`] facade, which dispatches between this and the sharded
/// engine.
pub(crate) struct ScalarNet {
    nodes: Vec<NodeRt>,
    sessions: Vec<SessionRt>,
    events: EventQueue<Event>,
    now: Time,
    node_stats: Vec<NodeStats>,
    session_stats: Vec<SessionStats>,
    oracle: OracleRt,
    probe: Option<Box<dyn Probe>>,
    /// Batched-arrival dispatch enabled (see
    /// [`NetworkBuilder::batch_arrivals`]).
    batch_arrivals: bool,
    /// Scratch buffers reused across batches (capacity persists).
    batch_pkts: Vec<Packet>,
    batch_out: Vec<ScheduleDecision>,
    /// How the nodes realize their delay regulators (see
    /// [`NetworkBuilder::regulator`]).
    regulator: RegulatorBackend,
}

impl ScalarNet {
    /// Advance the simulation until no event at or before `until` remains.
    /// May be called repeatedly with growing horizons.
    pub fn run_until(&mut self, until: Time) {
        while let Some(t) = self.events.peek_time() {
            if t > until {
                break;
            }
            // Pop cannot come back empty right after a successful peek;
            // the `else` arm keeps the executor panic-free regardless.
            let Some((t, ev)) = self.events.pop() else {
                break;
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
        }
        self.now = self.now.max(until);
    }

    /// Current simulation clock.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Statistics of one session.
    pub fn session_stats(&self, id: SessionId) -> &SessionStats {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.session_stats[id.index()]
    }

    /// Statistics of one node.
    pub fn node_stats(&self, id: NodeId) -> &NodeStats {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.node_stats[id.index()]
    }

    /// The spec a session was registered with.
    pub fn session_spec(&self, id: SessionId) -> &SessionSpec {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.sessions[id.index()].spec
    }

    /// Number of sessions.
    pub fn num_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The per-hop delay assignments of a session (node index, assignment).
    pub fn session_hops(&self, id: SessionId) -> &[(u32, DelayAssignment)] {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.sessions[id.index()].hops
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Inject { sid } => self.inject(sid),
            Event::Arrive { pkt } if self.batch_arrivals => self.arrive_batched(pkt),
            Event::Arrive { pkt } => self.arrive(pkt),
            Event::Eligible { pkt, key, at } => {
                // Resolved only for reporting; u32::MAX is the probes'
                // "unknown node" convention, so a bad id degrades the
                // report instead of killing the run.
                let node = self
                    .sessions
                    .get(pkt.session.index())
                    .and_then(|s| s.hops.get(pkt.hop as usize))
                    .map_or(u32::MAX, |h| h.0);
                if self.oracle.enabled() && self.now != at {
                    let now = self.now;
                    self.oracle.violate(ViolationKind::ReleaseTime, || {
                        format!(
                            "session {} seq {} released at {now}, eligibility was {at}",
                            pkt.session.0, pkt.seq
                        )
                    });
                    if let Some(p) = self.probe.as_deref_mut() {
                        p.on_violation(
                            now,
                            ViolationKind::ReleaseTime.label(),
                            pkt.session.0,
                            pkt.seq,
                            node,
                        );
                    }
                }
                // This event only exists for packets the regulator held
                // (`E > arrival`), so `now − arrived` is the holding time
                // of eq. 8–9 and is strictly positive.
                if let Some(p) = self.probe.as_deref_mut() {
                    let held = self
                        .now
                        .checked_since(pkt.arrived)
                        .unwrap_or(Duration::ZERO);
                    p.on_eligible(self.now, node, pview(&pkt), held);
                }
                self.enqueue_eligible(node, pkt, key);
            }
            Event::RegFire { node, at } => self.reg_fire(node, at),
            Event::TxDone { node } => self.tx_done(node),
        }
    }

    /// The head of `node_idx`'s interleaved-regulator FIFO reached its
    /// eligibility instant: release the head and every successor whose own
    /// eligibility has also passed (head gating makes releases cascade),
    /// then re-arm the timer at the new head's instant. On every release
    /// the oracle checks the interleaved regulator's defining equation —
    /// the release instant equals `max(previous release, entry E)` — and
    /// the Thomas–Le Boudec shaping ceiling: a packet is never held past
    /// its own eligibility longer than the largest `E − a` offset any
    /// packet ever brought into this FIFO.
    fn reg_fire(&mut self, node_idx: u32, at: Time) {
        if self.oracle.enabled() && self.now != at {
            let now = self.now;
            self.oracle.violate(ViolationKind::ReleaseTime, || {
                format!("node {node_idx}: regulator timer fired at {now}, was armed for {at}")
            });
        }
        loop {
            // lit-lint: allow(no-panic-hot-path, "executor invariant: RegFire events carry node ids from the build-time topology")
            let node = &mut self.nodes[node_idx as usize];
            let Some(head) = node.fifo.queue.front() else {
                break;
            };
            if head.eligible > self.now {
                let next = head.eligible;
                self.events.push(
                    next,
                    Event::RegFire {
                        node: node_idx,
                        at: next,
                    },
                );
                break;
            }
            // lit-lint: allow(no-panic-hot-path, "front() above proved the queue non-empty")
            let entry = node.fifo.queue.pop_front().expect("non-empty fifo");
            let expected = node.fifo.last_release.max(entry.eligible);
            let ceiling_ps = node.fifo.max_hold_ps;
            node.fifo.last_release = self.now;
            let now = self.now;
            if self.oracle.enabled() {
                if now != expected {
                    self.oracle.violate(ViolationKind::RegulatorFifo, || {
                        format!(
                            "node {node_idx} session {} seq {}: released at {now}, \
                             interleaved regulator requires max(last release, E) = {expected}",
                            entry.item.session.0, entry.item.seq
                        )
                    });
                    if let Some(p) = self.probe.as_deref_mut() {
                        p.on_violation(
                            now,
                            ViolationKind::RegulatorFifo.label(),
                            entry.item.session.0,
                            entry.item.seq,
                            node_idx,
                        );
                    }
                }
                let shaping_ps = now.checked_since(entry.eligible).map_or(0, |d| d.as_ps());
                if shaping_ps > ceiling_ps {
                    self.oracle.violate(ViolationKind::ShapingBound, || {
                        format!(
                            "node {node_idx} session {} seq {}: held {shaping_ps} ps past \
                             its eligibility, service-curve ceiling is {ceiling_ps} ps",
                            entry.item.session.0, entry.item.seq
                        )
                    });
                    if let Some(p) = self.probe.as_deref_mut() {
                        p.on_violation(
                            now,
                            ViolationKind::ShapingBound.label(),
                            entry.item.session.0,
                            entry.item.seq,
                            node_idx,
                        );
                    }
                }
            }
            if let Some(p) = self.probe.as_deref_mut() {
                let held = now
                    .checked_since(entry.item.arrived)
                    .unwrap_or(Duration::ZERO);
                p.on_eligible(now, node_idx, pview(&entry.item), held);
            }
            self.enqueue_eligible(node_idx, entry.item, entry.key);
        }
    }

    /// Materialize the pending emission of `sid` as a packet at hop 0 and
    /// pull/schedule the next one.
    fn inject(&mut self, sid: u32) {
        // lit-lint: allow(no-panic-hot-path, "executor invariant: Inject events carry indices minted by build over this same vec")
        let s = &mut self.sessions[sid as usize];
        // lit-lint: allow(no-panic-hot-path, "executor invariant: an Inject event is only pushed when `pending` was just filled")
        let e = s.pending.take().expect("Inject without pending emission");
        debug_assert_eq!(e.at, self.now);
        let seq = s.next_seq;
        s.next_seq += 1;
        let mut pkt = Packet::new(s.spec.id, seq, e.len_bits, e.at);

        // Reference-server co-simulation (eq. 1): W_i = max(t_i, W_{i-1})
        // + L_i/r, with W_0 = t_1.
        let service = Duration::from_bits_at_rate(e.len_bits as u64, s.spec.rate_bps);
        let w_prev = s.ref_w.unwrap_or(e.at);
        let w = e.at.max(w_prev) + service;
        s.ref_w = Some(w);

        // Pull the next emission before we lose the borrow.
        s.pending = s.source.next_emission(&mut s.rng);
        if let Some(next) = s.pending {
            debug_assert!(next.at >= e.at, "source emitted into the past");
            self.events.push(next.at, Event::Inject { sid });
        }

        pkt.ref_delay = w - e.at;
        // lit-lint: allow(no-panic-hot-path, "session_stats is built with one entry per session; sid was minted by build")
        let st = &mut self.session_stats[sid as usize];
        st.injected += 1;
        st.reference.record(pkt.ref_delay);

        self.arrive(pkt);
    }

    /// A packet's last bit arrives at its current hop.
    fn arrive(&mut self, mut pkt: Packet) {
        let sid = pkt.session.index();
        let hop = pkt.hop as usize;
        // lit-lint: allow(no-panic-hot-path, "executor invariant: packets carry the session id and hop index they were routed with at build")
        let node_idx = self.sessions[sid].hops[hop].0 as usize;
        pkt.arrived = self.now;

        // Buffer occupancy, sampled as the paper does: at last-bit arrival,
        // counting the arriving packet and any packet in transmission.
        // lit-lint: allow(no-panic-hot-path, "session_stats is built with one entry per session; sid comes from the packet's build-time id")
        self.session_stats[sid].occupy(hop, pkt.len_bits as u64);

        if let Some(p) = self.probe.as_deref_mut() {
            let depth = self.nodes.get(node_idx).map_or(0, |n| n.queue.len());
            let events = self.events.len();
            p.on_arrive(self.now, node_idx as u32, pview(&pkt), depth, events);
        }

        // lit-lint: allow(no-panic-hot-path, "executor invariant: node ids come from the build-time topology")
        let node = &mut self.nodes[node_idx];
        let decision = node.discipline.on_arrival(&mut pkt, self.now);
        debug_assert!(
            decision.eligible >= self.now,
            "discipline produced an eligibility time in the past"
        );
        if self.oracle.enabled() {
            // Regulator invariants (eq. 6–7): E is per-session monotone
            // at every hop, and never lies in the past.
            let now = self.now;
            // lit-lint: allow(no-panic-hot-path, "oracle state is sized per session and hop at build, same shape as the route")
            let last = &mut self.oracle.last_eligible[sid][hop];
            if decision.eligible < *last {
                let prev = *last;
                self.oracle.violate(ViolationKind::EligibilityOrder, || {
                    format!(
                        "session {sid} hop {hop} seq {}: eligibility {} < previous {prev}",
                        pkt.seq, decision.eligible
                    )
                });
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_violation(
                        now,
                        ViolationKind::EligibilityOrder.label(),
                        sid as u32,
                        pkt.seq,
                        node_idx as u32,
                    );
                }
            } else {
                *last = decision.eligible;
            }
            if decision.eligible < now {
                self.oracle.violate(ViolationKind::ReleaseTime, || {
                    format!(
                        "session {sid} hop {hop} seq {}: eligibility {} before arrival {now}",
                        pkt.seq, decision.eligible
                    )
                });
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_violation(
                        now,
                        ViolationKind::ReleaseTime.label(),
                        sid as u32,
                        pkt.seq,
                        node_idx as u32,
                    );
                }
            }
        }
        if self.regulator == RegulatorBackend::Interleaved {
            // Interleaved join rule: a packet enters the shared FIFO when
            // it must be held (`E > now`) or when it is jitter-controlled
            // and the FIFO already holds earlier packets (overtaking them
            // would break the regulator's FIFO contract). Immediately
            // eligible non-jc packets bypass the regulator, as unshaped
            // traffic does in TSN ATS.
            // lit-lint: allow(no-panic-hot-path, "executor invariant: node ids come from the build-time topology")
            let node = &mut self.nodes[node_idx];
            // lit-lint: allow(no-panic-hot-path, "executor invariant: packets carry the session id they were routed with at build")
            let jc = self.sessions[sid].spec.jitter_control;
            if decision.eligible > self.now || (jc && !node.fifo.queue.is_empty()) {
                let was_empty = node.fifo.queue.is_empty();
                node.fifo
                    .join(pkt, decision.key, decision.eligible, self.now);
                if was_empty {
                    // Joining an empty FIFO implies `E > now`, so the
                    // head timer is always armed strictly in the future.
                    self.events.push(
                        decision.eligible,
                        Event::RegFire {
                            node: node_idx as u32,
                            at: decision.eligible,
                        },
                    );
                }
            } else {
                self.enqueue_eligible(node_idx as u32, pkt, decision.key);
            }
        } else if decision.eligible > self.now {
            self.events.push(
                decision.eligible,
                Event::Eligible {
                    pkt,
                    key: decision.key,
                    at: decision.eligible,
                },
            );
        } else {
            self.enqueue_eligible(node_idx as u32, pkt, decision.key);
        }
    }

    /// Batched arrival dispatch: `first` just popped at `now`; drain the
    /// run of consecutive `Arrive` events for the same `(session, hop)` at
    /// the same instant and push the whole run through
    /// [`Discipline::on_arrival_batch`].
    ///
    /// Equivalence with the scalar path: the drained events are exactly
    /// the ones the scalar loop would pop next anyway (the future-event
    /// set is FIFO among equal timestamps, and `pop_if` stops at the first
    /// non-matching front), pops mint no sequence numbers, and the
    /// per-packet pushes below happen in the same order as scalar
    /// processing would emit them — so every downstream event gets the
    /// identical timestamp *and* sequence number. Only reached when no
    /// probe/oracle is installed (see [`NetworkBuilder::batch_arrivals`]).
    fn arrive_batched(&mut self, first: Packet) {
        let sid = first.session;
        let hop = first.hop;
        let now = self.now;
        let mut batch = std::mem::take(&mut self.batch_pkts);
        batch.clear();
        batch.push(first);
        while let Some((_, ev)) = self.events.pop_if(|at, ev| {
            at == now && matches!(ev, Event::Arrive { pkt } if pkt.session == sid && pkt.hop == hop)
        }) {
            if let Event::Arrive { pkt } = ev {
                batch.push(pkt);
            }
        }
        let sidx = sid.index();
        let hopx = hop as usize;
        // lit-lint: allow(no-panic-hot-path, "executor invariant: packets carry the session id and hop index they were routed with at build")
        let node_idx = self.sessions[sidx].hops[hopx].0 as usize;
        for pkt in batch.iter_mut() {
            pkt.arrived = now;
        }
        let mut out = std::mem::take(&mut self.batch_out);
        out.clear();
        // lit-lint: allow(no-panic-hot-path, "executor invariant: node ids come from the build-time topology")
        let node = &mut self.nodes[node_idx];
        node.discipline.on_arrival_batch(&mut batch, now, &mut out);
        debug_assert_eq!(out.len(), batch.len(), "one decision per packet");
        for (pkt, decision) in batch.drain(..).zip(out.drain(..)) {
            debug_assert!(
                decision.eligible >= now,
                "discipline produced an eligibility time in the past"
            );
            // lit-lint: allow(no-panic-hot-path, "session_stats is built with one entry per session; sid comes from the packet's build-time id")
            self.session_stats[sidx].occupy(hopx, pkt.len_bits as u64);
            if decision.eligible > now {
                self.events.push(
                    decision.eligible,
                    Event::Eligible {
                        pkt,
                        key: decision.key,
                        at: decision.eligible,
                    },
                );
            } else {
                self.enqueue_eligible(node_idx as u32, pkt, decision.key);
            }
        }
        self.batch_pkts = batch;
        self.batch_out = out;
    }

    /// Put an eligible packet in the node's transmission queue and start
    /// the link if idle.
    fn enqueue_eligible(&mut self, node_idx: u32, pkt: Packet, key: u128) {
        // lit-lint: allow(no-panic-hot-path, "executor invariant: node ids come from the build-time topology")
        let node = &mut self.nodes[node_idx as usize];
        node.queue.push(key, pkt);
        if node.current.is_none() {
            self.start_tx(node_idx);
        }
    }

    /// Begin transmitting the highest-priority eligible packet.
    fn start_tx(&mut self, node_idx: u32) {
        // lit-lint: allow(no-panic-hot-path, "executor invariant: node ids come from the build-time topology")
        let node = &mut self.nodes[node_idx as usize];
        debug_assert!(node.current.is_none(), "link already busy");
        let Some(pkt) = node.queue.pop() else {
            return;
        };
        let tx = node.link.tx_time(pkt.len_bits);
        node.discipline.on_service_start(&pkt, self.now);
        if let Some(p) = self.probe.as_deref_mut() {
            p.on_dispatch(self.now, node_idx, pview(&pkt));
        }
        node.current = Some(pkt);
        // lit-lint: allow(no-panic-hot-path, "node_stats is built with one entry per node")
        self.node_stats[node_idx as usize].busy.set_busy(self.now);
        self.events
            .push(self.now + tx, Event::TxDone { node: node_idx });
    }

    /// The node's current packet finished transmission.
    fn tx_done(&mut self, node_idx: u32) {
        // lit-lint: allow(no-panic-hot-path, "executor invariant: node ids come from the build-time topology")
        let node = &mut self.nodes[node_idx as usize];
        // lit-lint: allow(no-panic-hot-path, "executor invariant: a TxDone event exists only while `current` is occupied")
        let mut pkt = node.current.take().expect("TxDone with idle link");
        let finish = self.now;
        node.discipline.on_departure(&mut pkt, finish);
        let propagation = node.link.propagation;
        let lmax_ps = node.link.lmax_time().as_ps() as i128;

        // Node accounting.
        // lit-lint: allow(no-panic-hot-path, "node_stats is built with one entry per node")
        let nst = &mut self.node_stats[node_idx as usize];
        nst.transmitted += 1;
        nst.bits_transmitted += pkt.len_bits as u64;
        let lateness = finish.as_ps() as i128 - pkt.deadline.as_ps() as i128;
        nst.max_lateness_ps = nst.max_lateness_ps.max(lateness);
        // The non-saturation allowance is a *per-session-regulator*
        // lemma: under the interleaved backend a packet can legitimately
        // leave later (it may wait behind other sessions' holds in the
        // shared FIFO), so the check is suspended there and the regulator
        // invariants take over at release time.
        if self.oracle.enabled() && !self.oracle.interleaved && lateness >= lmax_ps {
            // Non-saturation lemma: F̂ < F + L_MAX/C.
            nst.oracle_violations += 1;
            self.oracle.violate(ViolationKind::Lateness, || {
                format!(
                    "node {node_idx} session {} seq {}: finish {finish} is \
                     {lateness} ps past deadline {} (allowance {lmax_ps} ps)",
                    pkt.session.0, pkt.seq, pkt.deadline
                )
            });
            if let Some(p) = self.probe.as_deref_mut() {
                p.on_violation(
                    finish,
                    ViolationKind::Lateness.label(),
                    pkt.session.0,
                    pkt.seq,
                    node_idx,
                );
            }
        }

        // Session accounting: the packet no longer occupies this node.
        let sid = pkt.session.index();
        let hop = pkt.hop as usize;
        // lit-lint: allow(no-panic-hot-path, "session_stats is built with one entry per session; sid comes from the packet's build-time id")
        let st = &mut self.session_stats[sid];
        st.release(hop, pkt.len_bits as u64);

        // lit-lint: allow(no-panic-hot-path, "executor invariant: packets carry the session id they were routed with at build")
        let hops = self.sessions[sid].hops.len();
        if let Some(p) = self.probe.as_deref_mut() {
            // Deadline slack F − departure; negative means the packet
            // left late (the oracle's lateness check allows < L_MAX/C).
            let slack = (pkt.deadline.as_ps() as i128 - finish.as_ps() as i128)
                .clamp(i64::MIN as i128, i64::MAX as i128) as i64;
            p.on_depart(finish, node_idx, pview(&pkt), slack, hop + 1 >= hops);
        }
        if hop + 1 < hops {
            pkt.hop += 1;
            self.events
                .push(finish + propagation, Event::Arrive { pkt });
        } else {
            // Delivered: end-to-end delay includes the last link's
            // propagation, matching β's Σ(L_MAX/Cₙ + Γₙ) over n = 1..N.
            let delivery = finish + propagation;
            st.delivered += 1;
            let delay = delivery - pkt.created;
            st.e2e.record(delay);
            st.delay_batches.record(delay.as_secs_f64());
            let excess = delay.as_ps() as i128 - pkt.ref_delay.as_ps() as i128;
            st.max_excess_ps = st.max_excess_ps.max(excess);
            st.log_delivery(DeliveryRecord {
                seq: pkt.seq,
                created: pkt.created,
                delivered: delivery,
                ref_delay: pkt.ref_delay,
            });
            if self.oracle.enabled() {
                // lit-lint: allow(no-panic-hot-path, "oracle bounds are sized to the session count at build")
                if let Some(b) = self.oracle.bounds[sid] {
                    // Ineq. 12, pathwise: D_i − D^ref_i < β + α, for any
                    // arrival pattern (the firewall property).
                    if excess >= b.shift_ps {
                        st.oracle_violations += 1;
                        self.oracle.violate(ViolationKind::DelayBound, || {
                            format!(
                                "session {sid} seq {}: excess {excess} ps ≥ β+α = {} ps",
                                pkt.seq, b.shift_ps
                            )
                        });
                        if let Some(p) = self.probe.as_deref_mut() {
                            p.on_violation(
                                finish,
                                ViolationKind::DelayBound.label(),
                                sid as u32,
                                pkt.seq,
                                u32::MAX,
                            );
                        }
                    }
                    // Ineq. 17 family: running jitter stays below the
                    // empirical D^ref_max plus the spread constant. Both
                    // running maxima only grow, so checking per delivery
                    // is equivalent to checking at drain time.
                    let jitter_ps = st.e2e.spread().map_or(0, |j| j.as_ps() as i128);
                    let dref_ps = st.reference.max().map_or(0, |d| d.as_ps() as i128);
                    if jitter_ps >= dref_ps + b.jitter_spread_ps {
                        st.oracle_violations += 1;
                        self.oracle.violate(ViolationKind::JitterBound, || {
                            format!(
                                "session {sid} seq {}: jitter {jitter_ps} ps ≥ \
                                 D^ref_max {dref_ps} + spread {} ps",
                                pkt.seq, b.jitter_spread_ps
                            )
                        });
                        if let Some(p) = self.probe.as_deref_mut() {
                            p.on_violation(
                                finish,
                                ViolationKind::JitterBound.label(),
                                sid as u32,
                                pkt.seq,
                                u32::MAX,
                            );
                        }
                    }
                }
            }
        }

        // Keep the link busy if more eligible work is queued.
        // lit-lint: allow(no-panic-hot-path, "executor invariant: node ids come from the build-time topology")
        let node = &mut self.nodes[node_idx as usize];
        if node.queue.is_empty() {
            // lit-lint: allow(no-panic-hot-path, "node_stats is built with one entry per node")
            self.node_stats[node_idx as usize].busy.set_idle(self.now);
        } else {
            self.start_tx(node_idx);
        }
    }
}

impl ScalarNet {
    /// The outgoing-link parameters of a node.
    pub fn node_link(&self, id: NodeId) -> &LinkParams {
        // lit-lint: allow(no-panic-hot-path, "public accessor: panicking on an invalid id is the documented contract")
        &self.nodes[id.index()].link
    }

    /// Install the conformance-oracle bound constants for one session
    /// (normally done for every session by
    /// `lit_core::install_oracle_bounds`). No-op when the oracle is off.
    pub fn set_session_bounds(&mut self, id: SessionId, bounds: SessionBounds) {
        if self.oracle.enabled() {
            // lit-lint: allow(no-panic-hot-path, "public setter: panicking on an invalid id is the documented contract")
            self.oracle.bounds[id.index()] = Some(bounds);
        }
    }

    /// Total events ever pushed onto the future-event set (a proxy for
    /// simulation work, used by the overhead-guard benchmark).
    pub fn event_count(&self) -> u64 {
        self.events.pushed()
    }

    /// Remove the installed observability probe, finishing it first (a
    /// hub-submitting probe delivers its shard exactly once; `finish` is
    /// idempotent). Callers that install a concrete probe use this plus
    /// `Probe::as_any` to read the recorded registries back.
    pub fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        let now = self.now;
        let mut p = self.probe.take();
        if let Some(p) = p.as_deref_mut() {
            p.finish(now);
        }
        p
    }

    /// Total conformance-oracle violations recorded by this network.
    pub fn oracle_violations(&self) -> u64 {
        self.oracle.totals.total()
    }

    /// Violation counts by kind.
    pub fn oracle_totals(&self) -> OracleTotals {
        self.oracle.totals
    }

    /// Drain-time checks: (a) ineq. 16 — for every session with installed
    /// bounds, the end-to-end delay histogram must sit under the
    /// reference histogram shifted right by `β + α`, compared on absolute
    /// counts; (b) workload-conservation sanity (the Kruk et al.
    /// heavy-traffic premise) — every node's accumulated busy time must
    /// equal the service time of the bits it transmitted. Returns the
    /// number of sessions plus nodes that failed. Runs automatically (in
    /// counting mode) when the network is dropped, if not called
    /// explicitly first.
    pub fn oracle_drain_check(&mut self) -> u64 {
        self.oracle.drained = true;
        if !self.oracle.enabled() {
            return 0;
        }
        let mut failed = 0;
        for (sid, st) in self.session_stats.iter_mut().enumerate() {
            // lit-lint: allow(no-panic-hot-path, "oracle bounds and session_stats are built to the same length; sid enumerates the latter")
            let Some(b) = self.oracle.bounds[sid] else {
                continue;
            };
            if st.delivered == 0 {
                continue;
            }
            if let Some((d_ps, lhs, rhs)) = ccdf_shift_violation(&st.e2e, &st.reference, b.shift_ps)
            {
                failed += 1;
                st.oracle_violations += 1;
                self.oracle.violate(ViolationKind::CcdfBound, || {
                    format!(
                        "session {sid}: {lhs} packets with D > {d_ps} ps, but only \
                         {rhs} with D^ref > {} ps (shift {} ps)",
                        d_ps - b.shift_ps,
                        b.shift_ps
                    )
                });
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_violation(
                        self.now,
                        ViolationKind::CcdfBound.label(),
                        sid as u32,
                        0,
                        u32::MAX,
                    );
                }
            }
        }
        // Workload conservation over [0, now], per node: busy time must
        // equal the service time of the transmitted bits. Slack: ±1 ps
        // per packet (each tx time rounds to the nearest picosecond, and
        // so does the recomputed total) plus one L_MAX/C upward for a
        // packet still on the wire at the horizon, whose open busy
        // interval is closed virtually while its bits are not yet
        // counted.
        let now = self.now;
        for (n, nst) in self.node_stats.iter_mut().enumerate() {
            // lit-lint: allow(no-panic-hot-path, "node_stats and nodes are built to the same length; n enumerates the former")
            let link = &self.nodes[n].link;
            let service_ps =
                Duration::from_bits_at_rate(nst.bits_transmitted, link.rate_bps).as_ps() as i128;
            let busy_ps = nst.busy.busy_at(now).as_ps() as i128;
            let count = nst.transmitted as i128;
            let lmax_ps = link.lmax_time().as_ps() as i128;
            if busy_ps < service_ps - count || busy_ps > service_ps + count + lmax_ps {
                failed += 1;
                nst.oracle_violations += 1;
                self.oracle.violate(ViolationKind::WorkConservation, || {
                    format!(
                        "node {n}: busy {busy_ps} ps over [0, {now}] vs {service_ps} ps \
                         of transmitted service ({} packets, allowance ±{count} ps \
                         + {lmax_ps} ps in flight)",
                        nst.transmitted
                    )
                });
                if let Some(p) = self.probe.as_deref_mut() {
                    p.on_violation(
                        now,
                        ViolationKind::WorkConservation.label(),
                        u32::MAX,
                        0,
                        n as u32,
                    );
                }
            }
        }
        failed
    }
}

impl Drop for ScalarNet {
    fn drop(&mut self) {
        // Run the drain-time distribution check if the caller didn't.
        // Forced to counting mode: panicking in drop would abort, and the
        // global counter still surfaces the failure (e.g. to `lit-repro`,
        // whose exit code checks it after a sweep).
        if self.oracle.enabled() && !self.oracle.drained && !std::thread::panicking() {
            let mode = self.oracle.mode;
            self.oracle.mode = OracleMode::Count;
            self.oracle_drain_check();
            self.oracle.mode = mode;
        }
        // Finish the probe *after* the drain check so drain-time CCDF
        // violations are part of what a hub-submitting probe delivers.
        if !std::thread::panicking() {
            let now = self.now;
            if let Some(p) = self.probe.as_deref_mut() {
                p.finish(now);
            }
        }
    }
}

/// The engine behind the facade: one scalar event loop, or per-shard
/// event loops coupled through conservative lookahead windows.
enum Engine {
    // Both engines inline multi-hundred-byte tables; boxing keeps the
    // facade enum pointer-sized (clippy::large_enum_variant).
    Scalar(Box<ScalarNet>),
    Sharded(Box<crate::shard::ShardedNet>),
}

/// The network: topology + sessions + executor + accumulated statistics.
///
/// Dispatches between the scalar engine and the sharded engine.
/// Statistics, traces and oracle counts are byte-identical across all
/// sharded counts, and match the scalar engine whenever no two events
/// share an instant — see [`NetworkBuilder::shards`] for the tie-order
/// and jitter-oracle caveats on tie-heavy workloads, and
/// [`Network::shard_count`] for which engine actually ran.
pub struct Network {
    inner: Engine,
}

impl Network {
    /// Advance the simulation until no event at or before `until` remains.
    /// May be called repeatedly with growing horizons.
    pub fn run_until(&mut self, until: Time) {
        match &mut self.inner {
            Engine::Scalar(n) => n.run_until(until),
            Engine::Sharded(n) => n.run_until(until),
        }
    }

    /// Current simulation clock.
    pub fn now(&self) -> Time {
        match &self.inner {
            Engine::Scalar(n) => n.now(),
            Engine::Sharded(n) => n.now(),
        }
    }

    /// Statistics of one session.
    pub fn session_stats(&self, id: SessionId) -> &SessionStats {
        match &self.inner {
            Engine::Scalar(n) => n.session_stats(id),
            Engine::Sharded(n) => n.session_stats(id),
        }
    }

    /// Statistics of one node.
    pub fn node_stats(&self, id: NodeId) -> &NodeStats {
        match &self.inner {
            Engine::Scalar(n) => n.node_stats(id),
            Engine::Sharded(n) => n.node_stats(id),
        }
    }

    /// The spec a session was registered with.
    pub fn session_spec(&self, id: SessionId) -> &SessionSpec {
        match &self.inner {
            Engine::Scalar(n) => n.session_spec(id),
            Engine::Sharded(n) => n.session_spec(id),
        }
    }

    /// Number of sessions.
    pub fn num_sessions(&self) -> usize {
        match &self.inner {
            Engine::Scalar(n) => n.num_sessions(),
            Engine::Sharded(n) => n.num_sessions(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        match &self.inner {
            Engine::Scalar(n) => n.num_nodes(),
            Engine::Sharded(n) => n.num_nodes(),
        }
    }

    /// The per-hop delay assignments of a session (node index, assignment).
    pub fn session_hops(&self, id: SessionId) -> &[(u32, DelayAssignment)] {
        match &self.inner {
            Engine::Scalar(n) => n.session_hops(id),
            Engine::Sharded(n) => n.session_hops(id),
        }
    }

    /// The outgoing-link parameters of a node.
    pub fn node_link(&self, id: NodeId) -> &LinkParams {
        match &self.inner {
            Engine::Scalar(n) => n.node_link(id),
            Engine::Sharded(n) => n.node_link(id),
        }
    }

    /// Install the conformance-oracle bound constants for one session
    /// (normally done for every session by
    /// `lit_core::install_oracle_bounds`). No-op when the oracle is off.
    pub fn set_session_bounds(&mut self, id: SessionId, bounds: SessionBounds) {
        match &mut self.inner {
            Engine::Scalar(n) => n.set_session_bounds(id, bounds),
            Engine::Sharded(n) => n.set_session_bounds(id, bounds),
        }
    }

    /// Total events ever pushed onto the future-event set (a proxy for
    /// simulation work, used by the overhead-guard benchmark). Invariant
    /// across shard counts: same workload, same count.
    pub fn event_count(&self) -> u64 {
        match &self.inner {
            Engine::Scalar(n) => n.event_count(),
            Engine::Sharded(n) => n.event_count(),
        }
    }

    /// Remove the installed observability probe, finishing it first.
    /// Always `None` on the sharded engine — a probe forces the scalar
    /// engine at `build` (see [`NetworkBuilder::shards`]), so a sharded
    /// network never holds one.
    pub fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        match &mut self.inner {
            Engine::Scalar(n) => n.take_probe(),
            Engine::Sharded(_) => None,
        }
    }

    /// Total conformance-oracle violations recorded by this network.
    pub fn oracle_violations(&self) -> u64 {
        match &self.inner {
            Engine::Scalar(n) => n.oracle_violations(),
            Engine::Sharded(n) => n.oracle_violations(),
        }
    }

    /// Violation counts by kind.
    pub fn oracle_totals(&self) -> OracleTotals {
        match &self.inner {
            Engine::Scalar(n) => n.oracle_totals(),
            Engine::Sharded(n) => n.oracle_totals(),
        }
    }

    /// Drain-time checks: ineq. 16 per session with installed bounds and
    /// workload-conservation sanity per node (`ScalarNet::oracle_drain_check`
    /// internally); returns the number of sessions plus nodes that failed.
    /// Runs automatically in counting mode on drop if not called explicitly.
    pub fn oracle_drain_check(&mut self) -> u64 {
        match &mut self.inner {
            Engine::Scalar(n) => n.oracle_drain_check(),
            Engine::Sharded(n) => n.oracle_drain_check(),
        }
    }

    /// How many shard workers the built engine actually uses (1 for the
    /// scalar engine, including every fallback case).
    pub fn shard_count(&self) -> usize {
        match &self.inner {
            Engine::Scalar(_) => 1,
            Engine::Sharded(n) => n.shard_count(),
        }
    }
}
